// Compiled query path: what the fingerprinted plan cache and prepared
// queries buy on the Fig. 6 integration workload. Three regimes per query:
//
//   cold      — plan cache cleared before every answer: full parse →
//               fingerprint → Alg. 5.1 rewrite → expression compile → exec;
//   warm      — every answer is a cache hit: clone the cached rewriting,
//               reuse its compiled programs, exec;
//   prepared  — ExecutePrepared on a pre-parsed template (no SQL text on
//               the hot path at all).
//
// The repeat-rate series answers the deployment question: at a repeat rate
// of r, each distinct query is answered r times per cache clear, so the
// amortized per-query cost interpolates between cold (r=1) and warm (r→∞).
// run_experiments.sh gates warm-vs-cold at repeat rate 100 on ≥3×.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "integration/integration.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kSourceSql[] =
    "create view s2::C(date, price) as "
    "select D, P from I::stock T, T.company C, T.date D, T.price P";

const char kQuery[] =
    "select C, P from I::stock T, T.company C, T.price P where P > 300";

const char kPreparedQuery[] =
    "select C, P from I::stock T, T.company C, T.price P where P > ?";

struct Setup {
  Catalog catalog;
  std::unique_ptr<IntegrationSystem> system;

  /// `decoy_sources` registers that many sources that cannot answer kQuery
  /// (they drop the price attribute) BEFORE the one that can — the Fig. 6
  /// federation shape where Alg. 5.1 probes down the registration list on
  /// every cold plan. The cache amortizes exactly that probing.
  Setup(int companies, int dates, int decoy_sources = 0) {
    StockGenConfig cfg;
    cfg.num_companies = companies;
    cfg.num_dates = dates;
    Table s1 = GenerateStockS1(cfg);
    // I is virtual: the data lives only under the s2 source (Fig. 6).
    (void)!catalog
        .PutTable("I", "stock",
                  Table(Schema({{"company", TypeKind::kString},
                                {"date", TypeKind::kDate},
                                {"price", TypeKind::kInt}})))
        .ok();
    InstallStockS2(&catalog, "s2", s1);
    system = std::make_unique<IntegrationSystem>(&catalog, "I");
    for (int i = 0; i < decoy_sources; ++i) {
      std::string name = "d" + std::to_string(i);
      (void)!catalog
          .PutTable(name, "dates",
                    Table(Schema({{"company", TypeKind::kString},
                                  {"date", TypeKind::kDate}})))
          .ok();
      system
          ->RegisterSource("create view " + name +
                           "::dates(date) as select D from I::stock T, "
                           "T.company C, T.date D")
          .value();
    }
    system->RegisterSource(kSourceSql).value();
  }
};

AnswerOptions Multiset() {
  AnswerOptions opts;
  opts.multiset = true;
  return opts;
}

void PrintReproduction() {
  std::printf("=== Compiled query path: plan cache + prepared queries ===\n");
  Setup s(10, 100);
  auto cold = s.system->AnswerGuarded(kQuery, Multiset());
  auto warm = s.system->AnswerGuarded(kQuery, Multiset());
  std::printf("query:        %s\n", kQuery);
  std::printf("fingerprint:  %s\n", cold.value().plan_fingerprint.c_str());
  std::printf("cold answer:  plan_cached=%d, %zu rows\n",
              cold.value().plan_cached ? 1 : 0, cold.value().table.num_rows());
  std::printf("warm answer:  plan_cached=%d, %zu rows\n",
              warm.value().plan_cached ? 1 : 0, warm.value().table.num_rows());
  PlanCacheStats stats = s.system->plan_cache_stats();
  std::printf("plan cache:   hits=%llu misses=%llu\n\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
}

/// Cold path: every answer re-plans (the pre-plan-cache cost).
void BM_AnswerCold(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    s.system->ClearPlanCache();
    auto r = s.system->AnswerGuarded(kQuery, Multiset());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnswerCold)->Args({10, 100})->Args({50, 100});

/// Warm path: every answer is a plan-cache hit.
void BM_AnswerWarm(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  (void)!s.system->AnswerGuarded(kQuery, Multiset()).ok();  // Prime.
  for (auto _ : state) {
    auto r = s.system->AnswerGuarded(kQuery, Multiset());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnswerWarm)->Args({10, 100})->Args({50, 100});

/// Repeat-rate series: r answers per cache clear; per-query cost amortizes
/// one cold plan over r executions. items_per_second is the comparable
/// per-query figure across rates.
void BM_AnswerRepeatRate(benchmark::State& state) {
  // The small Fig. 6 instance with a 7-source federation: planning (parse ->
  // rewrite -> probe sources -> compile) is the dominant per-query term,
  // which is exactly what the cache amortizes.
  Setup s(5, 10, /*decoy_sources=*/6);
  const int repeat = static_cast<int>(state.range(0));
  for (auto _ : state) {
    s.system->ClearPlanCache();
    for (int i = 0; i < repeat; ++i) {
      auto r = s.system->AnswerGuarded(kQuery, Multiset());
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations() * repeat);
}
BENCHMARK(BM_AnswerRepeatRate)->Arg(1)->Arg(10)->Arg(100);

/// Prepared repeats: template parsed once, every execution substitutes and
/// hits the plan cache (after the first).
void BM_ExecutePrepared(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  auto prepared = s.system->Prepare(kPreparedQuery).value();
  (void)!s.system->ExecutePrepared(*prepared, {Value::Int(300)}, Multiset())
      .ok();  // Prime.
  for (auto _ : state) {
    auto r =
        s.system->ExecutePrepared(*prepared, {Value::Int(300)}, Multiset());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutePrepared)->Args({10, 100})->Args({50, 100});

/// Prepared repeat-rate series, the ExecutePrepared counterpart of
/// BM_AnswerRepeatRate.
void BM_PreparedRepeatRate(benchmark::State& state) {
  Setup s(5, 10, /*decoy_sources=*/6);
  auto prepared = s.system->Prepare(kPreparedQuery).value();
  const int repeat = static_cast<int>(state.range(0));
  for (auto _ : state) {
    s.system->ClearPlanCache();
    for (int i = 0; i < repeat; ++i) {
      auto r =
          s.system->ExecutePrepared(*prepared, {Value::Int(300)}, Multiset());
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations() * repeat);
}
BENCHMARK(BM_PreparedRepeatRate)->Arg(1)->Arg(10)->Arg(100);

/// Expression compilation in isolation: the engine's interpreted vs
/// compiled evaluation on the direct Fig. 6 scan (no plan cache involved —
/// both run the same fresh plan; only the evaluation mechanism differs).
/// The predicate is deliberately wide — flat programs pay in proportion to
/// ops per row (slot-aliased operands, no per-row tree walk or Value
/// copies); a single comparison is near parity.
const char kEngineQuery[] =
    "select C, P from local::stock T, T.company C, T.price P "
    "where (P * 3 + 7) - P / 2 > 400 and not (P = 444) "
    "and (C like '%oA%' or C like '%oB%' or P + P > 500)";

void BM_EngineInterpreted(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  StockGenConfig cfg;
  cfg.num_companies = static_cast<int>(state.range(0));
  cfg.num_dates = static_cast<int>(state.range(1));
  InstallStockS1(&s.catalog, "local", GenerateStockS1(cfg));
  ExecConfig exec;
  exec.compile_expressions = false;
  QueryEngine engine(&s.catalog, "local", exec);
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kEngineQuery);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineInterpreted)->Args({50, 100});

void BM_EngineCompiled(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  StockGenConfig cfg;
  cfg.num_companies = static_cast<int>(state.range(0));
  cfg.num_dates = static_cast<int>(state.range(1));
  InstallStockS1(&s.catalog, "local", GenerateStockS1(cfg));
  ExecConfig exec;
  exec.compile_expressions = true;
  QueryEngine engine(&s.catalog, "local", exec);
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kEngineQuery);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineCompiled)->Args({50, 100});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

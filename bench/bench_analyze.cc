// Static-analyzer cost on the Fig. 6 integration catalog: the CI gate
// (scripts/run_experiments.sh) requires every BM_AnalyzeView case to stay
// under 5 ms per view — definition-time linting must be invisible next to
// materialization. Also measures the full LintSources sweep and the
// DefineView path (analysis + registration, no materialization).

#include <benchmark/benchmark.h>

#include "analyze/analyzer.h"
#include "integration/integration.h"
#include "relational/catalog.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kRelViewSql[] =
    "create view db1::C(date, price) as "
    "select D, P from db0::stock T, T.company C, T.date D, T.price P";

constexpr char kPivotViewSql[] =
    "create view db2::nyse(date, C) as "
    "select D, P from db0::stock T, T.exch E, T.company C, "
    "T.date D, T.price P where E = 'nyse'";

constexpr char kAggViewSql[] =
    "create view E::daily(date, C) as "
    "select D, avg(P) from db0::stock T, T.exch E, T.date D, T.price P, "
    "T.company C group by E, D, C";

struct Setup {
  Catalog catalog;
  std::shared_ptr<const CatalogSnapshot> snap;

  Setup() {
    StockGenConfig cfg;
    cfg.num_companies = 24;
    cfg.num_dates = 50;
    (void)InstallDb0(&catalog, "db0", cfg).ok();
    snap = catalog.Snapshot();
  }
};

void BM_AnalyzeView(benchmark::State& state, const char* sql) {
  Setup s;
  Analyzer analyzer(s.snap.get(), "db0");
  for (auto _ : state) {
    auto diags = analyzer.AnalyzeCreateView(sql);
    benchmark::DoNotOptimize(diags);
  }
}
BENCHMARK_CAPTURE(BM_AnalyzeView, relation_var, kRelViewSql);
BENCHMARK_CAPTURE(BM_AnalyzeView, attribute_pivot, kPivotViewSql);
BENCHMARK_CAPTURE(BM_AnalyzeView, aggregate, kAggViewSql);

void BM_AnalyzeQuery(benchmark::State& state) {
  Setup s;
  Analyzer analyzer(s.snap.get(), "db0");
  for (auto _ : state) {
    auto diags = analyzer.AnalyzeSelect(
        "select T.date, T.price from db0::stock T where T.company = 'co0'");
    benchmark::DoNotOptimize(diags);
  }
}
BENCHMARK(BM_AnalyzeQuery);

void BM_DefineView(benchmark::State& state) {
  Setup s;
  for (auto _ : state) {
    IntegrationSystem system(&s.catalog, "db0");
    auto defined = system.DefineView(kPivotViewSql);
    benchmark::DoNotOptimize(defined);
  }
}
BENCHMARK(BM_DefineView);

void BM_LintSources(benchmark::State& state) {
  Setup s;
  IntegrationSystem system(&s.catalog, "db0");
  (void)system.DefineView(kRelViewSql);
  (void)system.DefineView(kPivotViewSql);
  (void)system.DefineView(kAggViewSql);
  for (auto _ : state) {
    auto diags = system.LintSources();
    benchmark::DoNotOptimize(diags);
  }
}
BENCHMARK(BM_LintSources);

}  // namespace
}  // namespace dynview

BENCHMARK_MAIN();

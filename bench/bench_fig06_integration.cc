// Fig. 6 reproduction: end-to-end cost of answering integration queries
// through registered sources — rewrite + execute vs. direct evaluation on
// locally stored integration data, and the per-query overhead of the
// source-probing loop.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "integration/integration.h"
#include "schemasql/view_materializer.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kSourceSql[] =
    "create view s2::C(date, price) as "
    "select D, P from I::stock T, T.company C, T.date D, T.price P";

const char kQuery[] =
    "select C, P from I::stock T, T.company C, T.price P where P > 300";

struct Setup {
  Catalog catalog;
  std::unique_ptr<IntegrationSystem> system;

  Setup(int companies, int dates, bool virtual_integration) {
    StockGenConfig cfg;
    cfg.num_companies = companies;
    cfg.num_dates = dates;
    Table s1 = GenerateStockS1(cfg);
    if (virtual_integration) {
      // I is empty; data lives only under the source.
      (void)!catalog
          .PutTable("I", "stock",
                    Table(Schema({{"company", TypeKind::kString},
                                  {"date", TypeKind::kDate},
                                  {"price", TypeKind::kInt}})))
          .ok();
    } else {
      InstallStockS1(&catalog, "I", s1);
    }
    InstallStockS2(&catalog, "s2", s1);
    system = std::make_unique<IntegrationSystem>(&catalog, "I");
    system->RegisterSource(kSourceSql).value();
  }
};

void PrintReproduction() {
  std::printf("=== Fig. 6: answering integration queries from sources ===\n");
  Setup s(5, 10, /*virtual_integration=*/true);
  auto rewriting = s.system->Rewrite(kQuery, /*multiset=*/true);
  std::printf("query on I:  %s\n", kQuery);
  std::printf("rewritten:   %s\n",
              rewriting.value().query->ToString().c_str());
  auto answer = s.system->Answer(kQuery, true);
  std::printf("answered from the legacy source: %zu rows "
              "(I itself holds no data)\n\n",
              answer.value().num_rows());
}

void BM_AnswerThroughSource(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
          /*virtual_integration=*/true);
  for (auto _ : state) {
    auto r = s.system->Answer(kQuery, /*multiset=*/true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AnswerThroughSource)->Args({10, 100})->Args({50, 100});

void BM_AnswerFromLocalData(benchmark::State& state) {
  // No sources can answer faster than the local copy; this measures the
  // floor the rewriting competes with.
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
          /*virtual_integration=*/false);
  QueryEngine engine(&s.catalog, "I");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kQuery);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AnswerFromLocalData)->Args({10, 100})->Args({50, 100});

void BM_RewriteOnly(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), 10, true);
  for (auto _ : state) {
    auto r = s.system->Rewrite(kQuery, /*multiset=*/true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RewriteOnly)->Arg(10)->Arg(50);

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Schema evolution cost: the DDL transaction itself, the re-lint pass over
// registered dynamic-view definitions, and full propagation including
// re-materialization of affected fenced sources.
//
// Shape: the bare transaction is O(|rows|) for row-rewriting kinds (add /
// drop attribute) and O(1) for renames; re-lint is O(#sources × |def|) and
// independent of data size; re-materialization dominates at O(|base|) per
// affected fenced source — the same gap bench_maintenance measures from
// the data-evolution direction.

#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include <cstdio>

#include "evolve/evolution.h"
#include "integration/integration.h"
#include "relational/catalog.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kPartitionView[] =
    "create view s2x::C(date, price) as "
    "select D, P from I::stock T, T.company C, T.date D, T.price P";
constexpr char kPivotView[] =
    "create view s3x::stock(date, C) as "
    "select D, P from I::stock T, T.company C, T.date D, T.price P";

std::unique_ptr<Catalog> MakeCatalog(int companies, int dates) {
  auto catalog = std::make_unique<Catalog>();
  StockGenConfig cfg;
  cfg.num_companies = companies;
  cfg.num_dates = dates;
  InstallStockS1(catalog.get(), "I", GenerateStockS1(cfg));
  return catalog;
}

struct Bound {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<IntegrationSystem> system;
};

Bound MakeBound(int companies, int dates, int sources) {
  Bound b;
  b.catalog = MakeCatalog(companies, dates);
  b.system = std::make_unique<IntegrationSystem>(b.catalog.get(), "I");
  if (sources >= 1) {
    b.system->RegisterAndMaterializeSource(kPartitionView).value();
  }
  if (sources >= 2) {
    b.system->RegisterAndMaterializeSource(kPivotView).value();
  }
  return b;
}

void PrintReproduction() {
  std::printf("=== Evolution transaction and propagation ===\n");
  Bound b = MakeBound(10, 50, 2);
  SchemaEvolver evolver(b.catalog.get(), b.system.get());
  auto res = evolver.Apply(DdlOp::AddAttribute("I", "stock", "vol",
                                               Value::Int(0)));
  if (!res.ok()) {
    std::printf("evolution failed: %s\n", res.status().ToString().c_str());
    return;
  }
  std::printf(
      "add-attribute committed as v%llu: %zu sources affected, "
      "%zu rematerialized, %zu left stale, %zu lint findings\n\n",
      static_cast<unsigned long long>(res.value().version),
      res.value().sources_affected, res.value().rematerialized,
      res.value().left_stale, res.value().relint.size());
}

// The DDL transaction alone: no bound system, so no propagation at all.
// One iteration = one add + one drop so the schema is steady-state.
void BM_EvolveTxnAddDropAttribute(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1)));
  SchemaEvolver evolver(catalog.get());
  for (auto _ : state) {
    auto add = evolver.Apply(DdlOp::AddAttribute("I", "stock", "vol",
                                                 Value::Int(0)));
    benchmark::DoNotOptimize(add);
    auto drop = evolver.Apply(DdlOp::DropAttribute("I", "stock", "vol"));
    benchmark::DoNotOptimize(drop);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EvolveTxnAddDropAttribute)->Args({10, 100})->Args({50, 1000});

// Rename is O(1) in data size: rows move, nothing is rewritten.
void BM_EvolveTxnRenameRelation(benchmark::State& state) {
  auto catalog = MakeCatalog(10, static_cast<int>(state.range(0)));
  SchemaEvolver evolver(catalog.get());
  for (auto _ : state) {
    auto away = evolver.Apply(DdlOp::RenameRelation("I", "stock", "stockx"));
    benchmark::DoNotOptimize(away);
    auto back = evolver.Apply(DdlOp::RenameRelation("I", "stockx", "stock"));
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EvolveTxnRenameRelation)->Arg(100)->Arg(1000);

// Re-lint cost in isolation: propagation runs DV001..DV007 over the
// affected definitions but leaves materializations fenced instead of
// rebuilding them. range(2) = number of registered sources.
void BM_EvolveRelintOnly(benchmark::State& state) {
  Bound b = MakeBound(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)),
                      static_cast<int>(state.range(2)));
  SchemaEvolver evolver(b.catalog.get(), b.system.get());
  EvolveOptions opts;
  opts.relint = true;
  opts.rematerialize = false;
  size_t findings = 0;
  for (auto _ : state) {
    auto add = evolver.Apply(
        DdlOp::AddAttribute("I", "stock", "vol", Value::Int(0)), opts);
    benchmark::DoNotOptimize(add);
    if (add.ok()) findings += add.value().relint.size();
    auto drop =
        evolver.Apply(DdlOp::DropAttribute("I", "stock", "vol"), opts);
    benchmark::DoNotOptimize(drop);
  }
  state.counters["lint_findings"] =
      benchmark::Counter(static_cast<double>(findings));
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EvolveRelintOnly)->Args({10, 100, 1})->Args({10, 100, 2});

// Full propagation: every affected fenced materialization is rebuilt
// inside the evolution, so cost tracks O(|base|) like rematerialization.
void BM_EvolveWithRematerialization(benchmark::State& state) {
  Bound b = MakeBound(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)),
                      static_cast<int>(state.range(2)));
  SchemaEvolver evolver(b.catalog.get(), b.system.get());
  size_t remats = 0;
  size_t left_stale = 0;
  for (auto _ : state) {
    auto add = evolver.Apply(
        DdlOp::AddAttribute("I", "stock", "vol", Value::Int(0)));
    benchmark::DoNotOptimize(add);
    if (add.ok()) {
      remats += add.value().rematerialized;
      left_stale += add.value().left_stale;
    }
    auto drop = evolver.Apply(DdlOp::DropAttribute("I", "stock", "vol"));
    benchmark::DoNotOptimize(drop);
    if (drop.ok()) {
      remats += drop.value().rematerialized;
      left_stale += drop.value().left_stale;
    }
  }
  state.counters["remats"] = benchmark::Counter(static_cast<double>(remats));
  state.counters["left_stale"] =
      benchmark::Counter(static_cast<double>(left_stale));
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EvolveWithRematerialization)
    ->Args({10, 100, 1})
    ->Args({10, 100, 2})
    ->Args({50, 1000, 2});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  dynview::PrintReproduction();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Fig. 11 reproduction: Q1 ("companies closing over 200 on consecutive
// days") rewritten onto the relation-variable view db1 by Alg. 5.1 — the
// paper's Q1' — with equivalence verified and direct-vs-rewritten timings.
//
// Paper claim: relation-variable views are information-capacity preserving
// (Sec. 4.2), so Q1' is fully (bag-)equivalent to Q1 and the legacy layout
// can transparently answer integration queries.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/translate.h"
#include "engine/query_engine.h"
#include "schemasql/view_materializer.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kViewSql[] =
    "create view db1::C(date, price) as "
    "select D, P from db0::stock T, T.company C, T.date D, T.price P";

const char kQ1[] =
    "select C1 from db0::stock T1, db0::stock T2, "
    "T1.company C1, T2.company C2, T1.date D1, T2.date D2, "
    "T1.price P1, T2.price P2 "
    "where D1 = D2 + 1 and P1 > 200 and P2 > 200 and C1 = C2";

struct Setup {
  Catalog catalog;
  std::unique_ptr<SelectStmt> rewritten;

  explicit Setup(int companies, int dates) {
    StockGenConfig cfg;
    cfg.num_companies = companies;
    cfg.num_dates = dates;
    InstallDb0(&catalog, "db0", cfg);
    QueryEngine engine(&catalog, "db0");
    ViewMaterializer::MaterializeSql(kViewSql, &engine, &catalog, "db1")
        .value();
    ViewDefinition view =
        ViewDefinition::FromSql(kViewSql, catalog, "db0").value();
    QueryTranslator translator(&catalog, "db0");
    rewritten =
        std::move(translator.TranslateSqlAll(view, kQ1, true).value().query);
  }
};

void PrintReproduction() {
  std::printf("=== Fig. 11: Q1 -> Q1' through a relation-variable view ===\n");
  Setup s(5, 10);
  std::printf("Q1:  %s\n\n", kQ1);
  std::printf("Q1': %s\n\n", s.rewritten->ToString().c_str());
  QueryEngine engine(&s.catalog, "db0");
  Table direct = engine.ExecuteSql(kQ1).value();
  std::unique_ptr<SelectStmt> copy = s.rewritten->Clone();
  Table rewritten = engine.Execute(copy.get()).value();
  std::printf("bag-equivalent: %s (%zu rows)\n\n",
              direct.BagEquals(rewritten) ? "yes" : "NO", direct.num_rows());
}

void BM_Q1Direct(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  QueryEngine engine(&s.catalog, "db0");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kQ1);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Q1Direct)->Args({5, 50})->Args({20, 50})->Args({20, 200});

void BM_Q1Rewritten(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  QueryEngine engine(&s.catalog, "db0");
  for (auto _ : state) {
    std::unique_ptr<SelectStmt> copy = s.rewritten->Clone();
    auto r = engine.Execute(copy.get());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Q1Rewritten)->Args({5, 50})->Args({20, 50})->Args({20, 200});

// Rewriting overhead alone: the "minimal extension" cost of Sec. 6.
void BM_Q1TranslationOnly(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), 20);
  ViewDefinition view =
      ViewDefinition::FromSql(kViewSql, s.catalog, "db0").value();
  QueryTranslator translator(&s.catalog, "db0");
  for (auto _ : state) {
    auto r = translator.TranslateSqlAll(view, kQ1, true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Q1TranslationOnly)->Args({5, 0})->Args({50, 0});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Reader cost of the versioned catalog (MVCC-lite): snapshot acquisition,
// reads through a pinned snapshot vs. a fresh snapshot per access, writer
// commit cost, and — the headline number — query throughput while a writer
// thread commits continuously. Writers never block readers, so the
// under-mutation trajectory must track the quiescent one; the gate in
// scripts/run_experiments.sh reads BENCH_concurrency.json and warns above
// 2% reader overhead, fails above 10%.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "engine/query_engine.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

// Fan-out over s2 — the mutator churns an unrelated database, so the work a
// reader does is identical in both modes; only the head pointer moves.
const char kFanOut[] =
    "select R, D, P from s2 -> R, R T, T.date D, T.price P";

void InstallWorkload(Catalog* catalog) {
  StockGenConfig cfg;
  cfg.num_companies = 10;
  cfg.num_dates = 50;
  Table s1 = GenerateStockS1(cfg);
  InstallStockS1(catalog, "I", s1).ToString();
  InstallStockS2(catalog, "s2", s1).ToString();
}

Table ChurnTable(int i) {
  Table t(Schema({{"v", TypeKind::kInt}}));
  t.AppendRowUnchecked({Value::Int(i)});
  return t;
}

// Overwrites w::churn in place each commit: constant catalog size, so the
// bench isolates commit/publish cost from data growth.
uint64_t ChurnOnce(Catalog* catalog, int i) {
  auto v = catalog->Mutate([&](CatalogTxn& txn) -> Status {
    Database* db = txn.GetOrCreateDatabase("w");
    db->PutTable("churn", ChurnTable(i));
    return Status::OK();
  });
  return v.ok() ? v.value() : 0;
}

void PrintReproduction() {
  std::printf("=== Versioned catalog: readers vs. writers ===\n");
  Catalog catalog;
  InstallWorkload(&catalog);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ChurnOnce(&catalog, i++);
      commits.fetch_add(1, std::memory_order_relaxed);
    }
  });
  QueryEngine engine(&catalog, "s2");
  size_t rows = 0;
  uint64_t first = catalog.version();
  for (int q = 0; q < 50; ++q) {
    rows = engine.ExecuteSql(kFanOut).value().num_rows();
  }
  uint64_t last = catalog.version();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  std::printf(
      "50 fan-out queries answered (%zu rows each) while the writer "
      "published %llu versions (v%llu -> v%llu); no query blocked or "
      "failed.\n\n",
      rows, static_cast<unsigned long long>(commits.load()),
      static_cast<unsigned long long>(first),
      static_cast<unsigned long long>(last));
}

void BM_SnapshotAcquire(benchmark::State& state) {
  Catalog catalog;
  InstallWorkload(&catalog);
  for (auto _ : state) {
    auto snap = catalog.Snapshot();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_SnapshotAcquire);

void BM_ResolveViaPinnedSnapshot(benchmark::State& state) {
  Catalog catalog;
  InstallWorkload(&catalog);
  auto snap = catalog.Snapshot();
  for (auto _ : state) {
    auto t = snap->ResolveTable("s2", "coa");
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ResolveViaPinnedSnapshot);

void BM_ResolveFreshSnapshotPerRead(benchmark::State& state) {
  Catalog catalog;
  InstallWorkload(&catalog);
  for (auto _ : state) {
    auto t = catalog.ResolveTable("s2", "coa");
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ResolveFreshSnapshotPerRead);

void BM_MutateCommit(benchmark::State& state) {
  Catalog catalog;
  InstallWorkload(&catalog);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChurnOnce(&catalog, i++));
  }
}
BENCHMARK(BM_MutateCommit);

void BM_FanOutQuiescent(benchmark::State& state) {
  Catalog catalog;
  InstallWorkload(&catalog);
  QueryEngine engine(&catalog, "s2");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kFanOut);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FanOutQuiescent);

void BM_FanOutUnderMutation(benchmark::State& state) {
  Catalog catalog;
  InstallWorkload(&catalog);
  QueryEngine engine(&catalog, "s2");
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ChurnOnce(&catalog, i++);
      commits.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kFanOut);
    benchmark::DoNotOptimize(r);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  state.counters["commits"] =
      benchmark::Counter(static_cast<double>(commits.load()));
}
BENCHMARK(BM_FanOutUnderMutation);

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

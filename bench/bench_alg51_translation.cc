// Alg. 5.1 / Thm. 5.2 reproduction at scale: the cost of deciding view
// usability and producing the rewriting, as a function of query size
// (number of joins) and of the number of candidate views.
//
// Paper claim (Sec. 6): dynamic views integrate with "minimal extensions"
// to a query engine — the higher-order analysis happens once per query at
// rewrite time. The benchmark confirms the usability check + translation
// run in microseconds-to-milliseconds, orders of magnitude below typical
// execution cost.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/normalize.h"
#include "core/translate.h"
#include "core/usability.h"
#include "engine/query_engine.h"
#include "sql/parser.h"
#include "schemasql/view_materializer.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kViewSql[] =
    "create view db1::C(date, price) as "
    "select D, P from db0::stock T, T.company C, T.date D, T.price P";

/// A chain query joining `k` copies of stock on consecutive dates.
std::string ChainQuery(int k) {
  std::string from = "db0::stock T0, T0.company C0, T0.date D0, T0.price P0";
  std::string where = "P0 > 100";
  for (int i = 1; i < k; ++i) {
    std::string n = std::to_string(i);
    std::string p = std::to_string(i - 1);
    from += ", db0::stock T" + n + ", T" + n + ".company C" + n + ", T" + n +
            ".date D" + n + ", T" + n + ".price P" + n;
    where += " and C" + n + " = C" + p + " and D" + n + " = D" + p + " + 1" +
             " and P" + n + " > 100";
  }
  return "select C0 from " + from + " where " + where;
}

void PrintReproduction() {
  std::printf("=== Alg. 5.1: translation cost and output ===\n");
  Catalog catalog;
  StockGenConfig cfg;
  InstallDb0(&catalog, "db0", cfg);
  QueryEngine engine(&catalog, "db0");
  ViewMaterializer::MaterializeSql(kViewSql, &engine, &catalog, "db1").value();
  ViewDefinition view = ViewDefinition::FromSql(kViewSql, catalog, "db0").value();
  QueryTranslator translator(&catalog, "db0");
  for (int k : {1, 2, 3}) {
    auto t = translator.TranslateSqlAll(view, ChainQuery(k), true);
    std::printf("%d-way chain: covered %zu occurrences, absorbed %zu, "
                "residual %zu conjuncts\n",
                k, t.value().covered_tuple_vars.size(),
                t.value().absorbed_conjuncts, t.value().residual_conjuncts);
  }
  std::printf("\n");
}

struct Setup {
  Catalog catalog;
  std::unique_ptr<ViewDefinition> view;

  Setup() {
    StockGenConfig cfg;
    InstallDb0(&catalog, "db0", cfg);
    QueryEngine engine(&catalog, "db0");
    ViewMaterializer::MaterializeSql(kViewSql, &engine, &catalog, "db1")
        .value();
    view = std::make_unique<ViewDefinition>(
        ViewDefinition::FromSql(kViewSql, catalog, "db0").value());
  }
};

void BM_UsabilityCheck(benchmark::State& state) {
  Setup s;
  std::string q = ChainQuery(static_cast<int>(state.range(0)));
  UsabilityChecker checker(&s.catalog, "db0");
  for (auto _ : state) {
    auto r = checker.CheckSql(*s.view, q, /*multiset=*/true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_UsabilityCheck)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_FullTranslation(benchmark::State& state) {
  Setup s;
  std::string q = ChainQuery(static_cast<int>(state.range(0)));
  QueryTranslator translator(&s.catalog, "db0");
  for (auto _ : state) {
    auto r = translator.TranslateSqlAll(*s.view, q, /*multiset=*/true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullTranslation)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_ParseAndNormalizeOnly(benchmark::State& state) {
  Setup s;
  std::string q = ChainQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto stmt = Parser::ParseSelect(q);
    auto bq = NormalizeQuery(stmt.value().get(), s.catalog, "db0");
    benchmark::DoNotOptimize(bq);
  }
}
BENCHMARK(BM_ParseAndNormalizeOnly)->Arg(1)->Arg(4)->Arg(6);

// Scaling in the number of candidate views: the integration layer tries
// sources in order; cost grows linearly with rejected candidates.
void BM_RejectionCost(benchmark::State& state) {
  Setup s;
  // A query the view cannot answer (needs exch, which it projects out).
  const std::string q =
      "select E from db0::stock T, T.exch E where T.price > 100";
  UsabilityChecker checker(&s.catalog, "db0");
  int copies = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < copies; ++i) {
      auto r = checker.CheckSql(*s.view, q, /*multiset=*/true);
      benchmark::DoNotOptimize(r);
    }
  }
}
BENCHMARK(BM_RejectionCost)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Query-guard overhead on the paper's workloads: the Fig. 11 Q1 self-join
// and the Fig. 13 Q2 federation join, each evaluated unguarded (null
// QueryContext — the fast path every pre-guard caller gets) and guarded
// with generous limits (deadline + row/byte budgets armed but never
// tripping). The difference is the steady-state cost of deadline checks,
// cancellation polls, and budget accounting; target ≤ 2%.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <memory>

#include "common/query_context.h"
#include "engine/query_engine.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

const char kQ1[] =
    "select C1 from db0::stock T1, db0::stock T2, "
    "T1.company C1, T2.company C2, T1.date D1, T2.date D2, "
    "T1.price P1, T2.price P2 "
    "where D1 = D2 + 1 and P1 > 200 and P2 > 200 and C1 = C2";

const char kQ2[] =
    "select C1, D1, P1 from db0::stock T1, T1.date D1, T1.company C1, "
    "T1.price P1, T1.exch E1, db0::cotype T2, T2.co C2, T2.type Y1 "
    "where E1 = 'nyse' and C1 = C2 and Y1 = 'hitech'";

// Higher-order fan-out over the s2 layout: guards are also checked per
// grounding, so this exercises the enforcement point the join queries miss.
const char kFanOut[] = "select R, D, P from s2 -> R, R T, T.date D, T.price P";


/// DYNVIEW_DISABLE_TRACE=1 turns the observability gate off so the two
/// BENCH_guards.json variants can be diffed (no observer is attached here,
/// so both modes must be within noise).
ExecConfig GuardsExec() {
  ExecConfig exec;
  exec.enable_trace = std::getenv("DYNVIEW_DISABLE_TRACE") == nullptr;
  return exec;
}

/// Limits far above what the workloads produce: every check runs, none trips.
QueryGuards GenerousGuards() {
  QueryGuards g;
  g.deadline_ms = 60 * 60 * 1000;
  g.row_budget = 1ull << 40;
  g.byte_budget = 1ull << 50;
  return g;
}

struct Setup {
  Catalog catalog;

  Setup(int companies, int dates) {
    StockGenConfig cfg;
    cfg.num_companies = companies;
    cfg.num_dates = dates;
    InstallDb0(&catalog, "db0", cfg);
    InstallStockS2(&catalog, "s2", GenerateStockS1(cfg));
  }
};

void RunQuery(QueryEngine* engine, const char* sql, bool guarded) {
  std::unique_ptr<QueryContext> qc;
  if (guarded) {
    qc = std::make_unique<QueryContext>(GenerousGuards());
    engine->set_query_context(qc.get());
  }
  auto r = engine->ExecuteSql(sql);
  benchmark::DoNotOptimize(r);
  engine->set_query_context(nullptr);
}

void PrintOverheadPreamble() {
  std::printf("=== Query-guard overhead (unguarded vs armed-but-idle) ===\n");
  struct Case {
    const char* name;
    const char* sql;
    const char* db;
  };
  const Case cases[] = {
      {"Q1 (Fig. 11 self-join)", kQ1, "db0"},
      {"Q2 (Fig. 13 federation join)", kQ2, "db0"},
      {"fan-out (s2 -> R)", kFanOut, "s2"},
  };
  Setup s(20, 100);
  for (const Case& c : cases) {
    QueryEngine engine(&s.catalog, c.db, GuardsExec());
    // Warm-up, then alternate modes to cancel drift; report best-of-N per
    // mode (minimum suppresses scheduler noise, which on a small machine
    // dwarfs the per-check cost being measured).
    RunQuery(&engine, c.sql, false);
    RunQuery(&engine, c.sql, true);
    double best[2] = {1e30, 1e30};
    const int kReps = 25;
    for (int rep = 0; rep < kReps; ++rep) {
      for (int guarded = 0; guarded < 2; ++guarded) {
        auto t0 = std::chrono::steady_clock::now();
        RunQuery(&engine, c.sql, guarded == 1);
        double dt =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        if (dt < best[guarded]) best[guarded] = dt;
      }
    }
    double overhead = (best[1] - best[0]) / best[0] * 100.0;
    std::printf("%-30s unguarded %8.3f ms  guarded %8.3f ms  overhead %+.2f%%\n",
                c.name, best[0] * 1e3, best[1] * 1e3, overhead);
  }
  std::printf("\n");
}

void BM_Q1(benchmark::State& state) {
  Setup s(20, 100);
  QueryEngine engine(&s.catalog, "db0", GuardsExec());
  const bool guarded = state.range(0) != 0;
  for (auto _ : state) RunQuery(&engine, kQ1, guarded);
}
BENCHMARK(BM_Q1)->Arg(0)->Arg(1)->ArgNames({"guarded"});

void BM_Q2(benchmark::State& state) {
  Setup s(20, 100);
  QueryEngine engine(&s.catalog, "db0", GuardsExec());
  const bool guarded = state.range(0) != 0;
  for (auto _ : state) RunQuery(&engine, kQ2, guarded);
}
BENCHMARK(BM_Q2)->Arg(0)->Arg(1)->ArgNames({"guarded"});

void BM_FanOut(benchmark::State& state) {
  Setup s(20, 100);
  QueryEngine engine(&s.catalog, "s2", GuardsExec());
  const bool guarded = state.range(0) != 0;
  for (auto _ : state) RunQuery(&engine, kFanOut, guarded);
}
BENCHMARK(BM_FanOut)->Arg(0)->Arg(1)->ArgNames({"guarded"});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintOverheadPreamble();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

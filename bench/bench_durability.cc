// Durability cost and recovery speed: snapshot encode/write/load
// throughput, per-commit WAL append cost (with and without fsync), and
// full recovery time as a function of WAL length. Every recovery run
// re-checks the crash-consistency oracle (exact head version + byte
// identity of the recovered table) and reports it as the `recovery_ok`
// counter — run_experiments.sh gates on it.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "relational/catalog.h"
#include "relational/csv.h"
#include "storage/durable_catalog.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

int dir_counter = 0;

/// A fresh scratch directory per benchmark setup (removed on destruction).
struct ScratchDir {
  std::string path;
  ScratchDir() {
    path = "/tmp/dynview_bench_durable_" + std::to_string(::getpid()) + "_" +
           std::to_string(dir_counter++);
    std::string cmd = "rm -rf '" + path + "' && mkdir -p '" + path + "'";
    (void)!std::system(cmd.c_str());
  }
  ~ScratchDir() {
    std::string cmd = "rm -rf '" + path + "'";
    (void)!std::system(cmd.c_str());
  }
};

/// A federation-shaped snapshot image: `companies` stock relations of
/// `dates` rows each under one database.
SnapshotData MakeSnapshot(int companies, int dates) {
  StockGenConfig cfg;
  cfg.num_companies = companies;
  cfg.num_dates = dates;
  Catalog catalog;
  InstallStockS2(&catalog, "s2", GenerateStockS1(cfg));
  SnapshotData data;
  data.catalog_version = catalog.version();
  for (const std::string& name : catalog.DatabaseNames()) {
    RecoveredDatabase rd;
    rd.name = name;
    rd.version = catalog.version();
    rd.db = *catalog.GetDatabase(name).value();
    data.databases.push_back(std::move(rd));
  }
  return data;
}

void BM_SnapshotEncode(benchmark::State& state) {
  SnapshotData data = MakeSnapshot(static_cast<int>(state.range(0)), 250);
  std::string image;
  for (auto _ : state) {
    image.clear();
    EncodeSnapshotImage(data, &image);
    benchmark::DoNotOptimize(image.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.size()));
}
BENCHMARK(BM_SnapshotEncode)->Arg(10)->Arg(100);

void BM_SnapshotWrite(benchmark::State& state) {
  ScratchDir dir;
  SnapshotData data = MakeSnapshot(static_cast<int>(state.range(0)), 250);
  std::string image;
  EncodeSnapshotImage(data, &image);
  std::string path = dir.path + "/" + SnapshotFileName(data.catalog_version);
  for (auto _ : state) {
    Status st = WriteSnapshotFile(data, path);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.size()));
}
BENCHMARK(BM_SnapshotWrite)->Arg(10)->Arg(100);

void BM_SnapshotLoad(benchmark::State& state) {
  ScratchDir dir;
  SnapshotData data = MakeSnapshot(static_cast<int>(state.range(0)), 250);
  std::string path = dir.path + "/" + SnapshotFileName(data.catalog_version);
  (void)!WriteSnapshotFile(data, path).ok();
  std::string image;
  EncodeSnapshotImage(data, &image);
  for (auto _ : state) {
    auto r = ReadSnapshotFile(path);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.size()));
}
BENCHMARK(BM_SnapshotLoad)->Arg(10)->Arg(100);

/// One deterministic single-table commit (the WAL payload is one small
/// table; arg toggles fsync-per-append — the durability contract vs the
/// raw append path).
void BM_WalAppendCommit(benchmark::State& state) {
  ScratchDir dir;
  Catalog catalog;
  auto wal = WalWriter::Open(dir.path + "/wal.log", state.range(0) != 0);
  if (!wal.ok()) {
    state.SkipWithError(wal.status().ToString().c_str());
    return;
  }
  catalog.SetCommitSink(wal.value().get());
  Table t(Schema({{"k", TypeKind::kInt}, {"v", TypeKind::kString}}));
  t.AppendRowUnchecked({Value::Int(1), Value::String("payload")});
  for (auto _ : state) {
    Status st = catalog.PutTable("bench", "t", t);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  catalog.SetCommitSink(nullptr);
  state.counters["wal_bytes"] =
      static_cast<double>(wal.value()->bytes_written());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WalAppendCommit)->Arg(0)->Arg(1);

/// Full recovery from a WAL of `n` commit records (no snapshot), with the
/// crash-consistency oracle checked on every iteration: recovered head ==
/// pre-crash head and the recovered table is byte-identical.
void BM_Recover(benchmark::State& state) {
  ScratchDir dir;
  Catalog catalog;
  {
    auto wal = WalWriter::Open(dir.path + "/wal.log", /*fsync_each=*/false);
    if (!wal.ok()) {
      state.SkipWithError(wal.status().ToString().c_str());
      return;
    }
    catalog.SetCommitSink(wal.value().get());
    for (int i = 0; i < state.range(0); ++i) {
      Table t(Schema({{"k", TypeKind::kInt}}));
      for (int j = 0; j <= i % 32; ++j) t.AppendRowUnchecked({Value::Int(j)});
      (void)!catalog.PutTable("bench", "t" + std::to_string(i % 8),
                              std::move(t))
          .ok();
    }
    catalog.SetCommitSink(nullptr);
  }
  std::string expect_csv =
      TableToCsvTyped(*catalog.ResolveTable("bench", "t0").value());
  bool all_ok = true;
  for (auto _ : state) {
    Catalog recovered;
    RecoveryReport report;
    Status st = recovered.Recover(dir.path, &report);
    bool ok = st.ok() && report.head_version == catalog.version() &&
              !report.torn_tail &&
              TableToCsvTyped(*recovered.ResolveTable("bench", "t0").value()) ==
                  expect_csv;
    all_ok = all_ok && ok;
    benchmark::DoNotOptimize(recovered);
  }
  state.counters["recovery_ok"] = all_ok ? 1.0 : 0.0;
  state.counters["replayed_records"] = static_cast<double>(state.range(0));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Recover)->Arg(64)->Arg(512)->Arg(2048);

/// Checkpoint-then-recover: how much a snapshot shortens recovery of the
/// same history (same 512-commit history as BM_Recover/512, snapshotted).
void BM_RecoverFromCheckpoint(benchmark::State& state) {
  ScratchDir dir;
  Catalog catalog;
  {
    auto durable = DurableCatalog::Open(&catalog, dir.path, {false}, {});
    if (!durable.ok()) {
      state.SkipWithError(durable.status().ToString().c_str());
      return;
    }
    for (int i = 0; i < 512; ++i) {
      Table t(Schema({{"k", TypeKind::kInt}}));
      for (int j = 0; j <= i % 32; ++j) t.AppendRowUnchecked({Value::Int(j)});
      (void)!catalog.PutTable("bench", "t" + std::to_string(i % 8),
                              std::move(t))
          .ok();
    }
    (void)!durable.value()->Close().ok();
  }
  bool all_ok = true;
  for (auto _ : state) {
    Catalog recovered;
    RecoveryReport report;
    Status st = recovered.Recover(dir.path, &report);
    all_ok = all_ok && st.ok() && report.recovered_snapshot &&
             report.head_version == catalog.version();
    benchmark::DoNotOptimize(recovered);
  }
  state.counters["recovery_ok"] = all_ok ? 1.0 : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RecoverFromCheckpoint);

void PrintReproduction() {
  std::printf("=== Durable catalog: WAL + snapshot crash recovery ===\n");
  ScratchDir dir;
  Catalog catalog;
  auto durable = DurableCatalog::Open(&catalog, dir.path, {}, {});
  if (!durable.ok()) return;
  StockGenConfig cfg;
  InstallStockS2(&catalog, "s2", GenerateStockS1(cfg));
  uint64_t head = catalog.version();
  std::printf("pre-crash head:   v%llu (%zu databases)\n",
              static_cast<unsigned long long>(head), catalog.num_databases());
  // Crash without a clean close: recovery must replay the WAL records the
  // initial (empty) checkpoint did not cover.
  (void)!durable.value()->Close().ok();
  durable.value().reset();
  Catalog recovered;
  RecoveryReport report;
  Status st = recovered.Recover(dir.path, &report);
  std::printf("recovery:         %s\n", st.ToString().c_str());
  std::printf("recovered head:   v%llu (snapshot v%llu + %llu replayed)\n",
              static_cast<unsigned long long>(report.head_version),
              static_cast<unsigned long long>(report.snapshot_version),
              static_cast<unsigned long long>(report.replayed_records));
  std::printf("oracle:           head %s, torn_tail=%d\n\n",
              report.head_version == head ? "EXACT" : "MISMATCH",
              report.torn_tail ? 1 : 0);
}

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

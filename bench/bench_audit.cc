// Workload-auditor cost on a deliberately containment-heavy workload: the CI
// gate (scripts/run_experiments.sh) requires the full 20-view audit to stay
// under 50 ms and the per-view-pair containment check under 2 ms — the audit
// is a static tool and must stay interactive at workload scale. Also
// measures the what-if blast-radius path, which adds a scratch-catalog
// rebuild on top of the per-source re-lint.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "analyze/audit.h"
#include "evolve/evolution.h"
#include "integration/integration.h"
#include "relational/catalog.h"

namespace dynview {
namespace {

Table BaseTable(size_t rows) {
  Table t(Schema({{"id", TypeKind::kInt},
                  {"cat", TypeKind::kString},
                  {"val", TypeKind::kInt}}));
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRowUnchecked({Value::Int(static_cast<int64_t>(i)),
                          Value::String(i % 2 == 0 ? "a" : "b"),
                          Value::Int(static_cast<int64_t>(i * 7 % 100))});
  }
  return t;
}

/// `num_views` selection views over one base table, all pairwise comparable
/// (same header shape, same body tables) with nested predicate ranges — the
/// worst case for the pairwise containment sweep: every pair reaches the
/// prover, and many of them genuinely subsume.
struct Setup {
  Catalog catalog;
  std::unique_ptr<IntegrationSystem> system;

  explicit Setup(int num_views) {
    (void)catalog.PutTable("I", "base0", BaseTable(256));
    system = std::make_unique<IntegrationSystem>(&catalog, "I");
    for (int i = 0; i < num_views; ++i) {
      std::string sql = "create view v" + std::to_string(i) +
                        "::base0(id) as select A from I::base0 T, T.id A, "
                        "T.val V where V < " + std::to_string(100 + i);
      (void)system->RegisterAndMaterializeSource(sql);
    }
  }
};

void BM_AuditWorkload(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    AuditReport report = s.system->AuditWorkload();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_AuditWorkload)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_AuditPair(benchmark::State& state) {
  // Two comparable views: exactly one pair, both containment directions.
  Setup s(2);
  for (auto _ : state) {
    AuditReport report = s.system->AuditWorkload();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_AuditPair)->Unit(benchmark::kMillisecond);

void BM_WhatIfBlastRadius(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  DdlOp op = DdlOp::AddAttribute("I", "base0", "extra");
  for (auto _ : state) {
    WhatIfReport report = s.system->WhatIfAudit(op);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_WhatIfBlastRadius)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dynview

BENCHMARK_MAIN();

// Parallel execution substrate: grounding fan-out and partitioned hash-join
// scaling at 1/2/4/8 threads. The preamble measures the fan-out query at
// each thread count and prints speedup vs `num_threads = 1` (the serial
// engine); results are bag-identical at every thread count, so the figures
// below are pure-performance trajectories. On a single-core host the
// speedups collapse to ~1×; run on multi-core hardware for the scaling
// curve.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/thread_pool.h"
#include "engine/operators.h"
#include "engine/query_engine.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

// 48 relations of `num_dates` rows each: a wide grounding fan-out (one
// first-order query per company relation).
constexpr char kFanOutSql[] =
    "select R, D, P from s2 -> R, R T, T.date D, T.price P";

struct Setup {
  Catalog catalog;

  explicit Setup(int companies, int dates) {
    StockGenConfig cfg;
    cfg.num_companies = companies;
    cfg.num_dates = dates;
    Table s1 = GenerateStockS1(cfg);
    InstallStockS1(&catalog, "s1", s1).ok();
    InstallStockS2(&catalog, "s2", s1).ok();
  }
};

ExecConfig ThreadsConfig(int threads) {
  ExecConfig exec;
  exec.num_threads = static_cast<size_t>(threads);
  // DYNVIEW_DISABLE_TRACE=1 turns the observability gate off so the two
  // BENCH_parallel.json variants can be diffed (they must be within noise:
  // with no observer attached, enable_trace costs one null check).
  exec.enable_trace = std::getenv("DYNVIEW_DISABLE_TRACE") == nullptr;
  return exec;
}

/// Two `rows`-row tables joined on a shared integer key (~4 matches per
/// probe row), large enough to engage the partitioned build/probe.
struct JoinSetup {
  Table left;
  Table right;

  explicit JoinSetup(int rows)
      : left(Schema({Column("id", TypeKind::kInt),
                     Column("lpay", TypeKind::kInt)})),
        right(Schema({Column("id", TypeKind::kInt),
                      Column("rpay", TypeKind::kInt)})) {
    left.Reserve(rows);
    right.Reserve(rows);
    for (int i = 0; i < rows; ++i) {
      left.AppendRowUnchecked(
          {Value::Int(i % (rows / 4)), Value::Int(i)});
      right.AppendRowUnchecked(
          {Value::Int(i % (rows / 4)), Value::Int(-i)});
    }
  }
};

void PrintReproduction() {
  std::printf("=== Parallel grounding execution: speedup vs serial ===\n");
  Setup s(48, 400);
  std::printf("query: %s  (48 groundings x 400 rows)\n", kFanOutSql);
  double serial_ms = 0;
  for (int threads : {1, 2, 4, 8}) {
    QueryEngine engine(&s.catalog, "s2", ThreadsConfig(threads));
    // Warm up once (creates the pool, faults in the data), then time.
    engine.ExecuteSql(kFanOutSql).ok();
    constexpr int kReps = 5;
    auto t0 = std::chrono::steady_clock::now();
    size_t rows = 0;
    for (int r = 0; r < kReps; ++r) {
      rows = engine.ExecuteSql(kFanOutSql).value().num_rows();
    }
    auto t1 = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / kReps;
    if (threads == 1) serial_ms = ms;
    std::printf("  threads=%d  %8.2f ms/query  speedup %.2fx  (%zu rows)\n",
                threads, ms, serial_ms / ms, rows);
  }
  std::printf("\n");
}

void BM_GroundingFanOut(benchmark::State& state) {
  Setup s(48, 400);
  QueryEngine engine(&s.catalog, "s2",
                     ThreadsConfig(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kFanOutSql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GroundingFanOut)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_PartitionedHashJoin(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  JoinSetup s(200000);
  std::unique_ptr<ThreadPool> pool;
  ExecContext ctx;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads - 1));
    ctx.pool = pool.get();
  }
  const std::vector<int> keys{0};
  for (auto _ : state) {
    auto r = HashJoin(s.left, s.right, keys, keys, ctx);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PartitionedHashJoin)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Morsel-driven scan+filter through the engine: one big base table, a
// selective pushdown predicate.
void BM_MorselScanFilter(benchmark::State& state) {
  Setup s(200, 1000);  // 200k-row s1.
  QueryEngine engine(&s.catalog, "s1",
                     ThreadsConfig(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto r = engine.ExecuteSql(
        "select * from s1::stock T where T.price > 350");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MorselScanFilter)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Fig. 5 reproduction: dynamic views v4 (horizontal partition into a
// data-dependent set of relations) and v5 (pivot into a data-dependent set
// of attributes), plus materialization throughput at scale.
//
// Paper claim (Sec. 3.1): a single dynamic view defines a SET of tables;
// v5's semantics is a full outer join with cross products on duplicates.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "engine/query_engine.h"
#include "schemasql/view_materializer.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kV4[] =
    "create view out::C(date, price) as "
    "select D, P from s1::stock T, T.company C, T.date D, T.price P";
constexpr char kV5[] =
    "create view out::stock(date, C) as "
    "select D, P from s1::stock T, T.company C, T.date D, T.price P";

void PrintReproduction() {
  std::printf("=== Fig. 5: views with data-dependent output schemas ===\n");
  Catalog catalog;
  StockGenConfig cfg;
  cfg.num_companies = 3;
  cfg.num_dates = 3;
  InstallStockS1(&catalog, "s1", GenerateStockS1(cfg));
  QueryEngine engine(&catalog, "s1");
  Catalog out4, out5;
  auto v4 = ViewMaterializer::MaterializeSql(kV4, &engine, &out4, "out");
  std::printf("v4 -> %zu relations:", v4.value().size());
  for (const auto& [db, rel] : v4.value()) std::printf(" %s", rel.c_str());
  std::printf("\n");
  auto v5 = ViewMaterializer::MaterializeSql(kV5, &engine, &out5, "out");
  const Table* pivoted = out5.ResolveTable("out", "stock").value();
  std::printf("v5 -> 1 relation with %zu attributes: %s\n\n",
              pivoted->schema().num_columns(),
              pivoted->schema().ToString().c_str());
  // Sec. 3.1 cross-product semantics.
  Catalog dupcat;
  StockGenConfig dup = cfg;
  dup.num_companies = 2;
  dup.num_dates = 1;
  dup.prices_per_day = 3;
  InstallStockS1(&dupcat, "s1", GenerateStockS1(dup));
  QueryEngine dupeng(&dupcat, "s1");
  Catalog dupout;
  ViewMaterializer::MaterializeSql(kV5, &dupeng, &dupout, "out").value();
  std::printf("3 prices x 3 prices on one date pivot to %zu tuples "
              "(cross product, Sec. 3.1)\n\n",
              dupout.ResolveTable("out", "stock").value()->num_rows());
}

void BM_MaterializeV4(benchmark::State& state) {
  Catalog catalog;
  StockGenConfig cfg;
  cfg.num_companies = static_cast<int>(state.range(0));
  cfg.num_dates = static_cast<int>(state.range(1));
  Table s1 = GenerateStockS1(cfg);
  InstallStockS1(&catalog, "s1", s1);
  QueryEngine engine(&catalog, "s1");
  for (auto _ : state) {
    Catalog target;
    auto r = ViewMaterializer::MaterializeSql(kV4, &engine, &target, "out");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * s1.num_rows());
}
BENCHMARK(BM_MaterializeV4)->Args({10, 100})->Args({100, 100})->Args({100, 500});

void BM_MaterializeV5(benchmark::State& state) {
  Catalog catalog;
  StockGenConfig cfg;
  cfg.num_companies = static_cast<int>(state.range(0));
  cfg.num_dates = static_cast<int>(state.range(1));
  Table s1 = GenerateStockS1(cfg);
  InstallStockS1(&catalog, "s1", s1);
  QueryEngine engine(&catalog, "s1");
  for (auto _ : state) {
    Catalog target;
    auto r = ViewMaterializer::MaterializeSql(kV5, &engine, &target, "out");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * s1.num_rows());
}
BENCHMARK(BM_MaterializeV5)->Args({10, 100})->Args({50, 100})->Args({50, 500});

// Evaluating the inverse direction: unfolding the partitioned layout back
// into first-order form with a relation-variable query (Fig. 2 v2).
void BM_UnfoldS2(benchmark::State& state) {
  Catalog catalog;
  StockGenConfig cfg;
  cfg.num_companies = static_cast<int>(state.range(0));
  cfg.num_dates = static_cast<int>(state.range(1));
  Table s1 = GenerateStockS1(cfg);
  InstallStockS2(&catalog, "s2", s1);
  QueryEngine engine(&catalog, "s2");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(
        "select R, D, P from s2 -> R, R T, T.date D, T.price P");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * s1.num_rows());
}
BENCHMARK(BM_UnfoldS2)->Args({10, 100})->Args({100, 100})->Args({100, 500});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Fig. 7 reproduction: schema-independent querying of hotelpricing.
//
// "Hotels offering rooms under $70" posed (a) in plain SQL on the hprice
// interface schema (one predicate, no attribute names), (b) as the
// hand-written disjunction over all pricing columns, (c) as a SchemaSQL
// attribute-variable query directly on hotelpricing. All three agree; the
// benchmark compares their evaluation cost as the hotel count grows.

#include <memory>
#include <benchmark/benchmark.h>

#include <cstdio>

#include "engine/query_engine.h"
#include "workload/hotel_data.h"

namespace dynview {
namespace {

const char kInterfaceQuery[] =
    "select distinct H from hoteldb::hprice T, T.price P, T.hid H "
    "where P < 70";
const char kDisjunctionQuery[] =
    "select distinct T.hid from hoteldb::hotelpricing T "
    "where T.sgl_lo < 70 or T.sgl_hi < 70 or T.dbl_lo < 70 "
    "or T.dbl_hi < 70 or T.ste_lo < 70 or T.ste_hi < 70";
const char kHigherOrderQuery[] =
    "select distinct H from hoteldb::hotelpricing T, T.hid H, "
    "hoteldb::hotelpricing -> A, T.A P where A <> 'hid' and P < 70";

std::unique_ptr<Catalog> MakeCatalog(int hotels) {
  auto catalog = std::make_unique<Catalog>();
  HotelGenConfig cfg;
  cfg.num_hotels = hotels;
  InstallHotelDatabase(catalog.get(), "hoteldb", cfg);
  InstallHprice(catalog.get(), "hoteldb");
  return catalog;
}

void PrintReproduction() {
  std::printf("=== Fig. 7: schema-independent price query ===\n");
  auto catalog = MakeCatalog(40);
  QueryEngine engine(catalog.get(), "hoteldb");
  Table a = engine.ExecuteSql(kInterfaceQuery).value();
  Table b = engine.ExecuteSql(kDisjunctionQuery).value();
  Table c = engine.ExecuteSql(kHigherOrderQuery).value();
  std::printf("interface-schema query:   %zu hotels under $70\n", a.num_rows());
  std::printf("explicit disjunction:     %zu hotels (%s)\n", b.num_rows(),
              a.SetEquals(b) ? "agrees" : "DIFFERS");
  std::printf("attribute-variable query: %zu hotels (%s)\n\n", c.num_rows(),
              a.SetEquals(c) ? "agrees" : "DIFFERS");
}

void BM_InterfaceSchema(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)));
  QueryEngine engine(catalog.get(), "hoteldb");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kInterfaceQuery);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_InterfaceSchema)->Arg(100)->Arg(1000)->Arg(5000);

void BM_ExplicitDisjunction(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)));
  QueryEngine engine(catalog.get(), "hoteldb");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kDisjunctionQuery);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExplicitDisjunction)->Arg(100)->Arg(1000)->Arg(5000);

void BM_AttributeVariable(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)));
  QueryEngine engine(catalog.get(), "hoteldb");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kHigherOrderQuery);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AttributeVariable)->Arg(100)->Arg(1000)->Arg(5000);

// Deriving the interface schema itself (the unpivot a source would run).
void BM_DeriveHprice(benchmark::State& state) {
  HotelGenConfig cfg;
  cfg.num_hotels = static_cast<int>(state.range(0));
  for (auto _ : state) {
    // Rebuilt per iteration (catalogs are not copyable): only the unpivot
    // itself is timed.
    state.PauseTiming();
    auto fresh = std::make_unique<Catalog>();
    InstallHotelDatabase(fresh.get(), "hoteldb", cfg);
    state.ResumeTiming();
    auto st = InstallHprice(fresh.get(), "hoteldb");
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_DeriveHprice)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

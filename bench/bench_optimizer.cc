// Sec. 6 reproduction: a conventional DP optimizer with dynamic views and
// view-described indexes as primitive access paths.
//
// Paper claims verified here:
//   * the extension requires only the Chaudhuri-style bookkeeping the
//     translation already produces (tables + predicates answered), so
//     planning time grows modestly when resources are registered;
//   * resource-aware plans carry lower estimated (and actual) cost;
//   * plans with and without resources return identical answers.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "optimizer/optimizer.h"
#include "schemasql/view_materializer.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kViewSql[] =
    "create view db1::C(date, price) as "
    "select D, P from db0::stock T, T.company C, T.date D, T.price P";

struct Setup {
  Catalog catalog;
  std::shared_ptr<ViewDefinition> view;
  std::shared_ptr<ViewIndex> index;

  explicit Setup(int companies, int dates) {
    StockGenConfig cfg;
    cfg.num_companies = companies;
    cfg.num_dates = dates;
    InstallDb0(&catalog, "db0", cfg);
    QueryEngine engine(&catalog, "db0");
    ViewMaterializer::MaterializeSql(kViewSql, &engine, &catalog, "db1")
        .value();
    view = std::make_shared<ViewDefinition>(
        ViewDefinition::FromSql(kViewSql, catalog, "db0").value());
    index = std::make_shared<ViewIndex>(
        ViewIndex::BuildSql(
            "create index byCompany as btree by given T.company "
            "select T.company, T.date, T.price, T.exch from db0::stock T",
            &engine)
            .value());
  }

  Optimizer Make(bool with_resources) const {
    Optimizer opt(&catalog, "db0");
    if (with_resources) {
      opt.RegisterView(view);
      opt.RegisterIndex(index, TableRef{"db0", "stock"}, "company",
                        {"company", "date", "price", "exch"});
    }
    return opt;
  }
};

/// Chain query over k stock copies plus cotype.
std::string JoinQuery(int k) {
  std::string from = "db0::cotype TC, TC.co CC, TC.type TY";
  std::string where = "TY = 'hitech'";
  for (int i = 0; i < k; ++i) {
    std::string n = std::to_string(i);
    from += ", db0::stock T" + n + ", T" + n + ".company C" + n + ", T" + n +
            ".price P" + n;
    where += " and C" + n + " = CC and P" + n + " > 100";
  }
  return "select CC from " + from + " where " + where;
}

void PrintReproduction() {
  std::printf("=== Sec. 6: views and indexes as access paths ===\n");
  Setup s(8, 40);
  const std::string q =
      "select D, P from db0::stock T, T.company C, T.date D, T.price P "
      "where C = 'coC'";
  Optimizer base = s.Make(false);
  Optimizer ext = s.Make(true);
  auto p0 = base.Plan(q).value();
  auto p1 = ext.Plan(q).value();
  std::printf("query: %s\n\nbaseline plan:\n%s\nextended plan:\n%s\n",
              q.c_str(), p0.Describe().c_str(), p1.Describe().c_str());
  auto r0 = base.Execute(p0).value();
  auto r1 = ext.Execute(p1).value();
  std::printf("answers agree: %s (%zu rows); est cost %.0f -> %.0f\n\n",
              r0.BagEquals(r1) ? "yes" : "NO", r0.num_rows(), p0.est_cost,
              p1.est_cost);
}

void BM_PlanBaseline(benchmark::State& state) {
  Setup s(10, 50);
  Optimizer opt = s.Make(false);
  std::string q = JoinQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto p = opt.Plan(q);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PlanBaseline)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_PlanWithResources(benchmark::State& state) {
  Setup s(10, 50);
  Optimizer opt = s.Make(true);
  std::string q = JoinQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto p = opt.Plan(q);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PlanWithResources)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_ExecuteBaseline(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  Optimizer opt = s.Make(false);
  const std::string q =
      "select D, P from db0::stock T, T.company C, T.date D, T.price P "
      "where C = 'coC'";
  auto plan = opt.Plan(q).value();
  for (auto _ : state) {
    auto r = opt.Execute(plan);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExecuteBaseline)->Args({20, 200})->Args({50, 500});

void BM_ExecuteWithIndex(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  Optimizer opt = s.Make(true);
  const std::string q =
      "select D, P from db0::stock T, T.company C, T.date D, T.price P "
      "where C = 'coC'";
  auto plan = opt.Plan(q).value();
  for (auto _ : state) {
    auto r = opt.Execute(plan);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExecuteWithIndex)->Args({20, 200})->Args({50, 500});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

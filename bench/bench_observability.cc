// Observability overhead: the same fan-out and join queries with (a) no
// observer attached, (b) tracing enabled with an observer (full spans +
// counters), and (c) enable_trace=false with an observer attached (the
// opt-out must cost nothing). The acceptance bar is <2% between (a) and (b)
// on the fan-out workload. The preamble prints a per-query counter dump —
// the flat name=value form that lands in BENCH_observe.json notes.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/query_context.h"
#include "engine/query_engine.h"
#include "observe/observer.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kFanOutSql[] =
    "select R, D, P from s2 -> R, R T, T.date D, T.price P";
constexpr char kJoinSql[] =
    "select C, Y, P from db0::stock T, T.company C, T.price P, "
    "db0::cotype U, U.co C2, U.type Y where C = C2 and P > 80";

struct Setup {
  Catalog catalog;

  Setup(int companies, int dates) {
    StockGenConfig cfg;
    cfg.num_companies = companies;
    cfg.num_dates = dates;
    Table s1 = GenerateStockS1(cfg);
    InstallStockS2(&catalog, "s2", s1).ok();
    InstallDb0(&catalog, "db0", cfg).ok();
  }
};

ExecConfig Exec(bool enable_trace) {
  ExecConfig exec;
  exec.num_threads = 4;
  exec.enable_trace = enable_trace;
  return exec;
}

void PrintCounterDump() {
  Setup s(48, 200);
  QueryEngine engine(&s.catalog, "s2", Exec(true));
  QueryObserver obs;
  QueryContext qc;
  qc.set_observer(&obs);
  engine.set_query_context(&qc);
  auto r = engine.ExecuteSql(kFanOutSql);
  engine.set_query_context(nullptr);
  std::printf("=== fan-out query counters (48 sources x 200 rows) ===\n%s",
              obs.metrics.ToFlatText().c_str());
  std::printf("trace spans: %zu\n\n", obs.trace.size());
  if (!r.ok()) std::printf("QUERY FAILED: %s\n", r.status().ToString().c_str());
}

void RunFanOut(benchmark::State& state, bool attach_observer,
               bool enable_trace) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  QueryEngine engine(&s.catalog, "s2", Exec(enable_trace));
  QueryObserver obs;
  QueryContext qc;
  if (attach_observer) qc.set_observer(&obs);
  engine.set_query_context(&qc);
  size_t rows = 0;
  for (auto _ : state) {
    obs.trace.Clear();
    auto r = engine.ExecuteSql(kFanOutSql);
    benchmark::DoNotOptimize(r);
    if (r.ok()) rows = r.value().num_rows();
  }
  engine.set_query_context(nullptr);
  state.counters["rows"] = static_cast<double>(rows);
  if (attach_observer && enable_trace) {
    state.counters["groundings"] = static_cast<double>(
        obs.metrics.Value(counters::kGroundingsEvaluated));
  }
}

void BM_FanOutNoObserver(benchmark::State& state) {
  RunFanOut(state, /*attach_observer=*/false, /*enable_trace=*/true);
}
BENCHMARK(BM_FanOutNoObserver)->Args({48, 200})->Args({96, 400});

void BM_FanOutTraced(benchmark::State& state) {
  RunFanOut(state, /*attach_observer=*/true, /*enable_trace=*/true);
}
BENCHMARK(BM_FanOutTraced)->Args({48, 200})->Args({96, 400});

void BM_FanOutTraceDisabled(benchmark::State& state) {
  RunFanOut(state, /*attach_observer=*/true, /*enable_trace=*/false);
}
BENCHMARK(BM_FanOutTraceDisabled)->Args({48, 200})->Args({96, 400});

void RunJoin(benchmark::State& state, bool attach_observer) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  QueryEngine engine(&s.catalog, "db0", Exec(true));
  QueryObserver obs;
  QueryContext qc;
  if (attach_observer) qc.set_observer(&obs);
  engine.set_query_context(&qc);
  for (auto _ : state) {
    obs.trace.Clear();
    auto r = engine.ExecuteSql(kJoinSql);
    benchmark::DoNotOptimize(r);
  }
  engine.set_query_context(nullptr);
}

void BM_JoinNoObserver(benchmark::State& state) {
  RunJoin(state, /*attach_observer=*/false);
}
BENCHMARK(BM_JoinNoObserver)->Args({30, 400});

void BM_JoinTraced(benchmark::State& state) {
  RunJoin(state, /*attach_observer=*/true);
}
BENCHMARK(BM_JoinTraced)->Args({30, 400});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintCounterDump();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

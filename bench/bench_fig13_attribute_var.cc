// Fig. 13 / Fig. 14 / Ex. 4.2 reproduction: Q2 rewritten onto the
// attribute-variable (pivot) view db2::nyse. The rewriting is set-correct
// but loses multiplicities exactly as the paper's I1/J1 instances predict;
// the multiset test (Thm. 5.4) refuses it.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/translate.h"
#include "engine/query_engine.h"
#include "schemasql/view_materializer.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kViewSql[] =
    "create view db2::nyse(date, C) as "
    "select D, P from db0::stock T, T.exch E, T.company C, "
    "T.date D, T.price P where E = 'nyse'";

const char kQ2[] =
    "select C1, D1, P1 from db0::stock T1, T1.date D1, T1.company C1, "
    "T1.price P1, T1.exch E1, db0::cotype T2, T2.co C2, T2.type Y1 "
    "where E1 = 'nyse' and C1 = C2 and Y1 = 'hitech'";

struct Setup {
  Catalog catalog;
  std::unique_ptr<SelectStmt> rewritten;

  Setup(int companies, int dates, int dups) {
    StockGenConfig cfg;
    cfg.num_companies = companies;
    cfg.num_dates = dates;
    cfg.prices_per_day = dups;
    InstallDb0(&catalog, "db0", cfg);
    QueryEngine engine(&catalog, "db0");
    ViewMaterializer::MaterializeSql(kViewSql, &engine, &catalog, "db2")
        .value();
    ViewDefinition view =
        ViewDefinition::FromSql(kViewSql, catalog, "db0").value();
    QueryTranslator translator(&catalog, "db0");
    rewritten =
        std::move(translator.TranslateSql(view, kQ2, false).value().query);
  }
};

void PrintReproduction() {
  std::printf("=== Fig. 13 / Ex. 4.2: attribute-variable view ===\n");
  Setup clean(5, 8, 1);
  std::printf("Q2:  %s\n\nQ2': %s\n\n", kQ2,
              clean.rewritten->ToString().c_str());
  {
    QueryEngine engine(&clean.catalog, "db0");
    Table direct = engine.ExecuteSql(kQ2).value();
    std::unique_ptr<SelectStmt> copy = clean.rewritten->Clone();
    Table rewritten = engine.Execute(copy.get()).value();
    std::printf("duplicate-free instance: sets %s, bags %s (%zu rows)\n",
                direct.SetEquals(rewritten) ? "agree" : "DIFFER",
                direct.BagEquals(rewritten) ? "agree" : "DIFFER",
                direct.num_rows());
  }
  Setup dup(5, 8, 2);
  {
    QueryEngine engine(&dup.catalog, "db0");
    Table direct = engine.ExecuteSql(kQ2).value();
    std::unique_ptr<SelectStmt> copy = dup.rewritten->Clone();
    Table rewritten = engine.Execute(copy.get()).value();
    std::printf("duplicated instance (Fig. 14): sets %s, bags %s "
                "(%zu direct vs %zu rewritten rows)\n",
                direct.SetEquals(rewritten) ? "agree" : "DIFFER",
                direct.BagEquals(rewritten) ? "agree (UNEXPECTED)" : "differ",
                direct.num_rows(), rewritten.num_rows());
  }
  {
    ViewDefinition view =
        ViewDefinition::FromSql(kViewSql, dup.catalog, "db0").value();
    QueryTranslator translator(&dup.catalog, "db0");
    auto strict = translator.TranslateSql(view, kQ2, /*multiset=*/true);
    std::printf("Thm. 5.4 multiset test: %s\n\n",
                strict.ok() ? "ACCEPTED (unexpected)"
                            : strict.status().message().c_str());
  }
}

void BM_Q2Direct(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
          1);
  QueryEngine engine(&s.catalog, "db0");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kQ2);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Q2Direct)->Args({5, 50})->Args({20, 50})->Args({20, 200});

void BM_Q2Rewritten(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)),
          1);
  QueryEngine engine(&s.catalog, "db0");
  for (auto _ : state) {
    std::unique_ptr<SelectStmt> copy = s.rewritten->Clone();
    auto r = engine.Execute(copy.get());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Q2Rewritten)->Args({5, 50})->Args({20, 50})->Args({20, 200});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

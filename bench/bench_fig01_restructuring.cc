// Fig. 1 reproduction: translating the same stock data among the three
// schematically heterogeneous layouts (s1 ↔ s2 ↔ s3), plus throughput of
// the four restructuring primitives at increasing scale.
//
// Paper claim (Sec. 4): relation-name restructuring (partition/unite) is
// information-capacity preserving; attribute-name restructuring
// (pivot/unpivot) is not. The reproduction block verifies both; the
// benchmarks show all four primitives scale near-linearly in rows (pivot
// carries a per-label join overhead).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "restructure/restructure.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

void PrintReproduction() {
  std::printf("=== Fig. 1: three stock layouts ===\n");
  StockGenConfig cfg;
  cfg.num_companies = 3;
  cfg.num_dates = 3;
  Table s1 = GenerateStockS1(cfg);
  std::printf("s1 (company as data):\n%s\n", s1.ToString().c_str());
  auto parts = PartitionByColumn(s1, "company").value();
  std::printf("s2 (%zu relations):", parts.size());
  for (const auto& [name, t] : parts) {
    std::printf(" %s[%zu]", name.c_str(), t.num_rows());
  }
  std::printf("\n");
  Table s3 = Pivot(s1, {"date"}, "company", "price").value();
  std::printf("s3 (company as attributes):\n%s\n", s3.ToString().c_str());
  std::printf("partition round-trip preserves instance: %s\n",
              PartitionPreservesInstance(s1, "company").value() ? "yes" : "NO");
  std::printf("pivot round-trip preserves duplicate-free instance: %s\n",
              PivotPreservesInstance(s1, {"date"}, "company", "price").value()
                  ? "yes"
                  : "NO");
  StockGenConfig dup = cfg;
  dup.prices_per_day = 2;
  Table s1dup = GenerateStockS1(dup);
  std::printf("pivot round-trip preserves duplicated instance: %s "
              "(Sec. 4.3 capacity loss)\n\n",
              PivotPreservesInstance(s1dup, {"date"}, "company", "price").value()
                  ? "yes (UNEXPECTED)"
                  : "no, as the paper predicts");
}

Table MakeInput(int companies, int dates) {
  StockGenConfig cfg;
  cfg.num_companies = companies;
  cfg.num_dates = dates;
  return GenerateStockS1(cfg);
}

void BM_Partition(benchmark::State& state) {
  Table s1 = MakeInput(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto parts = PartitionByColumn(s1, "company");
    benchmark::DoNotOptimize(parts);
  }
  state.SetItemsProcessed(state.iterations() * s1.num_rows());
}
BENCHMARK(BM_Partition)->Args({10, 100})->Args({50, 100})->Args({50, 1000});

void BM_Unite(benchmark::State& state) {
  Table s1 = MakeInput(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)));
  auto parts = PartitionByColumn(s1, "company").value();
  for (auto _ : state) {
    auto back = Unite(parts, "company");
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * s1.num_rows());
}
BENCHMARK(BM_Unite)->Args({10, 100})->Args({50, 100})->Args({50, 1000});

void BM_Pivot(benchmark::State& state) {
  Table s1 = MakeInput(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto p = Pivot(s1, {"date"}, "company", "price");
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * s1.num_rows());
}
BENCHMARK(BM_Pivot)->Args({10, 100})->Args({50, 100})->Args({50, 1000});

void BM_Unpivot(benchmark::State& state) {
  Table s1 = MakeInput(static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(1)));
  Table s3 = Pivot(s1, {"date"}, "company", "price").value();
  for (auto _ : state) {
    auto u = Unpivot(s3, {"date"}, "company", "price");
    benchmark::DoNotOptimize(u);
  }
  state.SetItemsProcessed(state.iterations() * s1.num_rows());
}
BENCHMARK(BM_Unpivot)->Args({10, 100})->Args({50, 100})->Args({50, 1000});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Fig. 9 reproduction: keyword search over a structured database.
//
// The keywords inverted index (built from a view over hotelwords) answers
// "find Sofitel hotels" without knowing which attribute holds the word; the
// combined structured+unstructured query ("Sofitel hotels in Athens") is
// evaluated three ways: pure scan, index for the keyword + join, and both
// predicates via the index. Paper claim (Sec. 3.3): the engine should pick
// index-assisted plans; the shape here is index ≫ scan, widening with scale.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "engine/query_engine.h"
#include "index/view_index.h"
#include "workload/hotel_data.h"

namespace dynview {
namespace {

struct Setup {
  Catalog catalog;
  std::unique_ptr<ViewIndex> keywords;

  explicit Setup(int hotels) {
    HotelGenConfig cfg;
    cfg.num_hotels = hotels;
    InstallHotelDatabase(&catalog, "hoteldb", cfg);
    InstallHotelwords(&catalog, "hoteldb");
    QueryEngine engine(&catalog, "hoteldb");
    keywords = std::make_unique<ViewIndex>(
        ViewIndex::BuildSql(
            "create index keywords as inverted by given T.value "
            "select T.hid, T.attribute from hoteldb::hotelwords T",
            &engine)
            .value());
  }
};

const char kScanQuery[] =
    "select distinct H from hoteldb::hotelwords T, T.hid H, T.value V "
    "where contains(V, 'sofitel')";

void PrintReproduction() {
  std::printf("=== Fig. 9: keyword search over hotels ===\n");
  Setup s(40);
  QueryEngine engine(&s.catalog, "hoteldb");
  Table scan = engine.ExecuteSql(kScanQuery).value();
  Table probe = s.keywords->ProbeKeyword("sofitel").value();
  // Distinct hid count from the probe.
  std::set<int64_t> ids;
  for (const Row& r : probe.rows()) ids.insert(r[0].as_int());
  std::printf("scan finds %zu Sofitel hotels; index probe finds %zu (%s)\n",
              scan.num_rows(), ids.size(),
              scan.num_rows() == ids.size() ? "agree" : "DIFFER");
  // The Fig. 9 combined query.
  Table combined =
      engine
          .ExecuteSql(
              "select distinct H1 from hoteldb::hotelwords T1, "
              "hoteldb::hotelwords T2, T1.hid H1, T1.value V1, T2.hid H2, "
              "T2.attribute A2, T2.value V2 where H1 = H2 and "
              "contains(V1, 'Sofitel') and A2 = 'city' and V2 = 'Athens'")
          .value();
  std::printf("Sofitel hotels in Athens: %zu\n\n", combined.num_rows());
}

void BM_KeywordScan(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  QueryEngine engine(&s.catalog, "hoteldb");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kScanQuery);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KeywordScan)->Arg(100)->Arg(1000)->Arg(5000);

void BM_KeywordIndexProbe(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = s.keywords->ProbeKeyword("sofitel");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KeywordIndexProbe)->Arg(100)->Arg(1000)->Arg(5000);

void BM_IndexBuild(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  QueryEngine engine(&s.catalog, "hoteldb");
  for (auto _ : state) {
    auto idx = ViewIndex::BuildSql(
        "create index keywords as inverted by given T.value "
        "select T.hid, T.attribute from hoteldb::hotelwords T",
        &engine);
    benchmark::DoNotOptimize(idx);
  }
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(5000);

void BM_CombinedQueryScan(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)));
  QueryEngine engine(&s.catalog, "hoteldb");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(
        "select distinct H1 from hoteldb::hotelwords T1, "
        "hoteldb::hotelwords T2, T1.hid H1, T1.value V1, T2.hid H2, "
        "T2.attribute A2, T2.value V2 where H1 = H2 and "
        "contains(V1, 'Sofitel') and A2 = 'city' and V2 = 'Athens'");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CombinedQueryScan)->Arg(100)->Arg(1000);

void BM_CombinedQueryIndexAssisted(benchmark::State& state) {
  // Keyword predicate via the index; structured predicate via a semi-join
  // against the matching hids (the plan Sec. 3.3 argues the optimizer
  // should prefer).
  Setup s(static_cast<int>(state.range(0)));
  QueryEngine engine(&s.catalog, "hoteldb");
  for (auto _ : state) {
    auto probe = s.keywords->ProbeKeyword("sofitel");
    std::set<int64_t> ids;
    for (const Row& r : probe.value().rows()) ids.insert(r[0].as_int());
    auto athens = engine.ExecuteSql(
        "select H from hoteldb::hotelwords T, T.hid H, T.attribute A, "
        "T.value V where A = 'city' and V = 'Athens'");
    size_t hits = 0;
    for (const Row& r : athens.value().rows()) {
      if (ids.count(r[0].as_int()) > 0) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_CombinedQueryIndexAssisted)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Ablation: the Sec. 6 optimizer's cost model with System-R constants vs.
// exact catalog statistics (DESIGN.md design-choice study).
//
// Measured: (a) cardinality-estimate error on selective predicates,
// (b) planning-time overhead of statistics, (c) whether better estimates
// change plan choice on a join where the naive model misorders.

#include <memory>
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "engine/query_engine.h"
#include "optimizer/optimizer.h"
#include "optimizer/stats.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

std::unique_ptr<Catalog> MakeCatalog(int companies, int dates) {
  auto catalog = std::make_unique<Catalog>();
  StockGenConfig cfg;
  cfg.num_companies = companies;
  cfg.num_dates = dates;
  InstallDb0(catalog.get(), "db0", cfg);
  return catalog;
}

void PrintReproduction() {
  std::printf("=== Ablation: System-R constants vs. exact statistics ===\n");
  auto catalog = MakeCatalog(100, 20);
  const char* queries[] = {
      "select D, P from db0::stock T, T.company C, T.date D, T.price P "
      "where C = 'coF'",
      "select D, P from db0::stock T, T.date D, T.price P "
      "where P > 380",
      "select C, Y from db0::stock T1, T1.company C, db0::cotype T2, "
      "T2.co C2, T2.type Y where C = C2",
  };
  const double actual[] = {20, -1, 2000};  // -1: measure below.
  QueryEngine engine(catalog.get(), "db0");
  Optimizer naive(catalog.get(), "db0");
  Optimizer informed(catalog.get(), "db0");
  informed.EnableStatistics();
  std::printf("%-12s %10s %10s %10s\n", "query", "actual", "naive-est",
              "stats-est");
  for (int i = 0; i < 3; ++i) {
    auto p0 = naive.Plan(queries[i]).value();
    auto p1 = informed.Plan(queries[i]).value();
    double act = actual[i];
    if (act < 0) act = static_cast<double>(
        engine.ExecuteSql(queries[i]).value().num_rows());
    std::printf("Q%-11d %10.0f %10.0f %10.0f\n", i + 1, act, p0.est_rows,
                p1.est_rows);
  }
  std::printf("\n");
}

void BM_PlanNaive(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)), 20);
  Optimizer opt(catalog.get(), "db0");
  const std::string q =
      "select C, Y from db0::stock T1, T1.company C, T1.price P, "
      "db0::cotype T2, T2.co C2, T2.type Y where C = C2 and P > 200";
  for (auto _ : state) {
    auto p = opt.Plan(q);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PlanNaive)->Arg(20)->Arg(100);

void BM_PlanWithStats(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)), 20);
  Optimizer opt(catalog.get(), "db0");
  opt.EnableStatistics();
  const std::string q =
      "select C, Y from db0::stock T1, T1.company C, T1.price P, "
      "db0::cotype T2, T2.co C2, T2.type Y where C = C2 and P > 200";
  // Note: statistics are recomputed per Plan call (the cache is local to
  // one planning); the measurement includes that cost deliberately.
  for (auto _ : state) {
    auto p = opt.Plan(q);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PlanWithStats)->Arg(20)->Arg(100);

void BM_StatsComputation(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)));
  const Table* stock = catalog->ResolveTable("db0", "stock").value();
  for (auto _ : state) {
    TableStats s = TableStats::Compute(*stock);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * stock->num_rows());
}
BENCHMARK(BM_StatsComputation)->Args({100, 100})->Args({100, 1000});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

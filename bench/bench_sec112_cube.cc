// Sec. 1.1.2 reproduction: decision-analysis aggregation over dynamic
// dimensions — the "number of hotels in each country of each class,
// including subtotals" example, with drill-down — plus the cost of
// GROUP BY / ROLLUP / CUBE as data and dimensionality grow.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analytics/cube.h"
#include "workload/hotel_data.h"

namespace dynview {
namespace {

Table MakeHotels(int n) {
  Catalog catalog;
  HotelGenConfig cfg;
  cfg.num_hotels = n;
  InstallHotelDatabase(&catalog, "hoteldb", cfg);
  return *catalog.ResolveTable("hoteldb", "hotel").value();
}

void PrintReproduction() {
  std::printf("=== Sec. 1.1.2: cube-style summaries with subtotals ===\n");
  Table hotel = MakeHotels(24);
  auto rollup = RollupAggregate(hotel, {"country", "class"},
                                {{AggFunc::kCountStar, "", "hotels"}});
  std::printf("%s\n", rollup.value().ToString(12).c_str());
  auto greece = DrillDown(rollup.value(), "country", Value::String("Greece"),
                          {"class"});
  std::printf("drill-down, Greece subtotal:\n%s\n",
              greece.value().ToString().c_str());
}

void BM_GroupBy(benchmark::State& state) {
  Table hotel = MakeHotels(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = GroupAggregate(hotel, {"country", "class"},
                            {{AggFunc::kCountStar, "", "n"}});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * hotel.num_rows());
}
BENCHMARK(BM_GroupBy)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Rollup(benchmark::State& state) {
  Table hotel = MakeHotels(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = RollupAggregate(hotel, {"country", "class"},
                             {{AggFunc::kCountStar, "", "n"}});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * hotel.num_rows());
}
BENCHMARK(BM_Rollup)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Cube(benchmark::State& state) {
  Table hotel = MakeHotels(static_cast<int>(state.range(0)));
  // Dimensionality sweep: 2, 3 and 4 dimensions (2^d strata).
  std::vector<std::string> dims = {"country", "class"};
  if (state.range(1) >= 3) dims.push_back("chain");
  if (state.range(1) >= 4) dims.push_back("city");
  for (auto _ : state) {
    auto r = CubeAggregate(hotel, dims, {{AggFunc::kCountStar, "", "n"}});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * hotel.num_rows());
}
BENCHMARK(BM_Cube)->Args({10000, 2})->Args({10000, 3})->Args({10000, 4});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

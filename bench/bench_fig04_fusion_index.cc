// Fig. 4 reproduction: view-described indexes over a data-dependent union
// of jurisdiction relations, and the dui data-fusion query.
//
// Paper claim (Sec. 1.1.3): SQL-view-described index architectures cannot
// express an index over all subclasses/relations; higher-order views can,
// and the optimizer can treat them as access methods. The benchmark shows
// the probe-vs-scan gap and index build cost.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "engine/query_engine.h"
#include "index/view_index.h"
#include "workload/tickets_data.h"

namespace dynview {
namespace {

constexpr char kInfrIndexSql[] =
    "create index ticketInfr as btree by given T.infr "
    "select R, T.tnum, T.lic from tix -> R, R T";

const char kFusionQuery[] =
    "select T1.lic, T2.infr from I::tickets T1, I::tickets T2 "
    "where T1.lic = T2.lic and T1.infr = 'dui' and T1.tnum <> T2.tnum";

struct Setup {
  Catalog catalog;
  std::unique_ptr<ViewIndex> index;

  explicit Setup(int jurisdictions, int per_jurisdiction) {
    TicketsGenConfig cfg;
    cfg.num_jurisdictions = jurisdictions;
    cfg.tickets_per_jurisdiction = per_jurisdiction;
    cfg.num_drivers = jurisdictions * per_jurisdiction / 5;
    InstallTicketJurisdictions(&catalog, "tix", cfg);
    InstallTicketsIntegration(&catalog, "I", cfg);
    QueryEngine engine(&catalog, "I");
    index = std::make_unique<ViewIndex>(
        ViewIndex::BuildSql(kInfrIndexSql, &engine).value());
  }
};

void PrintReproduction() {
  std::printf("=== Fig. 4: indexes over data-dependent unions ===\n");
  Setup s(4, 50);
  std::printf("index definition: %s\n", s.index->definition().c_str());
  std::printf("entries: %zu over %zu jurisdiction relations\n",
              s.index->contents().num_rows(),
              s.catalog.GetDatabase("tix").value()->num_tables());
  auto dui = s.index->Probe(Value::String("dui"));
  std::printf("probe('dui') -> %zu tickets:\n%s\n",
              dui.value().num_rows(), dui.value().ToString(5).c_str());
  QueryEngine engine(&s.catalog, "I");
  auto fusion = engine.ExecuteSql(kFusionQuery);
  std::printf("dui fusion query (self-join over the union): %zu rows\n\n",
              fusion.value().num_rows());
}

void BM_ProbeIndex(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto r = s.index->Probe(Value::String("dui"));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ProbeIndex)->Args({4, 100})->Args({8, 500})->Args({8, 2000});

void BM_ScanAllJurisdictions(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  QueryEngine engine(&s.catalog, "tix");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(
        "select R, T.tnum, T.lic from tix -> R, R T where T.infr = 'dui'");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ScanAllJurisdictions)
    ->Args({4, 100})
    ->Args({8, 500})
    ->Args({8, 2000});

void BM_BuildUnionIndex(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  QueryEngine engine(&s.catalog, "I");
  for (auto _ : state) {
    auto idx = ViewIndex::BuildSql(kInfrIndexSql, &engine);
    benchmark::DoNotOptimize(idx);
  }
}
BENCHMARK(BM_BuildUnionIndex)->Args({4, 100})->Args({8, 500});

void BM_FusionQueryDirect(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  QueryEngine engine(&s.catalog, "I");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kFusionQuery);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FusionQueryDirect)->Args({4, 100})->Args({8, 500});

void BM_FusionViaMaterializedView(benchmark::State& state) {
  // The dui view materialized as a lic-keyed index answers the fusion query
  // per driver with a probe.
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  QueryEngine engine(&s.catalog, "I");
  auto dui_view = ViewIndex::BuildSql(
      "create index dui as btree by given T1.lic "
      "select T2.infr from I::tickets T1, I::tickets T2 "
      "where T1.lic = T2.lic and T1.infr = 'dui' and T1.tnum <> T2.tnum",
      &engine);
  const ViewIndex& idx = dui_view.value();
  for (auto _ : state) {
    auto r = idx.Probe(Value::String(LicenseName(3)));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FusionViaMaterializedView)->Args({4, 100})->Args({8, 500});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

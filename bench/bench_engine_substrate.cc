// Engine-substrate microbenchmarks: the raw operator costs every
// reproduction sits on (scan+filter, hash join, grouping, higher-order
// grounding overhead, B+-tree probes). These pin the baseline the
// paper-level comparisons are measured against.

#include <memory>
#include <benchmark/benchmark.h>

#include <cstdio>

#include "engine/query_engine.h"
#include "index/btree.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

std::unique_ptr<Catalog> MakeCatalog(int companies, int dates) {
  auto catalog = std::make_unique<Catalog>();
  StockGenConfig cfg;
  cfg.num_companies = companies;
  cfg.num_dates = dates;
  InstallDb0(catalog.get(), "db0", cfg);
  Table s1 = GenerateStockS1(cfg);
  InstallStockS2(catalog.get(), "s2", s1);
  return catalog;
}

void PrintReproduction() {
  std::printf("=== Engine substrate baseline ===\n");
  auto catalog = MakeCatalog(10, 100);
  QueryEngine engine(catalog.get(), "db0");
  auto r = engine.ExecuteSql(
      "select count(*) from db0::stock T, T.price P where P > 200");
  std::printf("sanity: %s rows over 200 out of 1000\n\n",
              r.value().row(0)[0].ToString().c_str());
}

void BM_ScanFilter(benchmark::State& state) {
  auto catalog = MakeCatalog(10, static_cast<int>(state.range(0)) / 10);
  QueryEngine engine(catalog.get(), "db0");
  const std::string q =
      "select P from db0::stock T, T.price P where P > 200";
  for (auto _ : state) {
    auto r = engine.ExecuteSql(q);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanFilter)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)));
  QueryEngine engine(catalog.get(), "db0");
  const std::string q =
      "select C, Y from db0::stock T1, T1.company C, db0::cotype T2, "
      "T2.co C2, T2.type Y where C = C2";
  for (auto _ : state) {
    auto r = engine.ExecuteSql(q);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_HashJoin)->Args({100, 100})->Args({1000, 100});

void BM_GroupAggregate(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)));
  QueryEngine engine(catalog.get(), "db0");
  const std::string q =
      "select C, count(*), min(P), max(P), avg(P) "
      "from db0::stock T, T.company C, T.price P group by C";
  for (auto _ : state) {
    auto r = engine.ExecuteSql(q);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_GroupAggregate)->Args({100, 100})->Args({100, 1000});

// The grounding overhead of higher-order evaluation: the same rows read
// through N per-company relations instead of one table.
void BM_FirstOrderScan(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)), 100);
  QueryEngine engine(catalog.get(), "db0");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(
        "select C, P from db0::stock T, T.company C, T.price P");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 100);
}
BENCHMARK(BM_FirstOrderScan)->Arg(10)->Arg(100);

void BM_HigherOrderScan(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)), 100);
  QueryEngine engine(catalog.get(), "db0");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(
        "select R, P from s2 -> R, R T, T.price P");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 100);
}
BENCHMARK(BM_HigherOrderScan)->Arg(10)->Arg(100);

void BM_BTreeProbe(benchmark::State& state) {
  BTreeIndex index(64);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    (void)!index.Insert(Value::Int(i), i).ok();
  }
  int64_t k = 0;
  for (auto _ : state) {
    auto hits = index.Lookup(Value::Int(k++ % n));
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_BTreeProbe)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_BTreeInsert(benchmark::State& state) {
  int64_t k = 0;
  BTreeIndex index(64);
  for (auto _ : state) {
    (void)!index.Insert(Value::Int(k), k).ok();
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsert);

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Ex. 5.2 / Ex. 5.3 reproduction: aggregate queries answered through
// dynamic views.
//
//   * Ex. 5.2 — MAX/MIN (duplicate-insensitive) pass through a
//     multiplicity-losing attribute view; AVG is rejected.
//   * Ex. 5.3 — an aggregate-defined dynamic view (per-exchange databases of
//     per-company daily averages) answers a coarser aggregate query.
// The benchmark compares direct aggregation on the integration against the
// rewriting on the (pre-filtered, pre-pivoted) view — the view wins because
// it has already restricted to nyse rows.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/translate.h"
#include "engine/query_engine.h"
#include "schemasql/view_materializer.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kPivotViewSql[] =
    "create view db2::nyse(date, C) as "
    "select D, P from db0::stock T, T.exch E, T.company C, "
    "T.date D, T.price P where E = 'nyse'";

const char kMaxQuery[] =
    "select D, max(P) from db0::stock T, T.date D, T.price P, T.exch E "
    "where E = 'nyse' group by D having min(P) > 60";
const char kAvgQuery[] =
    "select D, avg(P) from db0::stock T, T.date D, T.price P, T.exch E "
    "where E = 'nyse' group by D";

struct Setup {
  Catalog catalog;
  std::unique_ptr<SelectStmt> rewritten_max;

  Setup(int companies, int dates) {
    StockGenConfig cfg;
    cfg.num_companies = companies;
    cfg.num_dates = dates;
    InstallDb0(&catalog, "db0", cfg);
    QueryEngine engine(&catalog, "db0");
    ViewMaterializer::MaterializeSql(kPivotViewSql, &engine, &catalog, "db2")
        .value();
    ViewDefinition view =
        ViewDefinition::FromSql(kPivotViewSql, catalog, "db0").value();
    QueryTranslator translator(&catalog, "db0");
    rewritten_max =
        std::move(translator.TranslateSql(view, kMaxQuery, false).value().query);
  }
};

void PrintReproduction() {
  std::printf("=== Ex. 5.2: aggregates through a pivot view ===\n");
  Setup s(6, 10);
  QueryEngine engine(&s.catalog, "db0");
  std::printf("Q:  %s\n\nQ': %s\n\n", kMaxQuery,
              s.rewritten_max->ToString().c_str());
  Table direct = engine.ExecuteSql(kMaxQuery).value();
  std::unique_ptr<SelectStmt> copy = s.rewritten_max->Clone();
  Table rewritten = engine.Execute(copy.get()).value();
  std::printf("answers agree: %s (%zu groups)\n",
              direct.BagEquals(rewritten) ? "yes" : "NO", direct.num_rows());
  ViewDefinition view =
      ViewDefinition::FromSql(kPivotViewSql, s.catalog, "db0").value();
  QueryTranslator translator(&s.catalog, "db0");
  auto avg = translator.TranslateSql(view, kAvgQuery, false);
  std::printf("avg() through the pivot: %s\n\n",
              avg.ok() ? "ACCEPTED (unexpected)" : "rejected (Sec. 5.2)");

  // --- Ex. 5.3: aggregate-defined dynamic view. -----------------------------
  std::printf("=== Ex. 5.3: aggregate-defined dynamic view ===\n");
  // View db4::E(date, C) = per-exchange relations of per-(date, company)
  // average prices, company names pivoted into attributes.
  Catalog agg_target;
  auto created = ViewMaterializer::MaterializeSql(
      "create view E::daily(date, C) as "
      "select D, avg(P) from db0::stock T, T.exch E, T.date D, T.price P, "
      "T.company C group by E, D, C",
      &engine, &agg_target, "agg");
  std::printf("materialized %zu per-exchange databases:", created.value().size());
  for (const auto& [db, rel] : created.value()) std::printf(" %s", db.c_str());
  std::printf("\n");
  // The paper's Q' shape: aggregate over the view's groundings.
  QueryEngine agg_engine(&agg_target, "agg");
  auto qprime = agg_engine.ExecuteSql(
      "select E, A, avg(P) from -> E, E::daily -> A, E::daily T, "
      "T.date D, T.A P where A <> 'date' group by E, A");
  std::printf("Q' over the aggregate view: %zu (exchange, company) groups\n",
              qprime.value().num_rows());
  // Direct equivalent on db0 (avg-of-daily-avg; equal to Q's avg when each
  // (company, date) has one price, as here).
  auto direct53 = engine.ExecuteSql(
      "select E, C, avg(P) from db0::stock T, T.exch E, T.company C, "
      "T.price P group by E, C");
  Table a = qprime.value();
  Table b = direct53.value();
  a.SortRows();
  b.SortRows();
  std::printf("matches direct per-(exchange, company) averages: %s\n\n",
              a.BagEquals(b) ? "yes" : "NO");
}

void BM_MaxDirect(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  QueryEngine engine(&s.catalog, "db0");
  for (auto _ : state) {
    auto r = engine.ExecuteSql(kMaxQuery);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MaxDirect)->Args({10, 100})->Args({30, 100})->Args({30, 400});

void BM_MaxThroughPivotView(benchmark::State& state) {
  Setup s(static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  QueryEngine engine(&s.catalog, "db0");
  for (auto _ : state) {
    std::unique_ptr<SelectStmt> copy = s.rewritten_max->Clone();
    auto r = engine.Execute(copy.get());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MaxThroughPivotView)
    ->Args({10, 100})
    ->Args({30, 100})
    ->Args({30, 400});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Query-server robustness benchmarks (scripts/run_experiments.sh →
// results/BENCH_server.json):
//
//   BM_ServerThroughput/{1,8,32}  end-to-end wire throughput and client-side
//                                 p50/p95/p99 latency at 1/8/32 concurrent
//                                 sessions (closed loop, fan-out workload).
//   BM_ServerOverloadShed         2× admission overload with a generous
//                                 per-request deadline. The gate: the server
//                                 SHEDS the excess (shed > 0) and every
//                                 admitted request still meets its deadline
//                                 (deadline_violations == 0, p99 under the
//                                 deadline) — bounded delay for the admitted
//                                 beats unbounded delay for all.
//   BM_ServerChaos                I/O failpoints armed + clients hanging up
//                                 mid-query. Oracle: after the storm the
//                                 server still answers a clean query
//                                 byte-identically (chaos_ok == 1).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "integration/integration.h"
#include "relational/csv.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

const char kFanOut[] =
    "select R, D, P from s2 -> R, R T, T.date D, T.price P";

/// One self-contained server over the stock federation. Each benchmark owns
/// its own instance so admission knobs and failpoints never leak across.
struct Harness {
  explicit Harness(ServerOptions sopts = {}) : system(&catalog, "s2") {
    StockGenConfig cfg;
    Table s1 = GenerateStockS1(cfg);
    InstallStockS1(&catalog, "I", s1).ToString();
    InstallStockS2(&catalog, "s2", s1).ToString();
    server = std::make_unique<QueryServer>(&system, sopts);
    if (!server->Start().ok()) {
      std::fprintf(stderr, "bench_server: server start failed\n");
      std::abort();
    }
  }
  ~Harness() { server->Stop(); }

  Catalog catalog;
  IntegrationSystem system;
  std::unique_ptr<QueryServer> server;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void ReportLatency(benchmark::State& state, std::vector<double>& lat) {
  std::sort(lat.begin(), lat.end());
  state.counters["p50_ms"] = benchmark::Counter(Percentile(lat, 0.50));
  state.counters["p95_ms"] = benchmark::Counter(Percentile(lat, 0.95));
  state.counters["p99_ms"] = benchmark::Counter(Percentile(lat, 0.99));
}

// --- Throughput / latency at 1, 8, 32 sessions -----------------------------

void BM_ServerThroughput(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  constexpr int kQueriesPerSession = 20;
  Harness h;

  std::mutex mu;
  std::vector<double> lat;
  uint64_t total_ok = 0, total_shed = 0, total_err = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (int t = 0; t < sessions; ++t) {
      threads.emplace_back([&] {
        std::vector<double> local;
        local.reserve(kQueriesPerSession);
        uint64_t ok = 0, shed = 0, err = 0;
        auto client = ServerClient::Connect("127.0.0.1", h.server->port());
        if (!client.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          total_err += kQueriesPerSession;
          return;
        }
        for (int q = 0; q < kQueriesPerSession; ++q) {
          ClientQueryOptions qopts;
          qopts.multiset = true;
          auto t0 = std::chrono::steady_clock::now();
          auto reply = client.value()->Query(kFanOut, qopts);
          auto t1 = std::chrono::steady_clock::now();
          if (reply.ok() && reply.value().status.ok()) {
            ++ok;
            local.push_back(
                std::chrono::duration<double, std::milli>(t1 - t0).count());
          } else if (reply.ok() && reply.value().retry_after_ms > 0) {
            // Admission shed: on small hosts 32 closed-loop sessions
            // legitimately exceed the default queues. Not an error.
            ++shed;
          } else {
            ++err;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        lat.insert(lat.end(), local.begin(), local.end());
        total_ok += ok;
        total_shed += shed;
        total_err += err;
      });
    }
    for (auto& th : threads) th.join();
  }

  state.SetItemsProcessed(static_cast<int64_t>(total_ok));
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(total_ok), benchmark::Counter::kIsRate);
  state.counters["shed"] =
      benchmark::Counter(static_cast<double>(total_shed));
  state.counters["errors"] = benchmark::Counter(static_cast<double>(total_err));
  ReportLatency(state, lat);
}
BENCHMARK(BM_ServerThroughput)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- Load shedding under 2× overload ---------------------------------------

void BM_ServerOverloadShed(benchmark::State& state) {
  // Admission budget: 2 running + 2 queued heavy = 4 requests the server
  // will hold. 8 sessions each keeping one request in flight is a 2×
  // overload: half the offered load must be shed, and the admitted half
  // must still finish inside its (generous) deadline because nothing ever
  // waits behind an unbounded queue.
  ServerOptions sopts;
  sopts.admission.max_concurrent = 2;
  sopts.admission.max_queued_heavy = 2;
  sopts.admission.max_inflight_per_session = 8;
  Harness h(sopts);

  // Make each heavy query deterministically non-trivial (~5 ms grounding),
  // so the overload is real, not a race the bench sometimes loses.
  FailSpec slow;
  slow.mode = FailMode::kLatency;
  slow.latency_ms = 5;
  FailPoints::Arm("engine.grounding", slow);

  constexpr int kSessions = 8;
  constexpr int kPerSession = 25;
  constexpr int kDeadlineMs = 2000;

  std::mutex mu;
  std::vector<double> lat;
  uint64_t ok = 0, shed = 0, deadline_violations = 0, other_errors = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kSessions; ++t) {
      threads.emplace_back([&] {
        auto client = ServerClient::Connect("127.0.0.1", h.server->port());
        if (!client.ok()) return;
        for (int q = 0; q < kPerSession; ++q) {
          ClientQueryOptions qopts;
          qopts.multiset = true;
          qopts.deadline_ms = kDeadlineMs;
          auto t0 = std::chrono::steady_clock::now();
          auto reply = client.value()->Query(kFanOut, qopts);
          auto t1 = std::chrono::steady_clock::now();
          double ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
          std::lock_guard<std::mutex> lock(mu);
          if (!reply.ok()) {
            ++other_errors;
            return;
          }
          const ClientReply& r = reply.value();
          if (r.status.ok()) {
            ++ok;
            lat.push_back(ms);
            if (ms > kDeadlineMs) ++deadline_violations;
          } else if (r.status.code() == StatusCode::kResourceExhausted &&
                     r.retry_after_ms > 0) {
            ++shed;
          } else if (r.status.code() == StatusCode::kDeadlineExceeded) {
            ++deadline_violations;
          } else {
            ++other_errors;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  FailPoints::DisarmAll();

  const uint64_t total = ok + shed + deadline_violations + other_errors;
  state.SetItemsProcessed(static_cast<int64_t>(ok));
  state.counters["ok"] = benchmark::Counter(static_cast<double>(ok));
  state.counters["shed"] = benchmark::Counter(static_cast<double>(shed));
  state.counters["shed_rate"] = benchmark::Counter(
      total > 0 ? static_cast<double>(shed) / static_cast<double>(total) : 0);
  state.counters["deadline_violations"] =
      benchmark::Counter(static_cast<double>(deadline_violations));
  state.counters["other_errors"] =
      benchmark::Counter(static_cast<double>(other_errors));
  state.counters["deadline_ms"] = benchmark::Counter(kDeadlineMs);
  ReportLatency(state, lat);
}
BENCHMARK(BM_ServerOverloadShed)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

// --- Chaos: failpoints + abrupt disconnects --------------------------------

void BM_ServerChaos(benchmark::State& state) {
  Harness h;
  const std::string expected =
      TableToCsvTyped(h.system.AnswerGuarded(kFanOut, [] {
                        AnswerOptions o;
                        o.multiset = true;
                        return o;
                      }())
                          .value()
                          .table);

  // The storm: reads fail permanently after 60 frames server-wide, every
  // grounding sleeps 2 ms, and every client hangs up mid-query once per 5
  // requests. Nothing here is allowed to crash the server or wedge a lane.
  FailSpec read_storm;
  read_storm.mode = FailMode::kFailAfterN;
  read_storm.after_n = 60;
  FailSpec slow;
  slow.mode = FailMode::kLatency;
  slow.latency_ms = 2;

  constexpr int kSessions = 6;
  constexpr int kPerSession = 20;
  std::atomic<uint64_t> survived{0}, dropped{0};
  for (auto _ : state) {
    FailPoints::Arm("server.read", read_storm);
    FailPoints::Arm("engine.grounding", slow);
    std::vector<std::thread> threads;
    for (int t = 0; t < kSessions; ++t) {
      threads.emplace_back([&, t] {
        std::unique_ptr<ServerClient> client;
        for (int q = 0; q < kPerSession; ++q) {
          if (!client) {
            auto c = ServerClient::Connect("127.0.0.1", h.server->port());
            if (!c.ok()) {
              dropped.fetch_add(1);
              continue;
            }
            client = std::move(c).value();
          }
          if ((q + t) % 5 == 4) {  // Hang up with a query in flight.
            ClientQueryOptions qopts;
            qopts.multiset = true;
            if (client->SendQuery(kFanOut, qopts).ok()) {
              client->CloseAbruptly();
            }
            client.reset();
            dropped.fetch_add(1);
            continue;
          }
          ClientQueryOptions qopts;
          qopts.multiset = true;
          auto reply = client->Query(kFanOut, qopts);
          if (reply.ok() && reply.value().status.ok()) {
            survived.fetch_add(1);
          } else {
            dropped.fetch_add(1);
            client.reset();  // The read storm kills connections; reconnect.
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    FailPoints::DisarmAll();
  }

  // The oracle: with the chaos disarmed, a fresh session gets the exact
  // in-process answer — the server degraded, it did not corrupt.
  double chaos_ok = 0, server_running = h.server->running() ? 1 : 0;
  auto probe = ServerClient::Connect("127.0.0.1", h.server->port());
  if (probe.ok()) {
    ClientQueryOptions qopts;
    qopts.multiset = true;
    auto reply = probe.value()->Query(kFanOut, qopts);
    if (reply.ok() && reply.value().status.ok() &&
        reply.value().csv == expected) {
      chaos_ok = 1;
    }
  }
  state.counters["chaos_ok"] = benchmark::Counter(chaos_ok);
  state.counters["server_running"] = benchmark::Counter(server_running);
  state.counters["survived"] =
      benchmark::Counter(static_cast<double>(survived.load()));
  state.counters["dropped"] =
      benchmark::Counter(static_cast<double>(dropped.load()));
  state.counters["failpoint_trips"] = benchmark::Counter(
      static_cast<double>(h.server->stats().failpoint_trips.load()));
  state.counters["disconnect_cancels"] = benchmark::Counter(
      static_cast<double>(h.server->stats().disconnect_cancels.load()));
}
BENCHMARK(BM_ServerChaos)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(1);

void PrintReproduction() {
  std::printf("=== Query server: overload sheds, deadlines hold ===\n");
  ServerOptions sopts;
  sopts.admission.max_concurrent = 1;
  sopts.admission.max_queued_heavy = 1;
  Harness h(sopts);
  FailSpec slow;
  slow.mode = FailMode::kLatency;
  slow.latency_ms = 20;
  FailPoints::Arm("engine.grounding", slow);
  auto client = ServerClient::Connect("127.0.0.1", h.server->port());
  if (client.ok()) {
    std::vector<uint64_t> ids;
    ClientQueryOptions qopts;
    qopts.multiset = true;
    for (int i = 0; i < 4; ++i) {
      auto id = client.value()->SendQuery(kFanOut, qopts);
      if (id.ok()) ids.push_back(id.value());
    }
    int ok = 0, shed = 0;
    for (uint64_t id : ids) {
      auto reply = client.value()->Await(id);
      if (!reply.ok()) continue;
      if (reply.value().status.ok()) {
        ++ok;
      } else if (reply.value().retry_after_ms > 0) {
        ++shed;
      }
    }
    std::printf(
        "4 pipelined queries into a 1-running/1-queued server: %d answered, "
        "%d shed with kResourceExhausted + retry-after — bounded delay for "
        "the admitted, an explicit signal for the rest.\n\n",
        ok, shed);
  }
  FailPoints::DisarmAll();
}

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Ablation: incremental maintenance of materialized dynamic views vs. full
// rematerialization (the Fig. 6 architecture's "sources evolve" direction).
//
// Shape: per-insert incremental cost is O(|delta| × body) for partition
// views and O(affected groups) for pivots, while rematerialization is
// O(|base|) — the gap widens linearly with base size.

#include <memory>
#include <benchmark/benchmark.h>

#include <cstdio>

#include "engine/query_engine.h"
#include "schemasql/view_maintainer.h"
#include "schemasql/view_materializer.h"
#include "workload/stock_data.h"

namespace dynview {
namespace {

constexpr char kPartitionView[] =
    "create view mat::C(date, price) as "
    "select D, P from I::stock T, T.company C, T.date D, T.price P";
constexpr char kPivotView[] =
    "create view mat::stock(date, C) as "
    "select D, P from I::stock T, T.company C, T.date D, T.price P";

std::unique_ptr<Catalog> MakeCatalog(int companies, int dates, const char* view_sql) {
  auto catalog = std::make_unique<Catalog>();
  StockGenConfig cfg;
  cfg.num_companies = companies;
  cfg.num_dates = dates;
  InstallStockS1(catalog.get(), "I", GenerateStockS1(cfg));
  QueryEngine engine(catalog.get(), "I");
  ViewMaterializer::MaterializeSql(view_sql, &engine, catalog.get(), "mat")
      .value();
  return catalog;
}

Row NewRow(int i) {
  return {Value::String(CompanyName(i % 7)),
          Value::MakeDate(Date::Parse("1999-01-01").value().AddDays(i)),
          Value::Int(100 + i % 300)};
}

void PrintReproduction() {
  std::printf("=== Incremental maintenance vs. rematerialization ===\n");
  auto catalog = MakeCatalog(10, 50, kPartitionView);
  auto m = ViewMaintainer::CreateFromSql(kPartitionView, catalog.get(), "I", "mat");
  if (!m.ok()) {
    std::printf("maintainer unavailable: %s\n", m.status().ToString().c_str());
    return;
  }
  m.value().ApplyInserts({NewRow(0), NewRow(1)}).ToString();
  std::printf("2 inserts propagated; mat now has %zu relations\n\n",
              catalog->GetDatabase("mat").value()->num_tables());
}

void BM_IncrementalInsertPartition(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)),
                                kPartitionView);
  auto m = ViewMaintainer::CreateFromSql(kPartitionView, catalog.get(), "I", "mat")
               .value();
  int i = 0;
  for (auto _ : state) {
    auto st = m.ApplyInserts({NewRow(i++)});
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_IncrementalInsertPartition)
    ->Args({10, 100})
    ->Args({10, 1000})
    ->Args({50, 1000});

void BM_RematerializePartition(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)),
                                kPartitionView);
  QueryEngine engine(catalog.get(), "I");
  for (auto _ : state) {
    Catalog target;
    auto r = ViewMaterializer::MaterializeSql(kPartitionView, &engine,
                                              &target, "mat");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RematerializePartition)
    ->Args({10, 100})
    ->Args({10, 1000})
    ->Args({50, 1000});

void BM_IncrementalInsertPivot(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)), kPivotView);
  auto m =
      ViewMaintainer::CreateFromSql(kPivotView, catalog.get(), "I", "mat").value();
  int i = 0;
  for (auto _ : state) {
    auto st = m.ApplyInserts({NewRow(i++)});
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_IncrementalInsertPivot)->Args({10, 100})->Args({10, 1000});

void BM_RematerializePivot(benchmark::State& state) {
  auto catalog = MakeCatalog(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)), kPivotView);
  QueryEngine engine(catalog.get(), "I");
  for (auto _ : state) {
    Catalog target;
    auto r =
        ViewMaterializer::MaterializeSql(kPivotView, &engine, &target, "mat");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RematerializePivot)->Args({10, 100})->Args({10, 1000});

}  // namespace
}  // namespace dynview

int main(int argc, char** argv) {
  dynview::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

#ifndef DYNVIEW_PLAN_CACHE_FINGERPRINT_H_
#define DYNVIEW_PLAN_CACHE_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/value.h"
#include "sql/ast.h"

namespace dynview {

/// How literals participate in the fingerprint.
///
/// kExact keeps them: two queries share a fingerprint only when they are the
/// same query modulo whitespace and identifier/keyword case. This is the
/// mode the plan cache keys on — Alg. 5.1's translation decisions (which
/// source view is usable, how a predicate restricts a grounding) depend on
/// literal values, so caching a rewriting across different literals would be
/// unsound.
///
/// kParameterized replaces every literal by a positional `?N` marker and
/// collects the stripped values — the *shape* identity used to label
/// prepared-query templates and to group repeated traffic in diagnostics.
enum class FingerprintMode { kExact, kParameterized };

/// A normalized query identity: a canonical rendering (AST-derived, so
/// whitespace-insensitive; lowercased outside string literals, so case-
/// insensitive without touching data values) plus its FNV-1a 64-bit hash.
struct QueryFingerprint {
  uint64_t hash = 0;
  std::string normalized;
  /// kParameterized only: the stripped literal values in marker order.
  std::vector<Value> literals;

  /// 16 lowercase hex digits of `hash` — the compact form shown in EXPLAIN,
  /// AnswerResult and dynview-lint --show-fingerprint.
  std::string Hex() const;
};

/// Fingerprints a parsed statement (all UNION branches).
QueryFingerprint FingerprintStatement(const SelectStmt& stmt,
                                      FingerprintMode mode);

/// Parses `sql` as a SELECT and fingerprints it.
Result<QueryFingerprint> FingerprintSql(const std::string& sql,
                                        FingerprintMode mode);

/// FNV-1a 64-bit over `s` (exposed for tests and for composing cache keys).
uint64_t Fnv1a64(const std::string& s);

}  // namespace dynview

#endif  // DYNVIEW_PLAN_CACHE_FINGERPRINT_H_

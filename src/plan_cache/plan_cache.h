#ifndef DYNVIEW_PLAN_CACHE_PLAN_CACHE_H_
#define DYNVIEW_PLAN_CACHE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dynview {

/// What a versioned cache lookup found. kStaleMiss means the key was present
/// but pinned to an older catalog version: the entry is invalidated (erased)
/// and the caller recompiles — the MVCC-lite snapshot versioning gives exact
/// staleness detection for free, no TTLs or epoch guesses.
enum class CacheLookupOutcome { kHit, kMiss, kStaleMiss };

/// Cumulative counters across all shards since construction (or Clear — the
/// counters survive Clear; only entries are dropped).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
};

/// A bounded, sharded LRU map from string keys to shared values, each entry
/// pinned to a catalog snapshot version. Repeated query traffic hits in one
/// shard lock + one hash probe; entries whose version no longer matches the
/// pinned snapshot die lazily at lookup (counted as invalidations).
///
/// Sharding keeps concurrent Answer calls on one IntegrationSystem from
/// serializing on a single mutex; within a shard, LRU order is maintained by
/// splicing a per-shard recency list. Values are shared_ptr so a hit stays
/// valid after a concurrent eviction or Clear.
template <typename V>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry bound, split evenly across `num_shards`
  /// (each shard holds at least one entry).
  explicit ShardedLruCache(size_t capacity = 256, size_t num_shards = 8) {
    if (num_shards == 0) num_shards = 1;
    if (num_shards > capacity && capacity > 0) num_shards = capacity;
    per_shard_cap_ = capacity == 0 ? 1 : (capacity + num_shards - 1) / num_shards;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// The value under `key` when present AND pinned to `version`; nullptr
  /// otherwise. A version mismatch erases the entry (lazy invalidation).
  /// `outcome` (optional) reports which of the three cases happened.
  std::shared_ptr<V> Lookup(const std::string& key, uint64_t version,
                            CacheLookupOutcome* outcome = nullptr) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.stats.misses;
      if (outcome != nullptr) *outcome = CacheLookupOutcome::kMiss;
      return nullptr;
    }
    if (it->second.version != version) {
      s.lru.erase(it->second.lru_it);
      s.map.erase(it);
      ++s.stats.invalidations;
      ++s.stats.misses;
      if (outcome != nullptr) *outcome = CacheLookupOutcome::kStaleMiss;
      return nullptr;
    }
    ++s.stats.hits;
    s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
    if (outcome != nullptr) *outcome = CacheLookupOutcome::kHit;
    return it->second.value;
  }

  /// Inserts (or replaces) `key` → `value` pinned to `version`. Returns the
  /// number of LRU entries evicted to stay within capacity.
  size_t Insert(const std::string& key, uint64_t version,
                std::shared_ptr<V> value) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      it->second.version = version;
      it->second.value = std::move(value);
      s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
      return 0;
    }
    s.lru.push_front(key);
    s.map.emplace(key, Entry{version, std::move(value), s.lru.begin()});
    size_t evicted = 0;
    while (s.map.size() > per_shard_cap_) {
      s.map.erase(s.lru.back());
      s.lru.pop_back();
      ++evicted;
    }
    s.stats.evictions += evicted;
    return evicted;
  }

  /// Drops `key` if present (failpoint poisoning, explicit invalidation).
  bool Erase(const std::string& key) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    s.lru.erase(it->second.lru_it);
    s.map.erase(it);
    return true;
  }

  /// Drops every entry (catalog shape changed: new source/index/view). Keeps
  /// the cumulative stats.
  void Clear() {
    for (auto& sp : shards_) {
      std::lock_guard<std::mutex> lock(sp->mu);
      sp->map.clear();
      sp->lru.clear();
    }
  }

  PlanCacheStats Stats() const {
    PlanCacheStats total;
    for (const auto& sp : shards_) {
      std::lock_guard<std::mutex> lock(sp->mu);
      total.hits += sp->stats.hits;
      total.misses += sp->stats.misses;
      total.evictions += sp->stats.evictions;
      total.invalidations += sp->stats.invalidations;
    }
    return total;
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& sp : shards_) {
      std::lock_guard<std::mutex> lock(sp->mu);
      n += sp->map.size();
    }
    return n;
  }

 private:
  struct Entry {
    uint64_t version = 0;
    std::shared_ptr<V> value;
    typename std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<std::string> lru;  // Front = most recently used.
    std::unordered_map<std::string, Entry> map;
    PlanCacheStats stats;
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  size_t per_shard_cap_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dynview

#endif  // DYNVIEW_PLAN_CACHE_PLAN_CACHE_H_

#include "plan_cache/fingerprint.h"

#include <cctype>
#include <cstdio>
#include <functional>
#include <memory_resource>

#include "sql/parser.h"

namespace dynview {

namespace {

/// Lowercases everything outside single-quoted string literals, so the
/// normalized form is case-insensitive for identifiers and keywords but
/// never rewrites data values ('NYSE' and 'nyse' stay distinct). Scratch
/// runs through a stack-adjacent pmr arena: fingerprinting happens on every
/// uncached Answer, so the normalization pass should not hit the global
/// allocator.
std::string NormalizeCase(const std::string& in) {
  char stack_buf[512];
  std::pmr::monotonic_buffer_resource arena(stack_buf, sizeof(stack_buf));
  std::pmr::string tmp(&arena);
  tmp.reserve(in.size());
  bool in_string = false;
  for (char c : in) {
    if (c == '\'') in_string = !in_string;
    tmp.push_back(in_string
                      ? c
                      : static_cast<char>(
                            std::tolower(static_cast<unsigned char>(c))));
  }
  return std::string(tmp.begin(), tmp.end());
}

/// Pre-order walk over every expression of `stmt`, all UNION branches.
void ForEachExprTree(SelectStmt* stmt,
                     const std::function<void(Expr*)>& fn) {
  std::function<void(Expr*)> walk = [&](Expr* e) {
    if (e == nullptr) return;
    fn(e);
    walk(e->left.get());
    walk(e->right.get());
  };
  for (SelectStmt* s = stmt; s != nullptr; s = s->union_next.get()) {
    for (SelectItem& item : s->select_list) walk(item.expr.get());
    walk(s->where.get());
    for (auto& g : s->group_by) walk(g.get());
    walk(s->having.get());
    for (OrderItem& o : s->order_by) walk(o.expr.get());
  }
}

}  // namespace

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string QueryFingerprint::Hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

QueryFingerprint FingerprintStatement(const SelectStmt& stmt,
                                      FingerprintMode mode) {
  QueryFingerprint fp;
  if (mode == FingerprintMode::kExact) {
    fp.normalized = NormalizeCase(stmt.ToString());
  } else {
    // Parameterize on a clone: every literal position (including positions
    // already holding a `?` parameter) is renumbered in render order, so
    // equal shapes normalize identically regardless of how their markers
    // were originally numbered.
    std::unique_ptr<SelectStmt> shape = stmt.Clone();
    int next = 0;
    ForEachExprTree(shape.get(), [&](Expr* e) {
      if (e->kind != ExprKind::kLiteral) return;
      if (e->param_index < 0) fp.literals.push_back(e->literal);
      e->param_index = next++;
    });
    fp.normalized = NormalizeCase(shape->ToString());
  }
  fp.hash = Fnv1a64(fp.normalized);
  return fp;
}

Result<QueryFingerprint> FingerprintSql(const std::string& sql,
                                        FingerprintMode mode) {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                      Parser::ParseSelect(sql));
  return FingerprintStatement(*stmt, mode);
}

}  // namespace dynview

#include "workload/stock_data.h"

#include "restructure/restructure.h"

namespace dynview {

namespace {

/// SplitMix64: deterministic, well-distributed, and stable across platforms.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Date BaseDate() { return Date::Parse("1998-01-01").value(); }

}  // namespace

std::string CompanyName(int i) {
  std::string suffix;
  int n = i;
  do {
    suffix.insert(suffix.begin(), static_cast<char>('A' + (n % 26)));
    n = n / 26 - 1;
  } while (n >= 0);
  return "co" + suffix;
}

std::string ExchangeName(int i) {
  static const char* kNames[] = {"nyse", "nasdaq", "amex"};
  return kNames[i % 3];
}

std::string CompanyTypeName(int i) {
  static const char* kNames[] = {"hitech", "retail", "energy", "finance"};
  return kNames[i % 4];
}

Table GenerateStockS1(const StockGenConfig& config) {
  Table t(Schema({{"company", TypeKind::kString},
                  {"date", TypeKind::kDate},
                  {"price", TypeKind::kInt}}));
  uint64_t state = config.seed;
  for (int c = 0; c < config.num_companies; ++c) {
    std::string name = CompanyName(c);
    for (int d = 0; d < config.num_dates; ++d) {
      for (int k = 0; k < config.prices_per_day; ++k) {
        int64_t price = 50 + static_cast<int64_t>(NextRandom(&state) % 350);
        t.AppendRowUnchecked({Value::String(name),
                              Value::MakeDate(BaseDate().AddDays(d)),
                              Value::Int(price)});
      }
    }
  }
  return t;
}

Table GenerateStockDb0(const StockGenConfig& config) {
  Table s1 = GenerateStockS1(config);
  Table t(Schema({{"company", TypeKind::kString},
                  {"date", TypeKind::kDate},
                  {"price", TypeKind::kInt},
                  {"exch", TypeKind::kString}}));
  // Exchange is a function of the company so the nyse-restriction views of
  // Fig. 13 select a stable subset.
  for (const Row& r : s1.rows()) {
    const std::string& co = r[0].as_string();
    int idx = 0;
    for (char ch : co) idx = idx * 31 + ch;
    Row nr = r;
    nr.push_back(Value::String(ExchangeName(idx < 0 ? -idx : idx)));
    t.AppendRowUnchecked(std::move(nr));
  }
  return t;
}

Table GenerateCoType(const StockGenConfig& config) {
  Table t(Schema({{"co", TypeKind::kString}, {"type", TypeKind::kString}}));
  for (int c = 0; c < config.num_companies; ++c) {
    t.AppendRowUnchecked(
        {Value::String(CompanyName(c)), Value::String(CompanyTypeName(c))});
  }
  return t;
}

Status InstallStockS1(Catalog* catalog, const std::string& db,
                      const Table& s1) {
  return catalog->PutTable(db, "stock", s1);
}

Status InstallStockS2(Catalog* catalog, const std::string& db,
                      const Table& s1) {
  DV_ASSIGN_OR_RETURN(auto parts, PartitionByColumn(s1, "company"));
  // One commit: readers see every per-company partition or none.
  return catalog
      ->Mutate([&](CatalogTxn& txn) {
        Database* d = txn.GetOrCreateDatabase(db);
        for (auto& [name, table] : parts) {
          d->PutTable(name, std::move(table));
        }
        return Status::OK();
      })
      .status();
}

Status InstallStockS3(Catalog* catalog, const std::string& db,
                      const Table& s1) {
  DV_ASSIGN_OR_RETURN(Table pivoted, Pivot(s1, {"date"}, "company", "price"));
  return catalog->PutTable(db, "stock", std::move(pivoted));
}

Status InstallDb0(Catalog* catalog, const std::string& db,
                  const StockGenConfig& config) {
  return catalog
      ->Mutate([&](CatalogTxn& txn) {
        Database* d = txn.GetOrCreateDatabase(db);
        d->PutTable("stock", GenerateStockDb0(config));
        d->PutTable("cotype", GenerateCoType(config));
        return Status::OK();
      })
      .status();
}

}  // namespace dynview

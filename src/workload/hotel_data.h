#ifndef DYNVIEW_WORKLOAD_HOTEL_DATA_H_
#define DYNVIEW_WORKLOAD_HOTEL_DATA_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "relational/catalog.h"

namespace dynview {

/// Deterministic generator for the paper's DataWeb hotel example (Figs. 3,
/// 7 and 9). The generated database contains:
///   hotel(hid, name, city, country, chain, class)
///   hotelpricing(hid, sgl_lo, sgl_hi, dbl_lo, dbl_hi, ste_lo, ste_hi)
///       — one column per (room type, season) pair: the schema whose price
///         attributes a schema-independent query must quantify over (Fig. 7)
///   resort(hid, beach, season)        — subclass of hotel
///   confctr(hid, rooms_meeting, capacity)
/// plus the interface schemas of the paper's architecture:
///   hprice(hid, rmtype, price)        — unpivoted pricing (Fig. 7)
///   hotelwords(hid, attribute, value) — one row per attribute value (Fig. 9)
struct HotelGenConfig {
  int num_hotels = 50;
  uint64_t seed = 7;
};

/// Installs all base tables into database `db` of `catalog`.
Status InstallHotelDatabase(Catalog* catalog, const std::string& db,
                            const HotelGenConfig& config);

/// Installs the hprice interface schema, derived from hotelpricing (the
/// hotelpricing table then becomes a dynamic view over hprice).
Status InstallHprice(Catalog* catalog, const std::string& db);

/// Installs the hotelwords interface schema, derived from hotel (Fig. 9).
Status InstallHotelwords(Catalog* catalog, const std::string& db);

/// Chain names cycle through a fixed list including "Sofitel" so the
/// paper's keyword-search examples always have matches.
std::string HotelChainName(int i);
std::string HotelCityName(int i);
std::string HotelCountryName(int i);

}  // namespace dynview

#endif  // DYNVIEW_WORKLOAD_HOTEL_DATA_H_

#include "workload/tickets_data.h"

#include <cstdio>

#include "restructure/restructure.h"

namespace dynview {

namespace {

uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

const char* kJurisdictions[] = {"queens",  "bronx",   "monroe", "albany",
                                "suffolk", "niagara", "erie",   "kings"};
const char* kInfractions[] = {"dui",      "speeding", "parking",
                              "redlight", "noseat",   "phone"};

/// The integration-layout table, from which both layouts derive.
Table GenerateIntegration(const TicketsGenConfig& config) {
  Table t(Schema({{"state", TypeKind::kString},
                  {"tnum", TypeKind::kInt},
                  {"lic", TypeKind::kString},
                  {"infr", TypeKind::kString}}));
  uint64_t state = config.seed;
  int64_t tnum = 1000;
  for (int j = 0; j < config.num_jurisdictions; ++j) {
    std::string name = JurisdictionName(j);
    for (int k = 0; k < config.tickets_per_jurisdiction; ++k) {
      int driver = static_cast<int>(NextRandom(&state) %
                                    static_cast<uint64_t>(config.num_drivers));
      bool dui = static_cast<int>(NextRandom(&state) % 100) <
                 config.dui_percent;
      std::string infr =
          dui ? "dui"
              : kInfractions[1 + NextRandom(&state) % 5];  // Non-dui kinds.
      t.AppendRowUnchecked({Value::String(name), Value::Int(tnum++),
                            Value::String(LicenseName(driver)),
                            Value::String(infr)});
    }
  }
  return t;
}

}  // namespace

std::string JurisdictionName(int i) {
  std::string base = kJurisdictions[i % 8];
  if (i < 8) return base;
  return base + std::to_string(i / 8);
}

std::string InfractionName(int i) { return kInfractions[i % 6]; }

std::string LicenseName(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "lic%04d", i);
  return buf;
}

Status InstallTicketJurisdictions(Catalog* catalog, const std::string& db,
                                  const TicketsGenConfig& config) {
  Table integration = GenerateIntegration(config);
  DV_ASSIGN_OR_RETURN(auto parts, PartitionByColumn(integration, "state"));
  // One commit: readers see every jurisdiction table or none.
  return catalog
      ->Mutate([&](CatalogTxn& txn) {
        Database* d = txn.GetOrCreateDatabase(db);
        for (auto& [name, table] : parts) d->PutTable(name, std::move(table));
        return Status::OK();
      })
      .status();
}

Status InstallTicketsIntegration(Catalog* catalog, const std::string& db,
                                 const TicketsGenConfig& config) {
  return catalog->PutTable(db, "tickets", GenerateIntegration(config));
}

}  // namespace dynview

#ifndef DYNVIEW_WORKLOAD_STOCK_DATA_H_
#define DYNVIEW_WORKLOAD_STOCK_DATA_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "relational/catalog.h"

namespace dynview {

/// Deterministic generator for the paper's stock examples (Figs. 1 and 10).
/// The same logical data is installed under the three schematically
/// heterogeneous layouts:
///   s1: stock(company, date, price)            — all data as data
///   s2: one relation per company: <co>(date, price)
///   s3: stock(date, <coA>, <coB>, ...)          — one column per company
/// and, for Sec. 4/5's Fig. 10 federation:
///   db0: stock(company, date, price, exch), cotype(co, type)
struct StockGenConfig {
  int num_companies = 3;
  int num_dates = 5;
  /// Rows per (company, date). >1 introduces duplicate multiplicities — the
  /// instances that expose the capacity loss of attribute views (Fig. 14).
  int prices_per_day = 1;
  uint64_t seed = 42;
};

/// "coA", "coB", ..., "coZ", "coAA", ...
std::string CompanyName(int i);

/// Cycles through "nyse", "nasdaq", "amex".
std::string ExchangeName(int i);

/// Cycles through "hitech", "retail", "energy", "finance".
std::string CompanyTypeName(int i);

/// The s1-layout table stock(company, date, price). Dates start 1998-01-01.
/// Prices are deterministic in [50, 400).
Table GenerateStockS1(const StockGenConfig& config);

/// db0-layout stock(company, date, price, exch) consistent with
/// GenerateStockS1 for the shared columns.
Table GenerateStockDb0(const StockGenConfig& config);

/// cotype(co, type) assigning each company a type (Fig. 10 / Q2 of Fig. 13).
Table GenerateCoType(const StockGenConfig& config);

/// Installs s1 = {stock} into database `db` of `catalog`.
Status InstallStockS1(Catalog* catalog, const std::string& db, const Table& s1);

/// Installs the s2 layout: one table per company, derived from `s1`.
Status InstallStockS2(Catalog* catalog, const std::string& db, const Table& s1);

/// Installs the s3 layout: a single pivoted table, derived from `s1`
/// (Sec. 3.1 full-outer-join semantics; duplicates cross-product).
Status InstallStockS3(Catalog* catalog, const std::string& db, const Table& s1);

/// Installs db0 = {stock, cotype} (Fig. 10).
Status InstallDb0(Catalog* catalog, const std::string& db,
                  const StockGenConfig& config);

}  // namespace dynview

#endif  // DYNVIEW_WORKLOAD_STOCK_DATA_H_

#ifndef DYNVIEW_WORKLOAD_TICKETS_DATA_H_
#define DYNVIEW_WORKLOAD_TICKETS_DATA_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "relational/catalog.h"

namespace dynview {

/// Deterministic generator for the traffic-ticket example (Figs. 4 and 8):
/// per-jurisdiction relations whose *names* are jurisdiction names, plus the
/// first-order integration layout tickets(state, tnum, lic, infr).
///
/// Each jurisdiction holds the tickets it issued; some drivers collect
/// tickets across jurisdictions, which makes the Fig. 4 data-fusion
/// self-join (the `dui` view) non-trivial.
struct TicketsGenConfig {
  int num_jurisdictions = 4;
  int tickets_per_jurisdiction = 50;
  int num_drivers = 40;  // Licenses shared across jurisdictions.
  uint64_t seed = 13;
  /// Fraction (percent) of tickets that are 'dui' infractions.
  int dui_percent = 10;
};

std::string JurisdictionName(int i);  // "queens", "bronx", "monroe", ...
std::string InfractionName(int i);    // "dui", "speeding", ...
std::string LicenseName(int i);       // "lic0042"

/// Installs one relation per jurisdiction into `db` (the Fig. 4 layout).
Status InstallTicketJurisdictions(Catalog* catalog, const std::string& db,
                                  const TicketsGenConfig& config);

/// Installs the integration layout tickets(state, tnum, lic, infr) into
/// `db`, consistent with InstallTicketJurisdictions for the same config.
Status InstallTicketsIntegration(Catalog* catalog, const std::string& db,
                                 const TicketsGenConfig& config);

}  // namespace dynview

#endif  // DYNVIEW_WORKLOAD_TICKETS_DATA_H_

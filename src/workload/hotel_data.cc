#include "workload/hotel_data.h"

#include "restructure/restructure.h"

namespace dynview {

namespace {

uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

const char* kChains[] = {"Sofitel", "Hilton", "Ibis", "Ritz", "Palace"};
const char* kCities[] = {"Athens", "Paris", "Rome", "Madrid", "Lisbon",
                         "Berlin", "Vienna"};
const char* kCountries[] = {"Greece", "France", "Italy", "Spain", "Portugal",
                            "Germany", "Austria"};
const char* kClasses[] = {"luxury", "business", "budget"};

}  // namespace

std::string HotelChainName(int i) { return kChains[i % 5]; }
std::string HotelCityName(int i) { return kCities[i % 7]; }
std::string HotelCountryName(int i) { return kCountries[i % 7]; }

Status InstallHotelDatabase(Catalog* catalog, const std::string& db,
                            const HotelGenConfig& config) {
  uint64_t state = config.seed;

  Table hotel(Schema({{"hid", TypeKind::kInt},
                      {"name", TypeKind::kString},
                      {"city", TypeKind::kString},
                      {"country", TypeKind::kString},
                      {"chain", TypeKind::kString},
                      {"class", TypeKind::kString}}));
  Table pricing(Schema({{"hid", TypeKind::kInt},
                        {"sgl_lo", TypeKind::kInt},
                        {"sgl_hi", TypeKind::kInt},
                        {"dbl_lo", TypeKind::kInt},
                        {"dbl_hi", TypeKind::kInt},
                        {"ste_lo", TypeKind::kInt},
                        {"ste_hi", TypeKind::kInt}}));
  Table resort(Schema({{"hid", TypeKind::kInt},
                       {"beach", TypeKind::kString},
                       {"season", TypeKind::kString}}));
  Table confctr(Schema({{"hid", TypeKind::kInt},
                        {"rooms_meeting", TypeKind::kInt},
                        {"capacity", TypeKind::kInt}}));

  for (int h = 0; h < config.num_hotels; ++h) {
    std::string chain = HotelChainName(h);
    std::string city = HotelCityName(h);
    // Keep city and country consistent (same cycle length).
    std::string country = HotelCountryName(h);
    std::string name = chain + " " + city + " " + std::to_string(h);
    hotel.AppendRowUnchecked({Value::Int(h), Value::String(name),
                              Value::String(city), Value::String(country),
                              Value::String(chain),
                              Value::String(kClasses[h % 3])});
    // Low-season prices in [40, 140); high adds [20, 80); doubles and
    // suites scale up. Some hotels dip under $70 for the Fig. 7 query.
    int64_t base = 40 + static_cast<int64_t>(NextRandom(&state) % 100);
    int64_t bump = 20 + static_cast<int64_t>(NextRandom(&state) % 60);
    pricing.AppendRowUnchecked(
        {Value::Int(h), Value::Int(base), Value::Int(base + bump),
         Value::Int(base + 30), Value::Int(base + bump + 40),
         Value::Int(base + 90), Value::Int(base + bump + 120)});
    if (h % 3 == 0) {
      resort.AppendRowUnchecked(
          {Value::Int(h), Value::String(h % 6 == 0 ? "private" : "public"),
           Value::String(h % 2 == 0 ? "summer" : "all-year")});
    }
    if (h % 4 == 0) {
      confctr.AppendRowUnchecked(
          {Value::Int(h), Value::Int(2 + static_cast<int64_t>(h % 7)),
           Value::Int(100 + static_cast<int64_t>(NextRandom(&state) % 400))});
    }
  }
  // One commit: concurrent readers see the whole hotel schema or none of it.
  return catalog
      ->Mutate([&](CatalogTxn& txn) {
        Database* d = txn.GetOrCreateDatabase(db);
        d->PutTable("hotel", std::move(hotel));
        d->PutTable("hotelpricing", std::move(pricing));
        d->PutTable("resort", std::move(resort));
        d->PutTable("confctr", std::move(confctr));
        return Status::OK();
      })
      .status();
}

Status InstallHprice(Catalog* catalog, const std::string& db) {
  return catalog
      ->Mutate([&](CatalogTxn& txn) -> Status {
        DV_ASSIGN_OR_RETURN(Database * d, txn.GetMutableDatabase(db));
        DV_ASSIGN_OR_RETURN(const Table* pricing, d->GetTable("hotelpricing"));
        // Unpivot hotelpricing(hid, <rmtype columns>) → hprice(hid, rmtype,
        // price): the interface schema representing pricing attribute names
        // as data.
        DV_ASSIGN_OR_RETURN(Table hprice,
                            Unpivot(*pricing, {"hid"}, "rmtype", "price"));
        d->PutTable("hprice", std::move(hprice));
        return Status::OK();
      })
      .status();
}

Status InstallHotelwords(Catalog* catalog, const std::string& db) {
  return catalog
      ->Mutate([&](CatalogTxn& txn) -> Status {
        DV_ASSIGN_OR_RETURN(Database * d, txn.GetMutableDatabase(db));
        DV_ASSIGN_OR_RETURN(const Table* hotel, d->GetTable("hotel"));
        // Unpivot hotel(hid, attrs...) → hotelwords(hid, attribute, value):
        // one row per attribute value of each hotel (Fig. 9).
        DV_ASSIGN_OR_RETURN(Table words,
                            Unpivot(*hotel, {"hid"}, "attribute", "value"));
        d->PutTable("hotelwords", std::move(words));
        return Status::OK();
      })
      .status();
}

}  // namespace dynview

#include "core/view_definition.h"

#include <algorithm>

#include "common/str_util.h"
#include "core/normalize.h"
#include "sql/parser.h"

namespace dynview {

void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kLogic && e->op == BinaryOp::kAnd) {
    CollectConjuncts(e->left.get(), out);
    CollectConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

Result<ViewDefinition> ViewDefinition::FromSql(
    const std::string& create_view_sql, const CatalogReader& catalog,
    const std::string& default_db) {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<CreateViewStmt> stmt,
                      Parser::ParseCreateView(create_view_sql));
  return Create(*stmt, catalog, default_db);
}

Result<ViewDefinition> ViewDefinition::Create(const CreateViewStmt& stmt,
                                              const CatalogReader& catalog,
                                              const std::string& default_db) {
  ViewDefinition v;
  v.stmt_ = stmt.Clone();
  if (v.stmt_->query == nullptr || v.stmt_->query->union_next != nullptr) {
    return Status::Unsupported(
        "Sec. 5 machinery covers single-block view bodies (no UNION)");
  }
  // Normalize the body to explicit-variable form, then (re)bind the view so
  // header labels resolve against the final variable set.
  DV_ASSIGN_OR_RETURN(BoundQuery body_bq,
                      NormalizeQuery(v.stmt_->query.get(), catalog,
                                     default_db));
  (void)body_bq;
  DV_ASSIGN_OR_RETURN(v.bound_, Binder::BindView(v.stmt_.get()));
  if (v.bound_.body.higher_order) {
    return Status::Unsupported(
        "view bodies with schema variables are outside the dynamic-view "
        "class (Def. 3.1); sources must be SQL or dynamic views on I");
  }
  if (v.stmt_->attrs.size() != v.stmt_->query->select_list.size()) {
    return Status::BindError("view header arity does not match select list");
  }

  // Dom(A) per output position.
  for (size_t i = 0; i < v.stmt_->query->select_list.size(); ++i) {
    const Expr& e = *v.stmt_->query->select_list[i].expr;
    if (e.kind == ExprKind::kVarRef) {
      v.dom_.push_back(e.var_name);
    } else if (e.kind == ExprKind::kAgg) {
      v.dom_.push_back("#agg" + std::to_string(i));
    } else {
      return Status::Unsupported(
          "view select items must be variables (or aggregates) after "
          "normalization; got: " + e.ToString());
    }
  }

  // View variables and Out(V).
  auto add_view_var = [&](const NameTerm& t) {
    if (t.is_variable) v.view_variables_.push_back(ToLower(t.text));
  };
  add_view_var(v.stmt_->db);
  add_view_var(v.stmt_->name);
  for (const NameTerm& a : v.stmt_->attrs) add_view_var(a);

  std::vector<std::string> out = v.view_variables_;
  for (const std::string& s : v.dom_) {
    if (s.rfind("#agg", 0) == 0) continue;
    out.push_back(ToLower(s));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  v.out_ = std::move(out);

  // Tables(V) and tuple variables.
  for (const FromItem& f : v.stmt_->query->from_items) {
    if (f.kind == FromItemKind::kTupleVar) {
      std::string db = f.db.empty() ? default_db : f.db.text;
      v.tables_.push_back(TableRef{ToLower(db), ToLower(f.rel.text)});
      v.tuple_vars_.push_back(f.var);
    } else if (f.kind == FromItemKind::kDomainVar) {
      v.domain_decls_[ToLower(f.var)] = DomainDecl{f.tuple, f.attr};
    }
  }

  CollectConjuncts(v.stmt_->query->where.get(), &v.conds_);
  return v;
}

bool ViewDefinition::IsOutput(const std::string& var_name) const {
  std::string key = ToLower(var_name);
  return std::find(out_.begin(), out_.end(), key) != out_.end();
}

bool ViewDefinition::HasAttributeVariables() const {
  for (size_t i = 0; i < stmt_->attrs.size(); ++i) {
    if (stmt_->attrs[i].is_variable) return true;
  }
  return false;
}

const ViewDefinition::DomainDecl* ViewDefinition::FindDomainDecl(
    const std::string& var_name) const {
  auto it = domain_decls_.find(ToLower(var_name));
  if (it == domain_decls_.end()) return nullptr;
  return &it->second;
}

bool ViewDefinition::IsAggregateView() const {
  if (!stmt_->query->group_by.empty()) return true;
  for (const SelectItem& item : stmt_->query->select_list) {
    if (item.expr->ContainsAggregate()) return true;
  }
  return false;
}

bool ViewDefinition::IsStaleAgainst(const CatalogSnapshot& snapshot) const {
  if (!fenced_) return false;
  uint64_t built = materialized_version_.load();
  // A database that disappeared entirely reports version 0, which would
  // read as "older than the build" — it is the opposite: everything the
  // fence protected is gone.
  for (const TableRef& t : tables_) {
    if (!snapshot.HasDatabase(t.db)) return true;
    if (snapshot.DatabaseVersion(t.db) > built) return true;
  }
  for (const TableRef& t : materialization_) {
    if (!snapshot.HasDatabase(t.db)) return true;
    if (snapshot.DatabaseVersion(t.db) > built) return true;
  }
  return false;
}

}  // namespace dynview

#ifndef DYNVIEW_CORE_NORMALIZE_H_
#define DYNVIEW_CORE_NORMALIZE_H_

#include <string>

#include "common/result.h"
#include "relational/catalog.h"
#include "sql/ast.h"
#include "sql/binder.h"

namespace dynview {

/// Sec. 5 of the paper assumes queries "explicitly declare all tuple and
/// domain variables" — no relation-name shorthands, no `T.attr` shorthands.
/// These passes bring an arbitrary parsed query into that normal form so the
/// variable-mapping machinery (Def. 5.1) is total and purely syntactic.

/// Rewrites bare column references (`select price from stock T`) into
/// qualified `T.price` form by locating the unique tuple variable whose
/// relation carries the attribute (consults `catalog`). The statement must
/// already be bound.
Status ResolveBareColumns(SelectStmt* stmt, const BoundQuery& bq,
                          const CatalogReader& catalog,
                          const std::string& default_db);

/// Replaces every `T.attr` column reference in expressions with a domain
/// variable, declaring one when absent. Synthesized names derive from the
/// attribute name. The statement must already be bound; call
/// Binder::BindBranch again afterwards.
Status ReplaceColumnRefsWithDomainVars(SelectStmt* stmt, const BoundQuery& bq);

/// Declares a domain variable for *every* attribute of every scanned
/// relation (consulting `catalog`), so that a containment mapping can map
/// each view variable to a query variable (Def. 5.1 requires images for all
/// of Var(V)).
Status DeclareAllDomainVars(SelectStmt* stmt, const BoundQuery& bq,
                            const CatalogReader& catalog,
                            const std::string& default_db);

/// Runs all passes in order and rebinds. After this, every data access in
/// the statement goes through an explicitly declared domain variable.
Result<BoundQuery> NormalizeQuery(SelectStmt* stmt, const CatalogReader& catalog,
                                  const std::string& default_db);

}  // namespace dynview

#endif  // DYNVIEW_CORE_NORMALIZE_H_

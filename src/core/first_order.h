#ifndef DYNVIEW_CORE_FIRST_ORDER_H_
#define DYNVIEW_CORE_FIRST_ORDER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace dynview {

/// Sec. 3.2 of the paper: "For a set of queries Q, a schema is first order
/// if all queries in Q can be written in a first order language such as
/// SQL" (Litwin et al.'s first-order normal form, [28]). This analyzer
/// decides that relation for a workload and — when the schema is NOT first
/// order for it — reports which label spaces the queries quantify over and
/// the interface schemas (Fig. 7-style) that would make the workload first
/// order.
struct QuantifiedLabelSpace {
  enum class Kind { kDatabases, kRelationsOf, kAttributesOf };
  Kind kind = Kind::kDatabases;
  std::string db;   // kRelationsOf / kAttributesOf.
  std::string rel;  // kAttributesOf.
  /// How many workload queries quantify over this space.
  int query_count = 0;

  std::string Describe() const;
  /// The restructuring that demotes this label space to data: e.g. for
  /// kAttributesOf, "unpivot db::rel into (key..., attribute, value)".
  std::string SuggestedInterface() const;
};

struct FirstOrderReport {
  /// Index-aligned with the input workload: true if that query is first
  /// order as written.
  std::vector<bool> first_order;
  /// The schema is first order for the workload iff this is empty.
  std::vector<QuantifiedLabelSpace> quantified;

  bool schema_is_first_order() const { return quantified.empty(); }
  std::string Describe() const;
};

/// Parses and analyzes `workload` (SELECT statements). Queries that fail to
/// parse produce an error; binding is syntactic (no catalog access needed).
Result<FirstOrderReport> AnalyzeWorkloadFirstOrder(
    const std::vector<std::string>& workload,
    const std::string& default_db);

}  // namespace dynview

#endif  // DYNVIEW_CORE_FIRST_ORDER_H_

#include "core/translate.h"

#include <set>

#include "common/str_util.h"
#include "core/normalize.h"
#include "sql/parser.h"

namespace dynview {

namespace {

/// Replaces variable references per `renames` (lowercased key → new name).
void RenameRefs(Expr* e, const std::map<std::string, std::string>& renames) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kVarRef) {
    auto it = renames.find(ToLower(e->var_name));
    if (it != renames.end()) e->var_name = it->second;
    return;
  }
  RenameRefs(e->left.get(), renames);
  RenameRefs(e->right.get(), renames);
}

std::unique_ptr<Expr> AndChain(std::vector<std::unique_ptr<Expr>> conds) {
  std::unique_ptr<Expr> acc;
  for (auto& c : conds) {
    if (!acc) {
      acc = std::move(c);
    } else {
      acc = Expr::MakeBinary(ExprKind::kLogic, BinaryOp::kAnd, std::move(acc),
                             std::move(c));
    }
  }
  return acc;
}

bool ExprUsesVar(const Expr& e, const std::string& var_lower) {
  if (e.kind == ExprKind::kVarRef) return ToLower(e.var_name) == var_lower;
  if (e.left && ExprUsesVar(*e.left, var_lower)) return true;
  if (e.right && ExprUsesVar(*e.right, var_lower)) return true;
  return false;
}

bool StmtUsesVar(const SelectStmt& s, const std::string& var_lower) {
  for (const SelectItem& item : s.select_list) {
    if (ExprUsesVar(*item.expr, var_lower)) return true;
  }
  if (s.where && ExprUsesVar(*s.where, var_lower)) return true;
  for (const auto& g : s.group_by) {
    if (ExprUsesVar(*g, var_lower)) return true;
  }
  if (s.having && ExprUsesVar(*s.having, var_lower)) return true;
  for (const OrderItem& o : s.order_by) {
    if (ExprUsesVar(*o.expr, var_lower)) return true;
  }
  return false;
}

}  // namespace

Result<TranslationResult> QueryTranslator::TranslateSql(
    const ViewDefinition& view, const std::string& query_sql,
    bool multiset) const {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                      Parser::ParseSelect(query_sql));
  DV_ASSIGN_OR_RETURN(BoundQuery bq,
                      NormalizeQuery(stmt.get(), *catalog_, default_db_));
  UsabilityChecker checker(catalog_, default_db_);
  Result<UsabilityResult> usable =
      multiset ? checker.CheckMultisetUsable(view, *stmt, bq)
               : checker.CheckSetUsable(view, *stmt, bq);
  DV_RETURN_IF_ERROR(usable.status());
  if (!usable.value().usable) {
    return Status::InvalidArgument("view not usable: " +
                                   usable.value().reason);
  }
  return Translate(view, *stmt, bq, usable.value());
}

Result<TranslationResult> QueryTranslator::TranslateSqlAll(
    const ViewDefinition& view, const std::string& query_sql,
    bool multiset) const {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                      Parser::ParseSelect(query_sql));
  DV_ASSIGN_OR_RETURN(BoundQuery bq,
                      NormalizeQuery(stmt.get(), *catalog_, default_db_));
  UsabilityChecker checker(catalog_, default_db_);
  TranslationResult aggregate;
  size_t applications = 0;
  while (true) {
    Result<UsabilityResult> usable =
        multiset ? checker.CheckMultisetUsable(view, *stmt, bq)
                 : checker.CheckSetUsable(view, *stmt, bq);
    DV_RETURN_IF_ERROR(usable.status());
    if (!usable.value().usable) {
      if (applications == 0) {
        return Status::InvalidArgument("view not usable: " +
                                       usable.value().reason);
      }
      break;
    }
    DV_ASSIGN_OR_RETURN(TranslationResult step,
                        Translate(view, *stmt, bq, usable.value()));
    aggregate.view_tuple_var = step.view_tuple_var;
    for (std::string& tv : step.covered_tuple_vars) {
      aggregate.covered_tuple_vars.push_back(std::move(tv));
    }
    aggregate.absorbed_conjuncts += step.absorbed_conjuncts;
    aggregate.residual_conjuncts = step.residual_conjuncts;
    stmt = std::move(step.query);
    DV_ASSIGN_OR_RETURN(bq, Binder::BindBranch(stmt.get()));
    ++applications;
  }
  aggregate.query = std::move(stmt);
  return aggregate;
}

Result<TranslationResult> QueryTranslator::Translate(
    const ViewDefinition& view, const SelectStmt& query, const BoundQuery& bq,
    const UsabilityResult& usability) const {
  (void)bq;
  if (!usability.usable) {
    return Status::InvalidArgument("Translate called with unusable view");
  }
  const VariableMapping& phi = usability.phi;

  TranslationResult out;
  out.query = query.Clone();
  SelectStmt& q = *out.query;

  // --- Step 1(a): remove φ(Tables(V)) and their domain declarations. ------
  std::set<std::string> covered;  // Lowercased covered tuple variables.
  for (const std::string& tv : view.tuple_vars()) {
    std::string image = phi.Apply(tv);
    if (image.empty()) {
      return Status::Internal("tuple variable '" + tv + "' unmapped");
    }
    covered.insert(ToLower(image));
  }
  std::vector<FromItem> kept;
  for (FromItem& f : q.from_items) {
    if (f.kind == FromItemKind::kTupleVar && covered.count(ToLower(f.var))) {
      out.covered_tuple_vars.push_back(f.var);
      continue;
    }
    if (f.kind == FromItemKind::kDomainVar && covered.count(ToLower(f.tuple))) {
      continue;
    }
    kept.push_back(std::move(f));
  }
  q.from_items = std::move(kept);

  // Fresh tuple variable for the view scan (step 1d).
  std::set<std::string> taken;
  for (const FromItem& f : query.from_items) taken.insert(ToLower(f.var));
  std::string vt = "VT";
  int n = 0;
  while (taken.count(ToLower(vt)) > 0) vt = "VT" + std::to_string(n++);
  out.view_tuple_var = vt;

  // --- Steps 1(b)-(e): declare the view access. ----------------------------
  std::vector<FromItem> access;
  NameTerm db_ref;  // How Q′ refers to the view's database.
  if (view.db_term().empty()) {
    db_ref = NameTerm(default_db_);
  } else if (view.db_term().is_variable) {
    std::string image = phi.Apply(view.db_term().text);
    FromItem dv;
    dv.kind = FromItemKind::kDatabaseVar;
    dv.var = image;
    access.push_back(std::move(dv));
    db_ref = NameTerm(image);
    db_ref.is_variable = true;
  } else {
    db_ref = view.db_term();
  }
  NameTerm rel_ref;
  if (view.rel_term().is_variable) {
    std::string image = phi.Apply(view.rel_term().text);
    FromItem rv;
    rv.kind = FromItemKind::kRelationVar;
    rv.db = db_ref;
    rv.var = image;
    access.push_back(std::move(rv));
    rel_ref = NameTerm(image);
    rel_ref.is_variable = true;
  } else {
    rel_ref = view.rel_term();
  }
  // Attribute variables (step 1e, declaration part) come before the tuple
  // scan for readability; the binder accepts either order.
  std::vector<size_t> pivot_positions;
  for (size_t i = 0; i < view.att_terms().size(); ++i) {
    if (!view.att_terms()[i].is_variable) continue;
    pivot_positions.push_back(i);
    FromItem av;
    av.kind = FromItemKind::kAttributeVar;
    av.db = db_ref;
    av.rel = rel_ref;
    av.var = phi.Apply(view.att_terms()[i].text);
    access.push_back(std::move(av));
  }
  FromItem scan;
  scan.kind = FromItemKind::kTupleVar;
  scan.db = db_ref;
  scan.rel = rel_ref;
  scan.var = vt;
  access.push_back(std::move(scan));
  // Domain declarations for every view output attribute (step 1e).
  std::set<std::string> declared;
  for (size_t i = 0; i < view.att_terms().size(); ++i) {
    const NameTerm& att = view.att_terms()[i];
    std::string dom_image = phi.Apply(view.dom_of(i));
    if (dom_image.empty()) {
      return Status::Internal("Dom(" + att.text + ") unmapped");
    }
    if (!declared.insert(ToLower(dom_image)).second) {
      return Status::Unsupported(
          "two view output positions map to one query variable");
    }
    FromItem dv;
    dv.kind = FromItemKind::kDomainVar;
    dv.tuple = vt;
    if (att.is_variable) {
      dv.attr = NameTerm(phi.Apply(att.text));
      dv.attr.is_variable = true;
    } else {
      dv.attr = att;
    }
    dv.var = dom_image;
    access.push_back(std::move(dv));
  }
  for (FromItem& f : access) q.from_items.push_back(std::move(f));

  // --- Step 3: WHERE := Conds′. --------------------------------------------
  std::vector<std::unique_ptr<Expr>> residual;
  for (const auto& rc : usability.residual) residual.push_back(rc->Clone());
  out.residual_conjuncts = residual.size();
  {
    std::vector<const Expr*> qconds;
    CollectConjuncts(query.where.get(), &qconds);
    out.absorbed_conjuncts = qconds.size() - residual.size();
  }

  // --- Step 2: replace needed variables by their Out(V) suppliers. ---------
  std::map<std::string, std::string> renames;
  for (const auto& [needed, supplier] : usability.supplied_by) {
    if (needed != ToLower(supplier)) renames[needed] = supplier;
  }
  for (SelectItem& item : q.select_list) {
    // A supplier substitution must not change the answer's column name:
    // pin the original name as an alias before rewriting the reference.
    if (item.alias.empty() && item.expr->kind == ExprKind::kVarRef &&
        renames.count(ToLower(item.expr->var_name)) > 0) {
      item.alias = item.expr->var_name;
    }
    RenameRefs(item.expr.get(), renames);
  }
  for (auto& g : q.group_by) RenameRefs(g.get(), renames);
  if (q.having) RenameRefs(q.having.get(), renames);
  for (OrderItem& o : q.order_by) RenameRefs(o.expr.get(), renames);

  // --- Step 4: NULL-rejection for pivoted values. --------------------------
  // Attribute-variable views pad absent labels with NULL (Sec. 3.1); when
  // the pivoted value participates in the answer, those padding rows must
  // be dropped (the paper's "add φ(dom(A)) ≠ ∅").
  q.where = AndChain(std::move(residual));
  // The attribute variable of a pivot access ranges over ALL attributes of
  // the materialized view, including the constant ones; exclude those
  // explicitly (the Fig. 2 v3 `where A <> 'date'` guard, implicit in the
  // paper's Alg. 5.1).
  for (size_t p : pivot_positions) {
    std::string attr_image = phi.Apply(view.att_terms()[p].text);
    for (size_t i = 0; i < view.att_terms().size(); ++i) {
      if (i == p || view.att_terms()[i].is_variable) continue;
      auto guard = Expr::MakeCompare(
          BinaryOp::kNotEq, Expr::MakeVarRef(attr_image),
          Expr::MakeLiteral(Value::String(view.att_terms()[i].text)));
      if (q.where) {
        q.where = Expr::MakeBinary(ExprKind::kLogic, BinaryOp::kAnd,
                                   std::move(q.where), std::move(guard));
      } else {
        q.where = std::move(guard);
      }
    }
  }
  for (size_t p : pivot_positions) {
    std::string dom_image = phi.Apply(view.dom_of(p));
    if (StmtUsesVar(q, ToLower(dom_image))) {
      auto not_null =
          Expr::MakeIsNull(Expr::MakeVarRef(dom_image), /*negated=*/true);
      if (q.where) {
        q.where = Expr::MakeBinary(ExprKind::kLogic, BinaryOp::kAnd,
                                   std::move(q.where), std::move(not_null));
      } else {
        q.where = std::move(not_null);
      }
    }
  }
  return out;
}

}  // namespace dynview

#ifndef DYNVIEW_CORE_UNFOLD_H_
#define DYNVIEW_CORE_UNFOLD_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/view_definition.h"

namespace dynview {

/// View unfolding — the dual of Alg. 5.1. The paper's Sec. 1.1 insists that
/// existing applications cannot be rewritten: they keep posing queries
/// against the *legacy* layout (e.g. `s2::coA`) even when the data migrates
/// under the integration schema I. Since each source is a view over I
/// (Fig. 6), a legacy query unfolds by inlining the view body wherever the
/// query scans a source table, constraining the view's label variables to
/// the scanned table's name (GAV-style expansion):
///
///   SELECT T.price FROM s2::coA T          -- legacy query
///   ⇒ SELECT P FROM I::stock U, U.company C, U.price P WHERE C = 'coA'
///
/// Supported sources: SQL views and dynamic views whose labels are database
/// or relation names (partitioning views). Attribute-variable (pivot)
/// sources are not unfoldable row-by-row — a pivoted tuple aggregates a
/// whole group (Sec. 3.1), so those queries go through materializations.
class ViewUnfolder {
 public:
  /// `catalog` provides the source tables' schemas for normalization; the
  /// unfolded query is expressed over `view`'s base tables (typically the
  /// integration database).
  ViewUnfolder(const CatalogReader* catalog, std::string source_default_db)
      : catalog_(catalog), source_default_db_(std::move(source_default_db)) {}

  /// Unfolds every FROM reference of `query_sql` that matches `view`'s
  /// output location. Fails if the view is not unfoldable or no reference
  /// matches.
  Result<std::unique_ptr<SelectStmt>> UnfoldSql(
      const ViewDefinition& view, const std::string& query_sql) const;

  /// AST-level variant; `query` must be bound and normalized against the
  /// source schemas.
  Result<std::unique_ptr<SelectStmt>> Unfold(const ViewDefinition& view,
                                             const SelectStmt& query) const;

 private:
  const CatalogReader* catalog_;
  std::string source_default_db_;
};

}  // namespace dynview

#endif  // DYNVIEW_CORE_UNFOLD_H_

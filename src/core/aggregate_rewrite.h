#ifndef DYNVIEW_CORE_AGGREGATE_REWRITE_H_
#define DYNVIEW_CORE_AGGREGATE_REWRITE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/translate.h"
#include "core/usability.h"
#include "core/view_definition.h"

namespace dynview {

/// Sec. 5.2 of the paper: answering aggregate queries with aggregate-defined
/// dynamic views (Ex. 5.3). The view pre-aggregates at a finer grouping than
/// the query; the rewriting accesses the materialized view and re-aggregates
/// to the query's coarser grouping.
///
/// Supported shapes (following Srivastava et al., which the paper builds
/// on): both view and query are single-block, single-aggregate queries whose
/// grouping keys are plain variables. The view's groups must refine the
/// query's (every query group key is recoverable from a view group key
/// under the variable mapping), residual predicates may mention only view
/// group columns, and the aggregate pair must be re-aggregable:
///
///   view MAX   → query MAX   (re-aggregate with MAX)
///   view MIN   → query MIN   (re-aggregate with MIN)
///   view SUM   → query SUM   (re-aggregate with SUM)
///   view COUNT → query COUNT (re-aggregate with SUM)
///   view AVG   → query AVG   — exact when the query groups match the view
///     groups; for coarser grouping AVG-of-AVG equals AVG only under
///     uniform group sizes (the implicit assumption in the paper's Ex. 5.3),
///     enabled via `allow_avg_reaggregation`.
class AggregateViewRewriter {
 public:
  AggregateViewRewriter(const CatalogReader* catalog, std::string default_db)
      : catalog_(catalog), default_db_(std::move(default_db)) {}

  /// Rewrites aggregate `query_sql` onto aggregate `view`. On success the
  /// result's query is the re-aggregating SQL/SchemaSQL statement over the
  /// view's materialization.
  Result<TranslationResult> Rewrite(const ViewDefinition& view,
                                    const std::string& query_sql,
                                    bool allow_avg_reaggregation) const;

 private:
  const CatalogReader* catalog_;
  std::string default_db_;
};

/// Strips aggregation from a CREATE VIEW statement: aggregate select items
/// are replaced by their arguments and the GROUP BY is dropped, yielding the
/// SPJ core V° the containment machinery runs on. Exposed for testing.
Result<std::unique_ptr<CreateViewStmt>> StripViewAggregation(
    const CreateViewStmt& view);

}  // namespace dynview

#endif  // DYNVIEW_CORE_AGGREGATE_REWRITE_H_

#ifndef DYNVIEW_CORE_CONTAINMENT_H_
#define DYNVIEW_CORE_CONTAINMENT_H_

#include <string>

#include "common/result.h"
#include "core/usability.h"

namespace dynview {

/// Set containment and equivalence tests for SPJ queries (Def. 4.1 of the
/// paper; the machinery of Levy/Mendelzon/Sagiv/Srivastava [25] that the
/// usability theorems specialize).
///
/// `Contained(q1, q2)` proves q1 ⊆ q2 by searching for a containment
/// mapping h : Var(q2) → Var(q1): tuple variables map over identical
/// relations, every condition of q2 is implied (under the q1 condition
/// closure) after mapping, and the select lists align positionally up to
/// implied equality. The test is *sound but not complete* — a `false`
/// answer means "not proved", which is the correct polarity for all users
/// (rewriters must never act on an unproved equivalence). On the pure
/// conjunctive (equality-only) fragment the test is the classical complete
/// homomorphism check.
class ContainmentChecker {
 public:
  ContainmentChecker(const CatalogReader* catalog, std::string default_db)
      : catalog_(catalog), default_db_(std::move(default_db)) {}

  /// True if q1 ⊆ q2 (set semantics) is proved.
  Result<bool> Contained(const std::string& q1_sql,
                         const std::string& q2_sql) const;

  /// True if set equivalence is proved (containment both ways, Def. 4.1).
  Result<bool> Equivalent(const std::string& q1_sql,
                          const std::string& q2_sql) const;

 private:
  const CatalogReader* catalog_;
  std::string default_db_;
};

}  // namespace dynview

#endif  // DYNVIEW_CORE_CONTAINMENT_H_

#include "core/aggregate_rewrite.h"

#include <set>

#include "common/str_util.h"
#include "core/normalize.h"
#include "sql/parser.h"

namespace dynview {

namespace {

/// Locates the single aggregate select item; fails on zero or several.
Result<size_t> SingleAggregatePosition(const SelectStmt& stmt) {
  int pos = -1;
  for (size_t i = 0; i < stmt.select_list.size(); ++i) {
    if (stmt.select_list[i].expr->ContainsAggregate()) {
      if (stmt.select_list[i].expr->kind != ExprKind::kAgg) {
        return Status::Unsupported(
            "aggregate must be a top-level select item");
      }
      if (pos >= 0) {
        return Status::Unsupported("more than one aggregate select item");
      }
      pos = static_cast<int>(i);
    }
  }
  if (pos < 0) return Status::Unsupported("no aggregate select item");
  return static_cast<size_t>(pos);
}

/// The re-aggregation function for view aggregate `g` answering query
/// aggregate `f`; nullopt if the pair is not re-aggregable.
Result<AggFunc> ReAggregation(AggFunc view_func, AggFunc query_func,
                              bool exact_groups,
                              bool allow_avg_reaggregation) {
  auto norm = [](AggFunc f) {
    return f == AggFunc::kCountStar ? AggFunc::kCount : f;
  };
  if (norm(view_func) != norm(query_func)) {
    return Status::Unsupported(
        std::string("aggregate mismatch: view computes ") +
        AggFuncName(view_func) + ", query asks for " +
        AggFuncName(query_func));
  }
  switch (norm(view_func)) {
    case AggFunc::kMax:
      return AggFunc::kMax;
    case AggFunc::kMin:
      return AggFunc::kMin;
    case AggFunc::kSum:
      return AggFunc::kSum;
    case AggFunc::kCount:
      return AggFunc::kSum;  // Counts of sub-groups add up.
    case AggFunc::kAvg:
      if (exact_groups) return AggFunc::kAvg;  // Degenerate re-aggregation.
      if (allow_avg_reaggregation) return AggFunc::kAvg;
      return Status::Unsupported(
          "AVG cannot be re-aggregated over coarser groups without the "
          "uniform-group-size assumption (see Ex. 5.3 discussion)");
    default:
      return Status::Unsupported("unsupported aggregate");
  }
}

}  // namespace

Result<std::unique_ptr<CreateViewStmt>> StripViewAggregation(
    const CreateViewStmt& view) {
  std::unique_ptr<CreateViewStmt> core = view.Clone();
  if (core->query == nullptr) return Status::BindError("view has no body");
  for (SelectItem& item : core->query->select_list) {
    if (item.expr->kind == ExprKind::kAgg) {
      if (item.expr->agg_func == AggFunc::kCountStar || !item.expr->left) {
        return Status::Unsupported(
            "COUNT(*) views cannot expose a base column to re-aggregate");
      }
      item.expr = item.expr->left->Clone();
    } else if (item.expr->ContainsAggregate()) {
      return Status::Unsupported("aggregate must be a top-level select item");
    }
  }
  core->query->group_by.clear();
  core->query->having.reset();
  return core;
}

Result<TranslationResult> AggregateViewRewriter::Rewrite(
    const ViewDefinition& view, const std::string& query_sql,
    bool allow_avg_reaggregation) const {
  if (!view.IsAggregateView()) {
    return Status::InvalidArgument("view does not aggregate; use Alg. 5.1");
  }
  // --- Decompose the view. ---------------------------------------------------
  DV_ASSIGN_OR_RETURN(size_t view_agg_pos,
                      SingleAggregatePosition(view.body()));
  AggFunc view_func = view.body().select_list[view_agg_pos].expr->agg_func;
  if (view.body().having != nullptr) {
    return Status::Unsupported("views with HAVING are not re-aggregable");
  }
  std::set<std::string> view_group_vars;  // Lowercased.
  for (const auto& g : view.body().group_by) {
    if (g->kind != ExprKind::kVarRef) {
      return Status::Unsupported("view group keys must be variables");
    }
    view_group_vars.insert(ToLower(g->var_name));
  }
  DV_ASSIGN_OR_RETURN(std::unique_ptr<CreateViewStmt> core_stmt,
                      StripViewAggregation(view.stmt()));
  DV_ASSIGN_OR_RETURN(ViewDefinition core,
                      ViewDefinition::Create(*core_stmt, *catalog_,
                                             default_db_));
  // The agg-argument variable, post-normalization, is Dom of the agg
  // position in the stripped core.
  std::string agg_arg_var = ToLower(core.dom_of(view_agg_pos));

  // --- Decompose the query. --------------------------------------------------
  DV_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> query,
                      Parser::ParseSelect(query_sql));
  if (query->union_next != nullptr || query->distinct) {
    return Status::Unsupported("aggregate rewriting covers single-block "
                               "non-DISTINCT queries");
  }
  if (query->having != nullptr) {
    return Status::Unsupported(
        "HAVING over re-aggregated values is not supported");
  }
  DV_ASSIGN_OR_RETURN(BoundQuery qbq,
                      NormalizeQuery(query.get(), *catalog_, default_db_));
  (void)qbq;
  DV_ASSIGN_OR_RETURN(size_t query_agg_pos, SingleAggregatePosition(*query));
  AggFunc query_func = query->select_list[query_agg_pos].expr->agg_func;
  std::unique_ptr<Expr> query_agg_arg;
  if (query->select_list[query_agg_pos].expr->left) {
    query_agg_arg = query->select_list[query_agg_pos].expr->left->Clone();
    if (query_agg_arg->kind != ExprKind::kVarRef) {
      return Status::Unsupported("query aggregate argument must be a column");
    }
  }

  // Q°: the query with the aggregate replaced by its argument and grouping
  // dropped; group keys are kept in the select list so condition 2 covers
  // them.
  std::unique_ptr<SelectStmt> qcore = query->Clone();
  if (query_agg_arg) {
    qcore->select_list[query_agg_pos].expr = query_agg_arg->Clone();
  } else {
    return Status::Unsupported(
        "COUNT(*) queries need a COUNT view column; use an explicit column");
  }
  qcore->group_by.clear();
  qcore->having.reset();
  qcore->order_by.clear();
  DV_ASSIGN_OR_RETURN(BoundQuery cbq, Binder::BindBranch(qcore.get()));

  // --- Containment: φ from the stripped view core into Q°. -------------------
  UsabilityChecker checker(catalog_, default_db_);
  DV_ASSIGN_OR_RETURN(UsabilityResult usable,
                      checker.CheckSetUsable(core, *qcore, cbq));
  if (!usable.usable) {
    return Status::InvalidArgument("aggregate view not usable: " +
                                   usable.reason);
  }
  const VariableMapping& phi = usable.phi;

  // The query's aggregate argument must be exactly the view's aggregate
  // input (re-aggregating a different column is meaningless).
  if (!EqualsIgnoreCase(phi.Apply(agg_arg_var),
                        query_agg_arg->var_name)) {
    return Status::InvalidArgument(
        "query aggregates '" + query_agg_arg->var_name +
        "' but the view pre-aggregates '" + phi.Apply(agg_arg_var) + "'");
  }

  // Query group keys must be (recoverable images of) view group keys, and
  // residual predicates may touch only view group columns.
  std::set<std::string> group_images;  // Lowercased φ(view group var).
  for (const std::string& g : view_group_vars) {
    std::string image = phi.Apply(g);
    if (!image.empty()) group_images.insert(ToLower(image));
  }
  size_t matched_groups = 0;
  for (const auto& g : query->group_by) {
    if (g->kind != ExprKind::kVarRef) {
      return Status::Unsupported("query group keys must be variables");
    }
    std::string key = ToLower(g->var_name);
    auto it = usable.supplied_by.find(key);
    std::string resolved = it != usable.supplied_by.end() ? it->second : key;
    if (group_images.count(ToLower(resolved)) == 0) {
      return Status::InvalidArgument(
          "query groups by '" + g->var_name +
          "', which is not a view grouping column — the view is too coarse");
    }
    ++matched_groups;
  }
  bool exact_groups = matched_groups == view_group_vars.size();
  for (const auto& rc : usable.residual) {
    std::vector<std::string> refs;
    rc->CollectVarRefs(&refs);
    for (const std::string& r : refs) {
      std::string key = ToLower(r);
      if (group_images.count(key) > 0) continue;       // Post-filterable.
      if (key == ToLower(phi.Apply(agg_arg_var))) {
        return Status::InvalidArgument(
            "residual predicate on the pre-aggregated column '" + r +
            "' cannot be applied after aggregation");
      }
      // Variables of other (uncovered) tables are fine.
    }
  }
  DV_ASSIGN_OR_RETURN(
      AggFunc reagg,
      ReAggregation(view_func, query_func, exact_groups,
                    allow_avg_reaggregation));

  // --- Assemble Q′: translate Q° onto the view, then re-aggregate. ----------
  QueryTranslator translator(catalog_, default_db_);
  DV_ASSIGN_OR_RETURN(TranslationResult spj,
                      translator.Translate(core, *qcore, cbq, usable));
  SelectStmt& out = *spj.query;
  // Restore the aggregate select item, re-aggregating the view's value
  // column (which the translation exposes under φ(agg arg)).
  std::string value_var = phi.Apply(agg_arg_var);
  out.select_list[query_agg_pos].expr = Expr::MakeAgg(
      reagg, Expr::MakeVarRef(value_var), /*distinct=*/false);
  if (out.select_list[query_agg_pos].alias.empty()) {
    out.select_list[query_agg_pos].alias =
        ToLower(AggFuncName(query_func));
  }
  // Restore grouping (renamed through supplied_by where needed).
  for (const auto& g : query->group_by) {
    std::string key = ToLower(g->var_name);
    auto it = usable.supplied_by.find(key);
    out.group_by.push_back(Expr::MakeVarRef(
        it != usable.supplied_by.end() ? it->second : g->var_name));
  }
  return spj;
}

}  // namespace dynview

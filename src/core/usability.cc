#include "core/usability.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/str_util.h"
#include "core/implication.h"
#include "core/normalize.h"
#include "sql/parser.h"

namespace dynview {

std::string VariableMapping::Apply(const std::string& view_var) const {
  auto it = map.find(ToLower(view_var));
  return it == map.end() ? std::string() : it->second;
}

std::unique_ptr<Expr> VariableMapping::ApplyToExpr(const Expr& e) const {
  std::unique_ptr<Expr> out = e.Clone();
  if (out->kind == ExprKind::kVarRef) {
    std::string image = Apply(out->var_name);
    if (!image.empty()) out->var_name = image;
    return out;
  }
  if (e.left) out->left = ApplyToExpr(*e.left);
  if (e.right) out->right = ApplyToExpr(*e.right);
  return out;
}

std::string VariableMapping::ToString() const {
  std::string s = "{";
  bool first = true;
  for (const auto& [from, to] : map) {
    if (!first) s += ", ";
    first = false;
    s += from + " -> " + to;
  }
  s += one_to_one ? "} (1-1)" : "}";
  return s;
}

Result<QueryInfo> AnalyzeQuery(const SelectStmt& stmt, const BoundQuery& bq,
                               const std::string& default_db) {
  (void)bq;  // Binding annotations live in the AST; kept for symmetry.
  QueryInfo info;
  // Schema-variable declarations and references through them are tolerated:
  // they arise from view accesses introduced by earlier applications of
  // Alg. 5.1 (e.g. the second application that turns a self-join into two
  // view scans, Fig. 11). They are simply not candidates for further
  // replacement.
  for (const FromItem& f : stmt.from_items) {
    if (f.kind == FromItemKind::kTupleVar) {
      if (f.db.is_variable || f.rel.is_variable) continue;
      std::string db = f.db.empty() ? default_db : f.db.text;
      info.tables.push_back(TableRef{ToLower(db), ToLower(f.rel.text)});
      info.tuple_vars.push_back(f.var);
    } else if (f.kind == FromItemKind::kDomainVar) {
      if (f.attr.is_variable) continue;
      info.domain_of[ToLower(f.tuple)][ToLower(f.attr.text)] = f.var;
      info.tuple_of_domain[ToLower(f.var)] = ToLower(f.tuple);
      info.attr_of_domain[ToLower(f.var)] = ToLower(f.attr.text);
    }
  }
  CollectConjuncts(stmt.where.get(), &info.conds);

  std::vector<std::string> needed;
  auto collect = [&](const Expr& e) {
    std::vector<std::string> refs;
    e.CollectVarRefs(&refs);
    for (std::string& r : refs) needed.push_back(ToLower(r));
  };
  for (const SelectItem& item : stmt.select_list) collect(*item.expr);
  for (const auto& g : stmt.group_by) collect(*g);
  if (stmt.having) collect(*stmt.having);
  for (const OrderItem& o : stmt.order_by) collect(*o.expr);
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  info.needed_vars = std::move(needed);
  return info;
}

namespace {

/// Aggregate admissibility per Sec. 5.2: under pure set usability, only
/// duplicate-insensitive aggregates survive a multiplicity-losing view.
bool AllAggregatesDuplicateInsensitive(const SelectStmt& stmt) {
  bool ok = true;
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    if (e.kind == ExprKind::kAgg) {
      if (!IsDuplicateInsensitive(e.agg_func) && !e.agg_distinct) ok = false;
    }
    if (e.left) walk(*e.left);
    if (e.right) walk(*e.right);
  };
  for (const SelectItem& item : stmt.select_list) walk(*item.expr);
  if (stmt.having) walk(*stmt.having);
  for (const OrderItem& o : stmt.order_by) walk(*o.expr);
  return ok;
}

bool QueryHasAggregation(const SelectStmt& stmt) {
  if (!stmt.group_by.empty() || stmt.having != nullptr) return true;
  for (const SelectItem& item : stmt.select_list) {
    if (item.expr->ContainsAggregate()) return true;
  }
  return false;
}

}  // namespace

Result<UsabilityResult> UsabilityChecker::CheckSetUsable(
    const ViewDefinition& view, const SelectStmt& query,
    const BoundQuery& bq) const {
  return Check(view, query, bq, /*require_one_to_one=*/false);
}

Result<UsabilityResult> UsabilityChecker::CheckMultisetUsable(
    const ViewDefinition& view, const SelectStmt& query,
    const BoundQuery& bq) const {
  // Thm. 5.4: a dynamic view with attribute variables loses multiplicities
  // and is never multiset usable.
  if (view.HasAttributeVariables()) {
    UsabilityResult r;
    r.usable = false;
    r.reason =
        "Thm. 5.4: the view contains attribute variables, which lose tuple "
        "multiplicities (Sec. 4.3)";
    return r;
  }
  return Check(view, query, bq, /*require_one_to_one=*/true);
}

Result<UsabilityResult> UsabilityChecker::CheckSql(const ViewDefinition& view,
                                                   const std::string& query_sql,
                                                   bool multiset) const {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                      Parser::ParseSelect(query_sql));
  DV_ASSIGN_OR_RETURN(BoundQuery bq,
                      NormalizeQuery(stmt.get(), *catalog_, default_db_));
  if (multiset) return CheckMultisetUsable(view, *stmt, bq);
  return CheckSetUsable(view, *stmt, bq);
}

Result<UsabilityResult> UsabilityChecker::Check(const ViewDefinition& view,
                                                const SelectStmt& query,
                                                const BoundQuery& bq,
                                                bool require_one_to_one) const {
  UsabilityResult result;
  DV_ASSIGN_OR_RETURN(QueryInfo q, AnalyzeQuery(query, bq, default_db_));

  // Sec. 5.2 gate: an aggregate query answered through a view that is only
  // set-usable must use duplicate-insensitive aggregates (Ex. 5.2); a
  // multiset-usable rewriting has no such restriction.
  if (!require_one_to_one && QueryHasAggregation(query) &&
      view.HasAttributeVariables() &&
      !AllAggregatesDuplicateInsensitive(query)) {
    result.reason =
        "Sec. 5.2: duplicate-sensitive aggregates cannot be answered through "
        "a multiplicity-losing attribute view";
    return result;
  }

  ConditionAnalyzer q_conds(q.conds);

  // Candidate images for each view tuple variable: query tuple variables
  // over the same relation (Def. 5.1).
  const auto& vtables = view.tables();
  const auto& vtuples = view.tuple_vars();
  std::vector<std::vector<size_t>> candidates(vtables.size());
  for (size_t i = 0; i < vtables.size(); ++i) {
    for (size_t j = 0; j < q.tables.size(); ++j) {
      if (vtables[i] == q.tables[j]) candidates[i].push_back(j);
    }
    if (candidates[i].empty()) {
      result.reason = "no query tuple variable ranges over " +
                      vtables[i].ToString() + " (Def. 5.1)";
      return result;
    }
  }

  // Backtracking over assignments, bounded to keep the matcher cheap.
  constexpr int kMaxAssignments = 100000;
  int tried = 0;
  std::vector<size_t> choice(vtables.size(), 0);
  std::string last_failure;

  std::function<Result<bool>(size_t, std::vector<size_t>&)> search =
      [&](size_t depth, std::vector<size_t>& picks) -> Result<bool> {
    if (tried > kMaxAssignments) return false;
    if (depth == vtables.size()) {
      ++tried;
      // Build φ: tuple vars then induced domain vars.
      VariableMapping phi;
      std::set<size_t> used;
      bool injective_tuples = true;
      for (size_t i = 0; i < picks.size(); ++i) {
        phi.map[ToLower(vtuples[i])] = q.tuple_vars[picks[i]];
        if (!used.insert(picks[i]).second) injective_tuples = false;
      }
      if (require_one_to_one && !injective_tuples) return false;
      // Induced domain-variable mapping.
      std::set<std::string> image_domains;
      bool injective_domains = true;
      for (const FromItem& f : view.body().from_items) {
        if (f.kind != FromItemKind::kDomainVar) continue;
        std::string vt = ToLower(f.tuple);
        // Find the image tuple variable.
        std::string image_tuple;
        for (size_t i = 0; i < picks.size(); ++i) {
          if (ToLower(vtuples[i]) == vt) {
            image_tuple = ToLower(q.tuple_vars[picks[i]]);
            break;
          }
        }
        if (image_tuple.empty()) {
          last_failure = "view domain variable '" + f.var +
                         "' projects an unmapped tuple variable";
          return false;
        }
        auto t_it = q.domain_of.find(image_tuple);
        if (t_it == q.domain_of.end()) {
          last_failure = "query declares no domain variables over '" +
                         image_tuple + "'";
          return false;
        }
        auto a_it = t_it->second.find(ToLower(f.attr.text));
        if (a_it == t_it->second.end()) {
          last_failure = "query has no domain variable for attribute '" +
                         f.attr.text + "' of '" + image_tuple + "'";
          return false;
        }
        phi.map[ToLower(f.var)] = a_it->second;
        if (!image_domains.insert(ToLower(a_it->second)).second) {
          injective_domains = false;
        }
      }
      phi.one_to_one = injective_tuples && injective_domains;
      if (require_one_to_one && !phi.one_to_one) return false;

      // Condition 3(a): Conds(Q) ⊨ φ(Conds(V)).
      std::vector<std::unique_ptr<Expr>> mapped_conds;
      for (const Expr* c : view.conds()) {
        mapped_conds.push_back(phi.ApplyToExpr(*c));
      }
      for (const auto& mc : mapped_conds) {
        if (!q_conds.Implies(*mc)) {
          last_failure = "query conditions do not imply view condition " +
                         mc->ToString() + " (Thm. 5.2, 3a)";
          return false;
        }
      }

      // Residual Conds′: query conjuncts not implied by φ(Conds(V)).
      std::vector<const Expr*> mapped_ptrs;
      for (const auto& mc : mapped_conds) mapped_ptrs.push_back(mc.get());
      ConditionAnalyzer v_conds(mapped_ptrs);
      std::vector<std::unique_ptr<Expr>> residual;
      for (const Expr* qc : q.conds) {
        if (!v_conds.Implies(*qc)) residual.push_back(qc->Clone());
      }

      // Allowed residual variables (Thm. 5.2, 3b): φ(Out(V)) plus query
      // variables outside φ(Var(V)).
      std::set<std::string> image_all, image_out;
      for (const auto& [from, to] : phi.map) {
        image_all.insert(ToLower(to));
        if (view.IsOutput(from)) image_out.insert(ToLower(to));
      }
      // Query tuple variables the translation covers away — every domain
      // declaration over them is removed from Q′, so any OTHER variable
      // declared there survives only through a supplier in φ(Out(V)).
      std::set<std::string> covered_q;
      for (size_t i = 0; i < picks.size(); ++i) {
        covered_q.insert(ToLower(q.tuple_vars[picks[i]]));
      }
      auto decl_removed = [&](const std::string& var_lower) {
        auto td = q.tuple_of_domain.find(var_lower);
        return td != q.tuple_of_domain.end() && covered_q.count(td->second) > 0;
      };
      // The Out(V) image that can stand in for `var_lower` in Q′: itself if
      // it IS such an image; else a variable Conds(Q) proves equal; else a
      // sibling declaration of the same (tuple, attribute) — two domain
      // variables over one attribute are equal by construction even though
      // no WHERE conjunct says so. Empty = unrecoverable.
      auto supplier_for = [&](const std::string& var_lower) -> std::string {
        if (image_out.count(var_lower) > 0) return var_lower;
        if (image_all.count(var_lower) == 0 && !decl_removed(var_lower)) {
          return var_lower;  // Untouched by the translation.
        }
        for (const std::string& eq : q_conds.EqualVariables(var_lower)) {
          if (eq != var_lower && image_out.count(eq) > 0) return eq;
        }
        auto td = q.tuple_of_domain.find(var_lower);
        auto ad = q.attr_of_domain.find(var_lower);
        if (td != q.tuple_of_domain.end() && ad != q.attr_of_domain.end()) {
          for (const auto& [v2, t2] : q.tuple_of_domain) {
            if (v2 == var_lower || t2 != td->second) continue;
            auto a2 = q.attr_of_domain.find(v2);
            if (a2 != q.attr_of_domain.end() && a2->second == ad->second &&
                image_out.count(v2) > 0) {
              return v2;
            }
          }
        }
        return std::string();
      };
      // Repair disallowed references through suppliers, else fail.
      std::function<bool(Expr*)> repair = [&](Expr* e) -> bool {
        if (e->kind == ExprKind::kVarRef) {
          std::string v = ToLower(e->var_name);
          std::string s = supplier_for(v);
          if (s == v) return true;
          if (!s.empty()) {
            e->var_name = s;
            return true;
          }
          last_failure = "residual condition uses non-output view column '" +
                         e->var_name + "' (Thm. 5.2, 3b)";
          return false;
        }
        if (e->left && !repair(e->left.get())) return false;
        if (e->right && !repair(e->right.get())) return false;
        return true;
      };
      for (auto& rc : residual) {
        if (!repair(rc.get())) return false;
      }

      // Condition 2: every needed query variable the translation touches —
      // an image of a view variable, or a variable whose declaration is
      // removed with the covered tuple variables — must be recoverable from
      // Out(V).
      std::map<std::string, std::string> supplied;
      for (const std::string& a : q.needed_vars) {
        std::string s = supplier_for(a);
        if (s.empty()) {
          last_failure = "needed variable '" + a +
                         "' is projected out by the view and not recoverable "
                         "(Thm. 5.2, cond. 2)";
          return false;
        }
        supplied[a] = s;
      }

      result.usable = true;
      result.phi = std::move(phi);
      result.residual = std::move(residual);
      result.supplied_by = std::move(supplied);
      return true;
    }
    for (size_t cand : candidates[depth]) {
      picks[depth] = cand;
      DV_ASSIGN_OR_RETURN(bool done, search(depth + 1, picks));
      if (done) return true;
    }
    return false;
  };

  DV_ASSIGN_OR_RETURN(bool found, search(0, choice));
  if (!found && result.reason.empty()) {
    result.reason = last_failure.empty()
                        ? "no variable mapping satisfies Thm. 5.2"
                        : last_failure;
  }
  return result;
}

}  // namespace dynview

#include "core/first_order.h"

#include <map>

#include "common/str_util.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace dynview {

std::string QuantifiedLabelSpace::Describe() const {
  switch (kind) {
    case Kind::kDatabases:
      return "database names of the federation";
    case Kind::kRelationsOf:
      return "relation names of " + db;
    case Kind::kAttributesOf:
      return "attribute names of " + db + "::" + rel;
  }
  return "?";
}

std::string QuantifiedLabelSpace::SuggestedInterface() const {
  switch (kind) {
    case Kind::kDatabases:
      return "expose a meta relation databases(db) — see SchemaBrowser — or "
             "unite the databases into one relation with a 'db' column";
    case Kind::kRelationsOf:
      return "unite the relations of " + db +
             " into a single relation with a label column (the s2 → s1 "
             "transformation; view v2 of Fig. 2)";
    case Kind::kAttributesOf:
      return "unpivot " + db + "::" + rel +
             " into (key..., attribute, value) — an hprice/hotelwords-style "
             "interface schema (Fig. 7/9)";
  }
  return "?";
}

std::string FirstOrderReport::Describe() const {
  std::string out;
  int ho = 0;
  for (bool fo : first_order) {
    if (!fo) ++ho;
  }
  out += std::to_string(first_order.size()) + " queries, " +
         std::to_string(ho) + " higher order\n";
  if (schema_is_first_order()) {
    out += "schema is FIRST ORDER for this workload (Sec. 3.2)\n";
    return out;
  }
  out += "schema is NOT first order for this workload; quantified spaces:\n";
  for (const QuantifiedLabelSpace& q : quantified) {
    out += "  * " + q.Describe() + " (" + std::to_string(q.query_count) +
           " queries)\n    fix: " + q.SuggestedInterface() + "\n";
  }
  return out;
}

Result<FirstOrderReport> AnalyzeWorkloadFirstOrder(
    const std::vector<std::string>& workload, const std::string& default_db) {
  FirstOrderReport report;
  // Keyed by (kind, db, rel) for deduplication.
  std::map<std::tuple<int, std::string, std::string>, int> spaces;
  for (const std::string& sql : workload) {
    DV_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                        Parser::ParseSelect(sql));
    bool fo = true;
    for (SelectStmt* branch = stmt.get(); branch != nullptr;
         branch = branch->union_next.get()) {
      DV_ASSIGN_OR_RETURN(BoundQuery bq, Binder::BindBranch(branch));
      (void)bq;
      for (const FromItem& f : branch->from_items) {
        switch (f.kind) {
          case FromItemKind::kDatabaseVar:
            fo = false;
            ++spaces[{0, "", ""}];
            break;
          case FromItemKind::kRelationVar: {
            fo = false;
            std::string db = f.db.is_variable
                                 ? "<" + f.db.text + ">"
                                 : (f.db.empty() ? default_db : f.db.text);
            ++spaces[{1, ToLower(db), ""}];
            break;
          }
          case FromItemKind::kAttributeVar: {
            fo = false;
            std::string db = f.db.is_variable
                                 ? "<" + f.db.text + ">"
                                 : (f.db.empty() ? default_db : f.db.text);
            std::string rel =
                f.rel.is_variable ? "<" + f.rel.text + ">" : f.rel.text;
            ++spaces[{2, ToLower(db), ToLower(rel)}];
            break;
          }
          default:
            break;
        }
      }
    }
    report.first_order.push_back(fo);
  }
  for (const auto& [key, count] : spaces) {
    QuantifiedLabelSpace q;
    switch (std::get<0>(key)) {
      case 0:
        q.kind = QuantifiedLabelSpace::Kind::kDatabases;
        break;
      case 1:
        q.kind = QuantifiedLabelSpace::Kind::kRelationsOf;
        q.db = std::get<1>(key);
        break;
      default:
        q.kind = QuantifiedLabelSpace::Kind::kAttributesOf;
        q.db = std::get<1>(key);
        q.rel = std::get<2>(key);
        break;
    }
    q.query_count = count;
    report.quantified.push_back(std::move(q));
  }
  return report;
}

}  // namespace dynview

#include "core/implication.h"

#include <deque>

#include "common/str_util.h"

namespace dynview {

namespace {

/// Canonical rendering used for syntactic matching (comparisons match in
/// either orientation).
std::string FlipRendering(const Expr& e) {
  if (e.kind != ExprKind::kCompare) return e.ToString();
  BinaryOp flipped;
  switch (e.op) {
    case BinaryOp::kEq: flipped = BinaryOp::kEq; break;
    case BinaryOp::kNotEq: flipped = BinaryOp::kNotEq; break;
    case BinaryOp::kLess: flipped = BinaryOp::kGreater; break;
    case BinaryOp::kLessEq: flipped = BinaryOp::kGreaterEq; break;
    case BinaryOp::kGreater: flipped = BinaryOp::kLess; break;
    case BinaryOp::kGreaterEq: flipped = BinaryOp::kLessEq; break;
    default: return e.ToString();
  }
  return e.right->ToString() + " " + BinaryOpName(flipped) + " " +
         e.left->ToString();
}

}  // namespace

bool ConditionAnalyzer::Decompose(const Expr& e, Term* lhs, BinaryOp* op,
                                  Term* rhs) {
  if (e.kind != ExprKind::kCompare) return false;
  auto term = [](const Expr& side, Term* out) {
    if (side.kind == ExprKind::kVarRef) {
      out->is_const = false;
      out->var = ToLower(side.var_name);
      return true;
    }
    if (side.kind == ExprKind::kLiteral && !side.literal.is_null()) {
      out->is_const = true;
      out->constant = side.literal;
      return true;
    }
    return false;
  };
  if (!term(*e.left, lhs) || !term(*e.right, rhs)) return false;
  *op = e.op;
  return true;
}

int ConditionAnalyzer::NodeOf(const std::string& var_lower) {
  auto it = var_node_.find(var_lower);
  if (it != var_node_.end()) return it->second;
  int id = static_cast<int>(parent_.size());
  parent_.push_back(id);
  edges_.emplace_back();
  const_of_node_.push_back(std::nullopt);
  var_node_[var_lower] = id;
  return id;
}

int ConditionAnalyzer::NodeOfConst(const Value& v) {
  std::string key = v.ToString();
  auto it = const_node_.find(key);
  if (it != const_node_.end()) return it->second;
  int id = static_cast<int>(parent_.size());
  parent_.push_back(id);
  edges_.emplace_back();
  const_of_node_.push_back(v);
  const_node_[key] = id;
  return id;
}

int ConditionAnalyzer::Find(int x) const {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

void ConditionAnalyzer::Union(int a, int b) {
  a = Find(a);
  b = Find(b);
  if (a != b) parent_[a] = b;
}

void ConditionAnalyzer::AddEdge(int from, int to, bool strict) {
  edges_[from].emplace_back(to, strict);
}

ConditionAnalyzer::ConditionAnalyzer(const std::vector<const Expr*>& conjuncts) {
  std::vector<std::pair<int, int>> disequalities;
  for (const Expr* c : conjuncts) {
    syntactic_.push_back(c->ToString());
    syntactic_.push_back(FlipRendering(*c));
    Term l, r;
    BinaryOp op;
    if (!Decompose(*c, &l, &op, &r)) continue;
    int ln = l.is_const ? NodeOfConst(l.constant) : NodeOf(l.var);
    int rn = r.is_const ? NodeOfConst(r.constant) : NodeOf(r.var);
    switch (op) {
      case BinaryOp::kEq: Union(ln, rn); break;
      case BinaryOp::kLess: AddEdge(ln, rn, true); break;
      case BinaryOp::kLessEq: AddEdge(ln, rn, false); break;
      case BinaryOp::kGreater: AddEdge(rn, ln, true); break;
      case BinaryOp::kGreaterEq: AddEdge(rn, ln, false); break;
      case BinaryOp::kNotEq: disequalities.emplace_back(ln, rn); break;
      default: break;
    }
  }
  // Order edges among comparable constants.
  std::vector<int> const_ids;
  for (const auto& [key, id] : const_node_) const_ids.push_back(id);
  for (size_t i = 0; i < const_ids.size(); ++i) {
    for (size_t j = i + 1; j < const_ids.size(); ++j) {
      const Value& a = *const_of_node_[const_ids[i]];
      const Value& b = *const_of_node_[const_ids[j]];
      int cmp = 0;
      Result<TriBool> known = Value::Compare(a, b, &cmp);
      if (!known.ok() || known.value() != TriBool::kTrue) continue;
      if (cmp == 0) {
        Union(const_ids[i], const_ids[j]);
      } else if (cmp < 0) {
        AddEdge(const_ids[i], const_ids[j], true);
      } else {
        AddEdge(const_ids[j], const_ids[i], true);
      }
    }
  }
  // Contradictions: distinct constants united, strict cycles, violated
  // disequalities.
  for (size_t i = 0; i < const_ids.size(); ++i) {
    for (size_t j = i + 1; j < const_ids.size(); ++j) {
      if (Find(const_ids[i]) == Find(const_ids[j])) {
        const Value& a = *const_of_node_[const_ids[i]];
        const Value& b = *const_of_node_[const_ids[j]];
        if (!a.GroupEquals(b)) unsat_ = true;
      }
    }
  }
  for (size_t n = 0; n < parent_.size(); ++n) {
    bool strict = false;
    if (Reachable(static_cast<int>(n), static_cast<int>(n), &strict) &&
        strict) {
      unsat_ = true;
    }
  }
  for (const auto& [a, b] : disequalities) {
    if (Find(a) == Find(b)) unsat_ = true;
  }
  disequalities_ = std::move(disequalities);
}

bool ConditionAnalyzer::Reachable(int from, int to, bool* any_strict) const {
  // BFS over (node, seen-strict-edge) states; edges resolve through the
  // union-find so equalities collapse nodes.
  from = Find(from);
  to = Find(to);
  *any_strict = false;
  if (from == to) {
    // Trivial path of length zero (non-strict).
    // Continue searching for a strict cycle/path below.
  }
  std::vector<uint8_t> visited(parent_.size() * 2, 0);
  std::deque<std::pair<int, bool>> queue;
  queue.emplace_back(from, false);
  visited[from * 2 + 0] = 1;
  bool found_plain = (from == to);
  while (!queue.empty()) {
    auto [n, strict] = queue.front();
    queue.pop_front();
    if (n == to) {
      if (strict) {
        *any_strict = true;
        return true;  // Strict implies plain.
      }
      found_plain = true;
    }
    // Explore all edges whose source collapses to n.
    for (size_t raw = 0; raw < edges_.size(); ++raw) {
      if (Find(static_cast<int>(raw)) != n) continue;
      for (const auto& [raw_to, edge_strict] : edges_[raw]) {
        int t = Find(raw_to);
        bool s = strict || edge_strict;
        if (!visited[t * 2 + (s ? 1 : 0)]) {
          visited[t * 2 + (s ? 1 : 0)] = 1;
          queue.emplace_back(t, s);
        }
      }
    }
  }
  return found_plain;
}

bool ConditionAnalyzer::ProveVarConst(int var_node, BinaryOp op,
                                      const Value& c) const {
  // Scan every constant node for bounds on the variable's class.
  auto cmp_const = [&](const Value& a, int* out) {
    Result<TriBool> known = Value::Compare(a, c, out);
    return known.ok() && known.value() == TriBool::kTrue;
  };
  for (const auto& [key, id] : const_node_) {
    const Value& k = *const_of_node_[id];
    int kc = 0;
    if (!cmp_const(k, &kc)) continue;  // Incomparable with c.
    bool strict = false;
    // Same equivalence class: var = k.
    if (Find(id) == Find(var_node)) {
      switch (op) {
        case BinaryOp::kEq:
          if (kc == 0) return true;
          break;
        case BinaryOp::kNotEq:
          if (kc != 0) return true;
          break;
        case BinaryOp::kLess:
          if (kc < 0) return true;
          break;
        case BinaryOp::kLessEq:
          if (kc <= 0) return true;
          break;
        case BinaryOp::kGreater:
          if (kc > 0) return true;
          break;
        case BinaryOp::kGreaterEq:
          if (kc >= 0) return true;
          break;
        default:
          break;
      }
      continue;
    }
    // Upper bound: var ≤ k (strict ⇒ var < k).
    if (Reachable(var_node, id, &strict)) {
      bool var_lt_c = kc < 0 || (kc == 0 && strict);
      bool var_le_c = kc <= 0;
      if (op == BinaryOp::kLess && var_lt_c) return true;
      if (op == BinaryOp::kLessEq && var_le_c) return true;
      if (op == BinaryOp::kNotEq && var_lt_c) return true;
    }
    strict = false;
    // Lower bound: k ≤ var (strict ⇒ k < var).
    if (Reachable(id, var_node, &strict)) {
      bool var_gt_c = kc > 0 || (kc == 0 && strict);
      bool var_ge_c = kc >= 0;
      if (op == BinaryOp::kGreater && var_gt_c) return true;
      if (op == BinaryOp::kGreaterEq && var_ge_c) return true;
      if (op == BinaryOp::kNotEq && var_gt_c) return true;
    }
  }
  return false;
}

std::optional<int> ConditionAnalyzer::TermNode(const Term& t) const {
  if (t.is_const) {
    auto it = const_node_.find(t.constant.ToString());
    if (it == const_node_.end()) return std::nullopt;
    return it->second;
  }
  auto it = var_node_.find(t.var);
  if (it == var_node_.end()) return std::nullopt;
  return it->second;
}

bool ConditionAnalyzer::Implies(const Expr& pred) const {
  if (unsat_) return true;
  // Syntactic match (covers predicates outside the comparison theory).
  std::string rendering = pred.ToString();
  std::string flipped = FlipRendering(pred);
  for (const std::string& s : syntactic_) {
    if (s == rendering || s == flipped) return true;
  }
  Term l, r;
  BinaryOp op;
  if (!Decompose(pred, &l, &op, &r)) return false;
  // Constant-constant: decide directly.
  if (l.is_const && r.is_const) {
    int cmp = 0;
    Result<TriBool> known = Value::Compare(l.constant, r.constant, &cmp);
    if (!known.ok() || known.value() != TriBool::kTrue) return false;
    switch (op) {
      case BinaryOp::kEq: return cmp == 0;
      case BinaryOp::kNotEq: return cmp != 0;
      case BinaryOp::kLess: return cmp < 0;
      case BinaryOp::kLessEq: return cmp <= 0;
      case BinaryOp::kGreater: return cmp > 0;
      case BinaryOp::kGreaterEq: return cmp >= 0;
      default: return false;
    }
  }
  // Reflexivity.
  if (!l.is_const && !r.is_const && l.var == r.var) {
    return op == BinaryOp::kEq || op == BinaryOp::kLessEq ||
           op == BinaryOp::kGreaterEq;
  }
  // Variable vs constant: reason through the variable's derived bounds, so
  // the predicate's constant need not appear in the given conjuncts
  // (`p > 200 ⊨ p > 100`).
  if (l.is_const != r.is_const) {
    const Term& var_term = l.is_const ? r : l;
    const Value& c = l.is_const ? l.constant : r.constant;
    BinaryOp vop = op;
    if (l.is_const) {
      // Rewrite `c op x` as `x op' c`.
      switch (op) {
        case BinaryOp::kLess: vop = BinaryOp::kGreater; break;
        case BinaryOp::kLessEq: vop = BinaryOp::kGreaterEq; break;
        case BinaryOp::kGreater: vop = BinaryOp::kLess; break;
        case BinaryOp::kGreaterEq: vop = BinaryOp::kLessEq; break;
        default: break;
      }
    }
    std::optional<int> vn = TermNode(var_term);
    if (!vn.has_value()) return false;
    return ProveVarConst(*vn, vop, c);
  }
  std::optional<int> ln = TermNode(l);
  std::optional<int> rn = TermNode(r);
  if (!ln.has_value() || !rn.has_value()) return false;
  bool strict = false;
  switch (op) {
    case BinaryOp::kEq:
      return Find(*ln) == Find(*rn);
    case BinaryOp::kLessEq:
      if (Find(*ln) == Find(*rn)) return true;
      return Reachable(*ln, *rn, &strict);
    case BinaryOp::kGreaterEq:
      if (Find(*ln) == Find(*rn)) return true;
      return Reachable(*rn, *ln, &strict);
    case BinaryOp::kLess:
      return Reachable(*ln, *rn, &strict) && strict;
    case BinaryOp::kGreater:
      return Reachable(*rn, *ln, &strict) && strict;
    case BinaryOp::kNotEq: {
      // Recorded disequality.
      for (const auto& [a, b] : disequalities_) {
        if ((Find(a) == Find(*ln) && Find(b) == Find(*rn)) ||
            (Find(a) == Find(*rn) && Find(b) == Find(*ln))) {
          return true;
        }
      }
      // Strict order either way.
      if (Reachable(*ln, *rn, &strict) && strict) return true;
      if (Reachable(*rn, *ln, &strict) && strict) return true;
      // Distinct constants in the two classes.
      std::optional<Value> ca, cb;
      for (const auto& [key, id] : const_node_) {
        if (Find(id) == Find(*ln)) ca = *const_of_node_[id];
        if (Find(id) == Find(*rn)) cb = *const_of_node_[id];
      }
      if (ca.has_value() && cb.has_value() && !ca->GroupEquals(*cb)) {
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

bool ConditionAnalyzer::ImpliesEquality(const std::string& var_a,
                                        const std::string& var_b) const {
  if (unsat_) return true;
  std::string a = ToLower(var_a), b = ToLower(var_b);
  if (a == b) return true;
  auto ia = var_node_.find(a);
  auto ib = var_node_.find(b);
  if (ia == var_node_.end() || ib == var_node_.end()) return false;
  return Find(ia->second) == Find(ib->second);
}

std::vector<std::string> ConditionAnalyzer::EqualVariables(
    const std::string& var) const {
  std::string key = ToLower(var);
  std::vector<std::string> out;
  auto it = var_node_.find(key);
  if (it == var_node_.end()) {
    out.push_back(key);
    return out;
  }
  int rep = Find(it->second);
  for (const auto& [name, id] : var_node_) {
    if (Find(id) == rep) out.push_back(name);
  }
  return out;
}

}  // namespace dynview

#include "core/unfold.h"

#include <map>
#include <set>

#include "common/str_util.h"
#include "core/normalize.h"
#include "sql/parser.h"

namespace dynview {

namespace {

void RenameRefs(Expr* e, const std::map<std::string, std::string>& renames) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kVarRef) {
    auto it = renames.find(ToLower(e->var_name));
    if (it != renames.end()) e->var_name = it->second;
    return;
  }
  RenameRefs(e->left.get(), renames);
  RenameRefs(e->right.get(), renames);
}

void RenameRefsInStmt(SelectStmt* stmt,
                      const std::map<std::string, std::string>& renames) {
  for (SelectItem& item : stmt->select_list) {
    RenameRefs(item.expr.get(), renames);
  }
  RenameRefs(stmt->where.get(), renames);
  for (auto& g : stmt->group_by) RenameRefs(g.get(), renames);
  RenameRefs(stmt->having.get(), renames);
  for (OrderItem& o : stmt->order_by) RenameRefs(o.expr.get(), renames);
}

std::unique_ptr<Expr> AndChain(std::unique_ptr<Expr> a,
                               std::unique_ptr<Expr> b) {
  if (!a) return b;
  if (!b) return a;
  return Expr::MakeBinary(ExprKind::kLogic, BinaryOp::kAnd, std::move(a),
                          std::move(b));
}

}  // namespace

Result<std::unique_ptr<SelectStmt>> ViewUnfolder::UnfoldSql(
    const ViewDefinition& view, const std::string& query_sql) const {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                      Parser::ParseSelect(query_sql));
  DV_ASSIGN_OR_RETURN(BoundQuery bq, NormalizeQuery(stmt.get(), *catalog_,
                                                    source_default_db_));
  (void)bq;
  return Unfold(view, *stmt);
}

Result<std::unique_ptr<SelectStmt>> ViewUnfolder::Unfold(
    const ViewDefinition& view, const SelectStmt& query) const {
  if (view.HasAttributeVariables()) {
    return Status::Unsupported(
        "pivot sources are not unfoldable (a pivoted tuple aggregates a "
        "whole group, Sec. 3.1)");
  }
  if (view.IsAggregateView()) {
    return Status::Unsupported("aggregate sources are not unfoldable");
  }
  for (const std::string& dom : view.sel()) {
    if (view.FindDomainDecl(dom) == nullptr) {
      return Status::Unsupported("view output '" + dom +
                                 "' is not a plain column projection");
    }
  }

  std::unique_ptr<SelectStmt> out = query.Clone();
  std::map<std::string, std::string> renames;  // Query var → unfolded var.
  std::vector<FromItem> new_items;
  std::unique_ptr<Expr> extra_conds;
  std::set<std::string> taken;
  for (const FromItem& f : query.from_items) taken.insert(ToLower(f.var));
  int copy = 0;
  size_t matched = 0;

  std::vector<FromItem> kept;
  for (FromItem& f : out->from_items) {
    if (f.kind != FromItemKind::kTupleVar) {
      kept.push_back(std::move(f));
      continue;
    }
    // Does this scan match the view's output location?
    std::string db = f.db.empty() ? source_default_db_ : f.db.text;
    std::string db_label, rel_label;
    bool match = true;
    if (view.db_term().empty() || !view.db_term().is_variable) {
      std::string vdb = view.db_term().empty() ? source_default_db_
                                               : view.db_term().text;
      if (!EqualsIgnoreCase(db, vdb)) match = false;
    } else {
      db_label = db;  // Database name carries data.
    }
    if (!view.rel_term().is_variable) {
      if (!EqualsIgnoreCase(f.rel.text, view.rel_term().text)) match = false;
    } else {
      rel_label = f.rel.text;  // Relation name carries data.
    }
    if (!match) {
      kept.push_back(std::move(f));
      continue;
    }
    ++matched;

    // Inline a fresh copy of the body.
    std::string prefix = "u" + std::to_string(copy++) + "_";
    std::unique_ptr<SelectStmt> body = view.body().Clone();
    std::map<std::string, std::string> body_renames;
    for (FromItem& bf : body->from_items) {
      std::string fresh = prefix + bf.var;
      while (taken.count(ToLower(fresh)) > 0) fresh = "u" + fresh;
      taken.insert(ToLower(fresh));
      body_renames[ToLower(bf.var)] = fresh;
    }
    for (FromItem& bf : body->from_items) {
      bf.var = body_renames[ToLower(bf.var)];
      if (bf.kind == FromItemKind::kDomainVar) {
        auto it = body_renames.find(ToLower(bf.tuple));
        if (it != body_renames.end()) bf.tuple = it->second;
      }
      new_items.push_back(bf.Clone());
    }
    // Label constraints: the scanned table's name pins the label variables.
    auto pin_label = [&](const NameTerm& term, const std::string& label) {
      if (!term.is_variable || label.empty()) return;
      auto it = body_renames.find(ToLower(term.text));
      if (it == body_renames.end()) return;
      extra_conds = AndChain(
          std::move(extra_conds),
          Expr::MakeCompare(BinaryOp::kEq, Expr::MakeVarRef(it->second),
                            Expr::MakeLiteral(Value::String(label))));
    };
    pin_label(view.db_term(), db_label);
    pin_label(view.rel_term(), rel_label);
    // Body conditions (renamed).
    if (body->where) {
      std::unique_ptr<Expr> conds = body->where->Clone();
      RenameRefs(conds.get(), body_renames);
      extra_conds = AndChain(std::move(extra_conds), std::move(conds));
    }
    // Map the query's domain variables over this scan to the body's output
    // variables (positional: view attr i ← Dom(i)).
    for (const FromItem& d : query.from_items) {
      if (d.kind != FromItemKind::kDomainVar) continue;
      if (!EqualsIgnoreCase(d.tuple, f.var)) continue;
      int pos = -1;
      for (size_t i = 0; i < view.att_terms().size(); ++i) {
        if (EqualsIgnoreCase(view.att_terms()[i].text, d.attr.text)) {
          pos = static_cast<int>(i);
        }
      }
      if (pos < 0) {
        return Status::BindError("source query references attribute '" +
                                 d.attr.text +
                                 "' absent from the view header");
      }
      auto it = body_renames.find(ToLower(view.dom_of(pos)));
      if (it == body_renames.end()) {
        return Status::Internal("view output variable not renamed");
      }
      renames[ToLower(d.var)] = it->second;
    }
    // The scan and its domain declarations disappear (handled below).
  }
  if (matched == 0) {
    return Status::NotFound("query references no table of the view");
  }
  // Drop domain declarations of replaced scans.
  std::set<std::string> kept_tuples;
  for (const FromItem& f : kept) {
    if (f.kind == FromItemKind::kTupleVar) kept_tuples.insert(ToLower(f.var));
  }
  std::vector<FromItem> final_items;
  for (FromItem& f : kept) {
    if (f.kind == FromItemKind::kDomainVar &&
        kept_tuples.count(ToLower(f.tuple)) == 0) {
      continue;
    }
    final_items.push_back(std::move(f));
  }
  for (FromItem& f : new_items) final_items.push_back(std::move(f));
  out->from_items = std::move(final_items);
  out->where = AndChain(std::move(out->where), std::move(extra_conds));
  RenameRefsInStmt(out.get(), renames);
  return out;
}

}  // namespace dynview

#ifndef DYNVIEW_CORE_USABILITY_H_
#define DYNVIEW_CORE_USABILITY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/view_definition.h"
#include "relational/catalog.h"
#include "sql/ast.h"
#include "sql/binder.h"

namespace dynview {

/// A variable mapping φ from Var(V) to Var(Q) (Def. 5.1): tuple variables of
/// the view map to tuple variables of the query over the same relation, and
/// domain variables map along the induced attribute correspondence.
struct VariableMapping {
  /// Lowercased view variable → query variable (original case).
  std::map<std::string, std::string> map;
  /// True if φ is injective over Var(V) (required by Thms. 5.3/5.4).
  bool one_to_one = false;

  /// φ(view_var); empty when unmapped.
  std::string Apply(const std::string& view_var) const;

  /// Clones `e` with every view-variable reference replaced by its image.
  std::unique_ptr<Expr> ApplyToExpr(const Expr& e) const;

  std::string ToString() const;
};

/// Outcome of a usability test (Thms. 5.1–5.4).
struct UsabilityResult {
  bool usable = false;
  /// Human-readable explanation when not usable (which condition failed).
  std::string reason;
  VariableMapping phi;
  /// Conds′ — the residual predicates of Thm. 5.2 condition 3 (clones of
  /// query conjuncts, possibly with equality substitutions applied to meet
  /// condition 3(b)).
  std::vector<std::unique_ptr<Expr>> residual;
  /// For each needed query variable that the view must supply: the query
  /// variable (lowercased) → the view variable B ∈ Out(V) with
  /// Conds(Q) ⊨ A = φ(B) (Thm. 5.2 condition 2).
  std::map<std::string, std::string> supplied_by;
};

/// Structural summary of a normalized query used by the matcher.
struct QueryInfo {
  std::vector<TableRef> tables;
  std::vector<std::string> tuple_vars;
  /// tuple var (lower) → attr (lower) → domain variable name.
  std::map<std::string, std::map<std::string, std::string>> domain_of;
  /// domain variable (lower) → declaring tuple variable (lower).
  std::map<std::string, std::string> tuple_of_domain;
  /// domain variable (lower) → declared attribute (lower). Distinct from
  /// domain_of, which keeps one variable per (tuple, attribute): a query may
  /// declare several variables over the SAME attribute, and each needs its
  /// own supplier when the declaring tuple variable is covered away.
  std::map<std::string, std::string> attr_of_domain;
  std::vector<const Expr*> conds;
  /// Variables whose values the answer needs: select + GROUP BY + HAVING +
  /// ORDER BY references (lowercased, deduplicated).
  std::vector<std::string> needed_vars;
};

/// Extracts the Sec. 5 structure from a bound, normalized query.
Result<QueryInfo> AnalyzeQuery(const SelectStmt& stmt, const BoundQuery& bq,
                               const std::string& default_db);

/// Decides whether `view` is usable in answering `query` under set and
/// multiset semantics, implementing:
///   Thm. 5.1 — SPJ SQL views, set semantics (special case: no view vars),
///   Thm. 5.2 — dynamic SPJ views, set semantics,
///   Thm. 5.3 — SPJ SQL views, multiset semantics (φ one-to-one),
///   Thm. 5.4 — dynamic views, multiset semantics (additionally: no
///               attribute variables).
/// Aggregate queries are admitted per Sec. 5.2: under set usability all
/// aggregates must be duplicate-insensitive (MIN/MAX) unless the multiset
/// conditions hold.
class UsabilityChecker {
 public:
  UsabilityChecker(const CatalogReader* catalog, std::string default_db)
      : catalog_(catalog), default_db_(std::move(default_db)) {}

  /// Thm. 5.1/5.2. `query` must be normalized and bound.
  Result<UsabilityResult> CheckSetUsable(const ViewDefinition& view,
                                         const SelectStmt& query,
                                         const BoundQuery& bq) const;

  /// Thm. 5.3/5.4.
  Result<UsabilityResult> CheckMultisetUsable(const ViewDefinition& view,
                                              const SelectStmt& query,
                                              const BoundQuery& bq) const;

  /// Convenience: parse + normalize + check. `multiset` selects the test.
  Result<UsabilityResult> CheckSql(const ViewDefinition& view,
                                   const std::string& query_sql,
                                   bool multiset) const;

 private:
  Result<UsabilityResult> Check(const ViewDefinition& view,
                                const SelectStmt& query, const BoundQuery& bq,
                                bool require_one_to_one) const;

  const CatalogReader* catalog_;
  std::string default_db_;
};

}  // namespace dynview

#endif  // DYNVIEW_CORE_USABILITY_H_

#ifndef DYNVIEW_CORE_VIEW_DEFINITION_H_
#define DYNVIEW_CORE_VIEW_DEFINITION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"
#include "sql/ast.h"
#include "sql/binder.h"

namespace dynview {

/// A (database, relation) pair identifying a scanned table, with the
/// database already resolved against the relevant default.
struct TableRef {
  std::string db;   // Lowercased.
  std::string rel;  // Lowercased.

  friend bool operator==(const TableRef& a, const TableRef& b) {
    return a.db == b.db && a.rel == b.rel;
  }
  friend auto operator<=>(const TableRef& a, const TableRef& b) = default;

  std::string ToString() const { return db + "::" + rel; }
};

/// A copyable/movable atomic version counter. Used to stamp derived state
/// (materialized views, indexes) with the catalog version it was built from,
/// so readers can detect staleness without locking. Copy/move take a plain
/// load — version cells are only copied while their owner is quiescent.
class VersionCell {
 public:
  VersionCell() = default;
  explicit VersionCell(uint64_t v) : v_(v) {}
  VersionCell(const VersionCell& o) : v_(o.load()) {}
  VersionCell(VersionCell&& o) noexcept : v_(o.load()) {}
  VersionCell& operator=(const VersionCell& o) {
    store(o.load());
    return *this;
  }
  VersionCell& operator=(VersionCell&& o) noexcept {
    store(o.load());
    return *this;
  }

  uint64_t load() const { return v_.load(std::memory_order_acquire); }
  void store(uint64_t v) { v_.store(v, std::memory_order_release); }

  /// Monotonic bump: keeps the maximum of the current and new value, so
  /// concurrent maintainer commits can't move a fence backwards.
  void Advance(uint64_t v) {
    uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_release,
                                     std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<uint64_t> v_{0};
};

/// The Sec. 5 notation for a view V, computed from a bound and normalized
/// CREATE VIEW statement:
///
///   Db(V), Rel(V)       — database/relation label terms (constant or
///                         variable),
///   Att(V)              — output attribute label terms,
///   Dom(A)              — for each output attribute position, the body
///                         variable providing its values,
///   Sel(V)              — body variables in the select clause,
///   view variables      — the variables among Db/Rel/Att,
///   Out(V)              — view variables ∪ Sel(V),
///   Tables(V), Conds(V) — scanned tables and WHERE conjuncts.
///
/// For dynamic views (Def. 3.1) the body is first order, so all view
/// variables are domain variables of the body.
class ViewDefinition {
 public:
  /// Builds from `stmt` (takes ownership of a clone). The body is bound and
  /// normalized to explicit-variable form against `catalog`/`default_db`
  /// (the integration schema the view is defined over). Fails when the body
  /// is not expressible in the Sec. 5 fragment (each select item must be a
  /// single variable after normalization; no UNION).
  static Result<ViewDefinition> Create(const CreateViewStmt& stmt,
                                       const CatalogReader& catalog,
                                       const std::string& default_db);

  /// Parses then builds (convenience).
  static Result<ViewDefinition> FromSql(const std::string& create_view_sql,
                                        const CatalogReader& catalog,
                                        const std::string& default_db);

  const CreateViewStmt& stmt() const { return *stmt_; }
  const SelectStmt& body() const { return *stmt_->query; }
  const BoundQuery& bound_body() const { return bound_.body; }
  ViewClass view_class() const { return bound_.view_class; }

  /// Db(V) / Rel(V) / Att(V).
  const NameTerm& db_term() const { return stmt_->db; }
  const NameTerm& rel_term() const { return stmt_->name; }
  const std::vector<NameTerm>& att_terms() const { return stmt_->attrs; }

  /// Dom(att position i): body variable supplying values for that column.
  const std::string& dom_of(size_t i) const { return dom_[i]; }

  /// Sel(V): body variables appearing in the select clause, positionally.
  const std::vector<std::string>& sel() const { return dom_; }

  /// Variables among Db/Rel/Att (lowercased names).
  const std::vector<std::string>& view_variables() const {
    return view_variables_;
  }

  /// Out(V) = view variables ∪ Sel(V) (lowercased names, deduplicated).
  const std::vector<std::string>& out() const { return out_; }

  /// True if `var_name` ∈ Out(V).
  bool IsOutput(const std::string& var_name) const;

  /// True if any Att(V) position is a variable (the multiplicity-losing
  /// case of Sec. 4.3 / Thm. 5.4).
  bool HasAttributeVariables() const;

  /// Tables(V): scanned tables in tuple-variable declaration order.
  const std::vector<TableRef>& tables() const { return tables_; }

  /// Tuple-variable names aligned with tables().
  const std::vector<std::string>& tuple_vars() const { return tuple_vars_; }

  /// Conds(V): WHERE conjuncts of the body (borrowed pointers).
  const std::vector<const Expr*>& conds() const { return conds_; }

  /// The attribute of the view's defining relation a body domain variable
  /// ranges over: var (lowercased) → (tuple var, attribute term).
  struct DomainDecl {
    std::string tuple_var;
    NameTerm attr;
  };
  const DomainDecl* FindDomainDecl(const std::string& var_name) const;

  /// Whether the view aggregates (GROUP BY / aggregate select items) —
  /// routes usability through the Sec. 5.2 machinery.
  bool IsAggregateView() const;

  /// Stale fencing for *derived* state. A fenced view carries the catalog
  /// version its materialization (or index) was built from; it is stale —
  /// and must not serve answers — once any database in Tables(V) has
  /// committed past that version (CatalogSnapshot::DatabaseVersion). Views
  /// that are pure definitions (never materialized) stay unfenced: they are
  /// recomputed per query and can't be stale.
  bool fenced() const { return fenced_; }
  void set_fenced(bool fenced) { fenced_ = fenced; }
  uint64_t materialized_version() const { return materialized_version_.load(); }
  void AdvanceMaterializedVersion(uint64_t v) {
    materialized_version_.Advance(v);
  }

  /// The (db, rel) pairs the view's materialization installed, recorded by
  /// the registration / re-materialization paths. The fence checks these
  /// databases too: a DDL that drops or renames a materialization table
  /// bumps its database's version past the build version, so the view
  /// degrades to a deterministic stale warning instead of executing a
  /// rewriting over vanished (or silently wrong) tables.
  const std::vector<TableRef>& materialization() const {
    return materialization_;
  }
  void set_materialization(std::vector<TableRef> refs) {
    materialization_ = std::move(refs);
  }

  /// True iff the view is fenced and some database it depends on — a body
  /// table's database or a materialization target database — has a
  /// last-modified version in `snapshot` newer than the materialization
  /// (or no longer exists).
  bool IsStaleAgainst(const CatalogSnapshot& snapshot) const;

  ViewDefinition(ViewDefinition&&) = default;
  ViewDefinition& operator=(ViewDefinition&&) = default;

 private:
  ViewDefinition() = default;

  std::unique_ptr<CreateViewStmt> stmt_;
  BoundView bound_;
  std::vector<std::string> dom_;             // Positionally: Dom(att i).
  std::vector<std::string> view_variables_;  // Lowercased.
  std::vector<std::string> out_;             // Lowercased.
  std::vector<TableRef> tables_;
  std::vector<std::string> tuple_vars_;
  std::vector<const Expr*> conds_;
  std::map<std::string, DomainDecl> domain_decls_;  // Lowercased var name.
  std::vector<TableRef> materialization_;           // Lowercased.
  bool fenced_ = false;
  VersionCell materialized_version_;
};

/// Splits a WHERE tree into conjuncts (exposed for reuse by the usability
/// and translation machinery).
void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out);

}  // namespace dynview

#endif  // DYNVIEW_CORE_VIEW_DEFINITION_H_

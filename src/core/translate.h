#ifndef DYNVIEW_CORE_TRANSLATE_H_
#define DYNVIEW_CORE_TRANSLATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/usability.h"
#include "core/view_definition.h"

namespace dynview {

/// The product of Alg. 5.1: the rewritten query Q′ plus the bookkeeping a
/// Sec. 6 optimizer needs (which tables and predicates the view answered).
struct TranslationResult {
  /// Q′ — SQL when the view is first order, SchemaSQL when it is dynamic
  /// (schema variables quantify over the view's materialized labels).
  std::unique_ptr<SelectStmt> query;
  /// The fresh tuple variable scanning the view (step 1d).
  std::string view_tuple_var;
  /// Query tuple variables replaced by the view (φ images of Tables(V)) —
  /// the "portion of the query answered" in Sec. 6.
  std::vector<std::string> covered_tuple_vars;
  /// Number of query conjuncts absorbed by the view (implied by φ(Conds(V))).
  size_t absorbed_conjuncts = 0;
  /// Number of residual conjuncts (Conds′) kept in Q′.
  size_t residual_conjuncts = 0;
};

/// Implements Algorithm 5.1: translation of an SQL query on the integration
/// schema I into an SQL/SchemaSQL query on a materialized view.
class QueryTranslator {
 public:
  QueryTranslator(const CatalogReader* catalog, std::string default_db)
      : catalog_(catalog), default_db_(std::move(default_db)) {}

  /// Translates bound, normalized `query` through `view` using the mapping
  /// found by the usability checker. `usability.usable` must be true.
  Result<TranslationResult> Translate(const ViewDefinition& view,
                                      const SelectStmt& query,
                                      const BoundQuery& bq,
                                      const UsabilityResult& usability) const;

  /// Convenience: parse + normalize + usability check (set or multiset) +
  /// translate. Fails with the usability reason when the view is unusable.
  Result<TranslationResult> TranslateSql(const ViewDefinition& view,
                                         const std::string& query_sql,
                                         bool multiset) const;

  /// Applies the view repeatedly until no further tuple variables can be
  /// covered — producing the Fig. 11 Q1′ shape, where a self-join over the
  /// integration is answered by two scans of the view. Fails if the view is
  /// not usable even once. The returned result aggregates the bookkeeping of
  /// all applications.
  Result<TranslationResult> TranslateSqlAll(const ViewDefinition& view,
                                            const std::string& query_sql,
                                            bool multiset) const;

 private:
  const CatalogReader* catalog_;
  std::string default_db_;
};

}  // namespace dynview

#endif  // DYNVIEW_CORE_TRANSLATE_H_

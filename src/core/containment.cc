#include "core/containment.h"

#include <functional>
#include <set>

#include "common/str_util.h"
#include "core/implication.h"
#include "core/normalize.h"
#include "core/view_definition.h"
#include "sql/parser.h"

namespace dynview {

namespace {

struct Prepared {
  std::unique_ptr<SelectStmt> stmt;
  QueryInfo info;
};

Result<Prepared> Prepare(const std::string& sql, const CatalogReader& catalog,
                         const std::string& default_db) {
  Prepared p;
  DV_ASSIGN_OR_RETURN(p.stmt, Parser::ParseSelect(sql));
  if (p.stmt->union_next != nullptr || p.stmt->distinct ||
      !p.stmt->group_by.empty() || p.stmt->having != nullptr) {
    return Status::Unsupported(
        "containment covers single-block SPJ queries");
  }
  for (const SelectItem& item : p.stmt->select_list) {
    if (item.expr->ContainsAggregate() ||
        item.expr->kind == ExprKind::kStar) {
      return Status::Unsupported("containment covers SPJ select lists");
    }
  }
  DV_ASSIGN_OR_RETURN(BoundQuery bq,
                      NormalizeQuery(p.stmt.get(), catalog, default_db));
  DV_ASSIGN_OR_RETURN(p.info, AnalyzeQuery(*p.stmt, bq, default_db));
  return p;
}

/// Applies a variable mapping (lowercased var → replacement name) to a
/// cloned expression.
std::unique_ptr<Expr> MapExpr(const Expr& e,
                              const std::map<std::string, std::string>& h) {
  std::unique_ptr<Expr> out = e.Clone();
  std::function<void(Expr*)> walk = [&](Expr* node) {
    if (node == nullptr) return;
    if (node->kind == ExprKind::kVarRef) {
      auto it = h.find(ToLower(node->var_name));
      if (it != h.end()) node->var_name = it->second;
      return;
    }
    walk(node->left.get());
    walk(node->right.get());
  };
  walk(out.get());
  return out;
}

}  // namespace

Result<bool> ContainmentChecker::Contained(const std::string& q1_sql,
                                           const std::string& q2_sql) const {
  DV_ASSIGN_OR_RETURN(Prepared q1, Prepare(q1_sql, *catalog_, default_db_));
  DV_ASSIGN_OR_RETURN(Prepared q2, Prepare(q2_sql, *catalog_, default_db_));
  if (q1.stmt->select_list.size() != q2.stmt->select_list.size()) {
    return false;  // Different head arity: never contained.
  }

  ConditionAnalyzer q1_conds(q1.info.conds);

  // Candidate images for each q2 tuple variable.
  const size_t n2 = q2.info.tables.size();
  std::vector<std::vector<size_t>> candidates(n2);
  for (size_t i = 0; i < n2; ++i) {
    for (size_t j = 0; j < q1.info.tables.size(); ++j) {
      if (q2.info.tables[i] == q1.info.tables[j]) candidates[i].push_back(j);
    }
    if (candidates[i].empty()) return false;
  }

  constexpr int kMaxAssignments = 200000;
  int tried = 0;
  std::vector<size_t> pick(n2, 0);
  std::function<Result<bool>(size_t)> search = [&](size_t depth) -> Result<bool> {
    if (tried > kMaxAssignments) return false;
    if (depth == n2) {
      ++tried;
      // Induced variable mapping h : Var(q2) → Var(q1).
      std::map<std::string, std::string> h;
      for (size_t i = 0; i < n2; ++i) {
        std::string t2 = ToLower(q2.info.tuple_vars[i]);
        std::string t1 = ToLower(q1.info.tuple_vars[pick[i]]);
        auto d2 = q2.info.domain_of.find(t2);
        auto d1 = q1.info.domain_of.find(t1);
        if (d2 == q2.info.domain_of.end()) continue;
        if (d1 == q1.info.domain_of.end()) return false;
        for (const auto& [attr, var2] : d2->second) {
          auto a1 = d1->second.find(attr);
          if (a1 == d1->second.end()) return false;
          h[ToLower(var2)] = a1->second;
        }
      }
      // Every q2 condition must be implied by q1's closure after mapping.
      for (const Expr* c : q2.info.conds) {
        std::unique_ptr<Expr> mapped = MapExpr(*c, h);
        if (!q1_conds.Implies(*mapped)) return false;
      }
      // Heads align positionally up to implied equality.
      for (size_t k = 0; k < q1.stmt->select_list.size(); ++k) {
        std::unique_ptr<Expr> mapped =
            MapExpr(*q2.stmt->select_list[k].expr, h);
        auto eq = Expr::MakeCompare(BinaryOp::kEq,
                                    q1.stmt->select_list[k].expr->Clone(),
                                    std::move(mapped));
        if (!q1_conds.Implies(*eq)) return false;
      }
      return true;
    }
    for (size_t cand : candidates[depth]) {
      pick[depth] = cand;
      DV_ASSIGN_OR_RETURN(bool found, search(depth + 1));
      if (found) return true;
    }
    return false;
  };
  return search(0);
}

Result<bool> ContainmentChecker::Equivalent(const std::string& q1_sql,
                                            const std::string& q2_sql) const {
  DV_ASSIGN_OR_RETURN(bool fwd, Contained(q1_sql, q2_sql));
  if (!fwd) return false;
  return Contained(q2_sql, q1_sql);
}

}  // namespace dynview

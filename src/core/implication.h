#ifndef DYNVIEW_CORE_IMPLICATION_H_
#define DYNVIEW_CORE_IMPLICATION_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace dynview {

/// Decision procedure for implication between conjunctions of built-in
/// predicates over variables and constants — the `Conds(Q) ⊨ p` tests in
/// Thm. 5.2's conditions 2 and 3 and in Alg. 5.1's residual computation.
///
/// The theory covered is conjunctions of `x op y` and `x op c` with
/// op ∈ {=, <>, <, <=, >, >=}: an equality closure (union-find) augmented
/// with an order graph over equivalence classes and constants. Strictness is
/// tracked on edges, so `x < y ∧ y <= z ⊨ x < z` and `x <= 5 ∧ 5 < y ⊨
/// x <> y` are proved. Predicates outside the theory (LIKE, CONTAINS, OR,
/// IS NULL, arithmetic) are handled conservatively: they are implied only by
/// a syntactically identical conjunct.
class ConditionAnalyzer {
 public:
  /// Builds the closure of `conjuncts`. Conjuncts outside the comparison
  /// theory participate only in syntactic matching.
  explicit ConditionAnalyzer(const std::vector<const Expr*>& conjuncts);

  /// True if the conjunction implies `pred`.
  bool Implies(const Expr& pred) const;

  /// True if the conjunction implies the equality of two variables.
  bool ImpliesEquality(const std::string& var_a, const std::string& var_b) const;

  /// True if the closure derived a contradiction (everything is implied).
  bool unsatisfiable() const { return unsat_; }

  /// All variables provably equal to `var` under the closure (including
  /// itself), in deterministic order. Used by Thm. 5.2 condition 2's
  /// "∃ B ∈ Out(V) with Conds(Q) ⊨ A = φ(B)".
  std::vector<std::string> EqualVariables(const std::string& var) const;

 private:
  // Node ids: variables and constants share one id space.
  int NodeOf(const std::string& var_lower);
  int NodeOfConst(const Value& v);
  int Find(int x) const;
  void Union(int a, int b);
  void AddEdge(int from, int to, bool strict);  // from <= to (or < if strict).
  bool Reachable(int from, int to, bool* any_strict) const;

  /// Decomposes a conjunct into (term, op, term) over the theory; returns
  /// false if outside it.
  struct Term {
    bool is_const = false;
    std::string var;  // Lowercased.
    Value constant;
  };
  static bool Decompose(const Expr& e, Term* lhs, BinaryOp* op, Term* rhs);
  std::optional<int> TermNode(const Term& t) const;

  /// Proves `var op c` from the variable's derived constant bounds (the
  /// predicate's constant need not appear among the given conjuncts).
  bool ProveVarConst(int var_node, BinaryOp op, const Value& c) const;

  mutable std::vector<int> parent_;
  std::vector<std::vector<std::pair<int, bool>>> edges_;  // (to, strict).
  std::map<std::string, int> var_node_;    // Lowercased var → node.
  std::map<std::string, int> const_node_;  // Value rendering → node.
  std::vector<std::optional<Value>> const_of_node_;
  std::vector<std::string> syntactic_;  // Renderings of all conjuncts.
  std::vector<std::pair<int, int>> disequalities_;
  bool unsat_ = false;
};

}  // namespace dynview

#endif  // DYNVIEW_CORE_IMPLICATION_H_

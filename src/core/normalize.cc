#include "core/normalize.h"

#include <functional>
#include <map>
#include <set>

#include "common/str_util.h"

namespace dynview {

namespace {

/// Lowercased key identifying a (tuple variable, attribute label) pair.
/// Attribute-variable labels are prefixed so they cannot collide with
/// constant attribute names.
std::string PairKey(const std::string& tuple, const NameTerm& attr) {
  return ToLower(tuple) + "." + (attr.is_variable ? "$" : "") +
         ToLower(attr.text);
}

std::set<std::string> UsedVarNames(const SelectStmt& stmt) {
  std::set<std::string> used;
  for (const FromItem& f : stmt.from_items) used.insert(ToLower(f.var));
  return used;
}

std::string SynthesizeName(const std::string& tuple, const std::string& attr,
                           std::set<std::string>* used) {
  std::string base = attr;
  if (used->count(ToLower(base)) == 0) {
    used->insert(ToLower(base));
    return base;
  }
  base = tuple + "_" + attr;
  std::string candidate = base;
  int suffix = 2;
  while (used->count(ToLower(candidate)) > 0) {
    candidate = base + std::to_string(suffix++);
  }
  used->insert(ToLower(candidate));
  return candidate;
}

/// Existing domain-variable declarations keyed by (tuple, attr).
std::map<std::string, std::string> DomainVarIndex(const SelectStmt& stmt) {
  std::map<std::string, std::string> index;
  for (const FromItem& f : stmt.from_items) {
    if (f.kind == FromItemKind::kDomainVar) {
      index[PairKey(f.tuple, f.attr)] = f.var;
    }
  }
  return index;
}

using ExprVisitor = std::function<Status(std::unique_ptr<Expr>*)>;

Status WalkExprSlots(SelectStmt* stmt, const ExprVisitor& visit);

Status WalkExpr(std::unique_ptr<Expr>* slot, const ExprVisitor& visit) {
  if (*slot == nullptr) return Status::OK();
  DV_RETURN_IF_ERROR(visit(slot));
  Expr* e = slot->get();
  if (e->left) DV_RETURN_IF_ERROR(WalkExpr(&e->left, visit));
  if (e->right) DV_RETURN_IF_ERROR(WalkExpr(&e->right, visit));
  return Status::OK();
}

Status WalkExprSlots(SelectStmt* stmt, const ExprVisitor& visit) {
  for (SelectItem& item : stmt->select_list) {
    DV_RETURN_IF_ERROR(WalkExpr(&item.expr, visit));
  }
  if (stmt->where) DV_RETURN_IF_ERROR(WalkExpr(&stmt->where, visit));
  for (auto& g : stmt->group_by) DV_RETURN_IF_ERROR(WalkExpr(&g, visit));
  if (stmt->having) DV_RETURN_IF_ERROR(WalkExpr(&stmt->having, visit));
  for (OrderItem& o : stmt->order_by) {
    DV_RETURN_IF_ERROR(WalkExpr(&o.expr, visit));
  }
  return Status::OK();
}

}  // namespace

Status ResolveBareColumns(SelectStmt* stmt, const BoundQuery& bq,
                          const CatalogReader& catalog,
                          const std::string& default_db) {
  return WalkExprSlots(stmt, [&](std::unique_ptr<Expr>* slot) -> Status {
    Expr* e = slot->get();
    if (e->kind != ExprKind::kVarRef) return Status::OK();
    if (bq.Find(e->var_name) != nullptr) return Status::OK();
    // Locate the unique tuple variable whose relation has this attribute.
    const FromItem* match = nullptr;
    int count = 0;
    for (const FromItem& f : stmt->from_items) {
      if (f.kind != FromItemKind::kTupleVar) continue;
      if (f.rel.is_variable || f.db.is_variable) continue;
      std::string db = f.db.empty() ? default_db : f.db.text;
      Result<const Table*> t = catalog.ResolveTable(db, f.rel.text);
      if (!t.ok()) continue;
      if (t.value()->schema().HasColumn(e->var_name)) {
        match = &f;
        ++count;
      }
    }
    if (count == 0) {
      return Status::BindError("unresolved column '" + e->var_name + "'");
    }
    if (count > 1) {
      return Status::BindError("ambiguous column '" + e->var_name + "'");
    }
    std::string attr = e->var_name;
    e->kind = ExprKind::kColumnRef;
    e->qualifier = match->var;
    e->column = NameTerm(attr);
    e->var_name.clear();
    return Status::OK();
  });
}

Status ReplaceColumnRefsWithDomainVars(SelectStmt* stmt,
                                       const BoundQuery& bq) {
  std::map<std::string, std::string> index = DomainVarIndex(*stmt);
  std::set<std::string> used = UsedVarNames(*stmt);
  return WalkExprSlots(stmt, [&](std::unique_ptr<Expr>* slot) -> Status {
    Expr* e = slot->get();
    if (e->kind != ExprKind::kColumnRef) return Status::OK();
    const BoundVariable* t = bq.Find(e->qualifier);
    if (t == nullptr || t->cls != VarClass::kTuple) {
      return Status::BindError("column reference '" + e->qualifier + "." +
                               e->column.text +
                               "' does not qualify a tuple variable");
    }
    std::string key = PairKey(e->qualifier, e->column);
    auto it = index.find(key);
    std::string var;
    if (it != index.end()) {
      var = it->second;
    } else {
      var = SynthesizeName(e->qualifier, e->column.text, &used);
      FromItem decl;
      decl.kind = FromItemKind::kDomainVar;
      decl.tuple = e->qualifier;
      decl.attr = e->column;
      decl.var = var;
      stmt->from_items.push_back(std::move(decl));
      index[key] = var;
    }
    e->kind = ExprKind::kVarRef;
    e->var_name = var;
    e->qualifier.clear();
    e->column = NameTerm();
    return Status::OK();
  });
}

Status DeclareAllDomainVars(SelectStmt* stmt, const BoundQuery& bq,
                            const CatalogReader& catalog,
                            const std::string& default_db) {
  (void)bq;
  std::map<std::string, std::string> index = DomainVarIndex(*stmt);
  std::set<std::string> used = UsedVarNames(*stmt);
  std::vector<FromItem> to_add;
  for (const FromItem& f : stmt->from_items) {
    if (f.kind != FromItemKind::kTupleVar) continue;
    if (f.rel.is_variable || f.db.is_variable) continue;
    std::string db = f.db.empty() ? default_db : f.db.text;
    Result<const Table*> t = catalog.ResolveTable(db, f.rel.text);
    if (!t.ok()) continue;  // Unresolvable here; evaluation will report.
    for (const Column& c : t.value()->schema().columns()) {
      NameTerm attr(c.name);
      std::string key = PairKey(f.var, attr);
      if (index.count(key) > 0) continue;
      std::string var = SynthesizeName(f.var, c.name, &used);
      FromItem decl;
      decl.kind = FromItemKind::kDomainVar;
      decl.tuple = f.var;
      decl.attr = attr;
      decl.var = var;
      index[key] = var;
      to_add.push_back(std::move(decl));
    }
  }
  for (FromItem& f : to_add) stmt->from_items.push_back(std::move(f));
  return Status::OK();
}

Result<BoundQuery> NormalizeQuery(SelectStmt* stmt, const CatalogReader& catalog,
                                  const std::string& default_db) {
  DV_ASSIGN_OR_RETURN(BoundQuery bq, Binder::BindBranch(stmt));
  DV_RETURN_IF_ERROR(ResolveBareColumns(stmt, bq, catalog, default_db));
  DV_RETURN_IF_ERROR(ReplaceColumnRefsWithDomainVars(stmt, bq));
  DV_ASSIGN_OR_RETURN(bq, Binder::BindBranch(stmt));
  DV_RETURN_IF_ERROR(DeclareAllDomainVars(stmt, bq, catalog, default_db));
  return Binder::BindBranch(stmt);
}

}  // namespace dynview

#ifndef DYNVIEW_OBSERVE_METRICS_H_
#define DYNVIEW_OBSERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dynview {

/// Canonical counter and gauge names. Scheme: `<subsystem>.<what>`, all
/// lowercase, dot-separated — counters count events/rows cumulatively over
/// one query, gauges are point-in-time values set once at query end by the
/// driving thread (see docs/ARCHITECTURE.md "Observability").
///
/// Counters whose value is independent of `ExecConfig::num_threads` (the
/// stable cross-thread-count oracles used by the determinism suite) are
/// marked [invariant]; `morsels.executed` is the deliberate exception — the
/// morsel split depends on the worker count by design.
namespace counters {
inline constexpr char kRowsScanned[] = "rows.scanned";    // [invariant]
inline constexpr char kRowsJoined[] = "rows.joined";      // [invariant]
inline constexpr char kRowsUnioned[] = "rows.unioned";    // [invariant]
inline constexpr char kMorselsExecuted[] = "morsels.executed";
inline constexpr char kGroundingsEnumerated[] =
    "groundings.enumerated";                              // [invariant]
inline constexpr char kGroundingsPruned[] =
    "groundings.pruned_notfound";                         // [invariant]
inline constexpr char kGroundingsEvaluated[] =
    "groundings.evaluated";                               // [invariant]
inline constexpr char kSourceRetries[] = "source.retries";   // [invariant]
inline constexpr char kSourcesSkipped[] = "sources.skipped"; // [invariant]
inline constexpr char kFailpointTrips[] = "failpoint.trips"; // [invariant]
inline constexpr char kCatalogStalePath[] =
    "catalog.stale_path";                                 // [invariant]
inline constexpr char kPivotMultiplicityDropped[] =
    "pivot.multiplicity_dropped";                         // [invariant]
// Gauges (set at query end from QueryContext accounting).
inline constexpr char kBudgetRowsCharged[] = "budget.rows_charged";
inline constexpr char kBudgetBytesCharged[] = "budget.bytes_charged";
// Compiled query path: plan cache outcomes and expression compilation.
// All four plan_cache counters are decided on the driving thread before any
// worker runs, and exprs_flattened counts distinct programs inserted into
// the program cache (raced compiles insert once) — thread-count invariant.
inline constexpr char kPlanCacheHits[] = "plan_cache.hits";  // [invariant]
inline constexpr char kPlanCacheMisses[] =
    "plan_cache.misses";                                     // [invariant]
inline constexpr char kPlanCacheEvictions[] =
    "plan_cache.evictions";                                  // [invariant]
inline constexpr char kPlanCacheInvalidations[] =
    "plan_cache.invalidations";                              // [invariant]
inline constexpr char kExprsFlattened[] =
    "compile.exprs_flattened";                               // [invariant]
// Durable catalog storage (WAL + snapshot checkpoints). Owned by the
// DurableCatalog's registry, not the per-query one: these count storage
// events across the life of one durable attachment.
inline constexpr char kStorageWalAppends[] = "storage.wal_appends";
inline constexpr char kStorageWalBytes[] = "storage.wal_bytes";
inline constexpr char kStorageReplayedRecords[] =
    "storage.replayed_records";
inline constexpr char kStorageTornTail[] = "storage.torn_tail";
inline constexpr char kStorageCheckpoints[] = "storage.checkpoints";
// Query server (src/server/) counter family. Owned by the QueryServer's
// atomic stats block, not a per-query registry: these count connection and
// admission events across the life of one server, and are exported by
// QueryServer::MetricsSnapshot() / the wire "stats" verb under exactly
// these names.
inline constexpr char kServerAccepted[] = "server.connections_accepted";
inline constexpr char kServerClosed[] = "server.connections_closed";
inline constexpr char kServerRequests[] = "server.requests";
inline constexpr char kServerAdmitted[] = "server.requests_admitted";
inline constexpr char kServerQueued[] = "server.requests_queued";
inline constexpr char kServerShedQueueFull[] = "server.shed_queue_full";
inline constexpr char kServerShedSessionCap[] = "server.shed_session_cap";
inline constexpr char kServerShedPool[] = "server.shed_pool_backpressure";
inline constexpr char kServerBadFrames[] = "server.bad_frames";
inline constexpr char kServerOversizedFrames[] = "server.oversized_frames";
inline constexpr char kServerDisconnectCancels[] = "server.disconnect_cancels";
inline constexpr char kServerChunksSent[] = "server.chunks_sent";
inline constexpr char kServerBytesSent[] = "server.bytes_sent";
inline constexpr char kServerFailpointTrips[] = "server.failpoint_trips";
// Static analysis (DefineView / dynview-lint) tallies.
inline constexpr char kAnalyzeChecksRun[] = "analyze.checks_run";
inline constexpr char kAnalyzeDiagnostics[] = "analyze.diagnostics";
inline constexpr char kAnalyzeErrors[] = "analyze.errors";
inline constexpr char kAnalyzeWarnings[] = "analyze.warnings";
inline constexpr char kAnalyzeNotes[] = "analyze.notes";
// Workload audit (src/analyze/audit.cc) tallies: whole-audit runs, view
// pairs offered to the containment checker, findings by code, and what-if
// predictions computed.
inline constexpr char kAuditRuns[] = "analyze.audit.runs";
inline constexpr char kAuditPairsChecked[] = "analyze.audit.pairs_checked";
inline constexpr char kAuditDuplicates[] = "analyze.audit.duplicates";
inline constexpr char kAuditSubsumed[] = "analyze.audit.subsumed";
inline constexpr char kAuditShadowed[] = "analyze.audit.shadowed";
inline constexpr char kAuditUnused[] = "analyze.audit.unused";
inline constexpr char kAuditWhatIfRuns[] = "analyze.audit.whatif_runs";
}  // namespace counters

/// A per-query registry of named counters and gauges.
///
/// Counter increments go to per-thread shards (no cross-thread contention on
/// the hot path: one thread-local generation check plus one hash-map bump);
/// `Merged()` sums the shards into a sorted map at query end. Because
/// addition commutes, the merged value of every counter is a deterministic
/// function of the *set* of increments — independent of thread scheduling —
/// which is what makes counters usable as test oracles.
///
/// Thread-safety contract: `Add` may race with other `Add`s from any thread;
/// `Merged`/`Set`/`Reset`/`ToFlatText` must be called from the driving
/// thread while no worker is mid-increment (i.e. between queries or after a
/// ParallelFor join — the same points the engine merges result tables).
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to counter `name` in the calling thread's shard. Call at
  /// morsel/batch granularity, never per row.
  void Add(const char* name, uint64_t delta);

  /// Sets gauge `name` to `value` (last write wins; driving thread only).
  void Set(const char* name, uint64_t value);

  /// Deterministic merge: counters summed across all shards, then gauges,
  /// in lexicographic name order.
  std::map<std::string, uint64_t> Merged() const;

  /// Merged value of one counter/gauge (0 when never touched).
  uint64_t Value(const std::string& name) const;

  /// One `name=value` line per merged entry, sorted by name — the flat
  /// export format the benches attach to their BENCH_*.json counters.
  std::string ToFlatText() const;

  /// Forgets every counter, gauge and shard. Driving thread only.
  void Reset();

 private:
  struct Shard {
    std::unordered_map<std::string, uint64_t> counts;
  };

  Shard* LocalShard();

  /// Process-unique generation for (registry instance, reset epoch): lets
  /// the thread-local shard cache detect both Reset() and registry reuse at
  /// the same address without ever dereferencing a stale pointer.
  std::atomic<uint64_t> gen_;

  mutable std::mutex mu_;  // Guards shards_ layout and gauges_, not counts.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, uint64_t> gauges_;
};

}  // namespace dynview

#endif  // DYNVIEW_OBSERVE_METRICS_H_

#ifndef DYNVIEW_OBSERVE_OBSERVER_H_
#define DYNVIEW_OBSERVE_OBSERVER_H_

#include <string>

#include "observe/metrics.h"
#include "observe/trace.h"

namespace dynview {

/// Bundle of the two observability channels a query carries: the span trace
/// and the counter registry. QueryContext holds a borrowed pointer to one of
/// these (owned by the caller — integration::AnswerGuarded allocates one per
/// query and hands it out on AnswerResult); the engine threads it down into
/// every ExecContext it builds.
struct QueryObserver {
  QueryTrace trace;
  MetricsRegistry metrics;

  /// Human-readable combined report: flat counters followed by the span
  /// tree. Intended for logs and debugging, not machine parsing.
  std::string Report() const;
};

}  // namespace dynview

#endif  // DYNVIEW_OBSERVE_OBSERVER_H_

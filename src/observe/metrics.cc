#include "observe/metrics.h"

namespace dynview {

namespace {

uint64_t NextGen() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MetricsRegistry::MetricsRegistry() : gen_(NextGen()) {}

MetricsRegistry::~MetricsRegistry() {
  // Invalidate thread-local caches pointing at our shards: a dangling cached
  // pointer is only ever compared against gen_, never dereferenced, so
  // bumping the generation on destruction is sufficient.
  gen_.store(NextGen(), std::memory_order_relaxed);
}

MetricsRegistry::Shard* MetricsRegistry::LocalShard() {
  // One-entry cache per thread: (generation → shard). A thread alternating
  // between live registries re-registers a fresh shard on each switch; the
  // merge sums them all, so extra shards cost memory, never correctness.
  thread_local uint64_t cached_gen = 0;
  thread_local Shard* cached_shard = nullptr;
  const uint64_t gen = gen_.load(std::memory_order_relaxed);
  if (cached_gen == gen && cached_shard != nullptr) return cached_shard;
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  cached_shard = shards_.back().get();
  cached_gen = gen;
  return cached_shard;
}

void MetricsRegistry::Add(const char* name, uint64_t delta) {
  LocalShard()->counts[name] += delta;
}

void MetricsRegistry::Set(const char* name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

std::map<std::string, uint64_t> MetricsRegistry::Merged() const {
  std::map<std::string, uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (const auto& [name, count] : shard->counts) out[name] += count;
  }
  for (const auto& [name, value] : gauges_) out[name] = value;
  return out;
}

uint64_t MetricsRegistry::Value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto git = gauges_.find(name);
  if (git != gauges_.end()) return git->second;
  uint64_t sum = 0;
  for (const auto& shard : shards_) {
    auto it = shard->counts.find(name);
    if (it != shard->counts.end()) sum += it->second;
  }
  return sum;
}

std::string MetricsRegistry::ToFlatText() const {
  std::string out;
  for (const auto& [name, value] : Merged()) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.clear();
  gauges_.clear();
  gen_.store(NextGen(), std::memory_order_relaxed);
}

}  // namespace dynview

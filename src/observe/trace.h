#ifndef DYNVIEW_OBSERVE_TRACE_H_
#define DYNVIEW_OBSERVE_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace dynview {

/// Per-query trace of operator-level spans. Spans are coarse — one per
/// query, per UNION branch, per grounding, per operator — never per row, so
/// a mutex-guarded append is cheap relative to the work each span covers.
///
/// Span ordering in the buffer follows completion of `Begin` calls and is
/// nondeterministic under parallel execution; exporters sort by start
/// timestamp. Use MetricsRegistry counters, not span counts, as
/// deterministic test oracles.
class QueryTrace {
 public:
  struct Span {
    uint64_t id = 0;      // 1-based; 0 means "no span / no parent".
    uint64_t parent = 0;  // Enclosing span on the same thread, or explicit.
    std::string name;     // e.g. "op.scan", "grounding", "query.execute".
    std::string detail;   // Operator-specific: table name, source label, …
    uint32_t tid = 0;     // Dense per-trace thread index (0 = first seen).
    int64_t start_ns = 0; // Relative to trace construction (steady clock).
    int64_t end_ns = 0;   // 0 while the span is open.
  };

  QueryTrace() : origin_(std::chrono::steady_clock::now()) {}

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Opens a span; returns its id. `parent` 0 means "root".
  uint64_t Begin(const char* name, std::string detail = "",
                 uint64_t parent = 0);

  /// Closes span `id` (no-op for 0 or unknown ids).
  void End(uint64_t id);

  size_t size() const;

  /// Copy of all spans recorded so far.
  std::vector<Span> Snapshot() const;

  /// Human-readable rendering: one line per span, sorted by start time,
  /// indented by parent depth, with duration and thread index.
  std::string ToText() const;

  /// Chrome trace_event JSON ("X" complete events, microsecond timestamps):
  /// load the output in about://tracing or https://ui.perfetto.dev.
  std::string ToChromeTraceJson() const;

  void Clear();

 private:
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::unordered_map<std::thread::id, uint32_t> tids_;
};

/// RAII span: begins on construction, ends on destruction; all operations
/// no-op when `trace` is null (the disabled fast path costs one branch).
/// Spans opened on the same thread nest automatically (a thread-local stack
/// supplies the parent); cross-thread children — e.g. one grounding of a
/// parallel fan-out — pass the driving thread's span id explicitly.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, const char* name, std::string detail = "");
  ScopedSpan(QueryTrace* trace, const char* name, std::string detail,
             uint64_t explicit_parent);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// The span's id (0 when tracing is disabled) — pass as explicit_parent to
  /// spans opened on worker threads.
  uint64_t id() const { return id_; }

 private:
  QueryTrace* trace_;
  uint64_t id_ = 0;
};

}  // namespace dynview

#endif  // DYNVIEW_OBSERVE_TRACE_H_

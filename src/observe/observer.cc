#include "observe/observer.h"

namespace dynview {

std::string QueryObserver::Report() const {
  std::string out = "== metrics ==\n";
  out += metrics.ToFlatText();
  out += "== trace ==\n";
  out += trace.ToText();
  return out;
}

}  // namespace dynview

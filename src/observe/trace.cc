#include "observe/trace.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <utility>

namespace dynview {

namespace {

// Per-thread stack of open span ids for automatic parenting. Keyed by trace
// pointer so interleaved traces on one thread (e.g. a sub-engine query inside
// a higher-order grounding) do not adopt each other's spans.
struct SpanStack {
  std::vector<std::pair<const QueryTrace*, uint64_t>> open;
};

SpanStack& LocalStack() {
  thread_local SpanStack stack;
  return stack;
}

uint64_t TopFor(const QueryTrace* trace) {
  const auto& open = LocalStack().open;
  for (auto it = open.rbegin(); it != open.rend(); ++it) {
    if (it->first == trace) return it->second;
  }
  return 0;
}

void PushFor(const QueryTrace* trace, uint64_t id) {
  LocalStack().open.emplace_back(trace, id);
}

void PopFor(const QueryTrace* trace, uint64_t id) {
  auto& open = LocalStack().open;
  for (auto it = open.rbegin(); it != open.rend(); ++it) {
    if (it->first == trace && it->second == id) {
      open.erase(std::next(it).base());
      return;
    }
  }
}

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

uint64_t QueryTrace::Begin(const char* name, std::string detail,
                           uint64_t parent) {
  const int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = name;
  span.detail = std::move(detail);
  auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(),
                    static_cast<uint32_t>(tids_.size()));
  (void)inserted;
  span.tid = it->second;
  span.start_ns = now;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void QueryTrace::End(uint64_t id) {
  if (id == 0) return;
  const int64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  spans_[id - 1].end_ns = now;
}

size_t QueryTrace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<QueryTrace::Span> QueryTrace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string QueryTrace::ToText() const {
  std::vector<Span> spans = Snapshot();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     return a.start_ns < b.start_ns;
                   });
  // Depth by walking parent links (ids are stable across the sort).
  std::unordered_map<uint64_t, const Span*> by_id;
  for (const Span& s : spans) by_id[s.id] = &s;
  std::string out;
  for (const Span& s : spans) {
    int depth = 0;
    for (uint64_t p = s.parent; p != 0; ++depth) {
      auto it = by_id.find(p);
      if (it == by_id.end() || depth > 32) break;
      p = it->second->parent;
    }
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += s.name;
    if (!s.detail.empty()) {
      out += '(';
      out += s.detail;
      out += ')';
    }
    const int64_t dur =
        s.end_ns > s.start_ns ? (s.end_ns - s.start_ns) : 0;
    out += " dur=";
    out += std::to_string(dur / 1000);
    out += "us tid=";
    out += std::to_string(s.tid);
    out += '\n';
  }
  return out;
}

std::string QueryTrace::ToChromeTraceJson() const {
  std::vector<Span> spans = Snapshot();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out += ',';
    first = false;
    const int64_t dur =
        s.end_ns > s.start_ns ? (s.end_ns - s.start_ns) : 0;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, s.name);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(s.tid);
    out += ",\"ts\":";
    out += std::to_string(s.start_ns / 1000);
    out += ",\"dur\":";
    out += std::to_string(dur / 1000);
    out += ",\"args\":{\"detail\":\"";
    AppendJsonEscaped(out, s.detail);
    out += "\",\"span\":";
    out += std::to_string(s.id);
    out += ",\"parent\":";
    out += std::to_string(s.parent);
    out += "}}";
  }
  out += "]}";
  return out;
}

void QueryTrace::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  tids_.clear();
}

ScopedSpan::ScopedSpan(QueryTrace* trace, const char* name,
                       std::string detail)
    : trace_(trace) {
  if (trace_ == nullptr) return;
  id_ = trace_->Begin(name, std::move(detail), TopFor(trace_));
  PushFor(trace_, id_);
}

ScopedSpan::ScopedSpan(QueryTrace* trace, const char* name,
                       std::string detail, uint64_t explicit_parent)
    : trace_(trace) {
  if (trace_ == nullptr) return;
  id_ = trace_->Begin(name, std::move(detail), explicit_parent);
  PushFor(trace_, id_);
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr || id_ == 0) return;
  PopFor(trace_, id_);
  trace_->End(id_);
}

}  // namespace dynview

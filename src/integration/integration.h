#ifndef DYNVIEW_INTEGRATION_INTEGRATION_H_
#define DYNVIEW_INTEGRATION_INTEGRATION_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analyze/analyzer.h"
#include "common/result.h"
#include "observe/metrics.h"
#include "core/translate.h"
#include "observe/observer.h"
#include "core/usability.h"
#include "core/view_definition.h"
#include "engine/query_engine.h"
#include "index/view_index.h"
#include "optimizer/optimizer.h"
#include "plan_cache/fingerprint.h"
#include "plan_cache/plan_cache.h"
#include "relational/catalog.h"
#include "schemasql/view_maintainer.h"
#include "storage/durable_catalog.h"

namespace dynview {

struct AuditReport;   // analyze/audit.h
struct WhatIfReport;  // analyze/audit.h
struct DdlOp;         // evolve/evolution.h

/// Construction knobs for IntegrationSystem: the engine's ExecConfig plus
/// the plan cache's bounds. Defaults match the pre-plan-cache behavior apart
/// from repeated queries getting faster.
struct IntegrationOptions {
  ExecConfig exec;
  /// Total cached plans across shards; 0 disables the plan cache (every
  /// Answer takes the cold parse → rewrite path).
  size_t plan_cache_capacity = 256;
  size_t plan_cache_shards = 8;
};

/// Options for a guarded Answer call. `guards` bounds execution (deadline,
/// budgets) and selects the SourcePolicy applied when a source relation is
/// unavailable mid-query.
struct AnswerOptions {
  bool multiset = false;
  QueryGuards guards;
};

/// A guarded answer: the (possibly partial) result plus one warning per
/// source contribution that was skipped under SourcePolicy::kSkipAndReport
/// or fenced off as stale. An empty warning list means the result is
/// complete.
///
/// `observer` carries the query's trace and merged counters when tracing was
/// enabled (ExecConfig::enable_trace and no caller-attached observer on
/// `ctx`); null otherwise. Shared ownership lets callers keep the trace past
/// the next Answer call.
///
/// `snapshot` / `snapshot_version` record the one catalog version every read
/// of this query observed. Re-executing the same query serially against
/// `snapshot` must reproduce `table` byte-for-byte — the consistency oracle
/// the chaos suite asserts under concurrent catalog mutation.
struct AnswerResult {
  Table table;
  std::vector<SourceWarning> warnings;
  std::shared_ptr<const QueryObserver> observer;
  uint64_t snapshot_version = 0;
  std::shared_ptr<const CatalogSnapshot> snapshot;

  /// True when the answer reused a cached plan (parse → rewrite skipped);
  /// false on the cold compile path. `plan_fingerprint` is the normalized
  /// query hash (16 hex digits, exact mode) the plan cache keyed on — empty
  /// only when the query never reached the cache (unparseable, or the cache
  /// is disabled).
  bool plan_cached = false;
  std::string plan_fingerprint;
};

/// A query template compiled once by IntegrationSystem::Prepare: the parsed
/// AST with `?` parameter markers plus its parameterized-shape fingerprint.
/// Immutable and shareable across threads; each ExecutePrepared clones the
/// template, substitutes positional values, and joins the normal cached
/// answer path (so repeats of the same substituted query hit the plan cache
/// without ever re-parsing SQL text).
class PreparedQuery {
 public:
  const std::string& sql() const { return sql_; }
  int num_params() const { return num_params_; }
  /// Parameterized-mode fingerprint (literals stripped): identifies the
  /// query *shape* independent of the values later bound.
  const std::string& fingerprint() const { return fp_hex_; }

 private:
  friend class IntegrationSystem;
  std::string sql_;
  std::shared_ptr<const SelectStmt> template_;
  int num_params_ = 0;
  std::string fp_hex_;
};

/// Options for IntegrationSystem::DefineView. `materialize` selects the
/// RegisterAndMaterializeSource path (I holds the data) over plain
/// RegisterSource; `multiset` is the semantics the analyzer hardens its
/// DV003/DV004 checks for.
struct DefineViewOptions {
  bool materialize = false;
  bool multiset = false;
};

/// A successfully defined source plus the (non-error) diagnostics the
/// analyzer attached to it. Warning diagnostics are also remembered: every
/// later AnswerGuarded call that rewrites onto this source re-surfaces them
/// on AnswerResult::warnings.
struct DefinedView {
  const ViewDefinition* view = nullptr;
  std::vector<Diagnostic> diagnostics;
};

/// Commit tag the schema evolver stamps on a source re-materialization
/// commit: "evolve.remat#<index>|db::rel,db::rel,...". The WAL persists it
/// verbatim, so replay re-advances source <index>'s fence to the replayed
/// commit version AND restores its materialization refs to exactly the
/// partition set that commit installed — crash recovery lands on the same
/// staleness state the evolution reached.
std::string EvolveRematTag(size_t index, const std::vector<TableRef>& refs);

/// Parses an EvolveRematTag; returns false when `tag` is not one.
bool ParseEvolveRematTag(const std::string& tag, size_t* index,
                         std::vector<TableRef>* refs);

/// The Fig. 6 architecture. The integration schema I is a stable,
/// first-order schema designed for the new application; every data source
/// (legacy schema, interface schema, or index) is registered as an SQL or
/// dynamic view *over* I whose materialization carries the actual data.
/// Queries are posed against I and answered by rewriting them onto the
/// registered sources (local-as-view query answering), optionally through
/// the Sec. 6 optimizer.
class IntegrationSystem {
 public:
  /// `integration_db` names the database inside `catalog` holding I's
  /// schema. I's tables may be *virtual*: present in the catalog (for
  /// binding and statistics) but possibly empty, with the data living only
  /// under the sources.
  IntegrationSystem(Catalog* catalog, std::string integration_db);
  IntegrationSystem(Catalog* catalog, std::string integration_db,
                    const IntegrationOptions& options);

  /// The analyzed registration path (CREATE VIEW through the lint pass):
  /// runs the static analyzer (DV001..DV006) against a pinned catalog
  /// snapshot and *rejects* the definition with InvalidArgument when any
  /// error-severity diagnostic fires — a Def. 3.1-violating body (DV002)
  /// never becomes a source. Warnings and notes admit the view; they come
  /// back on DefinedView::diagnostics, tally into the `analyze.*` metrics
  /// family (analyze_metrics()), and warnings re-surface on
  /// AnswerResult::warnings whenever the source answers a query.
  Result<DefinedView> DefineView(const std::string& create_view_sql,
                                 const DefineViewOptions& options = {});

  /// Re-runs the analyzer over every registered source against the current
  /// catalog snapshot — the definition-time checks plus DV007 (stale
  /// materialization fence). Diagnostics carry the registration index in
  /// Diagnostic::statement. Deterministic for a fixed catalog version.
  std::vector<Diagnostic> LintSources() const;

  /// Re-lints ONE registered source against `snap` (the schema evolver's
  /// per-affected-source pass). Same checks and determinism as LintSources;
  /// diagnostics carry `index` in Diagnostic::statement and tally into
  /// analyze_metrics().
  std::vector<Diagnostic> LintSource(size_t index,
                                     const CatalogSnapshot& snap) const;

  /// The cumulative `analyze.*` counters across DefineView/LintSources
  /// calls on this system.
  const MetricsRegistry& analyze_metrics() const { return analyze_metrics_; }

  /// Copies the cumulative `analyze.*` / `analyze.audit.*` tallies into
  /// `sink` as gauges. Answer paths call this at query end so the per-answer
  /// observer export (AnswerResult::observer) carries the analysis counters
  /// alongside the engine's own; the server `stats` verb uses
  /// analyze_metrics() directly.
  void ExportAnalyzeMetrics(MetricsRegistry* sink) const;

  /// Workload-level static audit (analyze/audit.h) over the current catalog
  /// snapshot: dependency graph + DV100..DV103 redundancy/reachability
  /// findings. Tallies into analyze_metrics() (analyze.audit.*).
  AuditReport AuditWorkload() const;

  /// Blast-radius prediction for `op` without applying it: which sources
  /// re-lint clean, which would be left fenced, and which rematerializations
  /// are O(base) — the static mirror of SchemaEvolver's propagation.
  WhatIfReport WhatIfAudit(const DdlOp& op) const;

  /// Registers a source described by `create_view_sql` (a view over I) and
  /// materializes it from I's current contents into `catalog`. Use when I
  /// holds the data and sources are derived (warehouse loading direction).
  /// Unlike DefineView, this path does NOT run the analyzer (seed workloads
  /// and tests register known-good definitions directly).
  Result<const ViewDefinition*> RegisterAndMaterializeSource(
      const std::string& create_view_sql);

  /// Registers a source whose materialization already exists in the catalog
  /// (the usual legacy-integration direction: the sources ARE the data).
  Result<const ViewDefinition*> RegisterSource(
      const std::string& create_view_sql);

  /// Registers a view-described index built against I.
  Result<const ViewIndex*> RegisterIndex(const std::string& create_index_sql);

  // --- Durability (storage/durable_catalog.h) ----------------------------

  /// Binds this system to `dir`: recovers catalog, sources, indexes and
  /// fences from the newest valid snapshot + WAL replay (restoring the
  /// exact pre-crash head version, so stale fencing and DV007 hold across
  /// restarts), then persists every subsequent catalog commit and
  /// registration. Two intended shapes:
  ///   * fresh system + existing dir  — the restart/recovery path;
  ///   * populated system + fresh dir — "start persisting now" (current
  ///     state is captured by the initial checkpoint).
  /// Recovery warnings (torn WAL tail, skipped snapshot) surface once on
  /// the next AnswerGuarded result and stay readable via recovery_report().
  Status OpenDurable(const std::string& dir,
                     const DurabilityOptions& options = {});

  /// Writes a snapshot (catalog + registrations) and truncates the WAL.
  Status Checkpoint();

  /// Final checkpoint + detach. The report survives for inspection.
  Status CloseDurable();

  bool durable() const { return durable_ != nullptr; }
  const RecoveryReport& recovery_report() const { return recovery_report_; }
  /// storage.* counters of the open durable attachment (null when closed).
  const MetricsRegistry* storage_metrics() const {
    return durable_ != nullptr ? &durable_->metrics() : nullptr;
  }

  /// An incremental maintainer for registered source `source_index`, with
  /// the fence bound and the commit tag set to
  /// "maintainer.delta#<source_index>" — the tag the WAL persists, so
  /// recovery re-advances THIS source's fence to the replayed commit
  /// version. `default_target_db` routes materialization rows of views
  /// without an explicit target database (usually the materialization db).
  Result<ViewMaintainer> CreateMaintainer(size_t source_index,
                                          const std::string& default_target_db);

  /// Answers `sql` (a first-order query on I) by rewriting it onto a usable
  /// source (Alg. 5.1) and executing the rewriting. Tries sources in
  /// registration order; `multiset` demands a bag-correct rewriting
  /// (Thm. 5.4), otherwise set-correctness (Thm. 5.2) suffices.
  /// Fails with NotFound if no registered source can answer the query and
  /// I itself holds no data for it.
  Result<Table> Answer(const std::string& sql, bool multiset);

  /// Like Answer, but executes under `options.guards`: the query observes
  /// the deadline / cancellation / row / byte budgets, and transient source
  /// failures degrade per `options.guards.source_policy` — kSkipAndReport
  /// yields a partial result whose `warnings` name each skipped source.
  /// Guard trips surface as kDeadlineExceeded / kCancelled /
  /// kResourceExhausted statuses. `ctx`, when given, allows the caller to
  /// cancel concurrently via ctx->Cancel(); it must outlive the call and
  /// carry the same guards.
  ///
  /// The whole call runs against ONE catalog snapshot, pinned on the query
  /// context up front (a caller-pinned snapshot of this catalog is honored —
  /// the chaos oracle uses that to re-execute against a recorded version).
  /// Registered sources whose materialization is stale against that snapshot
  /// are fenced off: the rewrite falls back past them (ultimately to the
  /// baseline direct plan on I), each fenced source adds a deterministic
  /// warning, and the `catalog.stale_path` counter is bumped once per fence.
  /// Safe to call from several threads on one IntegrationSystem.
  Result<AnswerResult> AnswerGuarded(const std::string& sql,
                                     const AnswerOptions& options,
                                     QueryContext* ctx = nullptr);

  /// Compiles `sql` (which may hold positional `?` parameters) into a
  /// reusable template. Parsing and parameter counting happen once, here.
  Result<std::shared_ptr<PreparedQuery>> Prepare(const std::string& sql);

  /// Executes a prepared template with `params` bound positionally (params
  /// [i] replaces the i-th `?`, left-to-right). Semantically identical to
  /// AnswerGuarded over the substituted SQL, but skips parsing entirely and
  /// shares cached plans across repeats: the cache key is the *exact*
  /// fingerprint of the substituted statement, because Alg. 5.1's usability
  /// decisions may depend on the literal values — parameterized-key caching
  /// of rewritings would be unsound.
  Result<AnswerResult> ExecutePrepared(const PreparedQuery& prepared,
                                       const std::vector<Value>& params,
                                       const AnswerOptions& options = {},
                                       QueryContext* ctx = nullptr);

  /// Drops every cached plan (and the raw-SQL memo). Benches use this to
  /// measure the cold path; registration paths call it internally.
  void ClearPlanCache();

  /// Cumulative plan-cache counters since construction.
  PlanCacheStats plan_cache_stats() const { return plan_cache_.Stats(); }

  /// Like Answer, but returns the chosen rewriting without executing.
  /// Aggregate queries are additionally offered to aggregate-defined
  /// sources via the Sec. 5.2 re-aggregation machinery (Ex. 5.3).
  Result<TranslationResult> Rewrite(const std::string& sql, bool multiset);

  /// Answers `sql` through the Sec. 6 optimizer (all registered sources and
  /// indexes offered as access paths).
  Result<Table> AnswerOptimized(const std::string& sql);

  /// EXPLAIN for AnswerOptimized: the chosen plan, the view/index access
  /// paths it uses, and the cost comparison against the baseline plan —
  /// without executing anything.
  Result<std::string> ExplainOptimized(const std::string& sql);

  /// Keyword search over I (Sec. 1.1.2): rows of `interface_table` (an
  /// unpivoted (id, attribute, value) interface schema) whose value contains
  /// `keyword`, answered via a registered inverted index when one matches,
  /// else by scan.
  Result<Table> KeywordSearch(const std::string& interface_table,
                              const std::string& keyword);

  const std::vector<std::shared_ptr<ViewDefinition>>& sources() const {
    return sources_;
  }

  const std::vector<std::shared_ptr<ViewIndex>>& indexes() const {
    return indexes_;
  }

  QueryEngine* engine() { return &engine_; }
  Optimizer* optimizer() { return &optimizer_; }
  Catalog* catalog() const { return catalog_; }
  const std::string& integration_db() const { return integration_db_; }

 private:
  /// One plan-cache entry: everything a repeat of the same normalized query
  /// at the same catalog version needs to skip parse → rewrite (Alg. 5.1).
  /// Statements are immutable templates — execution clones them, because
  /// the binder annotates the AST in place. `programs` is the plan's own
  /// compiled-expression memo: every execution (and every grounding of its
  /// fan-out) shares the programs compiled the first time.
  struct CachedPlan {
    std::shared_ptr<const SelectStmt> rewritten;  // Null = direct path on I.
    std::shared_ptr<const SelectStmt> direct;     // Set when rewritten null.
    const ViewDefinition* chosen = nullptr;
    std::vector<SourceWarning> stale;
    std::shared_ptr<ExprProgramCache> programs;
  };

  /// Rewrite against one pinned catalog version: translators resolve view
  /// bodies and I's schema through `snap`, and fenced sources whose
  /// materialization is stale against `snap` are skipped. Each skip appends
  /// a deterministic (registration-order) warning to `stale`, when given.
  /// On success `*chosen` (when given) names the source the rewriting uses.
  Result<TranslationResult> RewriteOver(const std::string& sql, bool multiset,
                                        const CatalogSnapshot& snap,
                                        std::vector<SourceWarning>* stale,
                                        const ViewDefinition** chosen = nullptr);

  /// The shared answer path behind AnswerGuarded and ExecutePrepared once a
  /// cache key exists. `stmt` is the parsed statement when the caller has
  /// it (null on a raw-memo hit — it is only needed, and then re-parsed, on
  /// a cache miss). `cache_key` empty = caching disabled for this call.
  Result<AnswerResult> AnswerWithCache(const std::string& sql,
                                       const std::string& cache_key,
                                       const std::string& fp_hex,
                                       std::unique_ptr<SelectStmt> stmt,
                                       const AnswerOptions& options,
                                       QueryContext* ctx);

  /// The pre-plan-cache AnswerGuarded body, kept verbatim for unparseable
  /// SQL so error surfaces are unchanged.
  Result<AnswerResult> AnswerUncached(const std::string& sql,
                                      const AnswerOptions& options,
                                      QueryContext* ctx);

  /// Registration cores without the durability echo (the restore path uses
  /// them so replaying a WAL never re-appends to it).
  Result<const ViewDefinition*> RegisterSourceInternal(
      const std::string& create_view_sql);
  Result<const ViewDefinition*> RegisterAndMaterializeInternal(
      const std::string& create_view_sql);
  /// Shared index installation: indexes_ push, plan-cache clear, optimizer
  /// metadata derivation from the (parsed) defining statement.
  const ViewIndex* InstallIndex(std::shared_ptr<ViewIndex> holder,
                                const CreateIndexStmt& stmt);

  /// Durably logs a registration ("source"/"index" WAL blob). No-ops when
  /// durability is closed; called by the public registration paths only.
  Status AppendSourceRecord(const ViewDefinition* view);
  Status AppendIndexRecord(const ViewIndex& index);
  std::string EncodeSourceRecord(const ViewDefinition& view) const;
  std::string EncodeIndexRecord(const ViewIndex& index) const;
  Status RestoreSourceRecord(const std::string& payload);
  Status RestoreIndexRecord(const std::string& payload);
  /// Everything blob-shaped a checkpoint must persist (registration order).
  std::vector<std::pair<std::string, std::string>> RegistrationExtras() const;
  /// Moves pending recovery warnings (drained once) to the front of `out`.
  void DrainRecoveryWarnings(std::vector<SourceWarning>* out);

  Catalog* catalog_;
  std::string integration_db_;
  QueryEngine engine_;
  Optimizer optimizer_;
  std::vector<std::shared_ptr<ViewDefinition>> sources_;
  std::vector<std::shared_ptr<ViewIndex>> indexes_;
  /// Warning/note diagnostics DefineView attached to each admitted source,
  /// re-surfaced on AnswerResult::warnings when the source answers a query.
  std::map<const ViewDefinition*, std::vector<Diagnostic>> source_diags_;
  /// Cumulative analyze.* tallies (DefineView and LintSources record here).
  mutable MetricsRegistry analyze_metrics_;

  /// Normalized-fingerprint plan cache: key = exact fingerprint + multiset
  /// flag, version = pinned snapshot version. Cleared whenever the source /
  /// index universe changes (RegisterSource, RegisterIndex).
  mutable ShardedLruCache<CachedPlan> plan_cache_;
  bool plan_cache_enabled_ = true;

  /// First cache level: raw SQL text (+ multiset flag) → (cache key, hex
  /// fingerprint). Repeated identical strings skip parsing AND
  /// fingerprinting. Bounded, dropped wholesale at capacity; never needs
  /// registration-time clearing because a fingerprint is a pure function of
  /// the text.
  mutable std::mutex memo_mu_;
  mutable std::unordered_map<std::string, std::pair<std::string, std::string>>
      raw_memo_;

  /// Declared last: destroying the attachment runs a final checkpoint whose
  /// blob_provider still reads sources_/indexes_ above.
  RecoveryReport recovery_report_;
  std::mutex recovery_warn_mu_;
  std::vector<SourceWarning> pending_recovery_warnings_;
  std::unique_ptr<DurableCatalog> durable_;
};

}  // namespace dynview

#endif  // DYNVIEW_INTEGRATION_INTEGRATION_H_

#include "integration/integration.h"

#include "common/str_util.h"
#include "core/aggregate_rewrite.h"
#include "schemasql/view_materializer.h"
#include "sql/parser.h"

namespace dynview {

IntegrationSystem::IntegrationSystem(Catalog* catalog,
                                     std::string integration_db)
    : catalog_(catalog),
      integration_db_(std::move(integration_db)),
      engine_(catalog, integration_db_),
      optimizer_(catalog, integration_db_) {}

Result<DefinedView> IntegrationSystem::DefineView(
    const std::string& create_view_sql, const DefineViewOptions& options) {
  // Analysis and registration see the same catalog version.
  std::shared_ptr<const CatalogSnapshot> snap = catalog_->Snapshot();
  Analyzer analyzer(snap.get(), integration_db_);
  AnalyzeOptions opts;
  opts.multiset = options.multiset;
  std::vector<Diagnostic> diags =
      analyzer.AnalyzeCreateView(create_view_sql, opts);
  RecordAnalyzeMetrics(diags, &analyze_metrics_);
  if (HasErrors(diags)) {
    return Status::InvalidArgument("view definition rejected:\n" +
                                   RenderDiagnosticsText(diags));
  }
  Result<const ViewDefinition*> registered =
      options.materialize ? RegisterAndMaterializeSource(create_view_sql)
                          : RegisterSource(create_view_sql);
  DV_RETURN_IF_ERROR(registered.status());
  const ViewDefinition* view = registered.value();
  if (!diags.empty()) source_diags_[view] = diags;
  return DefinedView{view, std::move(diags)};
}

std::vector<Diagnostic> IntegrationSystem::LintSources() const {
  std::shared_ptr<const CatalogSnapshot> snap = catalog_->Snapshot();
  Analyzer analyzer(snap.get(), integration_db_);
  std::vector<Diagnostic> all;
  for (size_t i = 0; i < sources_.size(); ++i) {
    std::vector<Diagnostic> diags =
        analyzer.AnalyzeRegisteredView(*sources_[i], *snap);
    for (Diagnostic& d : diags) {
      d.statement = static_cast<int>(i);
      all.push_back(std::move(d));
    }
  }
  RecordAnalyzeMetrics(all, &analyze_metrics_);
  SortDiagnostics(&all);
  return all;
}

Result<const ViewDefinition*> IntegrationSystem::RegisterAndMaterializeSource(
    const std::string& create_view_sql) {
  uint64_t commit_version = 0;
  DV_RETURN_IF_ERROR(ViewMaterializer::MaterializeSql(
                         create_view_sql, &engine_, catalog_, integration_db_,
                         /*qc=*/nullptr, &commit_version)
                         .status());
  DV_ASSIGN_OR_RETURN(const ViewDefinition* view,
                      RegisterSource(create_view_sql));
  // The materialization is derived state: fence it at the version its
  // install committed so queries pinned to a later snapshot can detect
  // whether I has moved underneath it (ViewDefinition::IsStaleAgainst).
  ViewDefinition* fenced = sources_.back().get();
  fenced->AdvanceMaterializedVersion(commit_version);
  fenced->set_fenced(true);
  return view;
}

Result<const ViewDefinition*> IntegrationSystem::RegisterSource(
    const std::string& create_view_sql) {
  DV_ASSIGN_OR_RETURN(
      ViewDefinition view,
      ViewDefinition::FromSql(create_view_sql, *catalog_, integration_db_));
  auto holder = std::make_shared<ViewDefinition>(std::move(view));
  sources_.push_back(holder);
  optimizer_.RegisterView(holder);
  return holder.get();
}

Result<const ViewIndex*> IntegrationSystem::RegisterIndex(
    const std::string& create_index_sql) {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<CreateIndexStmt> stmt,
                      Parser::ParseCreateIndex(create_index_sql));
  DV_ASSIGN_OR_RETURN(ViewIndex index, ViewIndex::Build(*stmt, &engine_));
  auto holder = std::make_shared<ViewIndex>(std::move(index));
  indexes_.push_back(holder);
  // Derive optimizer registration metadata when the defining query has the
  // restricted single-table shape `... by given T.key select T.a1,... from
  // [db::]rel T [...]`; richer indexes remain probe-able directly.
  const SelectStmt& body = *stmt->query;
  size_t tuple_count = 0;
  const FromItem* scan = nullptr;
  for (const FromItem& f : body.from_items) {
    if (f.kind == FromItemKind::kTupleVar) {
      ++tuple_count;
      scan = &f;
    }
  }
  if (tuple_count == 1 && scan != nullptr && !scan->rel.is_variable &&
      !scan->db.is_variable && stmt->given.size() == 1 &&
      stmt->given[0]->kind == ExprKind::kColumnRef) {
    std::vector<std::string> payload;
    bool simple = true;
    for (const SelectItem& item : body.select_list) {
      if (item.expr->kind == ExprKind::kColumnRef &&
          !item.expr->column.is_variable) {
        payload.push_back(item.expr->column.text);
      } else {
        simple = false;
      }
    }
    if (simple) {
      std::string db = scan->db.empty() ? integration_db_ : scan->db.text;
      optimizer_.RegisterIndex(holder,
                               TableRef{ToLower(db), ToLower(scan->rel.text)},
                               stmt->given[0]->column.text, payload);
    }
  }
  return holder.get();
}

Result<TranslationResult> IntegrationSystem::Rewrite(const std::string& sql,
                                                     bool multiset) {
  // One consistent version for the whole rewrite (the translators read view
  // bodies and I's schema through it). Held alive for the call.
  std::shared_ptr<const CatalogSnapshot> snap = catalog_->Snapshot();
  return RewriteOver(sql, multiset, *snap, /*stale=*/nullptr);
}

Result<TranslationResult> IntegrationSystem::RewriteOver(
    const std::string& sql, bool multiset, const CatalogSnapshot& snap,
    std::vector<SourceWarning>* stale, const ViewDefinition** chosen) {
  QueryTranslator translator(&snap, integration_db_);
  AggregateViewRewriter agg_rewriter(&snap, integration_db_);
  std::string last_reason;
  for (const auto& source : sources_) {
    if (source->IsStaleAgainst(snap)) {
      // The materialization predates a commit that touched a base database
      // the view reads: answering from it would not match any single catalog
      // version. Fall back past it (stale fencing).
      const NameTerm& db = source->db_term();
      const NameTerm& rel = source->rel_term();
      std::string name =
          (db.empty() ? std::string() : db.text + "::") + rel.text;
      last_reason = "source " + name + " is stale";
      if (stale != nullptr) {
        stale->push_back(SourceWarning{
            name, Status::Unavailable(
                      "stale materialization: built at catalog version " +
                      std::to_string(source->materialized_version()) +
                      ", snapshot is version " +
                      std::to_string(snap.version()))});
      }
      continue;
    }
    if (source->IsAggregateView()) {
      // Sec. 5.2 / Ex. 5.3: aggregate-defined sources answer aggregate
      // queries by re-aggregation. AVG re-aggregation requires the
      // uniform-group assumption, so it is only offered for set semantics.
      Result<TranslationResult> t = agg_rewriter.Rewrite(
          *source, sql, /*allow_avg_reaggregation=*/!multiset);
      if (t.ok()) {
        if (chosen != nullptr) *chosen = source.get();
        return t;
      }
      last_reason = t.status().message();
      continue;
    }
    Result<TranslationResult> t =
        translator.TranslateSqlAll(*source, sql, multiset);
    if (t.ok()) {
      if (chosen != nullptr) *chosen = source.get();
      return t;
    }
    last_reason = t.status().message();
  }
  return Status::NotFound("no registered source can answer the query" +
                          (last_reason.empty() ? "" : ": " + last_reason));
}

Result<Table> IntegrationSystem::Answer(const std::string& sql,
                                        bool multiset) {
  Result<TranslationResult> rewritten = Rewrite(sql, multiset);
  if (rewritten.ok()) {
    return engine_.Execute(rewritten.value().query.get());
  }
  // Fall back to data stored directly under I (the architecture permits
  // locally stored integration data).
  Result<Table> direct = engine_.ExecuteSql(sql);
  if (direct.ok() && direct.value().num_rows() > 0) return direct;
  if (direct.ok()) return direct;  // Empty but well formed.
  return rewritten.status();
}

Result<AnswerResult> IntegrationSystem::AnswerGuarded(
    const std::string& sql, const AnswerOptions& options, QueryContext* ctx) {
  QueryContext local(options.guards);
  QueryContext* qc = ctx != nullptr ? ctx : &local;
  // Pin the one catalog version the whole call reads. A snapshot the caller
  // already pinned is honored when it belongs to our catalog (the chaos
  // oracle replays queries against a recorded version this way); a foreign
  // snapshot is replaced rather than misapplied.
  if (qc->snapshot() == nullptr || qc->snapshot()->origin() != catalog_) {
    qc->PinSnapshot(catalog_->Snapshot());
  }
  std::shared_ptr<const CatalogSnapshot> snap = qc->snapshot();
  // Attach an observer unless tracing is off or the caller brought their
  // own (a caller-attached observer also receives this query's data and is
  // simply not re-exported on the result).
  std::shared_ptr<QueryObserver> observer;
  if (engine_.exec_config().enable_trace && qc->observer() == nullptr) {
    observer = std::make_shared<QueryObserver>();
    qc->set_observer(observer.get());
  }
  // qc borrows our observer only for this call; detach on every exit path.
  // The engine itself takes qc per call (explicit overloads), so concurrent
  // AnswerGuarded calls on one system never share mutable engine state.
  struct Detach {
    QueryContext* qc;
    bool owns_observer;
    ~Detach() {
      if (owns_observer) qc->set_observer(nullptr);
    }
  } detach{qc, observer != nullptr};

  // Stale-source fences surface in registration order, before any
  // degradation warnings execution adds — a deterministic prefix.
  std::vector<SourceWarning> stale;
  const ViewDefinition* chosen = nullptr;
  Result<Table> answered = [&]() -> Result<Table> {
    Result<TranslationResult> rewritten =
        RewriteOver(sql, options.multiset, *snap, &stale, &chosen);
    if (rewritten.ok()) {
      return engine_.Execute(rewritten.value().query.get(), qc);
    }
    Result<Table> direct = engine_.ExecuteSql(sql, qc);
    if (direct.ok()) return direct;
    // Guard trips during the fallback are the real outcome, not a reason to
    // report "no source answers".
    if (!qc->CheckGuards().ok()) return direct;
    return rewritten.status();
  }();
  QueryObserver* sink = qc->observer();
  if (sink != nullptr && !stale.empty()) {
    sink->metrics.Add(counters::kCatalogStalePath,
                      static_cast<uint64_t>(stale.size()));
  }
  DV_RETURN_IF_ERROR(answered.status());
  if (sink != nullptr) {
    // Budget gauges come from the guard's accounting, set once at query end
    // on the driving thread.
    sink->metrics.Set(counters::kBudgetRowsCharged, qc->rows_charged());
    sink->metrics.Set(counters::kBudgetBytesCharged, qc->bytes_charged());
  }
  std::vector<SourceWarning> warnings = std::move(stale);
  // Analysis warnings DefineView attached to the chosen source travel with
  // every answer it serves (the Sec. 4.3 hazards are per-result facts).
  if (chosen != nullptr) {
    auto it = source_diags_.find(chosen);
    if (it != source_diags_.end()) {
      const NameTerm& db = chosen->db_term();
      std::string name =
          (db.empty() ? std::string() : db.text + "::") + chosen->rel_term().text;
      for (const Diagnostic& d : it->second) {
        if (d.severity != Severity::kWarning) continue;
        warnings.push_back(SourceWarning{
            name, Status::InvalidArgument(d.code + " [" + d.anchor +
                                          "]: " + d.message)});
      }
    }
  }
  for (SourceWarning& w : qc->warnings()) warnings.push_back(std::move(w));
  // Same (source, code, detail) emitted once, with an occurrence count —
  // grounding fan-out width does not change warning output.
  DedupSourceWarnings(&warnings);
  return AnswerResult{std::move(answered).value(), std::move(warnings),
                      std::move(observer), snap->version(), std::move(snap)};
}

Result<Table> IntegrationSystem::AnswerOptimized(const std::string& sql) {
  return optimizer_.Run(sql);
}

Result<std::string> IntegrationSystem::ExplainOptimized(
    const std::string& sql) {
  return optimizer_.Explain(sql);
}

Result<Table> IntegrationSystem::KeywordSearch(
    const std::string& interface_table, const std::string& keyword) {
  // Prefer a registered inverted index whose payload matches.
  for (const auto& idx : indexes_) {
    if (idx->method() != IndexMethod::kInverted) continue;
    Result<Table> hits = idx->ProbeKeyword(ToLower(keyword));
    if (hits.ok()) return hits;
  }
  // Scan fallback: any attribute whose value contains the keyword.
  return engine_.ExecuteSql("select * from " + integration_db_ +
                            "::" + interface_table +
                            " T where contains(T.value, '" + keyword + "')");
}

}  // namespace dynview

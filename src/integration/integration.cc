#include "integration/integration.h"

#include "common/str_util.h"
#include "core/aggregate_rewrite.h"
#include "schemasql/view_materializer.h"
#include "sql/parser.h"

namespace dynview {

IntegrationSystem::IntegrationSystem(Catalog* catalog,
                                     std::string integration_db)
    : catalog_(catalog),
      integration_db_(std::move(integration_db)),
      engine_(catalog, integration_db_),
      optimizer_(catalog, integration_db_) {}

Result<const ViewDefinition*> IntegrationSystem::RegisterAndMaterializeSource(
    const std::string& create_view_sql) {
  DV_RETURN_IF_ERROR(ViewMaterializer::MaterializeSql(
                         create_view_sql, &engine_, catalog_, integration_db_)
                         .status());
  return RegisterSource(create_view_sql);
}

Result<const ViewDefinition*> IntegrationSystem::RegisterSource(
    const std::string& create_view_sql) {
  DV_ASSIGN_OR_RETURN(
      ViewDefinition view,
      ViewDefinition::FromSql(create_view_sql, *catalog_, integration_db_));
  auto holder = std::make_shared<ViewDefinition>(std::move(view));
  sources_.push_back(holder);
  optimizer_.RegisterView(holder);
  return holder.get();
}

Result<const ViewIndex*> IntegrationSystem::RegisterIndex(
    const std::string& create_index_sql) {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<CreateIndexStmt> stmt,
                      Parser::ParseCreateIndex(create_index_sql));
  DV_ASSIGN_OR_RETURN(ViewIndex index, ViewIndex::Build(*stmt, &engine_));
  auto holder = std::make_shared<ViewIndex>(std::move(index));
  indexes_.push_back(holder);
  // Derive optimizer registration metadata when the defining query has the
  // restricted single-table shape `... by given T.key select T.a1,... from
  // [db::]rel T [...]`; richer indexes remain probe-able directly.
  const SelectStmt& body = *stmt->query;
  size_t tuple_count = 0;
  const FromItem* scan = nullptr;
  for (const FromItem& f : body.from_items) {
    if (f.kind == FromItemKind::kTupleVar) {
      ++tuple_count;
      scan = &f;
    }
  }
  if (tuple_count == 1 && scan != nullptr && !scan->rel.is_variable &&
      !scan->db.is_variable && stmt->given.size() == 1 &&
      stmt->given[0]->kind == ExprKind::kColumnRef) {
    std::vector<std::string> payload;
    bool simple = true;
    for (const SelectItem& item : body.select_list) {
      if (item.expr->kind == ExprKind::kColumnRef &&
          !item.expr->column.is_variable) {
        payload.push_back(item.expr->column.text);
      } else {
        simple = false;
      }
    }
    if (simple) {
      std::string db = scan->db.empty() ? integration_db_ : scan->db.text;
      optimizer_.RegisterIndex(holder,
                               TableRef{ToLower(db), ToLower(scan->rel.text)},
                               stmt->given[0]->column.text, payload);
    }
  }
  return holder.get();
}

Result<TranslationResult> IntegrationSystem::Rewrite(const std::string& sql,
                                                     bool multiset) {
  QueryTranslator translator(catalog_, integration_db_);
  AggregateViewRewriter agg_rewriter(catalog_, integration_db_);
  std::string last_reason;
  for (const auto& source : sources_) {
    if (source->IsAggregateView()) {
      // Sec. 5.2 / Ex. 5.3: aggregate-defined sources answer aggregate
      // queries by re-aggregation. AVG re-aggregation requires the
      // uniform-group assumption, so it is only offered for set semantics.
      Result<TranslationResult> t = agg_rewriter.Rewrite(
          *source, sql, /*allow_avg_reaggregation=*/!multiset);
      if (t.ok()) return t;
      last_reason = t.status().message();
      continue;
    }
    Result<TranslationResult> t =
        translator.TranslateSqlAll(*source, sql, multiset);
    if (t.ok()) return t;
    last_reason = t.status().message();
  }
  return Status::NotFound("no registered source can answer the query" +
                          (last_reason.empty() ? "" : ": " + last_reason));
}

Result<Table> IntegrationSystem::Answer(const std::string& sql,
                                        bool multiset) {
  Result<TranslationResult> rewritten = Rewrite(sql, multiset);
  if (rewritten.ok()) {
    return engine_.Execute(rewritten.value().query.get());
  }
  // Fall back to data stored directly under I (the architecture permits
  // locally stored integration data).
  Result<Table> direct = engine_.ExecuteSql(sql);
  if (direct.ok() && direct.value().num_rows() > 0) return direct;
  if (direct.ok()) return direct;  // Empty but well formed.
  return rewritten.status();
}

Result<AnswerResult> IntegrationSystem::AnswerGuarded(
    const std::string& sql, const AnswerOptions& options, QueryContext* ctx) {
  QueryContext local(options.guards);
  QueryContext* qc = ctx != nullptr ? ctx : &local;
  // Attach an observer unless tracing is off or the caller brought their
  // own (a caller-attached observer also receives this query's data and is
  // simply not re-exported on the result).
  std::shared_ptr<QueryObserver> observer;
  if (engine_.exec_config().enable_trace && qc->observer() == nullptr) {
    observer = std::make_shared<QueryObserver>();
    qc->set_observer(observer.get());
  }
  engine_.set_query_context(qc);
  // The engine borrows qc (and qc borrows our observer) only for this call;
  // detach on every exit path.
  struct Detach {
    QueryEngine* e;
    QueryContext* qc;
    bool owns_observer;
    ~Detach() {
      if (owns_observer) qc->set_observer(nullptr);
      e->set_query_context(nullptr);
    }
  } detach{&engine_, qc, observer != nullptr};

  Result<Table> answered = [&]() -> Result<Table> {
    Result<TranslationResult> rewritten = Rewrite(sql, options.multiset);
    if (rewritten.ok()) {
      return engine_.Execute(rewritten.value().query.get());
    }
    Result<Table> direct = engine_.ExecuteSql(sql);
    if (direct.ok()) return direct;
    // Guard trips during the fallback are the real outcome, not a reason to
    // report "no source answers".
    if (!qc->CheckGuards().ok()) return direct;
    return rewritten.status();
  }();
  DV_RETURN_IF_ERROR(answered.status());
  if (observer != nullptr) {
    // Budget gauges come from the guard's accounting, set once at query end
    // on the driving thread.
    observer->metrics.Set(counters::kBudgetRowsCharged, qc->rows_charged());
    observer->metrics.Set(counters::kBudgetBytesCharged, qc->bytes_charged());
  }
  return AnswerResult{std::move(answered).value(), qc->warnings(),
                      std::move(observer)};
}

Result<Table> IntegrationSystem::AnswerOptimized(const std::string& sql) {
  return optimizer_.Run(sql);
}

Result<std::string> IntegrationSystem::ExplainOptimized(
    const std::string& sql) {
  return optimizer_.Explain(sql);
}

Result<Table> IntegrationSystem::KeywordSearch(
    const std::string& interface_table, const std::string& keyword) {
  // Prefer a registered inverted index whose payload matches.
  for (const auto& idx : indexes_) {
    if (idx->method() != IndexMethod::kInverted) continue;
    Result<Table> hits = idx->ProbeKeyword(ToLower(keyword));
    if (hits.ok()) return hits;
  }
  // Scan fallback: any attribute whose value contains the keyword.
  return engine_.ExecuteSql("select * from " + integration_db_ +
                            "::" + interface_table +
                            " T where contains(T.value, '" + keyword + "')");
}

}  // namespace dynview

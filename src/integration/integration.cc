#include "integration/integration.h"

#include <cstdlib>

#include "analyze/audit.h"
#include "common/failpoint.h"
#include "common/str_util.h"
#include "core/aggregate_rewrite.h"
#include "schemasql/view_materializer.h"
#include "sql/parser.h"
#include "storage/codec.h"

namespace dynview {

namespace {
/// Raw-SQL → fingerprint memo bound; dropped wholesale at capacity.
constexpr size_t kRawMemoCapacity = 1024;
}  // namespace

IntegrationSystem::IntegrationSystem(Catalog* catalog,
                                     std::string integration_db)
    : IntegrationSystem(catalog, std::move(integration_db),
                        IntegrationOptions{}) {}

IntegrationSystem::IntegrationSystem(Catalog* catalog,
                                     std::string integration_db,
                                     const IntegrationOptions& options)
    : catalog_(catalog),
      integration_db_(std::move(integration_db)),
      engine_(catalog, integration_db_, options.exec),
      optimizer_(catalog, integration_db_),
      plan_cache_(options.plan_cache_capacity == 0
                      ? 1
                      : options.plan_cache_capacity,
                  options.plan_cache_shards),
      plan_cache_enabled_(options.plan_cache_capacity > 0) {}

void IntegrationSystem::ClearPlanCache() {
  plan_cache_.Clear();
  std::lock_guard<std::mutex> lock(memo_mu_);
  raw_memo_.clear();
}

Result<DefinedView> IntegrationSystem::DefineView(
    const std::string& create_view_sql, const DefineViewOptions& options) {
  // Analysis and registration see the same catalog version.
  std::shared_ptr<const CatalogSnapshot> snap = catalog_->Snapshot();
  Analyzer analyzer(snap.get(), integration_db_);
  AnalyzeOptions opts;
  opts.multiset = options.multiset;
  std::vector<Diagnostic> diags =
      analyzer.AnalyzeCreateView(create_view_sql, opts);
  RecordAnalyzeMetrics(diags, &analyze_metrics_);
  if (HasErrors(diags)) {
    return Status::InvalidArgument("view definition rejected:\n" +
                                   RenderDiagnosticsText(diags));
  }
  Result<const ViewDefinition*> registered =
      options.materialize ? RegisterAndMaterializeInternal(create_view_sql)
                          : RegisterSourceInternal(create_view_sql);
  DV_RETURN_IF_ERROR(registered.status());
  const ViewDefinition* view = registered.value();
  if (!diags.empty()) source_diags_[view] = diags;
  // One durable record per definition, carrying the diagnostics set above
  // so they restore byte-exact.
  DV_RETURN_IF_ERROR(AppendSourceRecord(view));
  return DefinedView{view, std::move(diags)};
}

std::vector<Diagnostic> IntegrationSystem::LintSources() const {
  std::shared_ptr<const CatalogSnapshot> snap = catalog_->Snapshot();
  Analyzer analyzer(snap.get(), integration_db_);
  std::vector<Diagnostic> all;
  for (size_t i = 0; i < sources_.size(); ++i) {
    std::vector<Diagnostic> diags =
        analyzer.AnalyzeRegisteredView(*sources_[i], *snap);
    for (Diagnostic& d : diags) {
      d.statement = static_cast<int>(i);
      all.push_back(std::move(d));
    }
  }
  RecordAnalyzeMetrics(all, &analyze_metrics_);
  SortDiagnostics(&all);
  return all;
}

std::vector<Diagnostic> IntegrationSystem::LintSource(
    size_t index, const CatalogSnapshot& snap) const {
  std::vector<Diagnostic> diags;
  if (index >= sources_.size()) return diags;
  Analyzer analyzer(&snap, integration_db_);
  diags = analyzer.AnalyzeRegisteredView(*sources_[index], snap);
  for (Diagnostic& d : diags) d.statement = static_cast<int>(index);
  RecordAnalyzeMetrics(diags, &analyze_metrics_);
  SortDiagnostics(&diags);
  return diags;
}

void IntegrationSystem::ExportAnalyzeMetrics(MetricsRegistry* sink) const {
  for (const auto& [name, value] : analyze_metrics_.Merged()) {
    sink->Set(name.c_str(), value);
  }
}

AuditReport IntegrationSystem::AuditWorkload() const {
  WorkloadAuditor auditor(catalog_->Snapshot(), integration_db_, sources_,
                          WorkloadAuditor::DescribeIndexes(indexes_,
                                                           integration_db_),
                          &analyze_metrics_);
  return auditor.Audit();
}

WhatIfReport IntegrationSystem::WhatIfAudit(const DdlOp& op) const {
  WorkloadAuditor auditor(catalog_->Snapshot(), integration_db_, sources_,
                          WorkloadAuditor::DescribeIndexes(indexes_,
                                                           integration_db_),
                          &analyze_metrics_);
  return auditor.WhatIf(op);
}

Result<const ViewDefinition*> IntegrationSystem::RegisterAndMaterializeSource(
    const std::string& create_view_sql) {
  DV_ASSIGN_OR_RETURN(const ViewDefinition* view,
                      RegisterAndMaterializeInternal(create_view_sql));
  DV_RETURN_IF_ERROR(AppendSourceRecord(view));
  return view;
}

Result<const ViewDefinition*> IntegrationSystem::RegisterAndMaterializeInternal(
    const std::string& create_view_sql) {
  uint64_t commit_version = 0;
  DV_ASSIGN_OR_RETURN(auto created,
                      ViewMaterializer::MaterializeSql(
                          create_view_sql, &engine_, catalog_, integration_db_,
                          /*qc=*/nullptr, &commit_version));
  DV_ASSIGN_OR_RETURN(const ViewDefinition* view,
                      RegisterSourceInternal(create_view_sql));
  // The materialization is derived state: fence it at the version its
  // install committed so queries pinned to a later snapshot can detect
  // whether I has moved underneath it (ViewDefinition::IsStaleAgainst).
  // The created (db, rel) pairs are remembered so the fence also covers
  // DDL against the materialization itself (drop/rename of a partition)
  // and so re-materialization can retire partitions that no longer exist.
  ViewDefinition* fenced = sources_.back().get();
  std::vector<TableRef> refs;
  refs.reserve(created.size());
  for (const auto& [db, rel] : created) {
    refs.push_back(TableRef{ToLower(db), ToLower(rel)});
  }
  fenced->set_materialization(std::move(refs));
  fenced->AdvanceMaterializedVersion(commit_version);
  fenced->set_fenced(true);
  return view;
}

Result<const ViewDefinition*> IntegrationSystem::RegisterSource(
    const std::string& create_view_sql) {
  DV_ASSIGN_OR_RETURN(const ViewDefinition* view,
                      RegisterSourceInternal(create_view_sql));
  DV_RETURN_IF_ERROR(AppendSourceRecord(view));
  return view;
}

Result<const ViewDefinition*> IntegrationSystem::RegisterSourceInternal(
    const std::string& create_view_sql) {
  DV_ASSIGN_OR_RETURN(
      ViewDefinition view,
      ViewDefinition::FromSql(create_view_sql, *catalog_, integration_db_));
  auto holder = std::make_shared<ViewDefinition>(std::move(view));
  sources_.push_back(holder);
  optimizer_.RegisterView(holder);
  // The source universe changed: cached rewritings chose among the old
  // sources. (The raw-SQL memo survives — fingerprints are a pure function
  // of the text.)
  plan_cache_.Clear();
  return holder.get();
}

Result<const ViewIndex*> IntegrationSystem::RegisterIndex(
    const std::string& create_index_sql) {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<CreateIndexStmt> stmt,
                      Parser::ParseCreateIndex(create_index_sql));
  DV_ASSIGN_OR_RETURN(ViewIndex index, ViewIndex::Build(*stmt, &engine_));
  auto holder = std::make_shared<ViewIndex>(std::move(index));
  const ViewIndex* installed = InstallIndex(holder, *stmt);
  DV_RETURN_IF_ERROR(AppendIndexRecord(*installed));
  return installed;
}

const ViewIndex* IntegrationSystem::InstallIndex(
    std::shared_ptr<ViewIndex> holder, const CreateIndexStmt& stmt) {
  indexes_.push_back(holder);
  plan_cache_.Clear();
  // Derive optimizer registration metadata when the defining query has the
  // restricted single-table shape `... by given T.key select T.a1,... from
  // [db::]rel T [...]`; richer indexes remain probe-able directly.
  const SelectStmt& body = *stmt.query;
  size_t tuple_count = 0;
  const FromItem* scan = nullptr;
  for (const FromItem& f : body.from_items) {
    if (f.kind == FromItemKind::kTupleVar) {
      ++tuple_count;
      scan = &f;
    }
  }
  if (tuple_count == 1 && scan != nullptr && !scan->rel.is_variable &&
      !scan->db.is_variable && stmt.given.size() == 1 &&
      stmt.given[0]->kind == ExprKind::kColumnRef) {
    std::vector<std::string> payload;
    bool simple = true;
    for (const SelectItem& item : body.select_list) {
      if (item.expr->kind == ExprKind::kColumnRef &&
          !item.expr->column.is_variable) {
        payload.push_back(item.expr->column.text);
      } else {
        simple = false;
      }
    }
    if (simple) {
      std::string db = scan->db.empty() ? integration_db_ : scan->db.text;
      optimizer_.RegisterIndex(holder,
                               TableRef{ToLower(db), ToLower(scan->rel.text)},
                               stmt.given[0]->column.text, payload);
    }
  }
  return holder.get();
}

namespace {
constexpr char kMaintainerTagPrefix[] = "maintainer.delta#";
constexpr char kEvolveRematTagPrefix[] = "evolve.remat#";

/// "db::name" (or bare "name") display form of a source, for warnings.
std::string SourceDisplayName(const ViewDefinition& view) {
  const NameTerm& db = view.db_term();
  return (db.empty() ? std::string() : db.text + "::") + view.rel_term().text;
}

/// The deterministic degrade warning for a rewriting whose materialization
/// relation vanished under DDL (dropped or renamed without a fence to trip).
SourceWarning VanishedMaterializationWarning(const ViewDefinition& view,
                                             const Status& exec_status) {
  return SourceWarning{
      SourceDisplayName(view),
      Status::Unavailable("stale materialization: " + exec_status.message() +
                          "; answered from the direct plan on I")};
}
}  // namespace

std::string EvolveRematTag(size_t index, const std::vector<TableRef>& refs) {
  std::string tag = kEvolveRematTagPrefix + std::to_string(index) + "|";
  for (size_t i = 0; i < refs.size(); ++i) {
    if (i > 0) tag += ",";
    tag += refs[i].ToString();
  }
  return tag;
}

bool ParseEvolveRematTag(const std::string& tag, size_t* index,
                         std::vector<TableRef>* refs) {
  if (tag.rfind(kEvolveRematTagPrefix, 0) != 0) return false;
  size_t pos = sizeof(kEvolveRematTagPrefix) - 1;
  size_t bar = tag.find('|', pos);
  if (bar == std::string::npos) return false;
  char* end = nullptr;
  std::string idx_text = tag.substr(pos, bar - pos);
  unsigned long long idx = std::strtoull(idx_text.c_str(), &end, 10);
  if (idx_text.empty() || end == nullptr || *end != '\0') return false;
  std::vector<TableRef> parsed;
  size_t at = bar + 1;
  while (at < tag.size()) {
    size_t comma = tag.find(',', at);
    if (comma == std::string::npos) comma = tag.size();
    std::string item = tag.substr(at, comma - at);
    size_t sep = item.find("::");
    if (sep == std::string::npos) return false;
    parsed.push_back(TableRef{item.substr(0, sep), item.substr(sep + 2)});
    at = comma + 1;
  }
  *index = static_cast<size_t>(idx);
  *refs = std::move(parsed);
  return true;
}

Status IntegrationSystem::OpenDurable(const std::string& dir,
                                      const DurabilityOptions& options) {
  if (durable_ != nullptr) {
    return Status::InvalidArgument("durable storage is already open (" +
                                   durable_->dir() + ")");
  }
  DurableHooks hooks;
  hooks.blob_replay = [this](const std::string& kind,
                             const std::string& payload) -> Status {
    if (kind == "source") return RestoreSourceRecord(payload);
    if (kind == "index") return RestoreIndexRecord(payload);
    return Status::ParseError("unknown durable registration kind '" + kind +
                              "'");
  };
  hooks.commit_replay = [this](uint64_t version, const std::string& tag) {
    // Evolver re-materialization commits carry the source index AND the
    // installed partition set in their tag: replay re-advances the fence
    // and restores the refs, so post-recovery evolutions retire exactly
    // the partitions that exist.
    size_t remat_index = 0;
    std::vector<TableRef> remat_refs;
    if (ParseEvolveRematTag(tag, &remat_index, &remat_refs)) {
      if (remat_index < sources_.size()) {
        sources_[remat_index]->set_materialization(std::move(remat_refs));
        sources_[remat_index]->AdvanceMaterializedVersion(version);
      }
      return;
    }
    // Maintainer delta commits carry the source index in their tag; the
    // replayed commit version re-advances that source's fence, restoring
    // the exact staleness state (DV007) the crash interrupted.
    if (tag.rfind(kMaintainerTagPrefix, 0) != 0) return;
    char* end = nullptr;
    unsigned long long idx =
        std::strtoull(tag.c_str() + sizeof(kMaintainerTagPrefix) - 1, &end,
                      10);
    if (end == nullptr || *end != '\0') return;
    if (idx < sources_.size()) {
      sources_[idx]->AdvanceMaterializedVersion(version);
    }
  };
  hooks.blob_provider = [this]() { return RegistrationExtras(); };
  DV_ASSIGN_OR_RETURN(durable_,
                      DurableCatalog::Open(catalog_, dir, options,
                                           std::move(hooks),
                                           &recovery_report_));
  {
    std::lock_guard<std::mutex> lock(recovery_warn_mu_);
    pending_recovery_warnings_.clear();
    for (const std::string& w : recovery_report_.warnings) {
      pending_recovery_warnings_.push_back(
          SourceWarning{"recovery", Status::Unavailable(w)});
    }
  }
  // Recovery repopulated the source/index universe outside the normal
  // registration paths.
  ClearPlanCache();
  return Status::OK();
}

Status IntegrationSystem::Checkpoint() {
  if (durable_ == nullptr) {
    return Status::InvalidArgument("durable storage is not open");
  }
  return durable_->Checkpoint();
}

Status IntegrationSystem::CloseDurable() {
  if (durable_ == nullptr) {
    return Status::InvalidArgument("durable storage is not open");
  }
  Status st = durable_->Close();
  durable_.reset();
  return st;
}

Result<ViewMaintainer> IntegrationSystem::CreateMaintainer(
    size_t source_index, const std::string& default_target_db) {
  if (source_index >= sources_.size()) {
    return Status::InvalidArgument(
        "source index " + std::to_string(source_index) + " out of range (" +
        std::to_string(sources_.size()) + " registered)");
  }
  ViewDefinition* source = sources_[source_index].get();
  DV_ASSIGN_OR_RETURN(ViewMaintainer maintainer,
                      ViewMaintainer::Create(source->stmt(), catalog_,
                                             integration_db_,
                                             default_target_db));
  maintainer.BindFence(source);
  maintainer.set_commit_tag(kMaintainerTagPrefix +
                            std::to_string(source_index));
  return maintainer;
}

std::string IntegrationSystem::EncodeSourceRecord(
    const ViewDefinition& view) const {
  ByteWriter w;
  w.Str(view.stmt().ToString());
  w.U8(view.fenced() ? 1 : 0);
  w.U64(view.materialized_version());
  w.U32(static_cast<uint32_t>(view.materialization().size()));
  for (const TableRef& ref : view.materialization()) {
    w.Str(ref.db);
    w.Str(ref.rel);
  }
  auto it = source_diags_.find(&view);
  const std::vector<Diagnostic>* diags =
      it != source_diags_.end() ? &it->second : nullptr;
  w.U32(diags != nullptr ? static_cast<uint32_t>(diags->size()) : 0);
  if (diags != nullptr) {
    for (const Diagnostic& d : *diags) {
      w.Str(d.code);
      w.U8(static_cast<uint8_t>(d.severity));
      w.U64(d.span.offset);
      w.U64(d.span.length);
      w.Str(d.message);
      w.Str(d.fix_hint);
      w.Str(d.anchor);
      w.I32(d.statement);
    }
  }
  return w.Take();
}

Status IntegrationSystem::RestoreSourceRecord(const std::string& payload) {
  ByteReader r(payload);
  std::string sql;
  uint8_t fenced = 0;
  uint64_t materialized_version = 0;
  uint32_t nrefs = 0;
  uint32_t ndiags = 0;
  DV_RETURN_IF_ERROR(r.Str(&sql));
  DV_RETURN_IF_ERROR(r.U8(&fenced));
  DV_RETURN_IF_ERROR(r.U64(&materialized_version));
  DV_RETURN_IF_ERROR(r.U32(&nrefs));
  std::vector<TableRef> refs;
  refs.reserve(nrefs);
  for (uint32_t i = 0; i < nrefs; ++i) {
    TableRef ref;
    DV_RETURN_IF_ERROR(r.Str(&ref.db));
    DV_RETURN_IF_ERROR(r.Str(&ref.rel));
    refs.push_back(std::move(ref));
  }
  DV_RETURN_IF_ERROR(r.U32(&ndiags));
  std::vector<Diagnostic> diags;
  diags.reserve(ndiags);
  for (uint32_t i = 0; i < ndiags; ++i) {
    Diagnostic d;
    uint8_t severity = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    DV_RETURN_IF_ERROR(r.Str(&d.code));
    DV_RETURN_IF_ERROR(r.U8(&severity));
    DV_RETURN_IF_ERROR(r.U64(&offset));
    DV_RETURN_IF_ERROR(r.U64(&length));
    DV_RETURN_IF_ERROR(r.Str(&d.message));
    DV_RETURN_IF_ERROR(r.Str(&d.fix_hint));
    DV_RETURN_IF_ERROR(r.Str(&d.anchor));
    DV_RETURN_IF_ERROR(r.I32(&d.statement));
    if (severity > static_cast<uint8_t>(Severity::kError)) {
      return Status::ParseError("unknown diagnostic severity tag " +
                                std::to_string(severity));
    }
    d.severity = static_cast<Severity>(severity);
    d.span.offset = static_cast<size_t>(offset);
    d.span.length = static_cast<size_t>(length);
    diags.push_back(std::move(d));
  }
  // Re-register against the recovered catalog (the record replays after
  // the commits that materialized the view, so binding sees at least the
  // state registration originally saw), then restore the fence exactly.
  DV_ASSIGN_OR_RETURN(const ViewDefinition* view,
                      RegisterSourceInternal(sql));
  ViewDefinition* restored = sources_.back().get();
  restored->set_materialization(std::move(refs));
  if (fenced != 0) {
    restored->AdvanceMaterializedVersion(materialized_version);
    restored->set_fenced(true);
  }
  if (!diags.empty()) source_diags_[view] = std::move(diags);
  return Status::OK();
}

std::string IntegrationSystem::EncodeIndexRecord(
    const ViewIndex& index) const {
  ByteWriter w;
  w.Str(index.name());
  w.U8(static_cast<uint8_t>(index.method()));
  w.U64(index.build_version());
  w.Str(index.definition());
  EncodeStandaloneTable(index.contents(), &w);
  return w.Take();
}

Status IntegrationSystem::RestoreIndexRecord(const std::string& payload) {
  ByteReader r(payload);
  std::string name;
  uint8_t method = 0;
  uint64_t build_version = 0;
  std::string definition;
  DV_RETURN_IF_ERROR(r.Str(&name));
  DV_RETURN_IF_ERROR(r.U8(&method));
  DV_RETURN_IF_ERROR(r.U64(&build_version));
  DV_RETURN_IF_ERROR(r.Str(&definition));
  DV_ASSIGN_OR_RETURN(Table contents, DecodeStandaloneTable(&r));
  if (method > static_cast<uint8_t>(IndexMethod::kInverted)) {
    return Status::ParseError("unknown index method tag " +
                              std::to_string(method));
  }
  // The definition text is the statement's own rendering, so it re-parses;
  // the physical structure rebuilds from the persisted contents, not from
  // re-running the defining query (whose inputs may have moved since).
  DV_ASSIGN_OR_RETURN(std::unique_ptr<CreateIndexStmt> stmt,
                      Parser::ParseCreateIndex(definition));
  DV_ASSIGN_OR_RETURN(
      ViewIndex index,
      ViewIndex::Restore(name, static_cast<IndexMethod>(method), definition,
                         build_version, std::move(contents)));
  InstallIndex(std::make_shared<ViewIndex>(std::move(index)), *stmt);
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>>
IntegrationSystem::RegistrationExtras() const {
  std::vector<std::pair<std::string, std::string>> extras;
  extras.reserve(sources_.size() + indexes_.size());
  for (const auto& source : sources_) {
    extras.emplace_back("source", EncodeSourceRecord(*source));
  }
  for (const auto& index : indexes_) {
    extras.emplace_back("index", EncodeIndexRecord(*index));
  }
  return extras;
}

Status IntegrationSystem::AppendSourceRecord(const ViewDefinition* view) {
  if (durable_ == nullptr) return Status::OK();
  return durable_->AppendBlob("source", EncodeSourceRecord(*view));
}

Status IntegrationSystem::AppendIndexRecord(const ViewIndex& index) {
  if (durable_ == nullptr) return Status::OK();
  return durable_->AppendBlob("index", EncodeIndexRecord(index));
}

void IntegrationSystem::DrainRecoveryWarnings(
    std::vector<SourceWarning>* out) {
  std::lock_guard<std::mutex> lock(recovery_warn_mu_);
  if (pending_recovery_warnings_.empty()) return;
  out->insert(out->begin(),
              std::make_move_iterator(pending_recovery_warnings_.begin()),
              std::make_move_iterator(pending_recovery_warnings_.end()));
  pending_recovery_warnings_.clear();
}

Result<TranslationResult> IntegrationSystem::Rewrite(const std::string& sql,
                                                     bool multiset) {
  // One consistent version for the whole rewrite (the translators read view
  // bodies and I's schema through it). Held alive for the call.
  std::shared_ptr<const CatalogSnapshot> snap = catalog_->Snapshot();
  return RewriteOver(sql, multiset, *snap, /*stale=*/nullptr);
}

Result<TranslationResult> IntegrationSystem::RewriteOver(
    const std::string& sql, bool multiset, const CatalogSnapshot& snap,
    std::vector<SourceWarning>* stale, const ViewDefinition** chosen) {
  QueryTranslator translator(&snap, integration_db_);
  AggregateViewRewriter agg_rewriter(&snap, integration_db_);
  std::string last_reason;
  for (const auto& source : sources_) {
    if (source->IsStaleAgainst(snap)) {
      // The materialization predates a commit that touched a base database
      // the view reads: answering from it would not match any single catalog
      // version. Fall back past it (stale fencing).
      const NameTerm& db = source->db_term();
      const NameTerm& rel = source->rel_term();
      std::string name =
          (db.empty() ? std::string() : db.text + "::") + rel.text;
      last_reason = "source " + name + " is stale";
      if (stale != nullptr) {
        stale->push_back(SourceWarning{
            name, Status::Unavailable(
                      "stale materialization: built at catalog version " +
                      std::to_string(source->materialized_version()) +
                      ", snapshot is version " +
                      std::to_string(snap.version()))});
      }
      continue;
    }
    if (source->IsAggregateView()) {
      // Sec. 5.2 / Ex. 5.3: aggregate-defined sources answer aggregate
      // queries by re-aggregation. AVG re-aggregation requires the
      // uniform-group assumption, so it is only offered for set semantics.
      Result<TranslationResult> t = agg_rewriter.Rewrite(
          *source, sql, /*allow_avg_reaggregation=*/!multiset);
      if (t.ok()) {
        if (chosen != nullptr) *chosen = source.get();
        return t;
      }
      last_reason = t.status().message();
      continue;
    }
    Result<TranslationResult> t =
        translator.TranslateSqlAll(*source, sql, multiset);
    if (t.ok()) {
      if (chosen != nullptr) *chosen = source.get();
      return t;
    }
    last_reason = t.status().message();
  }
  return Status::NotFound("no registered source can answer the query" +
                          (last_reason.empty() ? "" : ": " + last_reason));
}

Result<Table> IntegrationSystem::Answer(const std::string& sql,
                                        bool multiset) {
  Result<TranslationResult> rewritten = Rewrite(sql, multiset);
  if (rewritten.ok()) {
    return engine_.Execute(rewritten.value().query.get());
  }
  // Fall back to data stored directly under I (the architecture permits
  // locally stored integration data).
  Result<Table> direct = engine_.ExecuteSql(sql);
  if (direct.ok() && direct.value().num_rows() > 0) return direct;
  if (direct.ok()) return direct;  // Empty but well formed.
  return rewritten.status();
}

Result<AnswerResult> IntegrationSystem::AnswerGuarded(
    const std::string& sql, const AnswerOptions& options, QueryContext* ctx) {
  if (!plan_cache_enabled_) return AnswerUncached(sql, options, ctx);
  // First cache level: exact raw text. Repeats of the same string skip
  // parsing and fingerprinting entirely.
  const std::string memo_key = (options.multiset ? "m|" : "s|") + sql;
  std::string memo_cache_key;
  std::string memo_fp_hex;
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    auto it = raw_memo_.find(memo_key);
    if (it != raw_memo_.end()) {
      memo_cache_key = it->second.first;
      memo_fp_hex = it->second.second;
    }
  }
  if (!memo_cache_key.empty()) {
    return AnswerWithCache(sql, memo_cache_key, memo_fp_hex, /*stmt=*/nullptr,
                           options, ctx);
  }
  // Second level: parse once, fingerprint the normalized statement. A query
  // I's grammar rejects takes the legacy path verbatim so its error surface
  // (engine parse error vs NotFound precedence) is unchanged.
  Result<std::unique_ptr<SelectStmt>> parsed = Parser::ParseSelect(sql);
  if (!parsed.ok()) return AnswerUncached(sql, options, ctx);
  QueryFingerprint fp =
      FingerprintStatement(*parsed.value(), FingerprintMode::kExact);
  std::string fp_hex = fp.Hex();
  // Key on the full normalized text, not the 64-bit hash: a hash collision
  // between distinct queries must miss, never serve the other query's plan.
  // The hex hash stays display-only (EXPLAIN, AnswerResult, failpoints).
  std::string cache_key = (options.multiset ? "m|" : "s|") + fp.normalized;
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    if (raw_memo_.size() >= kRawMemoCapacity) raw_memo_.clear();
    raw_memo_.emplace(memo_key, std::make_pair(cache_key, fp_hex));
  }
  return AnswerWithCache(sql, cache_key, fp_hex, std::move(parsed).value(),
                         options, ctx);
}

Result<AnswerResult> IntegrationSystem::AnswerUncached(
    const std::string& sql, const AnswerOptions& options, QueryContext* ctx) {
  QueryContext local(options.guards);
  QueryContext* qc = ctx != nullptr ? ctx : &local;
  // Pin the one catalog version the whole call reads. A snapshot the caller
  // already pinned is honored when it belongs to our catalog (the chaos
  // oracle replays queries against a recorded version this way); a foreign
  // snapshot is replaced rather than misapplied.
  if (qc->snapshot() == nullptr || qc->snapshot()->origin() != catalog_) {
    qc->PinSnapshot(catalog_->Snapshot());
  }
  std::shared_ptr<const CatalogSnapshot> snap = qc->snapshot();
  // Attach an observer unless tracing is off or the caller brought their
  // own (a caller-attached observer also receives this query's data and is
  // simply not re-exported on the result).
  std::shared_ptr<QueryObserver> observer;
  if (engine_.exec_config().enable_trace && qc->observer() == nullptr) {
    observer = std::make_shared<QueryObserver>();
    qc->set_observer(observer.get());
  }
  // qc borrows our observer only for this call; detach on every exit path.
  // The engine itself takes qc per call (explicit overloads), so concurrent
  // AnswerGuarded calls on one system never share mutable engine state.
  struct Detach {
    QueryContext* qc;
    bool owns_observer;
    ~Detach() {
      if (owns_observer) qc->set_observer(nullptr);
    }
  } detach{qc, observer != nullptr};

  // Stale-source fences surface in registration order, before any
  // degradation warnings execution adds — a deterministic prefix.
  std::vector<SourceWarning> stale;
  const ViewDefinition* chosen = nullptr;
  Result<Table> answered = [&]() -> Result<Table> {
    Result<TranslationResult> rewritten =
        RewriteOver(sql, options.multiset, *snap, &stale, &chosen);
    if (rewritten.ok()) {
      Result<Table> over_source =
          engine_.Execute(rewritten.value().query.get(), qc);
      // A rewriting can reference a materialization relation that DDL has
      // since dropped or renamed (an unfenced source has no staleness
      // fence to trip). That must degrade like a stale fence — a
      // deterministic warning plus the direct plan on I — never surface as
      // a hard NotFound for a query I itself can answer.
      if (over_source.ok() ||
          over_source.status().code() != StatusCode::kNotFound) {
        return over_source;
      }
      stale.push_back(
          VanishedMaterializationWarning(*chosen, over_source.status()));
      chosen = nullptr;
      return engine_.ExecuteSql(sql, qc);
    }
    Result<Table> direct = engine_.ExecuteSql(sql, qc);
    if (direct.ok()) return direct;
    // Guard trips during the fallback are the real outcome, not a reason to
    // report "no source answers".
    if (!qc->CheckGuards().ok()) return direct;
    return rewritten.status();
  }();
  QueryObserver* sink = qc->observer();
  if (sink != nullptr && !stale.empty()) {
    sink->metrics.Add(counters::kCatalogStalePath,
                      static_cast<uint64_t>(stale.size()));
  }
  DV_RETURN_IF_ERROR(answered.status());
  if (sink != nullptr) {
    // Budget gauges come from the guard's accounting, set once at query end
    // on the driving thread.
    sink->metrics.Set(counters::kBudgetRowsCharged, qc->rows_charged());
    sink->metrics.Set(counters::kBudgetBytesCharged, qc->bytes_charged());
    ExportAnalyzeMetrics(&sink->metrics);
  }
  std::vector<SourceWarning> warnings = std::move(stale);
  // Analysis warnings DefineView attached to the chosen source travel with
  // every answer it serves (the Sec. 4.3 hazards are per-result facts).
  if (chosen != nullptr) {
    auto it = source_diags_.find(chosen);
    if (it != source_diags_.end()) {
      const NameTerm& db = chosen->db_term();
      std::string name =
          (db.empty() ? std::string() : db.text + "::") + chosen->rel_term().text;
      for (const Diagnostic& d : it->second) {
        if (d.severity != Severity::kWarning) continue;
        warnings.push_back(SourceWarning{
            name, Status::InvalidArgument(d.code + " [" + d.anchor +
                                          "]: " + d.message)});
      }
    }
  }
  for (SourceWarning& w : qc->warnings()) warnings.push_back(std::move(w));
  // Recovery warnings (torn WAL tail etc.) lead the first post-restart
  // answer, then never repeat.
  DrainRecoveryWarnings(&warnings);
  // Same (source, code, detail) emitted once, with an occurrence count —
  // grounding fan-out width does not change warning output.
  DedupSourceWarnings(&warnings);
  return AnswerResult{std::move(answered).value(), std::move(warnings),
                      std::move(observer), snap->version(), std::move(snap)};
}

Result<AnswerResult> IntegrationSystem::AnswerWithCache(
    const std::string& sql, const std::string& cache_key,
    const std::string& fp_hex, std::unique_ptr<SelectStmt> stmt,
    const AnswerOptions& options, QueryContext* ctx) {
  QueryContext local(options.guards);
  QueryContext* qc = ctx != nullptr ? ctx : &local;
  if (qc->snapshot() == nullptr || qc->snapshot()->origin() != catalog_) {
    qc->PinSnapshot(catalog_->Snapshot());
  }
  std::shared_ptr<const CatalogSnapshot> snap = qc->snapshot();
  std::shared_ptr<QueryObserver> observer;
  if (engine_.exec_config().enable_trace && qc->observer() == nullptr) {
    observer = std::make_shared<QueryObserver>();
    qc->set_observer(observer.get());
  }
  // The observer AND the plan's compiled-program memo are borrowed by qc for
  // this call only; a caller-owned context must not keep either alive.
  struct Detach {
    QueryContext* qc;
    bool owns_observer;
    ~Detach() {
      if (owns_observer) qc->set_observer(nullptr);
      qc->set_expr_programs(nullptr);
    }
  } detach{qc, observer != nullptr};
  QueryObserver* sink = qc->observer();

  // Chaos hook: a poisoned cache entry is erased and the query degrades to a
  // fresh compile with a warning — never a wrong answer.
  std::vector<SourceWarning> cache_warnings;
  if (FailPoints::AnyArmed()) {
    Status poisoned = FailPoints::Check("plan_cache.lookup", fp_hex);
    if (!poisoned.ok()) {
      plan_cache_.Erase(cache_key);
      cache_warnings.push_back(SourceWarning{"plan_cache", poisoned});
    }
  }

  CacheLookupOutcome outcome = CacheLookupOutcome::kMiss;
  std::shared_ptr<CachedPlan> plan =
      plan_cache_.Lookup(cache_key, snap->version(), &outcome);
  if (sink != nullptr) {
    sink->metrics.Add(plan != nullptr ? counters::kPlanCacheHits
                                      : counters::kPlanCacheMisses,
                      1);
    if (outcome == CacheLookupOutcome::kStaleMiss) {
      sink->metrics.Add(counters::kPlanCacheInvalidations, 1);
    }
  }

  std::vector<SourceWarning> stale;
  const ViewDefinition* chosen = nullptr;
  const bool plan_cached = plan != nullptr;
  Result<Table> answered = Status::NotFound("unreached");
  if (plan != nullptr) {
    // Hot path: no parse, no Alg. 5.1 rewrite, shared compiled programs.
    // Statements are immutable templates (the binder annotates the AST in
    // place), so execution works on a clone.
    qc->set_expr_programs(plan->programs);
    stale = plan->stale;
    chosen = plan->chosen;
    const SelectStmt* tmpl =
        plan->rewritten != nullptr ? plan->rewritten.get() : plan->direct.get();
    std::unique_ptr<SelectStmt> exec_stmt = tmpl->Clone();
    answered = engine_.Execute(exec_stmt.get(), qc);
    if (!answered.ok() &&
        answered.status().code() == StatusCode::kNotFound &&
        plan->rewritten != nullptr && chosen != nullptr) {
      // The cached rewriting references a materialization relation DDL has
      // since removed: drop the entry and degrade to the direct plan with a
      // deterministic warning (same surface as the uncached path).
      plan_cache_.Erase(cache_key);
      stale.push_back(
          VanishedMaterializationWarning(*chosen, answered.status()));
      chosen = nullptr;
      answered = engine_.ExecuteSql(sql, qc);
    }
  } else {
    // Cold path: the full rewrite, then cache what it decided. The programs
    // compiled during this execution (including every grounding of the
    // fan-out) ride along in the entry for future hits.
    auto programs = std::make_shared<ExprProgramCache>();
    qc->set_expr_programs(programs);
    Result<TranslationResult> rewritten =
        RewriteOver(sql, options.multiset, *snap, &stale, &chosen);
    if (rewritten.ok()) {
      auto entry = std::make_shared<CachedPlan>();
      entry->rewritten =
          std::shared_ptr<const SelectStmt>(std::move(rewritten.value().query));
      entry->chosen = chosen;
      entry->stale = stale;
      entry->programs = programs;
      // Insert before execution: a rewriting is valid for this version even
      // if this particular execution trips a guard.
      size_t evicted = plan_cache_.Insert(cache_key, snap->version(), entry);
      if (sink != nullptr && evicted > 0) {
        sink->metrics.Add(counters::kPlanCacheEvictions,
                          static_cast<uint64_t>(evicted));
      }
      std::unique_ptr<SelectStmt> exec_stmt = entry->rewritten->Clone();
      answered = engine_.Execute(exec_stmt.get(), qc);
      if (!answered.ok() &&
          answered.status().code() == StatusCode::kNotFound &&
          chosen != nullptr) {
        plan_cache_.Erase(cache_key);
        stale.push_back(
            VanishedMaterializationWarning(*chosen, answered.status()));
        chosen = nullptr;
        answered = engine_.ExecuteSql(sql, qc);
      }
    } else {
      std::unique_ptr<SelectStmt> direct_stmt = std::move(stmt);
      if (direct_stmt == nullptr) {
        // Raw-memo hit but plan evicted/invalidated: re-parse. The memo
        // guarantees this text parsed before.
        Result<std::unique_ptr<SelectStmt>> reparsed = Parser::ParseSelect(sql);
        if (reparsed.ok()) direct_stmt = std::move(reparsed).value();
      }
      std::unique_ptr<SelectStmt> exec_stmt;
      if (direct_stmt != nullptr) exec_stmt = direct_stmt->Clone();
      Result<Table> direct = direct_stmt != nullptr
                                 ? engine_.Execute(exec_stmt.get(), qc)
                                 : engine_.ExecuteSql(sql, qc);
      if (direct.ok() && direct_stmt != nullptr) {
        // Cache the direct plan only on success: a failing direct probe must
        // keep reporting the rewrite's NotFound, exactly like the cold path.
        auto entry = std::make_shared<CachedPlan>();
        entry->direct =
            std::shared_ptr<const SelectStmt>(std::move(direct_stmt));
        entry->stale = stale;
        entry->programs = programs;
        size_t evicted = plan_cache_.Insert(cache_key, snap->version(), entry);
        if (sink != nullptr && evicted > 0) {
          sink->metrics.Add(counters::kPlanCacheEvictions,
                            static_cast<uint64_t>(evicted));
        }
      }
      if (direct.ok()) {
        answered = std::move(direct);
      } else if (!qc->CheckGuards().ok()) {
        answered = std::move(direct);
      } else {
        answered = rewritten.status();
      }
    }
  }

  if (sink != nullptr && !stale.empty()) {
    sink->metrics.Add(counters::kCatalogStalePath,
                      static_cast<uint64_t>(stale.size()));
  }
  DV_RETURN_IF_ERROR(answered.status());
  if (sink != nullptr) {
    sink->metrics.Set(counters::kBudgetRowsCharged, qc->rows_charged());
    sink->metrics.Set(counters::kBudgetBytesCharged, qc->bytes_charged());
    ExportAnalyzeMetrics(&sink->metrics);
  }
  std::vector<SourceWarning> warnings = std::move(cache_warnings);
  for (SourceWarning& w : stale) warnings.push_back(std::move(w));
  if (chosen != nullptr) {
    auto it = source_diags_.find(chosen);
    if (it != source_diags_.end()) {
      const NameTerm& db = chosen->db_term();
      std::string name =
          (db.empty() ? std::string() : db.text + "::") + chosen->rel_term().text;
      for (const Diagnostic& d : it->second) {
        if (d.severity != Severity::kWarning) continue;
        warnings.push_back(SourceWarning{
            name, Status::InvalidArgument(d.code + " [" + d.anchor +
                                          "]: " + d.message)});
      }
    }
  }
  for (SourceWarning& w : qc->warnings()) warnings.push_back(std::move(w));
  DrainRecoveryWarnings(&warnings);
  DedupSourceWarnings(&warnings);
  AnswerResult result{std::move(answered).value(), std::move(warnings),
                      std::move(observer), snap->version(), std::move(snap)};
  result.plan_cached = plan_cached;
  result.plan_fingerprint = fp_hex;
  return result;
}

Result<std::shared_ptr<PreparedQuery>> IntegrationSystem::Prepare(
    const std::string& sql) {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                      Parser::ParseSelect(sql));
  auto prepared = std::make_shared<PreparedQuery>();
  prepared->sql_ = sql;
  prepared->num_params_ = CountParameters(*stmt);
  prepared->fp_hex_ =
      FingerprintStatement(*stmt, FingerprintMode::kParameterized).Hex();
  prepared->template_ = std::shared_ptr<const SelectStmt>(std::move(stmt));
  return prepared;
}

Result<AnswerResult> IntegrationSystem::ExecutePrepared(
    const PreparedQuery& prepared, const std::vector<Value>& params,
    const AnswerOptions& options, QueryContext* ctx) {
  if (static_cast<int>(params.size()) != prepared.num_params()) {
    return Status::InvalidArgument(
        "prepared query expects " + std::to_string(prepared.num_params()) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  std::unique_ptr<SelectStmt> stmt = prepared.template_->Clone();
  DV_RETURN_IF_ERROR(SubstituteParameters(stmt.get(), params));
  // Cache on the *exact* fingerprint of the substituted statement: usability
  // decisions in Alg. 5.1 may read literal values, so keying the rewriting
  // on the parameterized shape alone would be unsound.
  QueryFingerprint fp = FingerprintStatement(*stmt, FingerprintMode::kExact);
  std::string fp_hex = fp.Hex();
  // Full normalized text as the key (hash collisions must miss, not alias).
  std::string cache_key = (options.multiset ? "m|" : "s|") + fp.normalized;
  // The rendered text only matters on a cache miss (Alg. 5.1's translators
  // take SQL); repeats hit the plan cache and never round-trip through text.
  // Value::ToString doubles embedded quotes, so any bound string parameter —
  // including one shaped like SQL — re-parses as exactly the literal it was.
  std::string rendered = stmt->ToString();
  if (!plan_cache_enabled_) return AnswerUncached(rendered, options, ctx);
  return AnswerWithCache(rendered, cache_key, fp_hex, std::move(stmt), options,
                         ctx);
}

Result<Table> IntegrationSystem::AnswerOptimized(const std::string& sql) {
  return optimizer_.Run(sql);
}

Result<std::string> IntegrationSystem::ExplainOptimized(
    const std::string& sql) {
  return optimizer_.Explain(sql);
}

Result<Table> IntegrationSystem::KeywordSearch(
    const std::string& interface_table, const std::string& keyword) {
  // Prefer a registered inverted index whose payload matches.
  for (const auto& idx : indexes_) {
    if (idx->method() != IndexMethod::kInverted) continue;
    Result<Table> hits = idx->ProbeKeyword(ToLower(keyword));
    if (hits.ok()) return hits;
  }
  // Scan fallback: any attribute whose value contains the keyword. Render
  // the keyword through Value::ToString so embedded quotes stay literal.
  return engine_.ExecuteSql("select * from " + integration_db_ +
                            "::" + interface_table + " T where contains(T.value, " +
                            Value::String(keyword).ToString() + ")");
}

}  // namespace dynview

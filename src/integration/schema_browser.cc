#include "integration/schema_browser.h"

#include "common/str_util.h"

namespace dynview {

Status SchemaBrowser::InstallMetaTables(const CatalogReader& catalog,
                                        Catalog* target,
                                        const std::string& meta_db) {
  Table databases(Schema({{"db", TypeKind::kString}}));
  Table relations(Schema({{"db", TypeKind::kString},
                          {"rel", TypeKind::kString},
                          {"num_rows", TypeKind::kInt},
                          {"num_attrs", TypeKind::kInt}}));
  Table attributes(Schema({{"db", TypeKind::kString},
                           {"rel", TypeKind::kString},
                           {"attr", TypeKind::kString},
                           {"position", TypeKind::kInt},
                           {"type", TypeKind::kString}}));
  for (const std::string& db_name : catalog.DatabaseNames()) {
    if (EqualsIgnoreCase(db_name, meta_db)) continue;  // Stable fixpoint.
    databases.AppendRowUnchecked({Value::String(db_name)});
    DV_ASSIGN_OR_RETURN(const Database* db, catalog.GetDatabase(db_name));
    for (const std::string& rel_name : db->TableNames()) {
      DV_ASSIGN_OR_RETURN(const Table* t, db->GetTable(rel_name));
      relations.AppendRowUnchecked(
          {Value::String(db_name), Value::String(rel_name),
           Value::Int(static_cast<int64_t>(t->num_rows())),
           Value::Int(static_cast<int64_t>(t->schema().num_columns()))});
      for (size_t c = 0; c < t->schema().num_columns(); ++c) {
        attributes.AppendRowUnchecked(
            {Value::String(db_name), Value::String(rel_name),
             Value::String(t->schema().column(c).name),
             Value::Int(static_cast<int64_t>(c)),
             Value::String(TypeKindName(t->schema().column(c).type))});
      }
    }
  }
  // One commit: readers see all three meta tables together or none.
  return target
      ->Mutate([&](CatalogTxn& txn) {
        Database* meta = txn.GetOrCreateDatabase(meta_db);
        meta->PutTable("databases", std::move(databases));
        meta->PutTable("relations", std::move(relations));
        meta->PutTable("attributes", std::move(attributes));
        return Status::OK();
      })
      .status();
}

Result<Table> SchemaBrowser::RelationsWithAttribute(
    const CatalogReader& catalog, const std::string& attr,
    const std::string& exclude_db) {
  Table out(Schema({{"db", TypeKind::kString}, {"rel", TypeKind::kString}}));
  for (const std::string& db_name : catalog.DatabaseNames()) {
    if (EqualsIgnoreCase(db_name, exclude_db)) continue;
    DV_ASSIGN_OR_RETURN(const Database* db, catalog.GetDatabase(db_name));
    for (const std::string& rel_name : db->TableNames()) {
      DV_ASSIGN_OR_RETURN(const Table* t, db->GetTable(rel_name));
      if (t->schema().HasColumn(attr)) {
        out.AppendRowUnchecked(
            {Value::String(db_name), Value::String(rel_name)});
      }
    }
  }
  return out;
}

}  // namespace dynview

#ifndef DYNVIEW_INTEGRATION_SCHEMA_BROWSER_H_
#define DYNVIEW_INTEGRATION_SCHEMA_BROWSER_H_

#include <string>

#include "common/result.h"
#include "relational/catalog.h"

namespace dynview {

/// Schema browsing (Sec. 3 of the paper: dynamic views "permit schema
/// browsing and new forms of data independence"). The federation's metadata
/// is itself exposed as relations, so ordinary SQL — not a separate catalog
/// API — answers questions like "which relations have a price attribute?".
/// This is the inverse direction of a dynamic view: schema labels demoted to
/// data.
///
/// Installed tables (in database `meta_db`):
///   databases(db)
///   relations(db, rel, num_rows, num_attrs)
///   attributes(db, rel, attr, position, type)
class SchemaBrowser {
 public:
  /// Snapshots `catalog`'s structure into `meta_db` inside `target`
  /// (typically the same catalog — self-description). Pre-existing meta
  /// tables are replaced. `meta_db` itself is excluded from the snapshot
  /// when self-describing, so the fixpoint is stable.
  static Status InstallMetaTables(const CatalogReader& catalog, Catalog* target,
                                  const std::string& meta_db);

  /// Convenience: relations of `catalog` (excluding `exclude_db`) that have
  /// an attribute named `attr`.
  static Result<Table> RelationsWithAttribute(const CatalogReader& catalog,
                                              const std::string& attr,
                                              const std::string& exclude_db);
};

}  // namespace dynview

#endif  // DYNVIEW_INTEGRATION_SCHEMA_BROWSER_H_

#include "evolve/evolution.h"

#include <algorithm>
#include <set>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "restructure/restructure.h"
#include "schemasql/view_materializer.h"

namespace dynview {

const char* DdlKindName(DdlKind kind) {
  switch (kind) {
    case DdlKind::kAddAttribute:
      return "add-attribute";
    case DdlKind::kDropAttribute:
      return "drop-attribute";
    case DdlKind::kRenameAttribute:
      return "rename-attribute";
    case DdlKind::kRenameRelation:
      return "rename-relation";
    case DdlKind::kPromoteLabelToData:
      return "promote-label-to-data";
    case DdlKind::kDemoteDataToLabel:
      return "demote-data-to-label";
  }
  return "unknown";
}

DdlOp DdlOp::AddAttribute(std::string db, std::string rel, std::string attr,
                          Value fill) {
  DdlOp op;
  op.kind = DdlKind::kAddAttribute;
  op.db = std::move(db);
  op.rel = std::move(rel);
  op.attr = std::move(attr);
  op.fill = std::move(fill);
  return op;
}

DdlOp DdlOp::DropAttribute(std::string db, std::string rel, std::string attr) {
  DdlOp op;
  op.kind = DdlKind::kDropAttribute;
  op.db = std::move(db);
  op.rel = std::move(rel);
  op.attr = std::move(attr);
  return op;
}

DdlOp DdlOp::RenameAttribute(std::string db, std::string rel, std::string attr,
                             std::string new_name) {
  DdlOp op;
  op.kind = DdlKind::kRenameAttribute;
  op.db = std::move(db);
  op.rel = std::move(rel);
  op.attr = std::move(attr);
  op.new_name = std::move(new_name);
  return op;
}

DdlOp DdlOp::RenameRelation(std::string db, std::string rel,
                            std::string new_name) {
  DdlOp op;
  op.kind = DdlKind::kRenameRelation;
  op.db = std::move(db);
  op.rel = std::move(rel);
  op.new_name = std::move(new_name);
  return op;
}

DdlOp DdlOp::DemoteDataToLabel(std::string db, std::string rel,
                               std::string attr) {
  DdlOp op;
  op.kind = DdlKind::kDemoteDataToLabel;
  op.db = std::move(db);
  op.rel = std::move(rel);
  op.attr = std::move(attr);
  return op;
}

DdlOp DdlOp::PromoteLabelToData(std::string db,
                                std::vector<std::string> family,
                                std::string rel, std::string attr) {
  DdlOp op;
  op.kind = DdlKind::kPromoteLabelToData;
  op.db = std::move(db);
  op.family = std::move(family);
  op.rel = std::move(rel);
  op.attr = std::move(attr);
  return op;
}

std::string DdlOp::ToString() const {
  std::string out = std::string(DdlKindName(kind)) + " " + db + "::" + rel;
  switch (kind) {
    case DdlKind::kAddAttribute:
      out += " +" + attr + "=" + fill.ToString();
      break;
    case DdlKind::kDropAttribute:
      out += " -" + attr;
      break;
    case DdlKind::kRenameAttribute:
      out += " " + attr + "->" + new_name;
      break;
    case DdlKind::kRenameRelation:
      out += " ->" + new_name;
      break;
    case DdlKind::kDemoteDataToLabel:
      out += " by " + attr;
      break;
    case DdlKind::kPromoteLabelToData: {
      out += " from [";
      for (size_t i = 0; i < family.size(); ++i) {
        if (i > 0) out += ",";
        out += family[i];
      }
      out += "] label " + attr;
      break;
    }
  }
  return out;
}

namespace {

std::string ChangedKey(const std::string& db, const std::string& rel) {
  return ToLower(db) + "::" + ToLower(rel);
}

void RecordChanged(std::vector<std::string>* changed, const std::string& db,
                   const std::string& rel) {
  if (changed != nullptr) changed->push_back(ChangedKey(db, rel));
}

Status RequireName(const std::string& value, const char* what) {
  if (value.empty()) {
    return Status::InvalidArgument(std::string("evolution op needs a ") +
                                   what);
  }
  return Status::OK();
}

std::string SourceDisplayName(const ViewDefinition& view) {
  const NameTerm& db = view.db_term();
  return (db.empty() ? std::string() : db.text + "::") + view.rel_term().text;
}

/// True when `view` reads from or materializes into `db_key` (lowercased).
/// Database granularity matches the staleness fence exactly.
bool TouchesDatabase(const ViewDefinition& view, const std::string& db_key) {
  if (view.db_term().is_variable) return true;
  for (const TableRef& t : view.tables()) {
    if (t.db == db_key) return true;
  }
  for (const TableRef& t : view.materialization()) {
    if (t.db == db_key) return true;
  }
  return false;
}

}  // namespace

/// Registration normalizes a view body into explicit-variable form, which
/// declares a domain variable for EVERY attribute of the defining relation
/// (see ViewDefinition::Create). Those extra declarations pin the view to
/// attributes it never reads, so dropping or renaming an unrelated column
/// would spuriously break re-materialization. An unused first-order domain
/// variable binds exactly once per tuple — removing its declaration never
/// changes the result — so we prune, to a fixpoint, every kDomainVar item
/// whose variable appears nowhere else in the statement.
std::unique_ptr<CreateViewStmt> PruneUnusedDomainVars(
    const CreateViewStmt& stmt) {
  std::unique_ptr<CreateViewStmt> pruned = stmt.Clone();
  auto used_in = [](const SelectStmt& body, const CreateViewStmt& header) {
    std::set<std::string> used;
    auto add_expr = [&used](const Expr* e) {
      if (e == nullptr) return;
      std::vector<std::string> vars;
      e->CollectVarRefs(&vars);
      for (const std::string& v : vars) used.insert(ToLower(v));
    };
    auto add_term = [&used](const NameTerm& t) {
      if (t.is_variable) used.insert(ToLower(t.text));
    };
    for (const SelectItem& s : body.select_list) add_expr(s.expr.get());
    add_expr(body.where.get());
    for (const auto& g : body.group_by) add_expr(g.get());
    add_expr(body.having.get());
    for (const OrderItem& o : body.order_by) add_expr(o.expr.get());
    add_term(header.db);
    add_term(header.name);
    for (const NameTerm& a : header.attrs) add_term(a);
    for (const FromItem& f : body.from_items) {
      add_term(f.db);
      add_term(f.rel);
      add_term(f.attr);
      if (f.kind == FromItemKind::kDomainVar) used.insert(ToLower(f.tuple));
    }
    return used;
  };
  for (SelectStmt* body = pruned->query.get(); body != nullptr;
       body = body->union_next.get()) {
    for (bool changed = true; changed;) {
      changed = false;
      std::set<std::string> used = used_in(*body, *pruned);
      for (auto it = body->from_items.begin(); it != body->from_items.end();
           ++it) {
        if (it->kind != FromItemKind::kDomainVar) continue;
        if (it->attr.is_variable) continue;  // Pivoting decl: load-bearing.
        if (used.count(ToLower(it->var)) != 0) continue;
        body->from_items.erase(it);
        changed = true;
        break;
      }
    }
  }
  return pruned;
}

SchemaEvolver::SchemaEvolver(Catalog* catalog, IntegrationSystem* system)
    : catalog_(catalog), system_(system) {}

Status SchemaEvolver::ApplyToTxn(CatalogTxn& txn, const DdlOp& op,
                                 std::vector<std::string>* tables_changed) {
  DV_RETURN_IF_ERROR(RequireName(op.db, "database name"));
  switch (op.kind) {
    case DdlKind::kAddAttribute: {
      DV_RETURN_IF_ERROR(RequireName(op.rel, "relation name"));
      DV_RETURN_IF_ERROR(RequireName(op.attr, "attribute name"));
      DV_ASSIGN_OR_RETURN(Database * db, txn.GetMutableDatabase(op.db));
      DV_ASSIGN_OR_RETURN(const Table* t, db->GetTable(op.rel));
      if (t->schema().HasColumn(op.attr)) {
        return Status::InvalidArgument("attribute '" + op.attr +
                                       "' already exists in " + op.db +
                                       "::" + op.rel);
      }
      Table next = *t;
      DV_RETURN_IF_ERROR(
          next.mutable_schema()->AddColumn(Column(op.attr, op.fill.kind())));
      Table filled{next.schema()};
      for (const Row& r : next.rows()) {
        Row nr = r;
        nr.push_back(op.fill);
        filled.AppendRowUnchecked(std::move(nr));
      }
      db->PutTable(op.rel, std::move(filled));
      RecordChanged(tables_changed, op.db, op.rel);
      return Status::OK();
    }
    case DdlKind::kDropAttribute: {
      DV_RETURN_IF_ERROR(RequireName(op.rel, "relation name"));
      DV_RETURN_IF_ERROR(RequireName(op.attr, "attribute name"));
      DV_ASSIGN_OR_RETURN(Database * db, txn.GetMutableDatabase(op.db));
      DV_ASSIGN_OR_RETURN(const Table* t, db->GetTable(op.rel));
      int idx = t->schema().IndexOf(op.attr);
      if (idx < 0) {
        return Status::InvalidArgument("no attribute '" + op.attr + "' in " +
                                       op.db + "::" + op.rel);
      }
      if (t->schema().num_columns() == 1) {
        return Status::InvalidArgument(
            "cannot drop the last attribute of " + op.db + "::" + op.rel);
      }
      std::vector<Column> cols;
      for (size_t i = 0; i < t->schema().num_columns(); ++i) {
        if (static_cast<int>(i) == idx) continue;
        cols.push_back(t->schema().column(i));
      }
      Table next{Schema(std::move(cols))};
      for (const Row& r : t->rows()) {
        Row nr;
        nr.reserve(r.size() - 1);
        for (size_t i = 0; i < r.size(); ++i) {
          if (static_cast<int>(i) == idx) continue;
          nr.push_back(r[i]);
        }
        next.AppendRowUnchecked(std::move(nr));
      }
      db->PutTable(op.rel, std::move(next));
      RecordChanged(tables_changed, op.db, op.rel);
      return Status::OK();
    }
    case DdlKind::kRenameAttribute: {
      DV_RETURN_IF_ERROR(RequireName(op.rel, "relation name"));
      DV_RETURN_IF_ERROR(RequireName(op.attr, "attribute name"));
      DV_RETURN_IF_ERROR(RequireName(op.new_name, "new attribute name"));
      DV_ASSIGN_OR_RETURN(Database * db, txn.GetMutableDatabase(op.db));
      DV_ASSIGN_OR_RETURN(const Table* t, db->GetTable(op.rel));
      int idx = t->schema().IndexOf(op.attr);
      if (idx < 0) {
        return Status::InvalidArgument("no attribute '" + op.attr + "' in " +
                                       op.db + "::" + op.rel);
      }
      if (t->schema().HasColumn(op.new_name)) {
        return Status::InvalidArgument("attribute '" + op.new_name +
                                       "' already exists in " + op.db +
                                       "::" + op.rel);
      }
      std::vector<Column> cols = t->schema().columns();
      cols[idx].name = op.new_name;
      Table next = *t;
      *next.mutable_schema() = Schema(std::move(cols));
      db->PutTable(op.rel, std::move(next));
      RecordChanged(tables_changed, op.db, op.rel);
      return Status::OK();
    }
    case DdlKind::kRenameRelation: {
      DV_RETURN_IF_ERROR(RequireName(op.rel, "relation name"));
      DV_RETURN_IF_ERROR(RequireName(op.new_name, "new relation name"));
      DV_ASSIGN_OR_RETURN(Database * db, txn.GetMutableDatabase(op.db));
      DV_ASSIGN_OR_RETURN(const Table* t, db->GetTable(op.rel));
      if (ToLower(op.new_name) != ToLower(op.rel) &&
          db->HasTable(op.new_name)) {
        return Status::InvalidArgument("relation '" + op.new_name +
                                       "' already exists in " + op.db);
      }
      Table moved = *t;
      DV_RETURN_IF_ERROR(db->DropTable(op.rel));
      DV_RETURN_IF_ERROR(db->AddTable(op.new_name, std::move(moved)));
      RecordChanged(tables_changed, op.db, op.rel);
      RecordChanged(tables_changed, op.db, op.new_name);
      return Status::OK();
    }
    case DdlKind::kDemoteDataToLabel: {
      DV_RETURN_IF_ERROR(RequireName(op.rel, "relation name"));
      DV_RETURN_IF_ERROR(RequireName(op.attr, "label attribute name"));
      DV_ASSIGN_OR_RETURN(Database * db, txn.GetMutableDatabase(op.db));
      DV_ASSIGN_OR_RETURN(const Table* t, db->GetTable(op.rel));
      DV_ASSIGN_OR_RETURN(auto parts, PartitionByColumn(*t, op.attr));
      // Empty relations have no labels to carry them (the capacity caveat
      // of Sec. 4.2): demoting one would silently erase the relation.
      if (parts.empty()) {
        return Status::InvalidArgument(
            "cannot demote empty relation " + op.db + "::" + op.rel +
            " (no labels to partition by)");
      }
      for (const auto& [label, table] : parts) {
        if (ToLower(label) != ToLower(op.rel) && db->HasTable(label)) {
          return Status::InvalidArgument(
              "demote label '" + label + "' collides with an existing "
              "relation in " + op.db);
        }
      }
      DV_RETURN_IF_ERROR(db->DropTable(op.rel));
      RecordChanged(tables_changed, op.db, op.rel);
      for (auto& [label, table] : parts) {
        DV_RETURN_IF_ERROR(db->AddTable(label, std::move(table)));
        RecordChanged(tables_changed, op.db, label);
      }
      return Status::OK();
    }
    case DdlKind::kPromoteLabelToData: {
      DV_RETURN_IF_ERROR(RequireName(op.rel, "new relation name"));
      DV_RETURN_IF_ERROR(RequireName(op.attr, "label attribute name"));
      if (op.family.empty()) {
        return Status::InvalidArgument(
            "promote-label-to-data needs a non-empty relation family");
      }
      DV_ASSIGN_OR_RETURN(Database * db, txn.GetMutableDatabase(op.db));
      std::vector<std::pair<std::string, Table>> parts;
      parts.reserve(op.family.size());
      for (const std::string& member : op.family) {
        DV_ASSIGN_OR_RETURN(const Table* t, db->GetTable(member));
        if (!parts.empty() &&
            !t->schema().SameNames(parts.front().second.schema())) {
          return Status::InvalidArgument(
              "promote family is schematically heterogeneous: " + member +
              " has schema " + t->schema().ToString() + ", " +
              parts.front().first + " has " +
              parts.front().second.schema().ToString());
        }
        if (t->schema().HasColumn(op.attr)) {
          return Status::InvalidArgument(
              "label attribute '" + op.attr + "' collides with a column of " +
              op.db + "::" + member);
        }
        parts.emplace_back(member, *t);
      }
      DV_ASSIGN_OR_RETURN(Table united, Unite(parts, op.attr));
      std::set<std::string> family_keys;
      for (const std::string& member : op.family) {
        family_keys.insert(ToLower(member));
      }
      if (family_keys.count(ToLower(op.rel)) == 0 && db->HasTable(op.rel)) {
        return Status::InvalidArgument("relation '" + op.rel +
                                       "' already exists in " + op.db);
      }
      for (const std::string& member : op.family) {
        DV_RETURN_IF_ERROR(db->DropTable(member));
        RecordChanged(tables_changed, op.db, member);
      }
      DV_RETURN_IF_ERROR(db->AddTable(op.rel, std::move(united)));
      RecordChanged(tables_changed, op.db, op.rel);
      return Status::OK();
    }
  }
  return Status::Unsupported("unknown DDL kind");
}

Result<EvolutionResult> SchemaEvolver::Apply(const DdlOp& op,
                                             const EvolveOptions& options) {
  if (FailPoints::AnyArmed()) {
    DV_RETURN_IF_ERROR(FailPoints::Check(
        "evolve.apply", ToLower(op.db) + "::" + ToLower(op.rel)));
  }
  EvolutionResult result;
  DV_ASSIGN_OR_RETURN(
      result.version,
      catalog_->Mutate(
          [&](CatalogTxn& txn) {
            return ApplyToTxn(txn, op, &result.tables_changed);
          },
          std::string("evolve.") + DdlKindName(op.kind)));
  std::sort(result.tables_changed.begin(), result.tables_changed.end());
  result.tables_changed.erase(
      std::unique(result.tables_changed.begin(), result.tables_changed.end()),
      result.tables_changed.end());
  DV_RETURN_IF_ERROR(Propagate(op, options, &result));
  return result;
}

Result<std::vector<EvolutionResult>> SchemaEvolver::ApplyAll(
    const std::vector<DdlOp>& ops, const EvolveOptions& options) {
  std::vector<EvolutionResult> results;
  results.reserve(ops.size());
  for (const DdlOp& op : ops) {
    DV_ASSIGN_OR_RETURN(EvolutionResult r, Apply(op, options));
    results.push_back(std::move(r));
  }
  return results;
}

bool SchemaEvolver::Touches(const ViewDefinition& view,
                            const std::string& db_key) {
  return TouchesDatabase(view, db_key);
}

Status SchemaEvolver::Propagate(const DdlOp& op, const EvolveOptions& options,
                                EvolutionResult* out) {
  if (system_ == nullptr) return Status::OK();
  std::shared_ptr<const CatalogSnapshot> snap = catalog_->Snapshot();
  const std::string db_key = ToLower(op.db);
  const auto& sources = system_->sources();
  for (size_t i = 0; i < sources.size(); ++i) {
    ViewDefinition* view = sources[i].get();
    if (!TouchesDatabase(*view, db_key)) continue;
    ++out->sources_affected;
    bool definition_broken = false;
    if (options.relint) {
      std::vector<Diagnostic> diags = system_->LintSource(i, *snap);
      definition_broken = HasErrors(diags);
      for (Diagnostic& d : diags) out->relint.push_back(std::move(d));
    }
    if (!view->fenced() || !view->IsStaleAgainst(*snap)) continue;
    if (!options.rematerialize || definition_broken) {
      ++out->left_stale;
      out->warnings.push_back(SourceWarning{
          SourceDisplayName(*view),
          Status::Unavailable(
              "left fenced (stale) by " + op.ToString() +
              (definition_broken ? ": definition no longer lints clean"
                                 : ": re-materialization disabled"))});
      continue;
    }
    // Rebuild the materialization from I's evolved contents. The fresh
    // partition set installs — and the obsolete one retires — in ONE
    // commit tagged for replay, so the fence advance survives crashes and
    // a fan-out query can never observe a half-evolved source.
    std::unique_ptr<CreateViewStmt> remat_stmt =
        PruneUnusedDomainVars(view->stmt());
    Result<std::vector<MaterializedPartition>> built =
        ViewMaterializer::Build(*remat_stmt, system_->engine(),
                                system_->integration_db());
    if (!built.ok()) {
      ++out->left_stale;
      out->warnings.push_back(SourceWarning{
          SourceDisplayName(*view),
          Status::Unavailable("left fenced (stale) by " + op.ToString() +
                              ": re-materialization failed: " +
                              built.status().message())});
      continue;
    }
    std::vector<MaterializedPartition> parts = std::move(built).value();
    std::vector<TableRef> new_refs;
    new_refs.reserve(parts.size());
    std::set<std::string> fresh;
    for (const MaterializedPartition& p : parts) {
      new_refs.push_back(TableRef{ToLower(p.db), ToLower(p.rel)});
      fresh.insert(new_refs.back().ToString());
    }
    std::vector<TableRef> obsolete;
    for (const TableRef& old : view->materialization()) {
      if (fresh.count(old.ToString()) == 0) obsolete.push_back(old);
    }
    Result<uint64_t> committed = catalog_->Mutate(
        [&](CatalogTxn& txn) {
          for (const TableRef& old : obsolete) {
            Result<Database*> db = txn.GetMutableDatabase(old.db);
            if (!db.ok()) continue;  // Whole database already gone.
            if (db.value()->HasTable(old.rel)) {
              DV_RETURN_IF_ERROR(db.value()->DropTable(old.rel));
            }
          }
          for (MaterializedPartition& p : parts) {
            txn.GetOrCreateDatabase(p.db)->PutTable(p.rel,
                                                    std::move(p.table));
          }
          return Status::OK();
        },
        EvolveRematTag(i, new_refs));
    if (!committed.ok()) {
      ++out->left_stale;
      out->warnings.push_back(SourceWarning{
          SourceDisplayName(*view),
          Status::Unavailable("left fenced (stale) by " + op.ToString() +
                              ": re-materialization commit failed: " +
                              committed.status().message())});
      continue;
    }
    view->set_materialization(std::move(new_refs));
    view->AdvanceMaterializedVersion(committed.value());
    ++out->rematerialized;
  }
  // Indexes are built against I and have no incremental rebuild path yet:
  // an evolution of the integration database re-fences every registered
  // index (the optimizer's version fence keeps them from serving until
  // they are re-registered).
  if (db_key == ToLower(system_->integration_db())) {
    out->indexes_fenced = system_->indexes().size();
    for (const auto& index : system_->indexes()) {
      out->warnings.push_back(SourceWarning{
          "index " + index->name(),
          Status::Unavailable("re-fenced by " + op.ToString() +
                              ": index built at catalog version " +
                              std::to_string(index->build_version()))});
    }
  }
  DedupSourceWarnings(&out->warnings);
  return Status::OK();
}

}  // namespace dynview

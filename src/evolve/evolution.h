#ifndef DYNVIEW_EVOLVE_EVOLUTION_H_
#define DYNVIEW_EVOLVE_EVOLUTION_H_

#include <string>
#include <vector>

#include "analyze/diagnostic.h"
#include "common/query_context.h"
#include "common/result.h"
#include "integration/integration.h"
#include "relational/catalog.h"
#include "relational/value.h"

namespace dynview {

/// The six online DDL kinds of the schema-evolution layer. The first four
/// are classical relational DDL; the last two are the paper's schematic
/// dimension — data migrating into schema labels and back (Sec. 4):
/// demote-data-to-label partitions a relation by a column's values (the
/// s1 → s2 restructuring applied *in place*), promote-label-to-data unites
/// a family of relations back into one, their names becoming a data column.
enum class DdlKind {
  kAddAttribute,
  kDropAttribute,
  kRenameAttribute,
  kRenameRelation,
  kPromoteLabelToData,
  kDemoteDataToLabel,
};

/// Stable lowercase-hyphen name ("add-attribute", ...), used for commit
/// tags ("evolve.<name>"), repro dumps, and coverage accounting.
const char* DdlKindName(DdlKind kind);

/// One online DDL statement. Field use per kind:
///   kAddAttribute        db, rel, attr, fill (new column value for
///                        existing rows; its type kind types the column)
///   kDropAttribute       db, rel, attr
///   kRenameAttribute     db, rel, attr → new_name
///   kRenameRelation      db, rel → new_name
///   kDemoteDataToLabel   db, rel, attr (the label column; the relation is
///                        replaced by one relation per distinct value)
///   kPromoteLabelToData  db, family (relations to unite), rel (the new
///                        relation), attr (the new label column)
struct DdlOp {
  DdlKind kind = DdlKind::kAddAttribute;
  std::string db;
  std::string rel;
  std::string attr;
  std::string new_name;
  Value fill;
  std::vector<std::string> family;

  static DdlOp AddAttribute(std::string db, std::string rel, std::string attr,
                            Value fill = Value::Null());
  static DdlOp DropAttribute(std::string db, std::string rel,
                             std::string attr);
  static DdlOp RenameAttribute(std::string db, std::string rel,
                               std::string attr, std::string new_name);
  static DdlOp RenameRelation(std::string db, std::string rel,
                              std::string new_name);
  static DdlOp DemoteDataToLabel(std::string db, std::string rel,
                                 std::string attr);
  static DdlOp PromoteLabelToData(std::string db,
                                  std::vector<std::string> family,
                                  std::string rel, std::string attr);

  /// Deterministic one-line rendering for logs and minimized repro dumps.
  std::string ToString() const;
};

/// What one committed evolution did. `warnings` is deterministic
/// (registration order) and uses the same SourceWarning currency as
/// AnswerResult: a source left fenced-stale because its definition no
/// longer lints clean (or its re-materialization failed) warns here AND on
/// every subsequent answer until repaired — never a wrong answer.
struct EvolutionResult {
  /// Catalog version the DDL transaction committed as.
  uint64_t version = 0;
  /// Lowercased "db::rel" of every relation the DDL created, dropped,
  /// renamed (both names) or rewrote. Sorted, deduplicated.
  std::vector<std::string> tables_changed;
  /// Re-lint findings (DV001..DV007) over affected sources, in
  /// registration order; Diagnostic::statement is the source index.
  std::vector<Diagnostic> relint;
  std::vector<SourceWarning> warnings;
  /// Affected-source accounting: how many registered sources read the
  /// evolved database, how many fenced materializations were rebuilt, and
  /// how many were left fenced (stale) instead.
  size_t sources_affected = 0;
  size_t rematerialized = 0;
  size_t left_stale = 0;
  /// Indexes re-fenced by this evolution (they stop serving until rebuilt;
  /// the optimizer's stale fence handles the "never a wrong answer" side).
  size_t indexes_fenced = 0;
};

/// Propagation knobs. Defaults give full propagation; tests and benches
/// switch parts off to isolate the DDL transaction itself.
struct EvolveOptions {
  /// Re-lint affected source definitions (DV001..DV007) post-commit.
  bool relint = true;
  /// Rebuild affected fenced materializations whose definitions still lint
  /// clean. Off, every affected fenced source is left stale (re-fenced).
  bool rematerialize = true;
};

/// Online schema evolution with propagation through dynamic views.
///
/// Each Apply is ONE `Catalog::Mutate` transaction (commit-or-nothing,
/// tagged "evolve.<kind>" so the WAL records why the commit exists),
/// followed by propagation over the bound IntegrationSystem's registered
/// sources: re-lint affected definitions, then for each affected *fenced*
/// materialization either rebuild it — obsolete partitions retired and the
/// fresh set installed in one commit tagged EvolveRematTag(index, refs),
/// which crash recovery replays into the exact same fence state — or leave
/// it fenced with a deterministic warning when the definition no longer
/// lints clean. A system-less evolver (nullptr) applies bare catalog DDL.
///
/// Failpoint: `evolve.apply` fires before the DDL commit with lowercased
/// "db::rel" as the match detail; an injected error aborts the evolution
/// with the catalog untouched.
///
/// Not thread-safe against other writers of the same sources: evolutions
/// serialize on the catalog writer mutex, but propagation assumes no
/// concurrent registration on the bound system (the usual single-writer
/// DDL discipline).
/// Returns a clone of `stmt` with every constant-attribute domain-variable
/// declaration whose variable is referenced nowhere (select list, WHERE,
/// GROUP BY/HAVING, ORDER BY, header terms, other FROM items) removed,
/// iterated to a fixpoint. Registration can annotate view bodies with
/// domain declarations for every base attribute; re-materialization prunes
/// them first so a dropped-but-unread column does not fail the rebuild.
/// Shared with the workload auditor's what-if mode, which must predict
/// rebuild feasibility against the same pruned body.
std::unique_ptr<CreateViewStmt> PruneUnusedDomainVars(
    const CreateViewStmt& stmt);

class SchemaEvolver {
 public:
  explicit SchemaEvolver(Catalog* catalog,
                         IntegrationSystem* system = nullptr);

  /// Applies one DDL op and propagates. An invalid op (missing relation,
  /// duplicate column, NULL demote label, heterogeneous promote family...)
  /// fails with the catalog untouched.
  Result<EvolutionResult> Apply(const DdlOp& op,
                                const EvolveOptions& options = {});

  /// Applies a DDL stream in order, stopping at the first failing op
  /// (whose transaction published nothing).
  Result<std::vector<EvolutionResult>> ApplyAll(
      const std::vector<DdlOp>& ops, const EvolveOptions& options = {});

  /// The transaction core: applies `op` to `txn`, recording every touched
  /// relation as lowercased "db::rel" into `tables_changed` (when given).
  /// Exposed so tests can compose several ops into one transaction.
  static Status ApplyToTxn(CatalogTxn& txn, const DdlOp& op,
                           std::vector<std::string>* tables_changed = nullptr);

  /// The propagation's affected-source predicate: true when `view` reads
  /// from or materializes into `db_key` (lowercased). Shared with the
  /// workload auditor's what-if mode so prediction and propagation can
  /// never disagree on which sources a DDL touches.
  static bool Touches(const ViewDefinition& view, const std::string& db_key);

 private:
  Status Propagate(const DdlOp& op, const EvolveOptions& options,
                   EvolutionResult* out);

  Catalog* catalog_;
  IntegrationSystem* system_;
};

}  // namespace dynview

#endif  // DYNVIEW_EVOLVE_EVOLUTION_H_

#ifndef DYNVIEW_OPTIMIZER_STATS_H_
#define DYNVIEW_OPTIMIZER_STATS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/view_definition.h"
#include "relational/catalog.h"

namespace dynview {

/// Per-column statistics for cardinality estimation.
struct ColumnStats {
  size_t num_distinct = 0;
  size_t num_nulls = 0;
  /// Present when the column is orderable (numeric or date) and non-empty.
  std::optional<double> min;
  std::optional<double> max;
};

/// Per-table statistics.
struct TableStats {
  size_t num_rows = 0;
  /// Keyed by lowercased column name.
  std::map<std::string, ColumnStats> columns;

  /// Scans `table` once, counting distincts exactly (in-memory tables make
  /// exact statistics affordable; a disk system would sample).
  static TableStats Compute(const Table& table);

  const ColumnStats* Find(const std::string& column) const;
};

/// Lazily computed statistics for the tables of a catalog. Entries are
/// keyed by (db, rel); the cache holds a snapshot — callers refresh by
/// constructing a new cache after bulk updates.
class StatsCache {
 public:
  explicit StatsCache(const CatalogReader* catalog) : catalog_(catalog) {}

  /// Statistics for `table`, computing on first use; nullptr if the table
  /// does not exist.
  const TableStats* Get(const TableRef& table);

 private:
  const CatalogReader* catalog_;
  std::map<std::pair<std::string, std::string>, TableStats> cache_;
};

/// Selectivity helpers shared by the optimizer.

/// Equality with a constant: 1/ndv (uniformity), bounded to (0, 1].
double EqualitySelectivity(const ColumnStats& stats, size_t table_rows);

/// Range predicate selectivity by min/max interpolation when the column is
/// orderable; `fallback` otherwise. `op` ∈ {<, <=, >, >=}.
double RangeSelectivity(const ColumnStats& stats, BinaryOp op,
                        const Value& constant, double fallback);

/// Equi-join selectivity: 1/max(ndv_left, ndv_right).
double JoinSelectivity(const ColumnStats* left, const ColumnStats* right,
                       double fallback);

}  // namespace dynview

#endif  // DYNVIEW_OPTIMIZER_STATS_H_

#include "optimizer/plan.h"

#include <unordered_map>

#include "common/str_util.h"
#include "engine/expr_eval.h"
#include "engine/operators.h"

namespace dynview {

namespace {

std::string Indent(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

/// Bindings over a named-column table: every column name is a variable name.
ColumnBindings NamedBindings(const Table& t) {
  ColumnBindings b;
  for (size_t i = 0; i < t.schema().num_columns(); ++i) {
    b.AddNamed(t.schema().column(i).name, static_cast<int>(i));
  }
  b.set_num_columns(t.schema().num_columns());
  return b;
}

Result<Table> ApplyFilters(Table in,
                           const std::vector<std::unique_ptr<Expr>>& filters) {
  if (filters.empty()) return in;
  ColumnBindings b = NamedBindings(in);
  Table out(in.schema());
  for (const Row& r : in.rows()) {
    bool keep = true;
    for (const auto& f : filters) {
      DV_ASSIGN_OR_RETURN(TriBool t, EvaluatePredicate(*f, r, b));
      if (t != TriBool::kTrue) {
        keep = false;
        break;
      }
    }
    if (keep) out.AppendRowUnchecked(r);
  }
  return out;
}

}  // namespace

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto out = std::make_unique<PlanNode>();
  out->kind = kind;
  out->est_rows = est_rows;
  out->est_cost = est_cost;
  out->table = table;
  out->tuple_var = tuple_var;
  out->outputs = outputs;
  for (const auto& f : filters) out->filters.push_back(f->Clone());
  out->index = index;
  out->probe_key = probe_key;
  out->probe_keyword = probe_keyword;
  out->view_name = view_name;
  if (rewritten) out->rewritten = rewritten->Clone();
  out->covered_vars = covered_vars;
  out->absorbed_conjuncts = absorbed_conjuncts;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  for (const auto& c : join_conds) out->join_conds.push_back(c->Clone());
  return out;
}

std::string PlanNode::Describe(int indent) const {
  std::string out = Indent(indent);
  switch (kind) {
    case Kind::kTableScan:
      out += "TableScan(" + table.ToString() + " AS " + tuple_var + ")";
      break;
    case Kind::kIndexProbe:
      out += "IndexProbe(" + (index != nullptr ? index->name() : "?") +
             (probe_keyword.empty()
                  ? ", key = " + probe_key.ToString()
                  : ", keyword = '" + probe_keyword + "'") +
             ")";
      break;
    case Kind::kViewScan: {
      out += "ViewScan(" + view_name + " covering {";
      for (size_t i = 0; i < covered_vars.size(); ++i) {
        if (i > 0) out += ", ";
        out += covered_vars[i];
      }
      out += "}, absorbed " + std::to_string(absorbed_conjuncts) + " preds)";
      break;
    }
    case Kind::kJoin:
      out += "Join(";
      for (size_t i = 0; i < join_conds.size(); ++i) {
        if (i > 0) out += " AND ";
        out += join_conds[i]->ToString();
      }
      out += ")";
      break;
  }
  for (const auto& f : filters) out += " filter[" + f->ToString() + "]";
  out += "  rows=" + Fmt(est_rows) + " cost=" + Fmt(est_cost) + "\n";
  if (kind == Kind::kViewScan && rewritten != nullptr) {
    out += Indent(indent + 1) + "ship: " + rewritten->ToString() + "\n";
  }
  if (left) out += left->Describe(indent + 1);
  if (right) out += right->Describe(indent + 1);
  return out;
}

Result<Table> PlanNode::Execute(QueryEngine* engine, QueryContext* qc) const {
  switch (kind) {
    case Kind::kTableScan: {
      // Held across the projection: the rows borrowed from the snapshot
      // must outlive their copy, even when no caller pins one.
      std::shared_ptr<const CatalogSnapshot> snap = engine->PinnedSnapshot(qc);
      DV_ASSIGN_OR_RETURN(const Table* base,
                          snap->ResolveTable(table.db, table.rel));
      // Project to named outputs, then filter.
      std::vector<int> cols;
      std::vector<std::string> names;
      for (const auto& [attr, name] : outputs) {
        int idx = base->schema().IndexOf(attr);
        if (idx < 0) {
          return Status::Internal("scan output attribute '" + attr +
                                  "' missing from " + table.ToString());
        }
        cols.push_back(idx);
        names.push_back(name);
      }
      DV_ASSIGN_OR_RETURN(Table projected, ProjectColumns(*base, cols, names));
      return ApplyFilters(std::move(projected), filters);
    }
    case Kind::kIndexProbe: {
      if (index == nullptr) return Status::Internal("index probe without index");
      Table payload;
      if (probe_keyword.empty()) {
        DV_ASSIGN_OR_RETURN(payload, index->Probe(probe_key));
      } else {
        DV_ASSIGN_OR_RETURN(payload, index->ProbeKeyword(probe_keyword));
      }
      std::vector<int> cols;
      std::vector<std::string> names;
      for (const auto& [attr, name] : outputs) {
        int idx = payload.schema().IndexOf(attr);
        if (idx < 0) {
          return Status::Internal("index payload missing attribute '" + attr +
                                  "'");
        }
        cols.push_back(idx);
        names.push_back(name);
      }
      DV_ASSIGN_OR_RETURN(Table projected, ProjectColumns(payload, cols, names));
      return ApplyFilters(std::move(projected), filters);
    }
    case Kind::kViewScan: {
      std::unique_ptr<SelectStmt> copy = rewritten->Clone();
      return engine->Execute(copy.get(), qc);
    }
    case Kind::kJoin: {
      DV_ASSIGN_OR_RETURN(Table lt, left->Execute(engine, qc));
      DV_ASSIGN_OR_RETURN(Table rt, right->Execute(engine, qc));
      ColumnBindings lb = NamedBindings(lt);
      ColumnBindings rb = NamedBindings(rt);
      // Split join_conds into hash keys and residual filters.
      std::vector<const Expr*> lkeys, rkeys;
      std::vector<const Expr*> residual;
      for (const auto& c : join_conds) {
        if (c->kind == ExprKind::kCompare && c->op == BinaryOp::kEq) {
          if (CanEvaluate(*c->left, lb) && CanEvaluate(*c->right, rb)) {
            lkeys.push_back(c->left.get());
            rkeys.push_back(c->right.get());
            continue;
          }
          if (CanEvaluate(*c->right, lb) && CanEvaluate(*c->left, rb)) {
            lkeys.push_back(c->right.get());
            rkeys.push_back(c->left.get());
            continue;
          }
        }
        residual.push_back(c.get());
      }
      Table joined;
      if (!lkeys.empty()) {
        // Hash join on evaluated keys.
        std::unordered_map<Row, std::vector<size_t>, RowGroupHash, RowGroupEq>
            idx;
        idx.reserve(rt.num_rows());
        for (size_t i = 0; i < rt.num_rows(); ++i) {
          Row key;
          bool null_key = false;
          for (const Expr* k : rkeys) {
            DV_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*k, rt.row(i), rb));
            if (v.is_null()) null_key = true;
            key.push_back(std::move(v));
          }
          if (!null_key) idx[std::move(key)].push_back(i);
        }
        std::vector<Column> cols = lt.schema().columns();
        for (const Column& c : rt.schema().columns()) cols.push_back(c);
        joined = Table(Schema(std::move(cols)));
        for (const Row& lrow : lt.rows()) {
          Row key;
          bool null_key = false;
          for (const Expr* k : lkeys) {
            DV_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*k, lrow, lb));
            if (v.is_null()) null_key = true;
            key.push_back(std::move(v));
          }
          if (null_key) continue;
          auto it = idx.find(key);
          if (it == idx.end()) continue;
          for (size_t ri : it->second) {
            Row combined = lrow;
            const Row& rrow = rt.row(ri);
            combined.insert(combined.end(), rrow.begin(), rrow.end());
            joined.AppendRowUnchecked(std::move(combined));
          }
        }
      } else {
        DV_ASSIGN_OR_RETURN(joined, CrossProduct(lt, rt));
      }
      if (residual.empty()) return joined;
      ColumnBindings jb = NamedBindings(joined);
      Table out(joined.schema());
      for (const Row& r : joined.rows()) {
        bool keep = true;
        for (const Expr* c : residual) {
          DV_ASSIGN_OR_RETURN(TriBool t, EvaluatePredicate(*c, r, jb));
          if (t != TriBool::kTrue) {
            keep = false;
            break;
          }
        }
        if (keep) out.AppendRowUnchecked(r);
      }
      return out;
    }
  }
  return Status::Internal("bad plan node kind");
}

}  // namespace dynview

#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <set>

#include "analyze/analyzer.h"
#include "analyze/audit.h"
#include "common/str_util.h"
#include "core/normalize.h"
#include "optimizer/stats.h"
#include "plan_cache/fingerprint.h"
#include "sql/parser.h"

namespace dynview {

namespace {

// Textbook selectivity constants (System R heritage).
constexpr double kSelEqConst = 0.1;
constexpr double kSelRange = 0.3;
constexpr double kSelOther = 0.5;
constexpr double kSelJoinEq = 0.1;
constexpr int kMaxTables = 14;

struct ConjunctInfo {
  const Expr* expr = nullptr;
  uint32_t mask = 0;       // Tables referenced.
  bool placeable = true;   // All variables map to tables.
  double selectivity = kSelOther;
};

bool IsVarConstCompare(const Expr& e, BinaryOp* op) {
  if (e.kind != ExprKind::kCompare) return false;
  bool lc = e.left->kind == ExprKind::kLiteral;
  bool rc = e.right->kind == ExprKind::kLiteral;
  bool lv = e.left->kind == ExprKind::kVarRef;
  bool rv = e.right->kind == ExprKind::kVarRef;
  if ((lv && rc) || (lc && rv)) {
    *op = e.op;
    return true;
  }
  return false;
}

double EstimateSelectivity(const Expr& e) {
  BinaryOp op;
  if (IsVarConstCompare(e, &op)) {
    if (op == BinaryOp::kEq) return kSelEqConst;
    if (op == BinaryOp::kNotEq) return 1.0 - kSelEqConst;
    return kSelRange;
  }
  if (e.kind == ExprKind::kCompare && e.op == BinaryOp::kEq) return kSelEqConst;
  return kSelOther;
}

std::unique_ptr<Expr> AndChain(std::vector<std::unique_ptr<Expr>> conds) {
  std::unique_ptr<Expr> acc;
  for (auto& c : conds) {
    if (!acc) {
      acc = std::move(c);
    } else {
      acc = Expr::MakeBinary(ExprKind::kLogic, BinaryOp::kAnd, std::move(acc),
                             std::move(c));
    }
  }
  return acc;
}

struct DpEntry {
  bool valid = false;
  double cost = 0;
  double rows = 0;
  std::unique_ptr<PlanNode> node;
  bool uses_views = false;
  bool uses_indexes = false;
};

}  // namespace

std::string OptimizedPlan::Describe() const {
  std::string out = "Plan (est_cost=" + std::to_string(est_cost) +
                    ", est_rows=" + std::to_string(est_rows) + ")\n";
  if (root) out += root->Describe(1);
  for (const std::string& p : stale_paths) {
    out += "  stale (excluded): " + p + "\n";
  }
  return out;
}

Optimizer::Optimizer(const Catalog* catalog, std::string default_db)
    : catalog_(catalog), default_db_(std::move(default_db)) {}

void Optimizer::RegisterView(std::shared_ptr<ViewDefinition> view) {
  views_.push_back(std::move(view));
  // A new access path can change every plan; version fencing alone cannot
  // see it (registration is optimizer state, not a catalog commit).
  plan_cache_.Clear();
}

void Optimizer::RegisterIndex(std::shared_ptr<ViewIndex> index,
                              TableRef source, std::string key_attr,
                              std::vector<std::string> payload_attrs) {
  IndexEntry entry;
  entry.index = std::move(index);
  entry.source = std::move(source);
  entry.key_attr = ToLower(key_attr);
  for (std::string& a : payload_attrs) entry.payload_attrs.push_back(ToLower(a));
  indexes_.push_back(std::move(entry));
  plan_cache_.Clear();
}

Result<OptimizedPlan> Optimizer::Plan(const std::string& sql) const {
  return PlanInternal(sql, /*allow_resources=*/true);
}

Result<OptimizedPlan> Optimizer::PlanBaseline(const std::string& sql) const {
  return PlanInternal(sql, /*allow_resources=*/false);
}

namespace {

/// Collects the Sec. 6 access-path lines of a physical tree: one line per
/// ViewScan / IndexProbe, in left-to-right plan order.
void CollectAccessPaths(const PlanNode& node, std::vector<std::string>* out) {
  switch (node.kind) {
    case PlanNode::Kind::kViewScan: {
      std::string line = "view " + node.view_name + " answers {";
      for (size_t i = 0; i < node.covered_vars.size(); ++i) {
        if (i > 0) line += ", ";
        line += node.covered_vars[i];
      }
      line += "}, absorbed " + std::to_string(node.absorbed_conjuncts) +
              " predicate(s)";
      out->push_back(std::move(line));
      break;
    }
    case PlanNode::Kind::kIndexProbe:
      out->push_back(
          "index " + (node.index != nullptr ? node.index->name() : "?") +
          (node.probe_keyword.empty()
               ? " probed with key " + node.probe_key.ToString()
               : " probed with keyword '" + node.probe_keyword + "'"));
      break;
    case PlanNode::Kind::kJoin:
      if (node.left != nullptr) CollectAccessPaths(*node.left, out);
      if (node.right != nullptr) CollectAccessPaths(*node.right, out);
      break;
    case PlanNode::Kind::kTableScan:
      break;
  }
}

}  // namespace

Result<std::string> Optimizer::Explain(const std::string& sql) const {
  bool cache_hit = false;
  DV_ASSIGN_OR_RETURN(std::shared_ptr<const OptimizedPlan> chosen_sp,
                      PlanCached(sql, /*allow_resources=*/true, &cache_hit));
  const OptimizedPlan& chosen = *chosen_sp;
  DV_ASSIGN_OR_RETURN(OptimizedPlan baseline, PlanBaseline(sql));
  std::string out =
      cache_hit && chosen.snapshot != nullptr
          ? "plan: cached@v" + std::to_string(chosen.snapshot->version()) +
                "\n"
          : "plan: compiled fresh\n";
  out += "== chosen plan ==\n";
  out += chosen.Describe();
  out += "== access paths ==\n";
  std::vector<std::string> paths;
  if (chosen.root != nullptr) CollectAccessPaths(*chosen.root, &paths);
  if (paths.empty()) {
    out += "base tables only\n";
  } else {
    for (const std::string& p : paths) {
      out += p;
      out += '\n';
    }
  }
  // Static-analysis facts: why each registered view is NOT an access path
  // of the chosen plan. Stale fences (DV007) come from planning itself;
  // usability verdicts (DV004) re-run the analyzer's probe against the same
  // snapshot the plan was costed on.
  out += "== analysis ==\n";
  std::vector<std::string> facts;
  for (const std::string& p : chosen.stale_paths) {
    facts.push_back("warning DV007 [Sec. 6]: " + p +
                    " fenced off: stale materialization predates the pinned "
                    "snapshot");
  }
  if (chosen.snapshot != nullptr) {
    Analyzer analyzer(chosen.snapshot.get(), default_db_);
    for (const auto& view : views_) {
      const std::string name =
          (view->db_term().empty() ? std::string()
                                   : view->db_term().text + "::") +
          view->rel_term().text;
      bool reported_stale = false;
      for (const std::string& p : chosen.stale_paths) {
        if (p == "view " + name) reported_stale = true;
      }
      if (reported_stale) continue;
      bool used = false;
      for (const std::string& p : paths) {
        if (p.rfind("view " + name + " ", 0) == 0) used = true;
      }
      if (used) continue;
      if (view->IsAggregateView()) {
        facts.push_back("note: view " + name +
                        " is aggregate-defined; offered via Sec. 5.2 "
                        "re-aggregation, not as a scan path");
        continue;
      }
      Analyzer::UsabilityFact fact = analyzer.ProbeUsability(*view, sql);
      if (!fact.set_usable) {
        facts.push_back("note DV004 [Thm. 5.2/5.4]: view " + name +
                        " not usable for this query: " + fact.set_reason);
      } else {
        facts.push_back("note: view " + name +
                        " is usable but not chosen (cost-based decision)");
      }
    }
  }
  if (facts.empty()) {
    out += "no analysis facts\n";
  } else {
    for (const std::string& f : facts) {
      out += f;
      out += '\n';
    }
  }
  // Workload-level audit over the same snapshot the plan was costed on:
  // dependency-graph shape plus any cross-view redundancy findings
  // (DV100..DV103). Compact on purpose — the full report (edges, what-if) is
  // the `audit` server verb / dynview_audit CLI.
  out += "== audit ==\n";
  {
    std::vector<std::shared_ptr<ViewIndex>> audit_indexes;
    audit_indexes.reserve(indexes_.size());
    for (const IndexEntry& e : indexes_) audit_indexes.push_back(e.index);
    WorkloadAuditor auditor(
        chosen.snapshot != nullptr ? chosen.snapshot : catalog_->Snapshot(),
        default_db_, views_,
        WorkloadAuditor::DescribeIndexes(audit_indexes, default_db_));
    AuditReport audit = auditor.Audit();
    out += "nodes: " + std::to_string(audit.graph_stats.tables) +
           " table(s), " + std::to_string(audit.graph_stats.views) +
           " view(s), " + std::to_string(audit.graph_stats.indexes) +
           " index(es); edges: " + std::to_string(audit.graph_stats.edges) +
           "; cycles: " + std::to_string(audit.graph_stats.cycles) + "\n";
    if (audit.diagnostics.empty()) {
      out += "no workload findings\n";
    } else {
      out += RenderDiagnosticsText(audit.diagnostics);
    }
  }
  out += "== baseline (no view/index access paths) ==\n";
  out += baseline.Describe();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f",
                chosen.est_cost > 0 ? baseline.est_cost / chosen.est_cost
                                    : 1.0);
  out += "est_cost ratio baseline/chosen: ";
  out += buf;
  out += '\n';
  return out;
}

Result<OptimizedPlan> Optimizer::PlanInternal(const std::string& sql,
                                              bool allow_resources) const {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                      Parser::ParseSelect(sql));
  if (stmt->union_next != nullptr) {
    return Status::Unsupported("optimizer handles single-block queries");
  }
  // One catalog version for the whole planning pass: normalization, costing,
  // usability and translation all read `snap`, and the finished plan records
  // it so Execute sees the same data even with concurrent writers.
  std::shared_ptr<const CatalogSnapshot> snap = catalog_->Snapshot();
  std::vector<std::string> stale_paths;
  DV_ASSIGN_OR_RETURN(BoundQuery bq,
                      NormalizeQuery(stmt.get(), *snap, default_db_));
  if (bq.higher_order) {
    return Status::Unsupported(
        "optimizer input must be first order (a query on the integration)");
  }
  DV_ASSIGN_OR_RETURN(QueryInfo info, AnalyzeQuery(*stmt, bq, default_db_));
  const size_t n = info.tables.size();
  if (n == 0) return Status::InvalidArgument("no tables in FROM");
  if (n > kMaxTables) {
    return Status::Unsupported("too many tables for exhaustive DP");
  }

  // Variable → table index.
  std::map<std::string, size_t> table_of_var;
  std::map<std::string, size_t> table_index_by_tuple;
  for (size_t i = 0; i < n; ++i) {
    table_index_by_tuple[ToLower(info.tuple_vars[i])] = i;
  }
  for (const auto& [var, tuple] : info.tuple_of_domain) {
    auto it = table_index_by_tuple.find(tuple);
    if (it != table_index_by_tuple.end()) table_of_var[var] = it->second;
  }

  // Base-table cardinalities.
  std::vector<double> base_rows(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    Result<const Table*> t =
        snap->ResolveTable(info.tables[i].db, info.tables[i].rel);
    DV_RETURN_IF_ERROR(t.status());
    base_rows[i] = std::max<double>(1.0, t.value()->num_rows());
  }

  // Statistics-aware selectivity (Sec. 6 cost model ablation: compare with
  // the System-R constants via EnableStatistics).
  StatsCache stats(snap.get());
  std::map<std::string, std::string> attr_of_var;  // var → attr (lowercased).
  for (const auto& [tuple, attrs] : info.domain_of) {
    for (const auto& [attr, var] : attrs) attr_of_var[ToLower(var)] = attr;
  }
  auto column_stats = [&](const std::string& var_lower) -> const ColumnStats* {
    if (!use_stats_) return nullptr;
    auto t = table_of_var.find(var_lower);
    auto a = attr_of_var.find(var_lower);
    if (t == table_of_var.end() || a == attr_of_var.end()) return nullptr;
    const TableStats* ts = stats.Get(info.tables[t->second]);
    if (ts == nullptr) return nullptr;
    return ts->Find(a->second);
  };
  auto estimate = [&](const Expr& e) -> double {
    double naive = EstimateSelectivity(e);
    if (!use_stats_ || e.kind != ExprKind::kCompare) return naive;
    const Expr* var_side = nullptr;
    const Expr* const_side = nullptr;
    if (e.left->kind == ExprKind::kVarRef &&
        e.right->kind == ExprKind::kLiteral) {
      var_side = e.left.get();
      const_side = e.right.get();
    } else if (e.right->kind == ExprKind::kVarRef &&
               e.left->kind == ExprKind::kLiteral) {
      var_side = e.right.get();
      const_side = e.left.get();
    }
    if (var_side != nullptr) {
      const ColumnStats* cs = column_stats(ToLower(var_side->var_name));
      if (cs == nullptr) return naive;
      auto t = table_of_var.find(ToLower(var_side->var_name));
      size_t rows = t == table_of_var.end()
                        ? 0
                        : static_cast<size_t>(base_rows[t->second]);
      BinaryOp op = e.op;
      if (var_side == e.right.get()) {
        // Rewrite `c op x` as `x op' c`.
        switch (op) {
          case BinaryOp::kLess: op = BinaryOp::kGreater; break;
          case BinaryOp::kLessEq: op = BinaryOp::kGreaterEq; break;
          case BinaryOp::kGreater: op = BinaryOp::kLess; break;
          case BinaryOp::kGreaterEq: op = BinaryOp::kLessEq; break;
          default: break;
        }
      }
      switch (op) {
        case BinaryOp::kEq:
          return EqualitySelectivity(*cs, rows);
        case BinaryOp::kNotEq:
          return 1.0 - EqualitySelectivity(*cs, rows);
        case BinaryOp::kLess:
        case BinaryOp::kLessEq:
        case BinaryOp::kGreater:
        case BinaryOp::kGreaterEq:
          return RangeSelectivity(*cs, op, const_side->literal, naive);
        default:
          return naive;
      }
    }
    if (e.op == BinaryOp::kEq && e.left->kind == ExprKind::kVarRef &&
        e.right->kind == ExprKind::kVarRef) {
      return JoinSelectivity(column_stats(ToLower(e.left->var_name)),
                             column_stats(ToLower(e.right->var_name)),
                             kSelJoinEq);
    }
    return naive;
  };

  // Conjunct analysis.
  std::vector<ConjunctInfo> conjuncts;
  for (const Expr* c : info.conds) {
    ConjunctInfo ci;
    ci.expr = c;
    std::vector<std::string> refs;
    c->CollectVarRefs(&refs);
    for (const std::string& r : refs) {
      auto it = table_of_var.find(ToLower(r));
      if (it == table_of_var.end()) {
        ci.placeable = false;
      } else {
        ci.mask |= 1u << it->second;
      }
    }
    ci.selectivity = estimate(*c);
    conjuncts.push_back(ci);
  }
  auto internal_to = [&](uint32_t smask, const ConjunctInfo& ci) {
    return ci.placeable && ci.mask != 0 && (ci.mask & ~smask) == 0;
  };

  // Needed-outside(S): variables of S referenced by the answer or by
  // conjuncts not internal to S.
  auto needed_outside = [&](uint32_t smask) {
    std::set<std::string> needed;
    auto add_if_inside = [&](const std::string& var_lower) {
      auto it = table_of_var.find(var_lower);
      if (it != table_of_var.end() && ((1u << it->second) & smask) != 0) {
        needed.insert(var_lower);
      }
    };
    for (const std::string& v : info.needed_vars) add_if_inside(v);
    for (const ConjunctInfo& ci : conjuncts) {
      if (internal_to(smask, ci)) continue;
      std::vector<std::string> refs;
      ci.expr->CollectVarRefs(&refs);
      for (const std::string& r : refs) add_if_inside(ToLower(r));
    }
    return needed;
  };

  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  std::vector<DpEntry> dp(full + 1);

  auto consider = [&](uint32_t mask, DpEntry candidate) {
    DpEntry& best = dp[mask];
    if (!best.valid || candidate.cost < best.cost) best = std::move(candidate);
  };

  // ---- Seeds: table scans. -------------------------------------------------
  for (size_t i = 0; i < n; ++i) {
    uint32_t mask = 1u << i;
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanNode::Kind::kTableScan;
    node->table = info.tables[i];
    node->tuple_var = info.tuple_vars[i];
    // Emit every declared domain variable of the table.
    auto dit = info.domain_of.find(ToLower(info.tuple_vars[i]));
    if (dit != info.domain_of.end()) {
      for (const auto& [attr, var] : dit->second) {
        node->outputs.emplace_back(attr, var);
      }
    }
    double rows = base_rows[i];
    for (const ConjunctInfo& ci : conjuncts) {
      if (internal_to(mask, ci)) {
        node->filters.push_back(ci.expr->Clone());
        rows *= ci.selectivity;
      }
    }
    rows = std::max(rows, 1.0);
    node->est_rows = rows;
    node->est_cost = base_rows[i];
    DpEntry e;
    e.valid = true;
    e.cost = node->est_cost;
    e.rows = rows;
    e.node = std::move(node);
    consider(mask, std::move(e));
  }

  // ---- Seeds: index probes. ------------------------------------------------
  if (allow_resources) {
    for (const IndexEntry& entry : indexes_) {
      // Stale fence: the index was built before the source database's last
      // commit — probing it could answer from vanished rows. Fall back to
      // base-table paths and report the exclusion.
      if (snap->DatabaseVersion(entry.source.db) >
          entry.index->build_version()) {
        stale_paths.push_back("index " + entry.index->name());
        continue;
      }
      for (size_t i = 0; i < n; ++i) {
        if (!(info.tables[i] == entry.source)) continue;
        uint32_t mask = 1u << i;
        auto dit = info.domain_of.find(ToLower(info.tuple_vars[i]));
        if (dit == info.domain_of.end()) continue;
        auto kit = dit->second.find(entry.key_attr);
        if (kit == dit->second.end()) continue;
        const std::string key_var = ToLower(kit->second);
        // Find the probing conjunct: equality with a constant for B+-trees,
        // CONTAINS(key, 'word') for inverted indexes (the Fig. 9
        // unstructured predicate).
        const Expr* key_conjunct = nullptr;
        Value probe_key;
        std::string probe_keyword;
        for (const ConjunctInfo& ci : conjuncts) {
          if (!internal_to(mask, ci)) continue;
          const Expr* c = ci.expr;
          if (entry.index->method() == IndexMethod::kInverted) {
            // Only HASWORD has the word semantics of the inverted index;
            // substring CONTAINS could match inside longer words and the
            // probe would miss rows.
            if (c->kind != ExprKind::kHasWord) continue;
            if (c->left->kind == ExprKind::kVarRef &&
                ToLower(c->left->var_name) == key_var &&
                c->right->kind == ExprKind::kLiteral &&
                c->right->literal.kind() == TypeKind::kString) {
              key_conjunct = c;
              probe_keyword = ToLower(c->right->literal.as_string());
            }
            continue;
          }
          if (c->kind != ExprKind::kCompare || c->op != BinaryOp::kEq) continue;
          if (c->left->kind == ExprKind::kVarRef &&
              ToLower(c->left->var_name) == key_var &&
              c->right->kind == ExprKind::kLiteral) {
            key_conjunct = c;
            probe_key = c->right->literal;
          } else if (c->right->kind == ExprKind::kVarRef &&
                     ToLower(c->right->var_name) == key_var &&
                     c->left->kind == ExprKind::kLiteral) {
            key_conjunct = c;
            probe_key = c->left->literal;
          }
        }
        if (key_conjunct == nullptr) continue;
        // An inverted-index probe returns only rows whose key contains the
        // single word; multi-word patterns would need LookupAll — skip them.
        if (!probe_keyword.empty() &&
            TokenizeWords(probe_keyword).size() != 1) {
          continue;
        }
        // All other internal conjuncts and needed-later variables must be
        // computable from the payload.
        std::set<std::string> available;  // Variable names payload supplies.
        for (const std::string& attr : entry.payload_attrs) {
          auto ait = dit->second.find(attr);
          if (ait != dit->second.end()) available.insert(ToLower(ait->second));
        }
        bool feasible = true;
        auto node = std::make_unique<PlanNode>();
        double rows = base_rows[i] * kSelEqConst;
        for (const ConjunctInfo& ci : conjuncts) {
          if (!internal_to(mask, ci) || ci.expr == key_conjunct) continue;
          std::vector<std::string> refs;
          ci.expr->CollectVarRefs(&refs);
          for (const std::string& r : refs) {
            if (available.count(ToLower(r)) == 0) feasible = false;
          }
          if (!feasible) break;
          node->filters.push_back(ci.expr->Clone());
          rows *= ci.selectivity;
        }
        for (const std::string& v : needed_outside(mask)) {
          if (available.count(v) == 0) feasible = false;
        }
        if (!feasible) continue;
        node->kind = PlanNode::Kind::kIndexProbe;
        node->index = entry.index.get();
        node->probe_key = std::move(probe_key);
        node->probe_keyword = std::move(probe_keyword);
        for (const std::string& attr : entry.payload_attrs) {
          auto ait = dit->second.find(attr);
          if (ait != dit->second.end()) {
            node->outputs.emplace_back(attr, ait->second);
          }
        }
        rows = std::max(rows, 1.0);
        node->est_rows = rows;
        node->est_cost = std::log2(base_rows[i] + 2.0) + rows;
        DpEntry e;
        e.valid = true;
        e.cost = node->est_cost;
        e.rows = rows;
        e.node = std::move(node);
        e.uses_indexes = true;
        consider(mask, std::move(e));
      }
    }
  }

  // ---- Seeds: materialized views. -------------------------------------------
  if (allow_resources) {
    UsabilityChecker checker(snap.get(), default_db_);
    QueryTranslator translator(snap.get(), default_db_);
    for (const auto& view : views_) {
      // Stale fence: the materialization predates a commit to one of the
      // view's source databases. Answering from it would be answering
      // against no single catalog version, so the plan falls back to base
      // tables until the maintainer (or a re-materialization) catches up.
      if (view->IsStaleAgainst(*snap)) {
        stale_paths.push_back(
            "view " +
            (view->db_term().empty() ? std::string()
                                     : view->db_term().text + "::") +
            view->rel_term().text);
        continue;
      }
      // Enumerate cover sets: choose a query table for each view table.
      const auto& vtables = view->tables();
      std::vector<std::vector<size_t>> candidates(vtables.size());
      bool any_empty = false;
      for (size_t vi = 0; vi < vtables.size(); ++vi) {
        for (size_t i = 0; i < n; ++i) {
          if (info.tables[i] == vtables[vi]) candidates[vi].push_back(i);
        }
        if (candidates[vi].empty()) any_empty = true;
      }
      if (any_empty) continue;
      std::set<uint32_t> cover_masks;
      std::vector<size_t> pick(vtables.size(), 0);
      std::function<void(size_t, uint32_t)> enumerate = [&](size_t depth,
                                                            uint32_t mask) {
        if (depth == vtables.size()) {
          cover_masks.insert(mask);
          return;
        }
        for (size_t c : candidates[depth]) {
          enumerate(depth + 1, mask | (1u << c));
        }
      };
      enumerate(0, 0);

      for (uint32_t smask : cover_masks) {
        // Build the subquery Q_S.
        auto sub = std::make_unique<SelectStmt>();
        std::set<std::string> tuples_in;  // Lowercased.
        for (size_t i = 0; i < n; ++i) {
          if ((smask & (1u << i)) != 0) {
            tuples_in.insert(ToLower(info.tuple_vars[i]));
          }
        }
        for (const FromItem& f : stmt->from_items) {
          if (f.kind == FromItemKind::kTupleVar &&
              tuples_in.count(ToLower(f.var)) > 0) {
            sub->from_items.push_back(f.Clone());
          } else if (f.kind == FromItemKind::kDomainVar &&
                     tuples_in.count(ToLower(f.tuple)) > 0) {
            sub->from_items.push_back(f.Clone());
          }
        }
        std::set<std::string> outputs = needed_outside(smask);
        for (const std::string& v : outputs) {
          sub->select_list.emplace_back(Expr::MakeVarRef(v), v);
        }
        if (sub->select_list.empty()) {
          sub->select_list.emplace_back(Expr::MakeLiteral(Value::Int(1)),
                                        "one");
        }
        std::vector<std::unique_ptr<Expr>> internal;
        double residual_sel = 1.0;
        size_t internal_count = 0;
        for (const ConjunctInfo& ci : conjuncts) {
          if (internal_to(smask, ci)) {
            internal.push_back(ci.expr->Clone());
            ++internal_count;
          }
        }
        sub->where = AndChain(std::move(internal));

        // Usability: multiset unless the answer is duplicate-insensitive.
        bool relaxed = stmt->distinct;
        Result<BoundQuery> sbq = Binder::BindBranch(sub.get());
        if (!sbq.ok()) continue;
        Result<UsabilityResult> usable =
            relaxed ? checker.CheckSetUsable(*view, *sub, sbq.value())
                    : checker.CheckMultisetUsable(*view, *sub, sbq.value());
        if (!usable.ok() || !usable.value().usable) continue;

        // Translate, applying the view repeatedly to cover every table of S.
        std::unique_ptr<SelectStmt> current = sub->Clone();
        BoundQuery cbq = std::move(sbq).value();
        size_t covered = 0;
        size_t absorbed = 0;
        std::vector<std::string> covered_names;
        bool failed = false;
        while (covered < tuples_in.size()) {
          Result<UsabilityResult> u =
              relaxed ? checker.CheckSetUsable(*view, *current, cbq)
                      : checker.CheckMultisetUsable(*view, *current, cbq);
          if (!u.ok() || !u.value().usable) {
            failed = true;
            break;
          }
          Result<TranslationResult> tr =
              translator.Translate(*view, *current, cbq, u.value());
          if (!tr.ok()) {
            failed = true;
            break;
          }
          covered += tr.value().covered_tuple_vars.size();
          absorbed += tr.value().absorbed_conjuncts;
          for (const std::string& cv : tr.value().covered_tuple_vars) {
            covered_names.push_back(cv);
          }
          current = std::move(tr.value().query);
          Result<BoundQuery> rb = Binder::BindBranch(current.get());
          if (!rb.ok()) {
            failed = true;
            break;
          }
          cbq = std::move(rb).value();
        }
        if (failed || covered < tuples_in.size()) continue;

        // Estimate: scanning the materialization, residual filters applied.
        double mat_size = 1.0;
        {
          // Resolve the view's materialized location.
          std::string dbname = view->db_term().empty()
                                   ? default_db_
                                   : view->db_term().text;
          double total = 0;
          if (view->db_term().is_variable) {
            for (const std::string& db : snap->DatabaseNames()) {
              Result<const Database*> d = snap->GetDatabase(db);
              if (!d.ok()) continue;
              for (const std::string& rel : d.value()->TableNames()) {
                total += d.value()->GetTable(rel).value()->num_rows();
              }
            }
          } else {
            Result<const Database*> d = snap->GetDatabase(dbname);
            if (d.ok()) {
              if (view->rel_term().is_variable) {
                for (const std::string& rel : d.value()->TableNames()) {
                  total += d.value()->GetTable(rel).value()->num_rows();
                }
              } else if (d.value()->HasTable(view->rel_term().text)) {
                total +=
                    d.value()->GetTable(view->rel_term().text).value()->num_rows();
              }
            }
          }
          mat_size = std::max(total, 1.0);
        }
        for (const ConjunctInfo& ci : conjuncts) {
          if (internal_to(smask, ci)) residual_sel *= ci.selectivity;
        }
        // Conjuncts the view absorbed do not re-filter, but using the full
        // internal selectivity keeps the estimate conservative and simple.
        double rows = std::max(mat_size * residual_sel, 1.0);

        auto node = std::make_unique<PlanNode>();
        node->kind = PlanNode::Kind::kViewScan;
        node->view_name = (view->db_term().empty()
                               ? std::string()
                               : view->db_term().text + "::") +
                          view->rel_term().text;
        node->rewritten = std::move(current);
        node->covered_vars = covered_names;
        node->absorbed_conjuncts = absorbed;
        node->est_rows = rows;
        node->est_cost = mat_size;
        DpEntry e;
        e.valid = true;
        e.cost = node->est_cost;
        e.rows = rows;
        e.node = std::move(node);
        e.uses_views = true;
        (void)internal_count;
        consider(smask, std::move(e));
      }
    }
  }

  // ---- DP over joins. --------------------------------------------------------
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // Singletons seeded already.
    for (uint32_t sub = (mask - 1) & mask; sub != 0;
         sub = (sub - 1) & mask) {
      uint32_t other = mask & ~sub;
      if (sub > other) continue;  // Each split once.
      if (!dp[sub].valid || !dp[other].valid) continue;
      // Conjuncts newly applicable at this join.
      std::vector<std::unique_ptr<Expr>> conds;
      double sel = 1.0;
      for (const ConjunctInfo& ci : conjuncts) {
        if (!internal_to(mask, ci)) continue;
        if (internal_to(sub, ci) || internal_to(other, ci)) continue;
        sel *= ci.selectivity;
        conds.push_back(ci.expr->Clone());
      }
      double rows = dp[sub].rows * dp[other].rows * sel;
      rows = std::max(rows, 1.0);
      double cost =
          dp[sub].cost + dp[other].cost + dp[sub].rows + dp[other].rows + rows;
      if (dp[mask].valid && cost >= dp[mask].cost) continue;
      auto node = std::make_unique<PlanNode>();
      node->kind = PlanNode::Kind::kJoin;
      node->left = dp[sub].node->Clone();
      node->right = dp[other].node->Clone();
      node->join_conds = std::move(conds);
      node->est_rows = rows;
      node->est_cost = cost;
      DpEntry e;
      e.valid = true;
      e.cost = cost;
      e.rows = rows;
      e.node = std::move(node);
      e.uses_views = dp[sub].uses_views || dp[other].uses_views;
      e.uses_indexes = dp[sub].uses_indexes || dp[other].uses_indexes;
      consider(mask, std::move(e));
    }
  }

  if (!dp[full].valid) {
    return Status::Internal("dynamic programming failed to cover the query");
  }

  OptimizedPlan plan;
  plan.root = std::move(dp[full].node);
  plan.est_cost = dp[full].cost;
  plan.est_rows = dp[full].rows;
  plan.uses_views = dp[full].uses_views;
  plan.uses_indexes = dp[full].uses_indexes;
  plan.snapshot = snap;
  plan.stale_paths = std::move(stale_paths);

  // The final statement: original answer shape over the plan's output, plus
  // any conjuncts the plan could not place (constant-only or unplaceable).
  auto final_stmt = std::make_unique<SelectStmt>();
  final_stmt->distinct = stmt->distinct;
  for (const SelectItem& item : stmt->select_list) {
    final_stmt->select_list.push_back(item.Clone());
  }
  for (const auto& g : stmt->group_by) final_stmt->group_by.push_back(g->Clone());
  if (stmt->having) final_stmt->having = stmt->having->Clone();
  for (const OrderItem& o : stmt->order_by) {
    final_stmt->order_by.push_back(o.Clone());
  }
  std::vector<std::unique_ptr<Expr>> top;
  for (const ConjunctInfo& ci : conjuncts) {
    if (!ci.placeable || ci.mask == 0) top.push_back(ci.expr->Clone());
  }
  final_stmt->where = AndChain(std::move(top));
  FromItem scan;
  scan.kind = FromItemKind::kTupleVar;
  scan.rel = NameTerm("plan_rows");
  scan.var = "plan_rows";
  final_stmt->from_items.push_back(std::move(scan));
  plan.stmt = std::move(final_stmt);
  return plan;
}

Result<Table> Optimizer::Execute(const OptimizedPlan& plan) const {
  QueryEngine engine(catalog_, default_db_);
  // Execution reads the version the plan was costed against.
  QueryContext qc;
  qc.PinSnapshot(plan.snapshot);
  DV_ASSIGN_OR_RETURN(Table rows, plan.root->Execute(&engine, &qc));
  Catalog scratch;
  DV_RETURN_IF_ERROR(scratch.PutTable("sc", "plan_rows", std::move(rows)));
  QueryEngine top(&scratch, "sc");
  std::unique_ptr<SelectStmt> stmt = plan.stmt->Clone();
  return top.Execute(stmt.get());
}

Result<std::shared_ptr<const OptimizedPlan>> Optimizer::PlanCached(
    const std::string& sql, bool allow_resources, bool* cache_hit) const {
  if (cache_hit != nullptr) *cache_hit = false;
  // Parse failures surface exactly as PlanInternal would raise them — the
  // cache layer never changes an error message.
  DV_ASSIGN_OR_RETURN(QueryFingerprint fp,
                      FingerprintSql(sql, FingerprintMode::kExact));
  // Full normalized text, not the 64-bit hash: an FNV collision between
  // distinct queries must miss rather than serve the other query's plan.
  const std::string key = (allow_resources ? "r|" : "b|") + fp.normalized;
  const uint64_t version = catalog_->Snapshot()->version();
  std::shared_ptr<const OptimizedPlan> hit = plan_cache_.Lookup(key, version);
  if (hit != nullptr) {
    if (cache_hit != nullptr) *cache_hit = true;
    return hit;
  }
  DV_ASSIGN_OR_RETURN(OptimizedPlan plan, PlanInternal(sql, allow_resources));
  auto sp = std::make_shared<const OptimizedPlan>(std::move(plan));
  // Pin the entry to the version the plan was actually costed against (a
  // writer may have committed between our version read and planning).
  plan_cache_.Insert(
      key, sp->snapshot != nullptr ? sp->snapshot->version() : version, sp);
  return sp;
}

Result<Table> Optimizer::Run(const std::string& sql) const {
  DV_ASSIGN_OR_RETURN(std::shared_ptr<const OptimizedPlan> plan,
                      PlanCached(sql));
  return Execute(*plan);
}

}  // namespace dynview

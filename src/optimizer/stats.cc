#include "optimizer/stats.h"

#include <algorithm>
#include <unordered_set>

#include "common/str_util.h"

namespace dynview {

namespace {

std::optional<double> OrderableAsDouble(const Value& v) {
  if (v.is_numeric()) return v.NumericAsDouble();
  if (v.kind() == TypeKind::kDate) {
    return static_cast<double>(v.as_date().days_since_epoch());
  }
  return std::nullopt;
}

}  // namespace

TableStats TableStats::Compute(const Table& table) {
  TableStats stats;
  stats.num_rows = table.num_rows();
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    ColumnStats cs;
    std::unordered_set<size_t> hashes;  // Hash-based distinct (exact enough).
    std::vector<Value> reps;            // Verify collisions exactly.
    for (const Row& r : table.rows()) {
      const Value& v = r[c];
      if (v.is_null()) {
        ++cs.num_nulls;
        continue;
      }
      size_t h = v.GroupHash();
      if (hashes.insert(h).second) {
        reps.push_back(v);
      }
      std::optional<double> d = OrderableAsDouble(v);
      if (d.has_value()) {
        if (!cs.min.has_value() || *d < *cs.min) cs.min = d;
        if (!cs.max.has_value() || *d > *cs.max) cs.max = d;
      }
    }
    cs.num_distinct = reps.size();
    stats.columns[ToLower(table.schema().column(c).name)] = std::move(cs);
  }
  return stats;
}

const ColumnStats* TableStats::Find(const std::string& column) const {
  auto it = columns.find(ToLower(column));
  if (it == columns.end()) return nullptr;
  return &it->second;
}

const TableStats* StatsCache::Get(const TableRef& table) {
  auto key = std::make_pair(table.db, table.rel);
  auto it = cache_.find(key);
  if (it != cache_.end()) return &it->second;
  Result<const Table*> t = catalog_->ResolveTable(table.db, table.rel);
  if (!t.ok()) return nullptr;
  auto [inserted, ok] = cache_.emplace(key, TableStats::Compute(*t.value()));
  (void)ok;
  return &inserted->second;
}

double EqualitySelectivity(const ColumnStats& stats, size_t table_rows) {
  if (stats.num_distinct == 0 || table_rows == 0) return 1.0;
  return std::min(1.0, 1.0 / static_cast<double>(stats.num_distinct));
}

double RangeSelectivity(const ColumnStats& stats, BinaryOp op,
                        const Value& constant, double fallback) {
  std::optional<double> c =
      constant.is_numeric()
          ? std::optional<double>(constant.NumericAsDouble())
          : (constant.kind() == TypeKind::kDate
                 ? std::optional<double>(static_cast<double>(
                       constant.as_date().days_since_epoch()))
                 : std::nullopt);
  if (!c.has_value() || !stats.min.has_value() || !stats.max.has_value() ||
      *stats.max <= *stats.min) {
    return fallback;
  }
  double span = *stats.max - *stats.min;
  double frac;
  switch (op) {
    case BinaryOp::kLess:
    case BinaryOp::kLessEq:
      frac = (*c - *stats.min) / span;
      break;
    case BinaryOp::kGreater:
    case BinaryOp::kGreaterEq:
      frac = (*stats.max - *c) / span;
      break;
    default:
      return fallback;
  }
  return std::clamp(frac, 0.0, 1.0);
}

double JoinSelectivity(const ColumnStats* left, const ColumnStats* right,
                       double fallback) {
  size_t ndv = 0;
  if (left != nullptr) ndv = std::max(ndv, left->num_distinct);
  if (right != nullptr) ndv = std::max(ndv, right->num_distinct);
  if (ndv == 0) return fallback;
  return std::min(1.0, 1.0 / static_cast<double>(ndv));
}

}  // namespace dynview

#ifndef DYNVIEW_OPTIMIZER_OPTIMIZER_H_
#define DYNVIEW_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/translate.h"
#include "core/usability.h"
#include "core/view_definition.h"
#include "index/view_index.h"
#include "optimizer/plan.h"
#include "plan_cache/plan_cache.h"

namespace dynview {

/// The final optimized plan: a physical tree over access paths plus the
/// normalized statement whose projection/aggregation/ordering is applied on
/// top of the plan's output.
struct OptimizedPlan {
  std::unique_ptr<PlanNode> root;
  std::unique_ptr<SelectStmt> stmt;
  double est_cost = 0;
  double est_rows = 0;
  bool uses_views = false;
  bool uses_indexes = false;

  /// The catalog version the plan was costed against; Execute reads it, so
  /// plan-time and run-time see the same data even with concurrent writers.
  std::shared_ptr<const CatalogSnapshot> snapshot;

  /// View/index access paths that were *candidates* but excluded because
  /// their derived state predates a commit to a source database (stale
  /// fence). Non-empty means the plan fell back to base-table paths for
  /// those resources; callers surface this as a deterministic warning.
  std::vector<std::string> stale_paths;

  std::string Describe() const;
};

/// A Selinger-style dynamic-programming optimizer extended per Sec. 6 of the
/// paper: in addition to base-table scans, the initial access-path set
/// includes (a) view-described indexes and (b) materialized SQL/dynamic
/// views that pass the Thm. 5.2/5.4 usability test for a subquery. The
/// Chaudhuri-style bookkeeping — which tables and predicates each view
/// access answers — is exactly what Alg. 5.1's translation reports, so
/// dynamic views integrate without the optimizer understanding their
/// higher-order internals.
class Optimizer {
 public:
  /// `catalog` holds both the integration schema (queried tables) and the
  /// materializations of registered views.
  Optimizer(const Catalog* catalog, std::string default_db);

  /// Registers a materialized view as a candidate access path. The
  /// materialization must already exist in the catalog.
  void RegisterView(std::shared_ptr<ViewDefinition> view);

  /// Enables exact catalog statistics (distinct counts, min/max) for
  /// cardinality estimation instead of the System-R magic constants. Costs
  /// one scan per referenced table at first planning. Drops cached plans —
  /// they were costed under the other regime.
  void EnableStatistics(bool on = true) {
    use_stats_ = on;
    plan_cache_.Clear();
  }

  /// Registers a view-described index over `source` keyed on `key_attr`.
  /// The index payload columns must be attributes of `source` (the
  /// restricted defining-query shape `select T.a1,..,T.ak from source T`).
  void RegisterIndex(std::shared_ptr<ViewIndex> index, TableRef source,
                     std::string key_attr,
                     std::vector<std::string> payload_attrs);

  /// Plans an SPJ(+aggregation) query. Aggregation/DISTINCT/ORDER BY are
  /// applied above the join plan.
  Result<OptimizedPlan> Plan(const std::string& sql) const;

  /// Plans with view/index access paths disabled (the baseline optimizer —
  /// used by the Sec. 6 benchmarks to measure what the extension buys).
  Result<OptimizedPlan> PlanBaseline(const std::string& sql) const;

  /// Executes a plan: runs the physical tree, then the statement's
  /// projection/aggregation/ordering over its output.
  Result<Table> Execute(const OptimizedPlan& plan) const;

  /// Like Plan/PlanBaseline, but through the fingerprinted plan cache: the
  /// normalized query hash plus the catalog version key an immutable shared
  /// plan, so repeated traffic skips parse → normalize → DP search entirely.
  /// Entries pinned to an older catalog version die lazily at lookup, and
  /// RegisterView/RegisterIndex/EnableStatistics clear the cache (the
  /// access-path universe changed). `cache_hit` (optional) reports whether
  /// the plan was served from cache.
  Result<std::shared_ptr<const OptimizedPlan>> PlanCached(
      const std::string& sql, bool allow_resources = true,
      bool* cache_hit = nullptr) const;

  /// Cumulative hit/miss/eviction/invalidation counts of the plan cache.
  PlanCacheStats plan_cache_stats() const { return plan_cache_.Stats(); }

  /// Convenience: PlanCached + Execute.
  Result<Table> Run(const std::string& sql) const;

  /// EXPLAIN: plans `sql` twice — with and without view/index access paths —
  /// and renders the chosen physical tree, the Sec. 6 access paths it uses
  /// (which view/index answers which tuple variables, how many predicates
  /// each absorbed), and the estimated cost vs the baseline plan. Pure
  /// planning: nothing is executed.
  Result<std::string> Explain(const std::string& sql) const;

 private:
  struct IndexEntry {
    std::shared_ptr<ViewIndex> index;
    TableRef source;
    std::string key_attr;  // Lowercased.
    std::vector<std::string> payload_attrs;
  };

  Result<OptimizedPlan> PlanInternal(const std::string& sql,
                                     bool allow_resources) const;

  const Catalog* catalog_;
  std::string default_db_;
  bool use_stats_ = false;
  std::vector<std::shared_ptr<ViewDefinition>> views_;
  std::vector<IndexEntry> indexes_;
  /// Fingerprint+version keyed plans (OptimizedPlan is immutable once
  /// planned: Execute clones its stmt and never touches the tree). Mutable:
  /// caching is invisible to the const planning API.
  mutable ShardedLruCache<const OptimizedPlan> plan_cache_{64, 4};
};

}  // namespace dynview

#endif  // DYNVIEW_OPTIMIZER_OPTIMIZER_H_

#ifndef DYNVIEW_OPTIMIZER_PLAN_H_
#define DYNVIEW_OPTIMIZER_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/view_definition.h"
#include "engine/query_engine.h"
#include "index/view_index.h"
#include "relational/table.h"
#include "sql/ast.h"

namespace dynview {

/// A physical plan node. Every node produces a table whose columns are named
/// by the query's domain variables, so parent nodes compose by name.
///
/// Per Sec. 6 of the paper, materialized (dynamic) views and view-described
/// indexes are *primitive access paths*: a kViewScan node carries the
/// already-translated SQL/SchemaSQL subquery and the optimizer needs no
/// further knowledge of its higher-order internals — only the set of tables
/// and predicates it answers.
struct PlanNode {
  enum class Kind { kTableScan, kIndexProbe, kViewScan, kJoin };

  Kind kind = Kind::kTableScan;
  double est_rows = 0;
  double est_cost = 0;

  // kTableScan.
  TableRef table;
  std::string tuple_var;
  /// (attribute, output column name) pairs to emit.
  std::vector<std::pair<std::string, std::string>> outputs;
  /// Conjuncts applied at this node (column references are output names).
  std::vector<std::unique_ptr<Expr>> filters;

  // kIndexProbe (also uses `outputs`/`filters`). Exactly one of the probe
  // forms applies: an equality key (B+-tree) or a keyword (inverted index,
  // the Fig. 9 unstructured-predicate access path).
  const ViewIndex* index = nullptr;
  Value probe_key;
  std::string probe_keyword;

  // kViewScan.
  std::string view_name;
  /// The translated subquery shipped to the view's materialization.
  std::unique_ptr<SelectStmt> rewritten;
  /// Query tuple variables this access answers (Sec. 6 bookkeeping).
  std::vector<std::string> covered_vars;
  /// Number of query conjuncts absorbed by the view.
  size_t absorbed_conjuncts = 0;

  // kJoin (hash join on the equality conjuncts among `join_conds`, residual
  // conjuncts filtered afterwards).
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;
  std::vector<std::unique_ptr<Expr>> join_conds;

  std::unique_ptr<PlanNode> Clone() const;

  /// Multi-line plan rendering with cost/cardinality annotations.
  std::string Describe(int indent = 0) const;

  /// Executes the plan against `engine`'s catalog. When `qc` carries a
  /// pinned snapshot of that catalog, every scan and shipped subquery reads
  /// that one version (the version the plan was costed against).
  Result<Table> Execute(QueryEngine* engine, QueryContext* qc = nullptr) const;
};

}  // namespace dynview

#endif  // DYNVIEW_OPTIMIZER_PLAN_H_

#include "restructure/restructure.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/str_util.h"
#include "engine/operators.h"

namespace dynview {

namespace {

Result<int> RequireColumn(const Table& t, const std::string& name) {
  int idx = t.schema().IndexOf(name);
  if (idx < 0) {
    return Status::InvalidArgument("no column named '" + name + "'");
  }
  return idx;
}

}  // namespace

Result<std::vector<std::pair<std::string, Table>>> PartitionByColumn(
    const Table& in, const std::string& label_col) {
  DV_ASSIGN_OR_RETURN(int label_idx, RequireColumn(in, label_col));
  // Remaining columns, in order.
  std::vector<int> keep;
  std::vector<Column> keep_cols;
  for (size_t i = 0; i < in.schema().num_columns(); ++i) {
    if (static_cast<int>(i) == label_idx) continue;
    keep.push_back(static_cast<int>(i));
    keep_cols.push_back(in.schema().column(i));
  }
  std::map<std::string, Table> parts;  // Sorted by label.
  for (const Row& r : in.rows()) {
    const Value& label = r[label_idx];
    if (label.is_null()) {
      return Status::InvalidArgument(
          "NULL label cannot become a relation name");
    }
    std::string name = label.ToLabel();
    auto it = parts.find(name);
    if (it == parts.end()) {
      it = parts.emplace(name, Table(Schema(keep_cols))).first;
    }
    Row nr;
    nr.reserve(keep.size());
    for (int c : keep) nr.push_back(r[c]);
    it->second.AppendRowUnchecked(std::move(nr));
  }
  std::vector<std::pair<std::string, Table>> out;
  out.reserve(parts.size());
  for (auto& [name, table] : parts) out.emplace_back(name, std::move(table));
  return out;
}

Result<Table> Unite(const std::vector<std::pair<std::string, Table>>& parts,
                    const std::string& label_col_name) {
  if (parts.empty()) {
    return Status::InvalidArgument("Unite requires at least one part");
  }
  std::vector<Column> cols;
  cols.emplace_back(label_col_name, TypeKind::kString);
  for (const Column& c : parts[0].second.schema().columns()) cols.push_back(c);
  Table out{Schema(std::move(cols))};
  for (const auto& [name, part] : parts) {
    if (part.schema().num_columns() != parts[0].second.schema().num_columns()) {
      return Status::InvalidArgument("Unite parts have mismatched arity");
    }
    for (const Row& r : part.rows()) {
      Row nr;
      nr.reserve(r.size() + 1);
      nr.push_back(Value::String(name));
      nr.insert(nr.end(), r.begin(), r.end());
      out.AppendRowUnchecked(std::move(nr));
    }
  }
  return out;
}

Result<Table> Pivot(const Table& in, const std::vector<std::string>& group_cols,
                    const std::string& label_col, const std::string& value_col,
                    MetricsRegistry* metrics) {
  DV_ASSIGN_OR_RETURN(int label_idx, RequireColumn(in, label_col));
  DV_ASSIGN_OR_RETURN(int value_idx, RequireColumn(in, value_col));
  std::vector<int> group_idx;
  for (const std::string& g : group_cols) {
    DV_ASSIGN_OR_RETURN(int gi, RequireColumn(in, g));
    if (gi == label_idx || gi == value_idx) {
      return Status::InvalidArgument(
          "group column overlaps label/value column");
    }
    group_idx.push_back(gi);
  }

  if (metrics != nullptr) {
    // The documented Sec. 4.3 information loss: exact duplicate
    // (group, label, value) triples collapse to one under pivot⁻¹∘pivot.
    // Computed only when a registry is attached — the extra pass is pure
    // observability cost.
    std::unordered_map<Row, uint64_t, RowGroupHash, RowGroupEq> seen;
    uint64_t dropped = 0;
    for (const Row& r : in.rows()) {
      Row triple;
      triple.reserve(group_idx.size() + 2);
      for (int gi : group_idx) triple.push_back(r[gi]);
      triple.push_back(r[label_idx]);
      triple.push_back(r[value_idx]);
      if (++seen[std::move(triple)] > 1) ++dropped;
    }
    if (dropped > 0) {
      metrics->Add(counters::kPivotMultiplicityDropped, dropped);
    }
  }

  // Per-label projections (sorted labels).
  std::map<std::string, Table> per_label;
  std::vector<Column> part_cols;
  for (int gi : group_idx) part_cols.push_back(in.schema().column(gi));
  part_cols.emplace_back("__value", in.schema().column(value_idx).type);
  for (const Row& r : in.rows()) {
    const Value& label = r[label_idx];
    if (label.is_null()) {
      return Status::InvalidArgument(
          "NULL label cannot become an attribute name");
    }
    std::string name = label.ToLabel();
    auto it = per_label.find(name);
    if (it == per_label.end()) {
      it = per_label.emplace(name, Table(Schema(part_cols))).first;
    }
    Row nr;
    nr.reserve(group_idx.size() + 1);
    for (int gi : group_idx) nr.push_back(r[gi]);
    nr.push_back(r[value_idx]);
    it->second.AppendRowUnchecked(std::move(nr));
  }

  // Output schema: group columns then one column per label.
  std::vector<Column> out_cols;
  for (int gi : group_idx) out_cols.push_back(in.schema().column(gi));
  std::map<std::string, size_t> label_pos;  // Label → output column index.
  for (const auto& [name, unused] : per_label) {
    label_pos[name] = out_cols.size();
    out_cols.emplace_back(name, in.schema().column(value_idx).type);
  }
  Table acc{Schema(out_cols)};
  if (per_label.empty()) return acc;

  // Fast path: when every (group, label) pair carries at most one value the
  // full outer join degenerates to one output row per group key, fillable in
  // a single pass (the overwhelmingly common case; the Sec. 3.1 cross
  // product only arises on duplicated pairs).
  {
    std::unordered_map<Row, size_t, RowGroupHash, RowGroupEq> row_of;
    std::vector<Row> out_rows;
    bool duplicate_free = true;
    for (const Row& r : in.rows()) {
      Row key;
      key.reserve(group_idx.size());
      for (int gi : group_idx) key.push_back(r[gi]);
      bool group_has_null = false;
      for (const Value& v : key) {
        if (v.is_null()) group_has_null = true;
      }
      if (group_has_null) {
        // NULL group keys never join; keep the outer-join path's semantics.
        duplicate_free = false;
        break;
      }
      auto [it, inserted] = row_of.emplace(key, out_rows.size());
      if (inserted) {
        Row nr(out_cols.size(), Value::Null());
        for (size_t k = 0; k < key.size(); ++k) nr[k] = key[k];
        out_rows.push_back(std::move(nr));
      }
      size_t pos = label_pos[r[label_idx].ToLabel()];
      Row& target = out_rows[it->second];
      if (!target[pos].is_null()) {
        duplicate_free = false;  // Cross product needed; fall back.
        break;
      }
      target[pos] = r[value_idx];
    }
    if (duplicate_free) {
      for (Row& r : out_rows) acc.AppendRowUnchecked(std::move(r));
      return acc;
    }
    acc.Clear();
  }

  // Seed with the first label's projection, padded with NULLs for the other
  // label columns; then iteratively full-outer-join the rest on the group
  // key, coalescing the key columns (Sec. 3.1 ⊗ semantics).
  const size_t k = group_idx.size();
  size_t label_ordinal = 0;
  for (auto& [name, part] : per_label) {
    if (label_ordinal == 0) {
      for (const Row& r : part.rows()) {
        Row nr(out_cols.size(), Value::Null());
        for (size_t i = 0; i < k; ++i) nr[i] = r[i];
        nr[k] = r[k];
        acc.AppendRowUnchecked(std::move(nr));
      }
      ++label_ordinal;
      continue;
    }
    std::vector<int> acc_keys, part_keys;
    for (size_t i = 0; i < k; ++i) {
      acc_keys.push_back(static_cast<int>(i));
      part_keys.push_back(static_cast<int>(i));
    }
    DV_ASSIGN_OR_RETURN(Table joined,
                        FullOuterJoin(acc, part, acc_keys, part_keys));
    // joined columns: [acc (k + labels so far...)] ++ [part (k + value)].
    size_t acc_width = acc.schema().num_columns();
    Table next{Schema(out_cols)};
    next.Reserve(joined.num_rows());
    for (const Row& r : joined.rows()) {
      Row nr(out_cols.size(), Value::Null());
      // Coalesce group keys.
      for (size_t i = 0; i < k; ++i) {
        nr[i] = r[i].is_null() ? r[acc_width + i] : r[i];
      }
      // Earlier label columns.
      for (size_t i = k; i < acc_width; ++i) nr[i] = r[i];
      // This label's value.
      nr[k + label_ordinal] = r[acc_width + k];
      next.AppendRowUnchecked(std::move(nr));
    }
    acc = std::move(next);
    ++label_ordinal;
  }
  return acc;
}

Result<Table> Unpivot(const Table& in,
                      const std::vector<std::string>& group_cols,
                      const std::string& label_out,
                      const std::string& value_out) {
  std::vector<int> group_idx;
  std::vector<bool> is_group(in.schema().num_columns(), false);
  for (const std::string& g : group_cols) {
    DV_ASSIGN_OR_RETURN(int gi, RequireColumn(in, g));
    group_idx.push_back(gi);
    is_group[gi] = true;
  }
  std::vector<Column> out_cols;
  for (int gi : group_idx) out_cols.push_back(in.schema().column(gi));
  out_cols.emplace_back(label_out, TypeKind::kString);
  out_cols.emplace_back(value_out, TypeKind::kNull);
  Table out{Schema(std::move(out_cols))};
  for (const Row& r : in.rows()) {
    for (size_t c = 0; c < in.schema().num_columns(); ++c) {
      if (is_group[c]) continue;
      if (r[c].is_null()) continue;  // Outer-join padding disappears.
      Row nr;
      nr.reserve(group_idx.size() + 2);
      for (int gi : group_idx) nr.push_back(r[gi]);
      nr.push_back(Value::String(in.schema().column(c).name));
      nr.push_back(r[c]);
      out.AppendRowUnchecked(std::move(nr));
    }
  }
  return out;
}

Result<Table> PivotRoundTrip(const Table& in,
                             const std::vector<std::string>& group_cols,
                             const std::string& label_col,
                             const std::string& value_col,
                             MetricsRegistry* metrics) {
  DV_ASSIGN_OR_RETURN(Table pivoted,
                      Pivot(in, group_cols, label_col, value_col, metrics));
  return Unpivot(pivoted, group_cols, label_col, value_col);
}

Result<bool> PivotPreservesInstance(const Table& in,
                                    const std::vector<std::string>& group_cols,
                                    const std::string& label_col,
                                    const std::string& value_col) {
  DV_ASSIGN_OR_RETURN(Table back,
                      PivotRoundTrip(in, group_cols, label_col, value_col));
  // Compare as bags, modulo column order: rebuild `in` in the round-trip
  // column order (group..., label, value).
  std::vector<int> order;
  for (const std::string& g : group_cols) {
    DV_ASSIGN_OR_RETURN(int gi, RequireColumn(in, g));
    order.push_back(gi);
  }
  DV_ASSIGN_OR_RETURN(int li, RequireColumn(in, label_col));
  DV_ASSIGN_OR_RETURN(int vi, RequireColumn(in, value_col));
  order.push_back(li);
  order.push_back(vi);
  std::vector<std::string> names;
  for (int c : order) names.push_back(in.schema().column(c).name);
  DV_ASSIGN_OR_RETURN(Table reordered, ProjectColumns(in, order, names));
  return back.BagEquals(reordered);
}

Result<bool> PartitionPreservesInstance(const Table& in,
                                        const std::string& label_col) {
  DV_ASSIGN_OR_RETURN(auto parts, PartitionByColumn(in, label_col));
  if (parts.empty()) return in.num_rows() == 0;
  DV_ASSIGN_OR_RETURN(Table back, Unite(parts, label_col));
  // Reorder `in` so the label column is first, matching Unite's layout.
  DV_ASSIGN_OR_RETURN(int li, RequireColumn(in, label_col));
  std::vector<int> order{li};
  std::vector<std::string> names{in.schema().column(li).name};
  for (size_t c = 0; c < in.schema().num_columns(); ++c) {
    if (static_cast<int>(c) == li) continue;
    order.push_back(static_cast<int>(c));
    names.push_back(in.schema().column(c).name);
  }
  DV_ASSIGN_OR_RETURN(Table reordered, ProjectColumns(in, order, names));
  return back.BagEquals(reordered);
}

}  // namespace dynview

#ifndef DYNVIEW_RESTRUCTURE_RESTRUCTURE_H_
#define DYNVIEW_RESTRUCTURE_RESTRUCTURE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "observe/metrics.h"
#include "relational/table.h"

namespace dynview {

/// Standalone restructuring transformations between the schematically
/// heterogeneous layouts of Fig. 1 (and Sec. 4 of the paper). These are the
/// data-movement primitives that dynamic views induce:
///
///  * Partition / Unite  — horizontal: data values become relation names
///    (relation-variable views, Sec. 4.2). Information-capacity preserving.
///  * Pivot / Unpivot    — vertical: data values become attribute names
///    (attribute-variable views, Sec. 4.3). NOT capacity preserving: pivots
///    lose multiplicities (Figs. 12/14) and introduce NULL padding.

/// Splits `in` horizontally by the value of `label_col`: one output table per
/// distinct label (sorted), each with `label_col` projected away. This is the
/// s1 → s2 transformation of Fig. 1 (view v4 of Fig. 5).
Result<std::vector<std::pair<std::string, Table>>> PartitionByColumn(
    const Table& in, const std::string& label_col);

/// Inverse of PartitionByColumn: prepends a `label_col_name` column holding
/// each part's label and unions the parts (s2 → s1; view v2 of Fig. 2).
/// All parts must share the same schema arity; the first part's schema wins.
Result<Table> Unite(
    const std::vector<std::pair<std::string, Table>>& parts,
    const std::string& label_col_name);

/// Pivots `in` vertically: for each distinct value L of `label_col` a new
/// column named L is created holding `value_col`; rows agree on `group_cols`.
/// Semantics follow Sec. 3.1 of the paper exactly: the result is the full
/// outer join of the per-label projections on `group_cols`, so a group with
/// multiple rows for several labels produces their cross product, and labels
/// absent for a group yield NULL. This is the s1 → s3 transformation (view
/// v5 of Fig. 5). Column order: group_cols..., then labels sorted.
///
/// When `metrics` is non-null, records `pivot.multiplicity_dropped`: the
/// number of exact duplicate (group, label, value) triples beyond the first —
/// the multiplicities the round trip cannot recover (Fig. 12's collapse).
Result<Table> Pivot(const Table& in, const std::vector<std::string>& group_cols,
                    const std::string& label_col, const std::string& value_col,
                    MetricsRegistry* metrics = nullptr);

/// Unpivots: every column not in `group_cols` becomes a (label, value) pair;
/// NULL values are dropped (they are outer-join padding under the paper's
/// semantics). This is the s3 → s1 transformation (view v3 of Fig. 2).
Result<Table> Unpivot(const Table& in,
                      const std::vector<std::string>& group_cols,
                      const std::string& label_out,
                      const std::string& value_out);

/// Round-trips `in` through Pivot then Unpivot. Sec. 4.3 / Fig. 12: the
/// round trip is the identity exactly when the pivot loses no information;
/// duplicate (group, label, value) rows and cross-group duplicates collapse.
Result<Table> PivotRoundTrip(const Table& in,
                             const std::vector<std::string>& group_cols,
                             const std::string& label_col,
                             const std::string& value_col,
                             MetricsRegistry* metrics = nullptr);

/// True if Pivot is information-preserving *for this instance*: the round
/// trip returns the original bag. (Statically, attribute-variable
/// restructurings are never capacity preserving — Thm. discussion in
/// Sec. 4.3; this dynamic check identifies the instances that collide.)
Result<bool> PivotPreservesInstance(const Table& in,
                                    const std::vector<std::string>& group_cols,
                                    const std::string& label_col,
                                    const std::string& value_col);

/// Round-trips `in` through Partition then Unite and reports whether the bag
/// is preserved. Sec. 4.2: relation-variable restructuring is capacity
/// preserving, so this returns true for every instance whose label column is
/// NULL-free (NULL labels have no relation name to carry them).
Result<bool> PartitionPreservesInstance(const Table& in,
                                        const std::string& label_col);

}  // namespace dynview

#endif  // DYNVIEW_RESTRUCTURE_RESTRUCTURE_H_

#ifndef DYNVIEW_COMMON_STATUS_H_
#define DYNVIEW_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dynview {

/// Error category for a failed operation. Codes mirror the subsystems of the
/// library: parse errors come from the SQL front end, binding errors from the
/// analyzer, and so on. `kOk` means success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kBindError,
  kTypeError,
  kEvalError,
  kUnsupported,
  kInternal,
  // Query-guard and fault-tolerance codes (see common/query_context.h):
  kDeadlineExceeded,   // the query's deadline passed before completion
  kCancelled,          // cooperative cancellation was requested
  kResourceExhausted,  // a row/memory budget tripped
  kUnavailable,        // a source is (possibly transiently) unreachable
};

/// Returns a human-readable name for `code` (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// True for codes a retry can plausibly cure (a source that may come back).
/// Guard trips (deadline/cancel/budget) and semantic errors are permanent
/// for the current query and never retried or skipped.
inline bool IsTransient(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

/// Lightweight success-or-error result carrier used in place of exceptions
/// (the project follows the Google C++ guide, which forbids exceptions).
///
/// A `Status` is cheap to copy when OK (no allocation) and carries a code and
/// message otherwise. Functions that produce a value use `Result<T>` from
/// common/result.h instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given error `code` and `message`.
  /// `code` must not be kOk; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status EvalError(std::string msg) {
    return Status(StatusCode::kEvalError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Code: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace dynview

/// Propagates a non-OK `Status` to the caller. Usable only in functions whose
/// return type is convertible from `Status`.
#define DV_RETURN_IF_ERROR(expr)               \
  do {                                         \
    ::dynview::Status _dv_st = (expr);         \
    if (!_dv_st.ok()) return _dv_st;           \
  } while (0)

#endif  // DYNVIEW_COMMON_STATUS_H_

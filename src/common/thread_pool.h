#ifndef DYNVIEW_COMMON_THREAD_POOL_H_
#define DYNVIEW_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dynview {

/// A fixed-size worker pool shared by the execution engine (grounding
/// fan-out, morsel-driven operators, view partition materialisation).
///
/// The pool deliberately has no notion of task priorities or futures: the
/// engine's parallelism is fork/join-shaped, so `ParallelFor` — in which the
/// calling thread participates and which degrades to an inline serial loop
/// when nested — covers every use. Caller participation makes the pool
/// deadlock-free under nesting: even if every worker is busy, the caller
/// drains its own iteration space.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 is valid: every ParallelFor then
  /// runs inline, which is the `ExecConfig{num_threads=1}` serial mode).
  /// `max_queued` bounds the pending-task queue (backpressure; see
  /// TrySubmit); 0 = unbounded.
  explicit ThreadPool(size_t num_workers, size_t max_queued = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues `fn` for execution on some worker thread (unconditionally;
  /// ignores the queue cap — for work that MUST run).
  void Submit(std::function<void()> fn);

  /// Enqueues `fn` unless the queue already holds `max_queued` pending
  /// tasks; returns false (dropping `fn`) when full. ParallelFor submits
  /// its helpers through this, so a fan-out can never enqueue unbounded
  /// work: refused helpers just mean fewer threads drain the iteration
  /// space, never lost iterations.
  bool TrySubmit(std::function<void()> fn);

  /// True when the calling thread is a worker of any ThreadPool. Used to run
  /// nested parallel regions inline instead of flooding the queue.
  static bool OnWorkerThread();

  /// Instantaneous pending-task count (tasks queued, not yet claimed by a
  /// worker). Advisory by nature — the depth can change before the caller
  /// acts on it — but exact at the moment of the read. The query server
  /// reports it in kResourceExhausted shed responses so clients can tell
  /// pool backpressure ("queue 1024/1024") from a real execution error.
  size_t ApproxQueueDepth() const;

  /// The TrySubmit cap this pool was built with (0 = unbounded).
  size_t max_queued() const { return max_queued_; }

  /// Runs `fn(0) … fn(n-1)` across the workers plus the calling thread and
  /// returns when all iterations finished. Iterations are claimed from a
  /// shared counter, so completion order is nondeterministic — callers that
  /// need deterministic output write into index `i` of a pre-sized buffer
  /// and merge in index order afterwards. Runs inline when the pool has no
  /// workers, `n == 1`, or the caller is itself a pool worker.
  ///
  /// When `cancel` is non-null and becomes true, iterations claimed
  /// afterwards are skipped (counted complete without running `fn`), so a
  /// tripped query guard stops a fan-out within one morsel; the caller must
  /// check its guard/cancellation state before consuming per-iteration
  /// results, since skipped slots were never written.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const std::atomic<bool>* cancel = nullptr);

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  size_t max_queued_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace dynview

#endif  // DYNVIEW_COMMON_THREAD_POOL_H_

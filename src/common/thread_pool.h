#ifndef DYNVIEW_COMMON_THREAD_POOL_H_
#define DYNVIEW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dynview {

/// A fixed-size worker pool shared by the execution engine (grounding
/// fan-out, morsel-driven operators, view partition materialisation).
///
/// The pool deliberately has no notion of task priorities or futures: the
/// engine's parallelism is fork/join-shaped, so `ParallelFor` — in which the
/// calling thread participates and which degrades to an inline serial loop
/// when nested — covers every use. Caller participation makes the pool
/// deadlock-free under nesting: even if every worker is busy, the caller
/// drains its own iteration space.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 is valid: every ParallelFor then
  /// runs inline, which is the `ExecConfig{num_threads=1}` serial mode).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues `fn` for execution on some worker thread.
  void Submit(std::function<void()> fn);

  /// True when the calling thread is a worker of any ThreadPool. Used to run
  /// nested parallel regions inline instead of flooding the queue.
  static bool OnWorkerThread();

  /// Runs `fn(0) … fn(n-1)` across the workers plus the calling thread and
  /// returns when all iterations finished. Iterations are claimed from a
  /// shared counter, so completion order is nondeterministic — callers that
  /// need deterministic output write into index `i` of a pre-sized buffer
  /// and merge in index order afterwards. Runs inline when the pool has no
  /// workers, `n == 1`, or the caller is itself a pool worker.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dynview

#endif  // DYNVIEW_COMMON_THREAD_POOL_H_

#ifndef DYNVIEW_COMMON_RESULT_H_
#define DYNVIEW_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dynview {

/// Holds either a value of type `T` or an error `Status`, in the spirit of
/// `absl::StatusOr<T>` / `arrow::Result<T>`. Used pervasively since the
/// project does not use exceptions.
///
/// Usage:
///   Result<Table> r = Evaluate(query);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must be non-OK.
  Result(Status status)  // NOLINT: implicit by design, mirrors StatusOr.
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT: implicit by design, mirrors StatusOr.
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the held value. Must only be called when `ok()`.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dynview

/// Evaluates `expr` (a Result<T>), propagating errors; otherwise moves the
/// value into `lhs`. `lhs` may be a declaration ("auto x") or an lvalue.
#define DV_ASSIGN_OR_RETURN(lhs, expr)                   \
  DV_ASSIGN_OR_RETURN_IMPL(                              \
      DV_RESULT_CONCAT(_dv_result_, __LINE__), lhs, expr)

#define DV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

#define DV_RESULT_CONCAT_INNER(a, b) a##b
#define DV_RESULT_CONCAT(a, b) DV_RESULT_CONCAT_INNER(a, b)

#endif  // DYNVIEW_COMMON_RESULT_H_

#include "common/str_util.h"

#include <cctype>

namespace dynview {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

namespace {

bool LikeMatchImpl(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer algorithm with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  return LikeMatchImpl(text, pattern);
}

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      words.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(current);
  return words;
}

}  // namespace dynview

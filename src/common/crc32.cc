#include "common/crc32.h"

#include <mutex>

namespace dynview {

namespace {

constexpr uint32_t kPoly = 0xEDB88320u;  // Reflected IEEE polynomial.

struct Tables {
  uint32_t t[4][256];
};

const Tables& GetTables() {
  static Tables tables;
  static std::once_flag once;
  std::call_once(once, [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      tables.t[0][i] = crc;
    }
    // Slice tables: t[k][b] is the CRC of byte b followed by k zero bytes,
    // letting 4 bytes fold in per iteration.
    for (uint32_t i = 0; i < 256; ++i) {
      tables.t[1][i] = (tables.t[0][i] >> 8) ^ tables.t[0][tables.t[0][i] & 0xFFu];
      tables.t[2][i] = (tables.t[1][i] >> 8) ^ tables.t[0][tables.t[1][i] & 0xFFu];
      tables.t[3][i] = (tables.t[2][i] >> 8) ^ tables.t[0][tables.t[2][i] & 0xFFu];
    }
  });
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xFFu] ^ tb.t[2][(crc >> 8) & 0xFFu] ^
          tb.t[1][(crc >> 16) & 0xFFu] ^ tb.t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace dynview

#ifndef DYNVIEW_COMMON_FAILPOINT_H_
#define DYNVIEW_COMMON_FAILPOINT_H_

#include <string>

#include "common/status.h"

namespace dynview {

/// Behavior of an armed fail point.
enum class FailMode {
  kErrorOnce,    // fail the first matching evaluation, pass afterwards
  kErrorAlways,  // fail every matching evaluation
  kFailAfterN,   // pass the first N matching evaluations, fail afterwards
  kLatency,      // sleep `latency_ms` then pass (slow-source injection)
};

/// Configuration for one armed fail point.
struct FailSpec {
  FailMode mode = FailMode::kErrorAlways;

  /// Status code injected by the error modes. Defaults to kUnavailable so
  /// injected faults count as transient for SourcePolicy retry/skip.
  StatusCode code = StatusCode::kUnavailable;

  /// Substring filter on the evaluation's `detail` argument; empty matches
  /// everything. E.g. match "s2::ibm" to fail only that source relation.
  std::string match;

  /// kFailAfterN: evaluations that pass before failing starts.
  uint64_t after_n = 0;

  /// kLatency: injected delay per matching evaluation.
  int latency_ms = 0;
};

/// Process-wide registry of deterministic fault-injection points, wired into
/// catalog/source access ("catalog.resolve") and view grounding
/// ("engine.grounding"). Production cost when nothing is armed: one relaxed
/// atomic load per evaluation.
///
/// Points can also be armed from the DYNVIEW_FAILPOINTS environment
/// variable, parsed on first evaluation:
///
///   DYNVIEW_FAILPOINTS="catalog.resolve=error-always@s2::ibm;
///                       engine.grounding=latency(5);
///                       catalog.resolve=fail-after(3)"
///
/// Grammar per entry: `name=mode[(arg)][@match]` with modes error-once,
/// error-always, fail-after(N), latency(MS). Entries separated by ';'.
///
/// All methods are thread-safe (the registry is mutex-guarded; tests run
/// under TSan with points armed).
class FailPoints {
 public:
  /// Arms (or re-arms, resetting the hit counter) point `name`.
  static void Arm(const std::string& name, FailSpec spec);

  /// Disarms `name`; no-op when not armed.
  static void Disarm(const std::string& name);

  /// Disarms everything (test teardown).
  static void DisarmAll();

  /// Evaluates point `name` against `detail` (e.g. "db::rel" for source
  /// access). Returns the injected error, or OK after any injected latency.
  static Status Check(const std::string& name, const std::string& detail = "");

  /// Parses a DYNVIEW_FAILPOINTS-style spec string and arms each entry.
  /// Returns InvalidArgument naming the first malformed entry.
  static Status ArmFromString(const std::string& spec);

  /// True when at least one point is armed (after env parsing).
  static bool AnyArmed();

  /// Process-lifetime count of injected *errors* (latency injections don't
  /// count). Observability records per-query trips as a delta of this —
  /// catalog.resolve trips happen below the engine and have no other sink.
  static uint64_t TripCount();
};

}  // namespace dynview

#endif  // DYNVIEW_COMMON_FAILPOINT_H_

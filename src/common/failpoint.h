#ifndef DYNVIEW_COMMON_FAILPOINT_H_
#define DYNVIEW_COMMON_FAILPOINT_H_

#include <string>

#include "common/status.h"

namespace dynview {

/// Behavior of an armed fail point.
enum class FailMode {
  kErrorOnce,    // fail the first matching evaluation, pass afterwards
  kErrorAlways,  // fail every matching evaluation
  kFailAfterN,   // pass the first N matching evaluations, fail afterwards
  kLatency,      // sleep `latency_ms` then pass (slow-source injection)
  kTornWrite,    // storage points only: persist a truncated record, then fail
};

/// Configuration for one armed fail point.
struct FailSpec {
  FailMode mode = FailMode::kErrorAlways;

  /// Status code injected by the error modes. Defaults to kUnavailable so
  /// injected faults count as transient for SourcePolicy retry/skip.
  StatusCode code = StatusCode::kUnavailable;

  /// Substring filter on the evaluation's `detail` argument; empty matches
  /// everything. E.g. match "s2::ibm" to fail only that source relation.
  std::string match;

  /// kFailAfterN: evaluations that pass before failing starts.
  uint64_t after_n = 0;

  /// kLatency: injected delay per matching evaluation.
  int latency_ms = 0;

  /// kTornWrite: prefix bytes of the framed record the simulated crash
  /// leaves on disk (the torn tail recovery must truncate).
  uint64_t keep_bytes = 0;
};

/// Process-wide registry of deterministic fault-injection points, wired into
/// catalog/source access ("catalog.resolve") and view grounding
/// ("engine.grounding"). Production cost when nothing is armed: one relaxed
/// atomic load per evaluation.
///
/// Points can also be armed from the DYNVIEW_FAILPOINTS environment
/// variable, parsed on first evaluation:
///
///   DYNVIEW_FAILPOINTS="catalog.resolve=error-always@s2::ibm;
///                       engine.grounding=latency(5);
///                       catalog.resolve=fail-after(3)"
///
/// Grammar per entry: `name=mode[(arg)][@match]` with modes error-once,
/// error-always, fail-after(N), latency(MS), torn-write(KEEP_BYTES).
/// Entries separated by ';'.
///
/// All methods are thread-safe (the registry is mutex-guarded; tests run
/// under TSan with points armed).
class FailPoints {
 public:
  /// Arms (or re-arms, resetting the hit counter) point `name`.
  static void Arm(const std::string& name, FailSpec spec);

  /// Disarms `name`; no-op when not armed.
  static void Disarm(const std::string& name);

  /// Disarms everything (test teardown).
  static void DisarmAll();

  /// Evaluates point `name` against `detail` (e.g. "db::rel" for source
  /// access). Returns the injected error, or OK after any injected latency.
  /// A point armed in torn-write mode passes here — only the storage layer's
  /// CheckTornWrite consumes it (ordinary checks can't half-write anything).
  static Status Check(const std::string& name, const std::string& detail = "");

  /// Storage-only evaluation of the torn-write mode: when `name` is armed
  /// as torn-write and `detail` matches, fires once (the point disarms
  /// itself — one simulated crash per arm) and returns the number of framed
  /// bytes the caller must persist before failing. Returns -1 when the point
  /// is not armed in torn-write mode or the detail does not match.
  static int64_t CheckTornWrite(const std::string& name,
                                const std::string& detail = "");

  /// Parses a DYNVIEW_FAILPOINTS-style spec string and arms each entry.
  /// Returns InvalidArgument naming the first malformed entry.
  static Status ArmFromString(const std::string& spec);

  /// True when at least one point is armed (after env parsing).
  static bool AnyArmed();

  /// Process-lifetime count of injected *errors* (latency injections don't
  /// count). Observability records per-query trips as a delta of this —
  /// catalog.resolve trips happen below the engine and have no other sink.
  static uint64_t TripCount();
};

}  // namespace dynview

#endif  // DYNVIEW_COMMON_FAILPOINT_H_

#ifndef DYNVIEW_COMMON_EXEC_CONFIG_H_
#define DYNVIEW_COMMON_EXEC_CONFIG_H_

#include <cstddef>
#include <thread>

namespace dynview {

/// Execution knobs threaded through QueryEngine (and from there into the
/// operators and the view materializer).
struct ExecConfig {
  /// Total parallelism including the calling thread. 0 = one per hardware
  /// thread; 1 = fully serial evaluation (the pre-parallel behavior, kept
  /// for debugging and as the determinism baseline).
  size_t num_threads = 0;

  /// Morsel granularity: operator inputs at or below this row count run
  /// serially, larger inputs are split into ~this many rows per task.
  /// Serial-vs-parallel is a pure performance decision — results are
  /// bag-identical either way.
  size_t morsel_rows = 2048;

  /// Backpressure cap on the engine pool's task queue: an adversarial
  /// grounding fan-out cannot enqueue unbounded work — once the queue holds
  /// this many pending tasks, further helper submissions are refused and
  /// the submitting ParallelFor drains its iterations on the threads
  /// already running (correctness never depends on helpers being queued).
  /// 0 = unbounded.
  size_t max_queued_tasks = 1024;

  /// When true (default) and the query carries an observer, the engine
  /// records operator spans and counters into it. Opt out for benchmark
  /// baselines; with no observer attached the cost is one null check either
  /// way.
  bool enable_trace = true;

  /// When true (default) the engine flattens predicates, join keys and
  /// projections into compiled flat-op programs (engine/expr_compile.h)
  /// before running an operator, falling back per expression to the
  /// interpreted tree walk when a tree is not compilable. Purely a
  /// performance decision: compiled and interpreted output is byte-identical
  /// (the determinism suite's compiled label enforces it). Off = the
  /// pre-compilation interpreter everywhere, kept as the differential
  /// baseline.
  bool compile_expressions = true;

  size_t ResolvedThreads() const {
    if (num_threads > 0) return num_threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }
};

}  // namespace dynview

#endif  // DYNVIEW_COMMON_EXEC_CONFIG_H_

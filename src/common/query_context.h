#ifndef DYNVIEW_COMMON_QUERY_CONTEXT_H_
#define DYNVIEW_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dynview {

struct QueryObserver;    // observe/observer.h — trace + metrics bundle.
class CatalogSnapshot;   // relational/catalog.h — one pinned catalog version.
class ExprProgramCache;  // engine/expr_compile.h — compiled-program memo.

/// What to do when a data source (one grounding of a local-as-view fan-out)
/// fails with a transient error (kUnavailable):
///
///   kFailFast      — propagate the first failure; the query fails whole.
///   kRetry         — re-evaluate the grounding with exponential backoff up
///                    to `QueryGuards::max_retries` times, then propagate.
///   kSkipAndReport — drop the grounding's contribution and record a
///                    SourceWarning; the query returns a partial result.
///
/// Non-transient errors (parse/bind/type/guard trips) always fail fast:
/// each source contributes an independent view, so only its *availability*
/// is negotiable — never the query's semantics.
enum class SourcePolicy { kFailFast, kRetry, kSkipAndReport };

/// One omitted contribution of a partial result: which source/grounding was
/// skipped and the error that caused it. Warnings with the same (source,
/// status code, status message) are deduplicated at the AnswerResult
/// boundary — `count` records how many occurrences the entry stands for, so
/// grounding fan-out width does not change warning output.
struct SourceWarning {
  std::string source;
  Status status;
  uint64_t count = 1;
};

/// In-place dedup: collapses adjacent-or-not entries with identical
/// (source, status code, status message) into the first occurrence,
/// summing counts. Preserves first-occurrence order, so a deterministic
/// input order stays deterministic.
void DedupSourceWarnings(std::vector<SourceWarning>* warnings);

/// Per-query limits and degradation policy. Zero/negative values mean
/// "unlimited" so a default-constructed QueryGuards guards nothing.
struct QueryGuards {
  /// Wall-clock deadline relative to QueryContext construction; < 0 = none.
  /// 0 trips at the first guard check.
  int64_t deadline_ms = -1;

  /// Maximum rows any single operator pipeline may produce (scans, joins,
  /// cross products, grounding unions all charge against it); 0 = unlimited.
  uint64_t row_budget = 0;

  /// Approximate memory budget in bytes (charged as rows × columns ×
  /// sizeof(Value) — a floor, not an exact footprint); 0 = unlimited.
  uint64_t byte_budget = 0;

  SourcePolicy source_policy = SourcePolicy::kFailFast;

  /// kRetry: additional attempts after the first failure.
  int max_retries = 2;

  /// kRetry: backoff before attempt k is `retry_backoff_ms << (k-1)`.
  int retry_backoff_ms = 1;

  /// kRetry: how to spend the backoff. Null means a real
  /// std::this_thread::sleep_for; tests and the chaos harness inject a
  /// recording hook so retry schedules are asserted deterministically
  /// without wall-clock sleeps. Called with the backoff in milliseconds,
  /// possibly concurrently from pool workers (one call per retry).
  std::function<void(int)> retry_sleep;
};

/// Shared, thread-safe guard state for one query execution: a deadline, a
/// cooperative cancellation flag, row/byte budgets with atomic accounting,
/// and the warning list a degraded (partial) result carries.
///
/// The engine threads a borrowed `QueryContext*` through ExecContext into
/// every operator loop; a null pointer is the unguarded fast path (one
/// branch). Guard checks are designed for morsel granularity: `CheckGuards`
/// is two relaxed atomic loads when nothing tripped and no deadline is set,
/// plus one clock read when one is.
///
/// The first guard trip wins: `Trip` records the status once and flips the
/// cancellation flag, so sibling pool tasks observe it within one morsel
/// (ThreadPool::ParallelFor skips still-unclaimed iterations) instead of
/// letting the fan-out run dry. Later trips return the original status.
class QueryContext {
 public:
  QueryContext() : QueryContext(QueryGuards{}) {}
  explicit QueryContext(const QueryGuards& guards);

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  const QueryGuards& guards() const { return guards_; }

  /// Requests cooperative cancellation (callable from any thread). Running
  /// work observes it at its next guard check.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// The raw flag, for ThreadPool::ParallelFor's iteration skipping.
  const std::atomic<bool>* cancel_flag() const { return &cancelled_; }

  /// Returns OK or the Status the query must fail with: the first trip if
  /// one happened, else kCancelled if cancellation was requested, else
  /// kDeadlineExceeded if the deadline passed (tripping it).
  Status CheckGuards();

  /// Charges `rows` output rows of width `columns` against the row and byte
  /// budgets; trips kResourceExhausted (and returns it) on exhaustion.
  /// Call once per morsel/batch, not per row.
  Status ChargeRows(uint64_t rows, uint64_t columns);

  /// Records `s` as the query's terminal guard status (first writer wins)
  /// and cancels sibling work. Returns the winning status.
  Status Trip(Status s);

  uint64_t rows_charged() const {
    return rows_charged_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_charged() const {
    return bytes_charged_.load(std::memory_order_relaxed);
  }

  /// Degradation bookkeeping. To keep warnings deterministic across thread
  /// counts, callers add them from the deterministic (declaration-order)
  /// merge on the driving thread, never from pool workers directly.
  void AddWarning(SourceWarning w);
  std::vector<SourceWarning> warnings() const;

  /// Pins the catalog version every read of this query must observe. Set by
  /// the driving thread before execution starts (AnswerGuarded, or the
  /// engine itself when unset); the engine threads it into ExecContext so
  /// grounding enumeration, operator scans, the optimizer and the
  /// materializer all read this one version. The pin also keeps the
  /// snapshot's refcount alive for the query's duration.
  void PinSnapshot(std::shared_ptr<const CatalogSnapshot> snapshot) {
    snapshot_ = std::move(snapshot);
  }
  const std::shared_ptr<const CatalogSnapshot>& snapshot() const {
    return snapshot_;
  }

  /// Borrowed observability sink (trace + metrics), owned by whoever runs
  /// the query (integration::AnswerGuarded, a test, a bench). Null means
  /// "don't observe" — the engine checks once per ExecContext it builds.
  void set_observer(QueryObserver* observer) { observer_ = observer; }
  QueryObserver* observer() const { return observer_; }

  /// The compiled-program memo this query's plan carries. Set by the plan
  /// cache on a hit so every execution of the cached plan — including every
  /// grounding of its higher-order fan-out — reuses the programs compiled
  /// the first time. Null means the engine falls back to its own
  /// per-engine cache.
  void set_expr_programs(std::shared_ptr<ExprProgramCache> programs) {
    expr_programs_ = std::move(programs);
  }
  const std::shared_ptr<ExprProgramCache>& expr_programs() const {
    return expr_programs_;
  }

 private:
  const QueryGuards guards_;
  const bool has_deadline_;
  const std::chrono::steady_clock::time_point deadline_;

  std::atomic<bool> cancelled_{false};
  std::atomic<bool> tripped_{false};
  std::atomic<uint64_t> rows_charged_{0};
  std::atomic<uint64_t> bytes_charged_{0};

  mutable std::mutex mu_;  // Guards trip_status_ and warnings_ (rare paths).
  Status trip_status_;
  std::vector<SourceWarning> warnings_;
  QueryObserver* observer_ = nullptr;
  std::shared_ptr<const CatalogSnapshot> snapshot_;
  std::shared_ptr<ExprProgramCache> expr_programs_;
};

}  // namespace dynview

#endif  // DYNVIEW_COMMON_QUERY_CONTEXT_H_

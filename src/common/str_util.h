#ifndef DYNVIEW_COMMON_STR_UTIL_H_
#define DYNVIEW_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dynview {

/// Returns `s` lowercased (ASCII only; SQL identifiers are ASCII).
std::string ToLower(std::string_view s);

/// Returns `s` uppercased (ASCII only).
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality, used for SQL keywords and identifiers.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `haystack` contains `needle` (case sensitive).
bool Contains(std::string_view haystack, std::string_view needle);

/// True if `haystack` contains `needle`, ignoring ASCII case. Used by the
/// keyword-search machinery (Fig. 9 of the paper).
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// SQL LIKE pattern match: '%' matches any run, '_' any single character.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Tokenizes `text` into lowercase alphanumeric words (for inverted indexes).
std::vector<std::string> TokenizeWords(std::string_view text);

}  // namespace dynview

#endif  // DYNVIEW_COMMON_STR_UTIL_H_

#include "common/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/str_util.h"

namespace dynview {

namespace {

struct ArmedPoint {
  FailSpec spec;
  uint64_t hits = 0;  // Matching evaluations so far (guarded by the mutex).
};

struct Registry {
  std::atomic<int> armed_count{0};
  std::atomic<uint64_t> trips{0};
  std::once_flag env_once;
  std::mutex mu;
  std::unordered_map<std::string, ArmedPoint> points;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // Leaked: outlives all threads.
  return *r;
}

void ParseEnvOnce(Registry& r) {
  std::call_once(r.env_once, [&r] {
    const char* env = std::getenv("DYNVIEW_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') {
      // Malformed env entries are ignored rather than fatal: fault
      // injection must never take down a production binary by itself.
      FailPoints::ArmFromString(env).ok();
    }
  });
}

/// Parses one `mode[(arg)]` chunk into `spec`; false on malformed input.
bool ParseMode(const std::string& mode_str, FailSpec* spec) {
  std::string mode = mode_str;
  std::string arg;
  size_t open = mode_str.find('(');
  if (open != std::string::npos) {
    if (mode_str.back() != ')') return false;
    mode = mode_str.substr(0, open);
    arg = mode_str.substr(open + 1, mode_str.size() - open - 2);
  }
  if (mode == "error-once") {
    spec->mode = FailMode::kErrorOnce;
  } else if (mode == "error-always") {
    spec->mode = FailMode::kErrorAlways;
  } else if (mode == "fail-after") {
    spec->mode = FailMode::kFailAfterN;
    if (arg.empty()) return false;
    spec->after_n = std::strtoull(arg.c_str(), nullptr, 10);
  } else if (mode == "latency") {
    spec->mode = FailMode::kLatency;
    if (arg.empty()) return false;
    spec->latency_ms = static_cast<int>(std::strtol(arg.c_str(), nullptr, 10));
  } else if (mode == "torn-write") {
    spec->mode = FailMode::kTornWrite;
    if (arg.empty()) return false;
    spec->keep_bytes = std::strtoull(arg.c_str(), nullptr, 10);
  } else {
    return false;
  }
  return true;
}

}  // namespace

void FailPoints::Arm(const std::string& name, FailSpec spec) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto [it, inserted] = r.points.insert_or_assign(name, ArmedPoint{spec, 0});
  (void)it;
  if (inserted) r.armed_count.fetch_add(1, std::memory_order_relaxed);
}

void FailPoints::Disarm(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.points.erase(name) > 0) {
    r.armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoints::DisarmAll() {
  Registry& r = GetRegistry();
  // Mark the env as consumed so a later Check doesn't resurrect points a
  // test teardown just cleared.
  std::call_once(r.env_once, [] {});
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
  r.armed_count.store(0, std::memory_order_relaxed);
}

uint64_t FailPoints::TripCount() {
  return GetRegistry().trips.load(std::memory_order_relaxed);
}

bool FailPoints::AnyArmed() {
  Registry& r = GetRegistry();
  ParseEnvOnce(r);
  return r.armed_count.load(std::memory_order_relaxed) > 0;
}

Status FailPoints::Check(const std::string& name, const std::string& detail) {
  Registry& r = GetRegistry();
  ParseEnvOnce(r);
  if (r.armed_count.load(std::memory_order_relaxed) == 0) return Status::OK();

  int sleep_ms = 0;
  Status injected = Status::OK();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.points.find(name);
    if (it == r.points.end()) return Status::OK();
    ArmedPoint& point = it->second;
    const FailSpec& spec = point.spec;
    if (!spec.match.empty() && detail.find(spec.match) == std::string::npos) {
      return Status::OK();
    }
    uint64_t hit = point.hits++;
    bool fail = false;
    switch (spec.mode) {
      case FailMode::kErrorOnce:
        fail = hit == 0;
        break;
      case FailMode::kErrorAlways:
        fail = true;
        break;
      case FailMode::kFailAfterN:
        fail = hit >= spec.after_n;
        break;
      case FailMode::kLatency:
        sleep_ms = spec.latency_ms;
        break;
      case FailMode::kTornWrite:
        // Only CheckTornWrite consumes torn-write arms: an ordinary check
        // has no partial record to leave behind, so it passes untouched.
        --point.hits;
        break;
    }
    if (fail) {
      r.trips.fetch_add(1, std::memory_order_relaxed);
      injected = Status(spec.code, "failpoint '" + name + "' injected " +
                                       StatusCodeName(spec.code) +
                                       (detail.empty() ? "" : " at " + detail));
    }
  }
  // Sleep outside the lock so latency injection on one point never stalls
  // evaluations of other points.
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return injected;
}

int64_t FailPoints::CheckTornWrite(const std::string& name,
                                   const std::string& detail) {
  Registry& r = GetRegistry();
  ParseEnvOnce(r);
  if (r.armed_count.load(std::memory_order_relaxed) == 0) return -1;
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end()) return -1;
  const FailSpec& spec = it->second.spec;
  if (spec.mode != FailMode::kTornWrite) return -1;
  if (!spec.match.empty() && detail.find(spec.match) == std::string::npos) {
    return -1;
  }
  int64_t keep = static_cast<int64_t>(spec.keep_bytes);
  // One simulated crash per arm: the point disarms itself, so recovery code
  // running after the "crash" never re-tears its own repair writes.
  r.points.erase(it);
  r.armed_count.fetch_sub(1, std::memory_order_relaxed);
  r.trips.fetch_add(1, std::memory_order_relaxed);
  return keep;
}

Status FailPoints::ArmFromString(const std::string& spec_string) {
  for (const std::string& raw : Split(spec_string, ';')) {
    std::string entry(Trim(raw));
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed failpoint entry: " + entry);
    }
    std::string name(Trim(entry.substr(0, eq)));
    std::string rhs(Trim(entry.substr(eq + 1)));
    FailSpec spec;
    size_t at = rhs.find('@');
    if (at != std::string::npos) {
      spec.match = std::string(Trim(rhs.substr(at + 1)));
      rhs = std::string(Trim(rhs.substr(0, at)));
    }
    if (!ParseMode(rhs, &spec)) {
      return Status::InvalidArgument("malformed failpoint mode: " + entry);
    }
    Arm(name, spec);
  }
  return Status::OK();
}

}  // namespace dynview

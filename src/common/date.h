#ifndef DYNVIEW_COMMON_DATE_H_
#define DYNVIEW_COMMON_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace dynview {

/// Calendar date stored as days since the Unix epoch (1970-01-01). The stock
/// examples in the paper quantify over dates ("T1.date = T2.date + 1"), so
/// dates must support ordered comparison and integer arithmetic.
class Date {
 public:
  Date() : days_(0) {}
  explicit Date(int32_t days_since_epoch) : days_(days_since_epoch) {}

  /// Builds a date from a civil triple. `year` is the full year (e.g. 1998),
  /// `month` in [1,12], `day` in [1,31]. Invalid triples yield an error.
  static Result<Date> FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD" or the paper's "M/D/YY" / "M/D/YYYY" shorthand.
  /// Two-digit years are interpreted in [1970, 2069] to match the paper's
  /// 1/1/98-style literals.
  static Result<Date> Parse(std::string_view text);

  int32_t days_since_epoch() const { return days_; }

  /// Returns the date `n` days after this one.
  Date AddDays(int32_t n) const { return Date(days_ + n); }

  /// Formats as "YYYY-MM-DD".
  std::string ToString() const;

  /// Decomposes into a civil triple.
  void ToYmd(int* year, int* month, int* day) const;

  friend bool operator==(const Date& a, const Date& b) {
    return a.days_ == b.days_;
  }
  friend auto operator<=>(const Date& a, const Date& b) {
    return a.days_ <=> b.days_;
  }

 private:
  int32_t days_;
};

}  // namespace dynview

#endif  // DYNVIEW_COMMON_DATE_H_

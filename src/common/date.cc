#include "common/date.h"

#include <cstdio>

namespace dynview {

namespace {

// Days-from-civil algorithm (Howard Hinnant's public-domain formulation).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y_out, int* m_out, int* d_out) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *y_out = static_cast<int>(y + (m <= 2));
  *m_out = static_cast<int>(m);
  *d_out = static_cast<int>(d);
}

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

Result<Date> Date::FromYmd(int year, int month, int day) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " + std::to_string(month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range: " + std::to_string(day));
  }
  return Date(static_cast<int32_t>(DaysFromCivil(year, month, day)));
}

Result<Date> Date::Parse(std::string_view text) {
  int a = 0, b = 0, c = 0;
  char sep1 = 0, sep2 = 0;
  std::string buf(text);
  if (std::sscanf(buf.c_str(), "%d%c%d%c%d", &a, &sep1, &b, &sep2, &c) == 5 &&
      sep1 == sep2 && (sep1 == '-' || sep1 == '/')) {
    if (sep1 == '-') {
      // YYYY-MM-DD.
      return FromYmd(a, b, c);
    }
    // M/D/YY or M/D/YYYY.
    int year = c;
    if (year < 100) year += (year < 70) ? 2000 : 1900;
    return FromYmd(year, a, b);
  }
  return Status::ParseError("unparseable date: '" + buf + "'");
}

std::string Date::ToString() const {
  int y, m, d;
  ToYmd(&y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

void Date::ToYmd(int* year, int* month, int* day) const {
  CivilFromDays(days_, year, month, day);
}

}  // namespace dynview

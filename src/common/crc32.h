#ifndef DYNVIEW_COMMON_CRC32_H_
#define DYNVIEW_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dynview {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// guarding every durable byte the storage layer writes: snapshot sections
/// and WAL records (docs/ARCHITECTURE.md "Durability & recovery"). The
/// implementation is slice-by-4: four 256-entry tables let the hot loop
/// consume 4 input bytes per iteration instead of 1.
///
/// Known vectors (asserted in tests/common_test.cc):
///   Crc32("123456789") == 0xCBF43926
///   Crc32("")          == 0x00000000
///   Crc32("abc")       == 0x352441C2
///
/// `seed` continues a previous computation: Crc32(ab) ==
/// Crc32(b, len_b, Crc32(a, len_a)). Thread-safe (tables are built once on
/// first use, under std::call_once).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(const std::string& s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace dynview

#endif  // DYNVIEW_COMMON_CRC32_H_

#include "common/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

namespace dynview {

namespace {
thread_local bool t_on_worker_thread = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_workers, size_t max_queued)
    : max_queued_(max_queued) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_queued_ > 0 && queue_.size() >= max_queued_) return false;
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
  return true;
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

size_t ThreadPool::ApproxQueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             const std::atomic<bool>* cancel) {
  if (n == 0) return;
  if (n == 1 || workers_.empty() || OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) {
      // Inline loops honor cancellation too: skipped iterations mirror the
      // parallel path (the caller checks its guard before consuming slots).
      if (cancel == nullptr || !cancel->load(std::memory_order_relaxed)) {
        fn(i);
      }
    }
    return;
  }
  // Shared by the caller and the helper tasks; the helpers may outlive this
  // call (a queued helper that starts after all iterations are claimed finds
  // next >= n and exits without touching anything else).
  struct Batch {
    Batch(const std::function<void(size_t)>& f, const std::atomic<bool>* c)
        : fn(f), cancel(c) {}
    std::function<void(size_t)> fn;
    const std::atomic<bool>* cancel;
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;  // Guarded by mu.
  };
  auto batch = std::make_shared<Batch>(fn, cancel);
  const size_t total = n;
  auto drain = [batch, total] {
    size_t ran = 0;
    for (size_t i; (i = batch->next.fetch_add(1)) < total; ++ran) {
      // Iterations claimed after cancellation complete without running:
      // the first guard trip stops sibling tasks within one morsel.
      if (batch->cancel == nullptr ||
          !batch->cancel->load(std::memory_order_relaxed)) {
        batch->fn(i);
      }
    }
    if (ran > 0) {
      std::lock_guard<std::mutex> lock(batch->mu);
      batch->done += ran;
      if (batch->done == total) batch->cv.notify_all();
    }
  };
  // Helpers are pure go-faster stripes: a refused submission (backpressure
  // cap reached) only means the iteration space drains on fewer threads.
  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    if (!TrySubmit(drain)) break;
  }
  drain();  // The caller participates.
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] { return batch->done == total; });
}

}  // namespace dynview

#include "common/thread_pool.h"

#include <atomic>
#include <memory>
#include <utility>

namespace dynview {

namespace {
thread_local bool t_on_worker_thread = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty() || OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared by the caller and the helper tasks; the helpers may outlive this
  // call (a queued helper that starts after all iterations are claimed finds
  // next >= n and exits without touching anything else).
  struct Batch {
    explicit Batch(const std::function<void(size_t)>& f) : fn(f) {}
    std::function<void(size_t)> fn;
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;  // Guarded by mu.
  };
  auto batch = std::make_shared<Batch>(fn);
  const size_t total = n;
  auto drain = [batch, total] {
    size_t ran = 0;
    for (size_t i; (i = batch->next.fetch_add(1)) < total; ++ran) {
      batch->fn(i);
    }
    if (ran > 0) {
      std::lock_guard<std::mutex> lock(batch->mu);
      batch->done += ran;
      if (batch->done == total) batch->cv.notify_all();
    }
  };
  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) Submit(drain);
  drain();  // The caller participates.
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] { return batch->done == total; });
}

}  // namespace dynview

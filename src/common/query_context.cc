#include "common/query_context.h"

namespace dynview {

QueryContext::QueryContext(const QueryGuards& guards)
    : guards_(guards),
      has_deadline_(guards.deadline_ms >= 0),
      deadline_(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(
                    has_deadline_ ? guards.deadline_ms : 0)) {}

Status QueryContext::CheckGuards() {
  if (tripped_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    return trip_status_;
  }
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Trip(Status::Cancelled("query cancelled"));
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Trip(Status::DeadlineExceeded(
        "query deadline of " + std::to_string(guards_.deadline_ms) +
        " ms exceeded"));
  }
  return Status::OK();
}

Status QueryContext::ChargeRows(uint64_t rows, uint64_t columns) {
  uint64_t total =
      rows_charged_.fetch_add(rows, std::memory_order_relaxed) + rows;
  if (guards_.row_budget > 0 && total > guards_.row_budget) {
    return Trip(Status::ResourceExhausted(
        "row budget of " + std::to_string(guards_.row_budget) +
        " exhausted (" + std::to_string(total) + " rows produced)"));
  }
  // Approximate cell cost: a Value is a small tagged union (~32 bytes
  // inline); string payloads make this a floor, which is what a budget
  // needs. common/ cannot see relational/Value, so the constant lives here.
  constexpr uint64_t kBytesPerCell = 32;
  uint64_t bytes = rows * (columns == 0 ? 1 : columns) * kBytesPerCell;
  uint64_t btotal =
      bytes_charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (guards_.byte_budget > 0 && btotal > guards_.byte_budget) {
    return Trip(Status::ResourceExhausted(
        "memory budget of " + std::to_string(guards_.byte_budget) +
        " bytes exhausted (~" + std::to_string(btotal) + " bytes produced)"));
  }
  return Status::OK();
}

Status QueryContext::Trip(Status s) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!tripped_.load(std::memory_order_relaxed)) {
      trip_status_ = std::move(s);
      tripped_.store(true, std::memory_order_release);
    }
    s = trip_status_;
  }
  // First trip cancels sibling tasks: a parallel fan-out stops claiming
  // work instead of running every remaining grounding/morsel to completion.
  cancelled_.store(true, std::memory_order_relaxed);
  return s;
}

void QueryContext::AddWarning(SourceWarning w) {
  std::lock_guard<std::mutex> lock(mu_);
  warnings_.push_back(std::move(w));
}

std::vector<SourceWarning> QueryContext::warnings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return warnings_;
}

void DedupSourceWarnings(std::vector<SourceWarning>* warnings) {
  std::vector<SourceWarning> out;
  out.reserve(warnings->size());
  for (SourceWarning& w : *warnings) {
    bool merged = false;
    for (SourceWarning& kept : out) {
      if (kept.source == w.source && kept.status.code() == w.status.code() &&
          kept.status.message() == w.status.message()) {
        kept.count += w.count;
        merged = true;
        break;
      }
    }
    if (!merged) out.push_back(std::move(w));
  }
  *warnings = std::move(out);
}

}  // namespace dynview

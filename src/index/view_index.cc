#include "index/view_index.h"

#include <algorithm>

#include "sql/parser.h"

namespace dynview {

Result<ViewIndex> ViewIndex::BuildSql(const std::string& create_index_sql,
                                      QueryEngine* engine) {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<CreateIndexStmt> stmt,
                      Parser::ParseCreateIndex(create_index_sql));
  return Build(*stmt, engine);
}

Result<ViewIndex> ViewIndex::Build(const CreateIndexStmt& stmt,
                                   QueryEngine* engine) {
  if (stmt.given.size() != 1) {
    return Status::Unsupported("exactly one GIVEN key expression is supported");
  }
  ViewIndex index;
  index.name_ = stmt.name;
  index.method_ = stmt.method;
  index.definition_ = stmt.ToString();
  // Captured before evaluating: a racing commit can only make the index
  // look conservatively stale, never newer than the data it indexed.
  index.build_version_ = engine->catalog().version();

  // Evaluate the defining query with the key expression prepended, so the
  // key is column 0 of the materialized contents.
  std::unique_ptr<CreateIndexStmt> clone = stmt.Clone();
  auto body = std::move(clone->query);
  SelectItem key_item(std::move(clone->given[0]), "xx_key");
  body->select_list.insert(body->select_list.begin(), std::move(key_item));
  DV_ASSIGN_OR_RETURN(index.contents_, engine->Execute(body.get()));

  if (stmt.method == IndexMethod::kBtree) {
    DV_ASSIGN_OR_RETURN(BTreeIndex bt,
                        BTreeIndex::Build(index.contents_, "xx_key"));
    index.btree_ = std::make_unique<BTreeIndex>(std::move(bt));
  } else {
    DV_ASSIGN_OR_RETURN(
        InvertedIndex inv,
        InvertedIndex::BuildKeyed(index.contents_, "xx_key", "xx_key"));
    index.inverted_ = std::make_unique<InvertedIndex>(std::move(inv));
  }
  return index;
}

Result<ViewIndex> ViewIndex::Restore(const std::string& name,
                                     IndexMethod method,
                                     const std::string& definition,
                                     uint64_t build_version, Table contents) {
  if (contents.schema().num_columns() == 0 ||
      contents.schema().columns()[0].name != "xx_key") {
    return Status::InvalidArgument(
        "restored index contents must carry the key as column 0 (xx_key)");
  }
  ViewIndex index;
  index.name_ = name;
  index.method_ = method;
  index.definition_ = definition;
  index.build_version_ = build_version;
  index.contents_ = std::move(contents);
  if (method == IndexMethod::kBtree) {
    DV_ASSIGN_OR_RETURN(BTreeIndex bt,
                        BTreeIndex::Build(index.contents_, "xx_key"));
    index.btree_ = std::make_unique<BTreeIndex>(std::move(bt));
  } else {
    DV_ASSIGN_OR_RETURN(
        InvertedIndex inv,
        InvertedIndex::BuildKeyed(index.contents_, "xx_key", "xx_key"));
    index.inverted_ = std::make_unique<InvertedIndex>(std::move(inv));
  }
  return index;
}

Table ViewIndex::RowsFor(const std::vector<int64_t>& row_ids) const {
  // Payload schema: contents without the key column.
  std::vector<Column> cols(contents_.schema().columns().begin() + 1,
                           contents_.schema().columns().end());
  Table out{Schema(std::move(cols))};
  out.Reserve(row_ids.size());
  for (int64_t id : row_ids) {
    const Row& r = contents_.row(static_cast<size_t>(id));
    out.AppendRowUnchecked(Row(r.begin() + 1, r.end()));
  }
  return out;
}

Result<Table> ViewIndex::Probe(const Value& key) const {
  if (btree_ == nullptr) {
    return Status::InvalidArgument("Probe on a non-btree index");
  }
  return RowsFor(btree_->Lookup(key));
}

Result<Table> ViewIndex::ProbeRange(const std::optional<Value>& lo,
                                    bool lo_inclusive,
                                    const std::optional<Value>& hi,
                                    bool hi_inclusive) const {
  if (btree_ == nullptr) {
    return Status::InvalidArgument("ProbeRange on a non-btree index");
  }
  return RowsFor(btree_->Range(lo, lo_inclusive, hi, hi_inclusive));
}

Result<Table> ViewIndex::ProbeKeyword(const std::string& word) const {
  if (inverted_ == nullptr) {
    return Status::InvalidArgument("ProbeKeyword on a non-inverted index");
  }
  std::vector<int64_t> ids;
  for (const auto& p : inverted_->Lookup(word)) ids.push_back(p.row_id);
  // De-duplicate (a word may occur in several cells of one row... the key is
  // a single column here, but stay defensive).
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return RowsFor(ids);
}

}  // namespace dynview

#ifndef DYNVIEW_INDEX_VIEW_INDEX_H_
#define DYNVIEW_INDEX_VIEW_INDEX_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "engine/query_engine.h"
#include "index/btree.h"
#include "index/inverted_index.h"
#include "relational/table.h"
#include "sql/ast.h"

namespace dynview {

/// An index whose contents are described by a (possibly higher-order) view —
/// the paper's Sec. 1.1.3 physical-data-independence mechanism, in the
/// spirit of GMAPs (Tsatalos et al.) extended with dynamic views:
///
///   create index ticketInfr as btree by given T.infr
///     select R, T.tnum, T.lic from -> R, R T            (Fig. 4)
///   create index keywords as inverted by given value
///     select T.hid, T.attribute from hotelwords T       (Fig. 9)
///
/// Because the defining query may quantify over relation names, a single
/// B+-tree can span a data-dependent union of tables — the structure SQL
/// views cannot express (the limitation of [37] the paper lifts).
class ViewIndex {
 public:
  /// Evaluates the defining query against `engine` and builds the physical
  /// structure. The GIVEN expressions are evaluated per result row as the
  /// key; exactly one GIVEN expression is supported.
  static Result<ViewIndex> Build(const CreateIndexStmt& stmt,
                                 QueryEngine* engine);

  /// Parses and builds (convenience).
  static Result<ViewIndex> BuildSql(const std::string& create_index_sql,
                                    QueryEngine* engine);

  /// Reconstructs an index from persisted state (storage recovery): the
  /// materialized `contents` (key prepended as column 0, as Build left
  /// them) plus the recorded `build_version`. The physical structure is
  /// rebuilt from the rows — only the logical payload is stored on disk.
  static Result<ViewIndex> Restore(const std::string& name,
                                   IndexMethod method,
                                   const std::string& definition,
                                   uint64_t build_version, Table contents);

  const std::string& name() const { return name_; }
  IndexMethod method() const { return method_; }

  /// The materialized payload rows (the defining query's select list), with
  /// the key prepended as column 0.
  const Table& contents() const { return contents_; }

  /// B+-tree probe: payload rows whose key equals `key`.
  Result<Table> Probe(const Value& key) const;

  /// B+-tree range probe; unset bounds are open.
  Result<Table> ProbeRange(const std::optional<Value>& lo, bool lo_inclusive,
                           const std::optional<Value>& hi,
                           bool hi_inclusive) const;

  /// Inverted probe: payload rows whose key text contains `word`.
  Result<Table> ProbeKeyword(const std::string& word) const;

  /// The SchemaSQL definition text (for catalogs and EXPLAIN output).
  std::string definition() const { return definition_; }

  /// The catalog version the defining query was evaluated against, captured
  /// before the build's evaluation — so a commit racing the build can only
  /// make the index look *older* (conservatively stale), never newer than
  /// its data. The optimizer fences probes once any source database has
  /// committed past this version.
  uint64_t build_version() const { return build_version_; }

 private:
  ViewIndex() = default;

  Table RowsFor(const std::vector<int64_t>& row_ids) const;

  std::string name_;
  IndexMethod method_ = IndexMethod::kBtree;
  std::string definition_;
  uint64_t build_version_ = 0;
  Table contents_;
  std::unique_ptr<BTreeIndex> btree_;
  std::unique_ptr<InvertedIndex> inverted_;
};

}  // namespace dynview

#endif  // DYNVIEW_INDEX_VIEW_INDEX_H_

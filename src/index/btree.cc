#include "index/btree.h"

#include <algorithm>

namespace dynview {

namespace {

bool KeyLess(const Value& a, const Value& b) {
  return Value::TotalOrderCompare(a, b) < 0;
}

bool KeyEq(const Value& a, const Value& b) {
  return Value::TotalOrderCompare(a, b) == 0;
}

}  // namespace

BTreeIndex::BTreeIndex(int fanout) : fanout_(std::max(fanout, 3)) {
  root_ = std::make_unique<Node>();
}

Status BTreeIndex::Insert(const Value& key, int64_t row_id) {
  if (key.is_null()) {
    return Status::InvalidArgument("NULL keys are not indexed");
  }
  std::optional<SplitResult> split = InsertInto(root_.get(), key, row_id);
  if (split.has_value()) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->keys.push_back(std::move(split->separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  ++num_entries_;
  return Status::OK();
}

std::optional<BTreeIndex::SplitResult> BTreeIndex::InsertInto(
    Node* node, const Value& key, int64_t row_id) {
  if (node->is_leaf) {
    auto it = std::lower_bound(
        node->entries.begin(), node->entries.end(), key,
        [](const LeafEntry& e, const Value& k) { return KeyLess(e.key, k); });
    if (it != node->entries.end() && KeyEq(it->key, key)) {
      it->row_ids.push_back(row_id);
      return std::nullopt;
    }
    LeafEntry entry;
    entry.key = key;
    entry.row_ids.push_back(row_id);
    node->entries.insert(it, std::move(entry));
    if (static_cast<int>(node->entries.size()) <= fanout_) return std::nullopt;
    // Split the leaf.
    size_t mid = node->entries.size() / 2;
    auto right = std::make_unique<Node>();
    right->is_leaf = true;
    right->entries.assign(std::make_move_iterator(node->entries.begin() + mid),
                          std::make_move_iterator(node->entries.end()));
    node->entries.resize(mid);
    right->next_leaf = node->next_leaf;
    node->next_leaf = right.get();
    SplitResult result;
    result.separator = right->entries.front().key;
    result.right = std::move(right);
    return result;
  }
  // Internal node: descend.
  size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key,
                              [](const Value& k, const Value& nk) {
                                return KeyLess(k, nk);
                              }) -
             node->keys.begin();
  std::optional<SplitResult> split =
      InsertInto(node->children[i].get(), key, row_id);
  if (!split.has_value()) return std::nullopt;
  node->keys.insert(node->keys.begin() + i, std::move(split->separator));
  node->children.insert(node->children.begin() + i + 1,
                        std::move(split->right));
  if (static_cast<int>(node->keys.size()) <= fanout_) return std::nullopt;
  // Split the internal node: middle key moves up.
  size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>();
  right->is_leaf = false;
  SplitResult result;
  result.separator = std::move(node->keys[mid]);
  right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                     std::make_move_iterator(node->keys.end()));
  right->children.assign(
      std::make_move_iterator(node->children.begin() + mid + 1),
      std::make_move_iterator(node->children.end()));
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  result.right = std::move(right);
  return result;
}

const BTreeIndex::Node* BTreeIndex::FindLeaf(const Value& key) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key,
                                [](const Value& k, const Value& nk) {
                                  return KeyLess(k, nk);
                                }) -
               node->keys.begin();
    node = node->children[i].get();
  }
  return node;
}

std::vector<int64_t> BTreeIndex::Lookup(const Value& key) const {
  std::vector<int64_t> out;
  if (key.is_null()) return out;
  const Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), key,
      [](const LeafEntry& e, const Value& k) { return KeyLess(e.key, k); });
  if (it != leaf->entries.end() && KeyEq(it->key, key)) return it->row_ids;
  return out;
}

std::vector<int64_t> BTreeIndex::Range(const std::optional<Value>& lo,
                                       bool lo_inclusive,
                                       const std::optional<Value>& hi,
                                       bool hi_inclusive) const {
  std::vector<int64_t> out;
  // Locate the starting leaf.
  const Node* leaf;
  if (lo.has_value()) {
    leaf = FindLeaf(*lo);
  } else {
    const Node* node = root_.get();
    while (!node->is_leaf) node = node->children.front().get();
    leaf = node;
  }
  for (; leaf != nullptr; leaf = leaf->next_leaf) {
    for (const LeafEntry& e : leaf->entries) {
      if (lo.has_value()) {
        int c = Value::TotalOrderCompare(e.key, *lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (hi.has_value()) {
        int c = Value::TotalOrderCompare(e.key, *hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return out;
      }
      out.insert(out.end(), e.row_ids.begin(), e.row_ids.end());
    }
  }
  return out;
}

size_t BTreeIndex::num_keys() const {
  size_t n = 0;
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) {
    n += leaf->entries.size();
  }
  return n;
}

int BTreeIndex::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

Status BTreeIndex::CheckNode(const Node* node, int depth,
                             int leaf_depth) const {
  if (node->is_leaf) {
    if (depth != leaf_depth) {
      return Status::Internal("leaves at different depths");
    }
    for (size_t i = 1; i < node->entries.size(); ++i) {
      if (!KeyLess(node->entries[i - 1].key, node->entries[i].key)) {
        return Status::Internal("leaf keys out of order");
      }
    }
    if (static_cast<int>(node->entries.size()) > fanout_) {
      return Status::Internal("leaf overflow");
    }
    return Status::OK();
  }
  if (node->children.size() != node->keys.size() + 1) {
    return Status::Internal("internal node arity mismatch");
  }
  if (static_cast<int>(node->keys.size()) > fanout_) {
    return Status::Internal("internal overflow");
  }
  for (size_t i = 1; i < node->keys.size(); ++i) {
    if (!KeyLess(node->keys[i - 1], node->keys[i])) {
      return Status::Internal("internal keys out of order");
    }
  }
  for (const auto& child : node->children) {
    DV_RETURN_IF_ERROR(CheckNode(child.get(), depth + 1, leaf_depth));
  }
  return Status::OK();
}

Status BTreeIndex::CheckInvariants() const {
  int leaf_depth = height();
  DV_RETURN_IF_ERROR(CheckNode(root_.get(), 1, leaf_depth));
  // Leaf chain covers exactly num_entries_ entries in sorted order.
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  size_t total = 0;
  const Value* prev = nullptr;
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) {
    for (const LeafEntry& e : leaf->entries) {
      total += e.row_ids.size();
      if (prev != nullptr && !KeyLess(*prev, e.key)) {
        return Status::Internal("leaf chain keys out of order");
      }
      prev = &e.key;
    }
  }
  if (total != num_entries_) {
    return Status::Internal("entry count mismatch: " + std::to_string(total) +
                            " vs " + std::to_string(num_entries_));
  }
  return Status::OK();
}

Result<BTreeIndex> BTreeIndex::Build(const Table& table,
                                     const std::string& column, int fanout) {
  int idx = table.schema().IndexOf(column);
  if (idx < 0) {
    return Status::InvalidArgument("no column named '" + column + "'");
  }
  BTreeIndex index(fanout);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const Value& key = table.row(i)[idx];
    if (key.is_null()) continue;
    DV_RETURN_IF_ERROR(index.Insert(key, static_cast<int64_t>(i)));
  }
  return index;
}

}  // namespace dynview

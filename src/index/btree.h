#ifndef DYNVIEW_INDEX_BTREE_H_
#define DYNVIEW_INDEX_BTREE_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace dynview {

/// An in-memory B+-tree mapping a single `Value` key to row ids, with
/// duplicate keys allowed (multimap semantics). This is the access method
/// behind the paper's `create index ... as btree` structures (Figs. 4/8):
/// the indexed rows typically come from a (possibly higher-order) view, so
/// an index can span all relations of a data-dependent union.
///
/// Keys are ordered by Value::TotalOrderCompare. NULL keys are rejected at
/// insert (SQL indexes skip NULLs).
class BTreeIndex {
 public:
  /// `fanout` is the maximum number of keys per node (≥ 3).
  explicit BTreeIndex(int fanout = 64);

  BTreeIndex(BTreeIndex&&) = default;
  BTreeIndex& operator=(BTreeIndex&&) = default;

  /// Inserts `(key, row_id)`. NULL keys fail.
  Status Insert(const Value& key, int64_t row_id);

  /// Row ids with exactly this key (empty when absent), in insertion order.
  std::vector<int64_t> Lookup(const Value& key) const;

  /// Row ids with keys in the given range. Unset bounds are open ends.
  std::vector<int64_t> Range(const std::optional<Value>& lo, bool lo_inclusive,
                             const std::optional<Value>& hi,
                             bool hi_inclusive) const;

  size_t num_entries() const { return num_entries_; }
  size_t num_keys() const;
  int height() const;

  /// Verifies structural invariants (sorted keys, balanced leaves, linked
  /// leaf chain, fanout bounds). Used by property tests.
  Status CheckInvariants() const;

  /// Builds an index over `column` of `table`, keyed per row. NULL cells are
  /// skipped.
  static Result<BTreeIndex> Build(const Table& table,
                                  const std::string& column, int fanout = 64);

 private:
  struct Node;
  struct LeafEntry {
    Value key;
    std::vector<int64_t> row_ids;
  };
  struct Node {
    bool is_leaf = true;
    // Internal: keys.size() + 1 == children.size(); child i holds keys
    // strictly less than keys[i].
    std::vector<Value> keys;
    std::vector<std::unique_ptr<Node>> children;
    // Leaf.
    std::vector<LeafEntry> entries;
    Node* next_leaf = nullptr;
  };

  /// Inserts into the subtree; on split, returns the separator key and the
  /// new right sibling.
  struct SplitResult {
    Value separator;
    std::unique_ptr<Node> right;
  };
  std::optional<SplitResult> InsertInto(Node* node, const Value& key,
                                        int64_t row_id);

  const Node* FindLeaf(const Value& key) const;
  Status CheckNode(const Node* node, int depth, int leaf_depth) const;

  int fanout_;
  std::unique_ptr<Node> root_;
  size_t num_entries_ = 0;
};

}  // namespace dynview

#endif  // DYNVIEW_INDEX_BTREE_H_

#include "index/inverted_index.h"

#include <algorithm>

#include "common/str_util.h"

namespace dynview {

void InvertedIndex::Add(const std::string& word, int64_t row_id,
                        const std::string& attribute) {
  std::vector<Posting>& list = postings_[word];
  Posting p{row_id, attribute};
  if (!list.empty() && list.back() == p) return;  // Repeats within a cell.
  list.push_back(std::move(p));
  ++num_postings_;
}

InvertedIndex InvertedIndex::Build(const Table& table) {
  InvertedIndex index;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      const Value& v = table.row(r)[c];
      if (v.is_null()) continue;
      for (const std::string& word : TokenizeWords(v.ToLabel())) {
        index.Add(word, static_cast<int64_t>(r), table.schema().column(c).name);
      }
    }
  }
  return index;
}

Result<InvertedIndex> InvertedIndex::BuildKeyed(const Table& table,
                                                const std::string& text_column,
                                                const std::string& attr_column) {
  int text_idx = table.schema().IndexOf(text_column);
  int attr_idx = table.schema().IndexOf(attr_column);
  if (text_idx < 0) {
    return Status::InvalidArgument("no column named '" + text_column + "'");
  }
  if (attr_idx < 0) {
    return Status::InvalidArgument("no column named '" + attr_column + "'");
  }
  InvertedIndex index;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& text = table.row(r)[text_idx];
    const Value& attr = table.row(r)[attr_idx];
    if (text.is_null()) continue;
    std::string attr_label = attr.is_null() ? "" : attr.ToLabel();
    for (const std::string& word : TokenizeWords(text.ToLabel())) {
      index.Add(word, static_cast<int64_t>(r), attr_label);
    }
  }
  return index;
}

std::vector<InvertedIndex::Posting> InvertedIndex::Lookup(
    const std::string& word) const {
  auto it = postings_.find(ToLower(word));
  if (it == postings_.end()) return {};
  return it->second;
}

std::vector<int64_t> InvertedIndex::LookupAll(const std::string& phrase) const {
  std::vector<std::string> words = TokenizeWords(phrase);
  if (words.empty()) return {};
  std::vector<int64_t> acc;
  for (size_t w = 0; w < words.size(); ++w) {
    std::vector<int64_t> rows;
    for (const Posting& p : Lookup(words[w])) rows.push_back(p.row_id);
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    if (w == 0) {
      acc = std::move(rows);
    } else {
      std::vector<int64_t> merged;
      std::set_intersection(acc.begin(), acc.end(), rows.begin(), rows.end(),
                            std::back_inserter(merged));
      acc = std::move(merged);
    }
    if (acc.empty()) break;
  }
  return acc;
}

}  // namespace dynview

#ifndef DYNVIEW_INDEX_INVERTED_INDEX_H_
#define DYNVIEW_INDEX_INVERTED_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace dynview {

/// An inverted keyword index (Fig. 9 of the paper): maps each word to the
/// rows (and the attribute within the row) whose text contains it. This is
/// the access method behind `create index ... as inverted`, used to answer
/// unstructured predicates like "some attribute contains 'Sofitel'" inside
/// a structured plan.
class InvertedIndex {
 public:
  struct Posting {
    int64_t row_id = 0;
    /// The attribute whose value contained the word (the paper's keywords
    /// index returns (hid, attribute) pairs).
    std::string attribute;

    friend bool operator==(const Posting& a, const Posting& b) {
      return a.row_id == b.row_id && a.attribute == b.attribute;
    }
  };

  /// Builds over all string-typed cells of `table` (words lowercased,
  /// alphanumeric tokenization). Non-string cells are indexed by their label
  /// rendering so numeric keywords also match.
  static InvertedIndex Build(const Table& table);

  /// Builds over a single column (e.g. the `value` column of hotelwords),
  /// recording `attr_column`'s cell as the posting attribute. Fails if
  /// either column is missing.
  static Result<InvertedIndex> BuildKeyed(const Table& table,
                                          const std::string& text_column,
                                          const std::string& attr_column);

  /// Postings for a word (case-insensitive); empty when absent. A posting
  /// appears once per (row, attribute) even if the word repeats.
  std::vector<Posting> Lookup(const std::string& word) const;

  /// Rows containing every word of `phrase` (conjunctive keyword search).
  std::vector<int64_t> LookupAll(const std::string& phrase) const;

  size_t num_words() const { return postings_.size(); }
  size_t num_postings() const { return num_postings_; }

 private:
  void Add(const std::string& word, int64_t row_id,
           const std::string& attribute);

  std::unordered_map<std::string, std::vector<Posting>> postings_;
  size_t num_postings_ = 0;
};

}  // namespace dynview

#endif  // DYNVIEW_INDEX_INVERTED_INDEX_H_

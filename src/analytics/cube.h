#ifndef DYNVIEW_ANALYTICS_CUBE_H_
#define DYNVIEW_ANALYTICS_CUBE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/table.h"
#include "sql/ast.h"

namespace dynview {

/// Decision-analysis aggregation (Sec. 1.1.2 of the paper): tabular, data
/// cube-style summaries "including subtotals for all classes and all
/// countries", with drill-down by refining dimensions. Dimensions are
/// columns of a (possibly view-derived) table; the set of dimensions can be
/// extended at runtime simply by deriving new columns — the extensibility
/// the paper's dynamic views provide.

/// One aggregate to compute per group.
struct CubeMeasure {
  AggFunc func = AggFunc::kCountStar;
  /// Input column; ignored for COUNT(*).
  std::string column;
  /// Output column name.
  std::string as;
};

/// GROUP BY `dims` with ROLLUP: one result stratum per prefix of `dims`
/// (full grouping, then subtotals with the last dimension generalized, ...,
/// down to the grand total). Generalized positions hold NULL ("ALL").
Result<Table> RollupAggregate(const Table& in,
                              const std::vector<std::string>& dims,
                              const std::vector<CubeMeasure>& measures);

/// Full CUBE: one stratum per subset of `dims` (Gray et al.'s operator the
/// paper cites [14]). Generalized positions hold NULL.
Result<Table> CubeAggregate(const Table& in,
                            const std::vector<std::string>& dims,
                            const std::vector<CubeMeasure>& measures);

/// Plain GROUP BY over `dims` (the finest stratum only).
Result<Table> GroupAggregate(const Table& in,
                             const std::vector<std::string>& dims,
                             const std::vector<CubeMeasure>& measures);

/// Drill-down: restrict `cube_or_rollup` output to the rows where `dim`
/// equals `value` and every dimension in `generalized` is the ALL marker
/// (NULL). A navigation helper for the Sec. 1.1.2 browsing flow.
Result<Table> DrillDown(const Table& summary, const std::string& dim,
                        const Value& value,
                        const std::vector<std::string>& generalized);

}  // namespace dynview

#endif  // DYNVIEW_ANALYTICS_CUBE_H_

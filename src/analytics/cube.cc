#include "analytics/cube.h"

#include <unordered_map>

namespace dynview {

namespace {

struct Accumulator {
  int64_t count = 0;        // Non-null inputs (or rows for COUNT(*)).
  int64_t rows = 0;         // All rows.
  double sum = 0;
  bool all_int = true;
  int64_t isum = 0;
  bool has_minmax = false;
  Value min, max;
};

Status Accumulate(Accumulator* acc, const Value& v) {
  ++acc->rows;
  if (v.is_null()) return Status::OK();
  ++acc->count;
  if (v.is_numeric()) {
    acc->sum += v.NumericAsDouble();
    if (v.kind() == TypeKind::kInt) {
      acc->isum += v.as_int();
    } else {
      acc->all_int = false;
    }
  } else {
    acc->all_int = false;
  }
  if (!acc->has_minmax) {
    acc->min = v;
    acc->max = v;
    acc->has_minmax = true;
    return Status::OK();
  }
  int cmp = 0;
  DV_ASSIGN_OR_RETURN(TriBool known, Value::Compare(v, acc->min, &cmp));
  if (known == TriBool::kTrue && cmp < 0) acc->min = v;
  DV_ASSIGN_OR_RETURN(known, Value::Compare(v, acc->max, &cmp));
  if (known == TriBool::kTrue && cmp > 0) acc->max = v;
  return Status::OK();
}

Result<Value> Finalize(const Accumulator& acc, AggFunc func) {
  switch (func) {
    case AggFunc::kCountStar:
      return Value::Int(acc.rows);
    case AggFunc::kCount:
      return Value::Int(acc.count);
    case AggFunc::kSum:
      if (acc.count == 0) return Value::Null();
      return acc.all_int ? Value::Int(acc.isum) : Value::Double(acc.sum);
    case AggFunc::kAvg:
      if (acc.count == 0) return Value::Null();
      return Value::Double(acc.sum / static_cast<double>(acc.count));
    case AggFunc::kMin:
      return acc.has_minmax ? acc.min : Value::Null();
    case AggFunc::kMax:
      return acc.has_minmax ? acc.max : Value::Null();
  }
  return Status::Internal("bad aggregate");
}

/// Aggregates with a fixed generalization pattern: dims[i] participates in
/// the group key iff keep[i]; generalized dims emit NULL.
Status AggregateStratum(const Table& in, const std::vector<int>& dim_idx,
                        const std::vector<bool>& keep,
                        const std::vector<int>& measure_idx,
                        const std::vector<CubeMeasure>& measures, Table* out) {
  std::unordered_map<Row, size_t, RowGroupHash, RowGroupEq> group_of;
  std::vector<Row> keys;
  std::vector<std::vector<Accumulator>> accs;
  for (const Row& r : in.rows()) {
    Row key(dim_idx.size(), Value::Null());
    for (size_t d = 0; d < dim_idx.size(); ++d) {
      if (keep[d]) key[d] = r[dim_idx[d]];
    }
    auto [it, inserted] = group_of.emplace(key, keys.size());
    if (inserted) {
      keys.push_back(key);
      accs.emplace_back(measures.size());
    }
    std::vector<Accumulator>& group = accs[it->second];
    for (size_t m = 0; m < measures.size(); ++m) {
      Value v = measure_idx[m] >= 0 ? r[measure_idx[m]] : Value::Int(1);
      if (measures[m].func == AggFunc::kCountStar) v = Value::Int(1);
      DV_RETURN_IF_ERROR(Accumulate(&group[m], v));
    }
  }
  for (size_t g = 0; g < keys.size(); ++g) {
    Row row = keys[g];
    for (size_t m = 0; m < measures.size(); ++m) {
      DV_ASSIGN_OR_RETURN(Value v, Finalize(accs[g][m], measures[m].func));
      row.push_back(std::move(v));
    }
    out->AppendRowUnchecked(std::move(row));
  }
  return Status::OK();
}

Result<Table> CubeImpl(const Table& in, const std::vector<std::string>& dims,
                       const std::vector<CubeMeasure>& measures,
                       const std::vector<std::vector<bool>>& strata) {
  std::vector<int> dim_idx;
  for (const std::string& d : dims) {
    int idx = in.schema().IndexOf(d);
    if (idx < 0) return Status::InvalidArgument("no dimension column '" + d + "'");
    dim_idx.push_back(idx);
  }
  std::vector<int> measure_idx;
  for (const CubeMeasure& m : measures) {
    if (m.func == AggFunc::kCountStar) {
      measure_idx.push_back(-1);
      continue;
    }
    int idx = in.schema().IndexOf(m.column);
    if (idx < 0) {
      return Status::InvalidArgument("no measure column '" + m.column + "'");
    }
    measure_idx.push_back(idx);
  }
  std::vector<Column> cols;
  for (size_t d = 0; d < dims.size(); ++d) {
    cols.push_back(in.schema().column(dim_idx[d]));
  }
  for (const CubeMeasure& m : measures) {
    cols.emplace_back(m.as.empty() ? std::string(AggFuncName(m.func)) : m.as,
                      TypeKind::kNull);
  }
  Table out{Schema(std::move(cols))};
  for (const std::vector<bool>& keep : strata) {
    DV_RETURN_IF_ERROR(
        AggregateStratum(in, dim_idx, keep, measure_idx, measures, &out));
  }
  out.SortRows();
  return out;
}

}  // namespace

Result<Table> RollupAggregate(const Table& in,
                              const std::vector<std::string>& dims,
                              const std::vector<CubeMeasure>& measures) {
  std::vector<std::vector<bool>> strata;
  for (size_t k = dims.size() + 1; k-- > 0;) {
    std::vector<bool> keep(dims.size(), false);
    for (size_t i = 0; i < k; ++i) keep[i] = true;
    strata.push_back(std::move(keep));
  }
  return CubeImpl(in, dims, measures, strata);
}

Result<Table> CubeAggregate(const Table& in,
                            const std::vector<std::string>& dims,
                            const std::vector<CubeMeasure>& measures) {
  if (dims.size() > 16) {
    return Status::InvalidArgument("too many cube dimensions");
  }
  std::vector<std::vector<bool>> strata;
  for (uint32_t mask = 0; mask < (1u << dims.size()); ++mask) {
    std::vector<bool> keep(dims.size(), false);
    for (size_t d = 0; d < dims.size(); ++d) {
      if (mask & (1u << d)) keep[d] = true;
    }
    strata.push_back(std::move(keep));
  }
  return CubeImpl(in, dims, measures, strata);
}

Result<Table> GroupAggregate(const Table& in,
                             const std::vector<std::string>& dims,
                             const std::vector<CubeMeasure>& measures) {
  std::vector<std::vector<bool>> strata{std::vector<bool>(dims.size(), true)};
  return CubeImpl(in, dims, measures, strata);
}

Result<Table> DrillDown(const Table& summary, const std::string& dim,
                        const Value& value,
                        const std::vector<std::string>& generalized) {
  int dim_idx = summary.schema().IndexOf(dim);
  if (dim_idx < 0) {
    return Status::InvalidArgument("no dimension column '" + dim + "'");
  }
  std::vector<int> gen_idx;
  for (const std::string& g : generalized) {
    int idx = summary.schema().IndexOf(g);
    if (idx < 0) {
      return Status::InvalidArgument("no dimension column '" + g + "'");
    }
    gen_idx.push_back(idx);
  }
  Table out(summary.schema());
  for (const Row& r : summary.rows()) {
    if (!r[dim_idx].GroupEquals(value)) continue;
    bool ok = true;
    for (int g : gen_idx) {
      if (!r[g].is_null()) ok = false;
    }
    if (ok) out.AppendRowUnchecked(r);
  }
  return out;
}

}  // namespace dynview

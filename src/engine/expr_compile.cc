#include "engine/expr_compile.h"

#include <memory_resource>
#include <utility>

#include "observe/metrics.h"

namespace dynview {

namespace {

/// Accumulates ops while tracking the evaluation stack's high-water mark.
struct ProgramBuilder {
  std::vector<ExprOp> ops;
  std::vector<Value> literals;
  int depth = 0;
  int max_depth = 0;

  void Emit(ExprOpCode code, BinaryOp bop, int32_t arg, int stack_delta) {
    ops.push_back(ExprOp{code, bop, arg});
    depth += stack_delta;
    if (depth > max_depth) max_depth = depth;
  }
};

bool CompilePred(const Expr& e, const ColumnBindings& b, ProgramBuilder* out);

bool CompileValue(const Expr& e, const ColumnBindings& b,
                  ProgramBuilder* out) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      if (e.param_index >= 0) return false;  // Unbound prepared parameter.
      out->literals.push_back(e.literal);
      out->Emit(ExprOpCode::kPushLiteral, BinaryOp::kEq,
                static_cast<int32_t>(out->literals.size() - 1), +1);
      return true;
    }
    case ExprKind::kVarRef: {
      int idx = b.LookupBare(e.var_name);
      if (idx < 0) return false;  // Absent or ambiguous: interpreter errors.
      out->Emit(ExprOpCode::kPushSlot, BinaryOp::kEq, idx, +1);
      return true;
    }
    case ExprKind::kColumnRef: {
      if (e.column.is_variable) return false;
      int idx = b.LookupQualified(e.qualifier, e.column.text);
      if (idx < 0) return false;
      out->Emit(ExprOpCode::kPushSlot, BinaryOp::kEq, idx, +1);
      return true;
    }
    case ExprKind::kArith:
      if (!CompileValue(*e.left, b, out)) return false;
      if (!CompileValue(*e.right, b, out)) return false;
      out->Emit(ExprOpCode::kArith, e.op, 0, -1);
      return true;
    case ExprKind::kCompare:
    case ExprKind::kLogic:
    case ExprKind::kNot:
    case ExprKind::kLike:
    case ExprKind::kContains:
    case ExprKind::kHasWord:
    case ExprKind::kIsNull:
      // Predicate in value context: the interpreter evaluates it as a
      // predicate and embeds the TriBool (TriBoolToValue); the compiled
      // predicate ops push exactly that encoding.
      return CompilePred(e, b, out);
    case ExprKind::kAgg:
    case ExprKind::kStar:
      return false;
  }
  return false;
}

bool CompilePred(const Expr& e, const ColumnBindings& b, ProgramBuilder* out) {
  switch (e.kind) {
    case ExprKind::kCompare:
      if (!CompileValue(*e.left, b, out)) return false;
      if (!CompileValue(*e.right, b, out)) return false;
      out->Emit(ExprOpCode::kCompare, e.op, 0, -1);
      return true;
    case ExprKind::kLogic: {
      if (!CompilePred(*e.left, b, out)) return false;
      // Short-circuit exactly like the interpreter: AND stops on False, OR
      // on True — the left value stays on the stack as the result, and the
      // right operand's ops (errors included) are skipped.
      const bool is_and = e.op == BinaryOp::kAnd;
      const size_t jump_at = out->ops.size();
      out->Emit(is_and ? ExprOpCode::kJumpIfFalse : ExprOpCode::kJumpIfTrue,
                BinaryOp::kEq, 0, 0);
      if (!CompilePred(*e.right, b, out)) return false;
      out->Emit(is_and ? ExprOpCode::kAnd : ExprOpCode::kOr, e.op, 0, -1);
      out->ops[jump_at].arg = static_cast<int32_t>(out->ops.size());
      return true;
    }
    case ExprKind::kNot:
      if (!CompilePred(*e.left, b, out)) return false;
      out->Emit(ExprOpCode::kNot, BinaryOp::kEq, 0, 0);
      return true;
    case ExprKind::kLike:
      if (!CompileValue(*e.left, b, out)) return false;
      if (!CompileValue(*e.right, b, out)) return false;
      out->Emit(ExprOpCode::kLike, BinaryOp::kEq, 0, -1);
      return true;
    case ExprKind::kContains:
      if (!CompileValue(*e.left, b, out)) return false;
      if (!CompileValue(*e.right, b, out)) return false;
      out->Emit(ExprOpCode::kContains, BinaryOp::kEq, 0, -1);
      return true;
    case ExprKind::kHasWord:
      if (!CompileValue(*e.left, b, out)) return false;
      if (!CompileValue(*e.right, b, out)) return false;
      out->Emit(ExprOpCode::kHasWord, BinaryOp::kEq, 0, -1);
      return true;
    case ExprKind::kIsNull:
      if (!CompileValue(*e.left, b, out)) return false;
      out->Emit(ExprOpCode::kIsNull, BinaryOp::kEq, e.negated ? 1 : 0, 0);
      return true;
    default:
      // Value expression in predicate position: evaluate, then apply the
      // interpreter's NULL/BOOL coercion rule.
      if (!CompileValue(e, b, out)) return false;
      out->Emit(ExprOpCode::kCoerceBool, BinaryOp::kEq, 0, 0);
      return true;
  }
}

/// Decodes the tri-valued encoding (NULL = Unknown, BOOL = True/False).
/// Only called on values produced by predicate ops, which guarantee the
/// shape by construction.
inline TriBool TriOf(const Value& v) {
  if (v.is_null()) return TriBool::kUnknown;
  return v.as_bool() ? TriBool::kTrue : TriBool::kFalse;
}

/// Per-thread evaluation scratch, allocated from a thread-local std::pmr
/// monotonic arena so the per-row hot path (possibly on many morsel workers
/// at once) never touches the global allocator and shares nothing across
/// threads. The operand stack holds *pointers* — leaf pushes alias the row
/// slot or the program's literal pool instead of copying the Value (a
/// string copy per row, otherwise); only operator results materialize, into
/// `temps`, which is reserved to the program's op count up front so the
/// pointers stay stable (each op materializes at most once, and jumps only
/// move forward, so ops.size() bounds live temporaries).
struct EvalScratch {
  std::pmr::monotonic_buffer_resource arena{1024};
  std::pmr::vector<const Value*> stack{&arena};
  std::pmr::vector<Value> temps{&arena};
};

EvalScratch& LocalScratch() {
  thread_local EvalScratch scratch;
  return scratch;
}

}  // namespace

std::shared_ptr<const CompiledExpr> CompiledExpr::Compile(
    const Expr& e, const ColumnBindings& bindings, bool as_predicate) {
  ProgramBuilder builder;
  const bool ok = as_predicate ? CompilePred(e, bindings, &builder)
                               : CompileValue(e, bindings, &builder);
  if (!ok) return nullptr;
  auto prog = std::shared_ptr<CompiledExpr>(new CompiledExpr());
  prog->ops_ = std::move(builder.ops);
  prog->literals_ = std::move(builder.literals);
  prog->max_stack_ = static_cast<size_t>(builder.max_depth);
  return prog;
}

Result<Value> CompiledExpr::Run(const Row& row) const {
  EvalScratch& scratch = LocalScratch();
  std::pmr::vector<const Value*>& st = scratch.stack;
  std::pmr::vector<Value>& temps = scratch.temps;
  st.clear();
  temps.clear();
  if (st.capacity() < max_stack_) st.reserve(max_stack_);
  if (temps.capacity() < ops_.size()) temps.reserve(ops_.size());
  for (size_t ip = 0; ip < ops_.size(); ++ip) {
    const ExprOp& op = ops_[ip];
    switch (op.code) {
      case ExprOpCode::kPushLiteral:
        st.push_back(&literals_[op.arg]);
        break;
      case ExprOpCode::kPushSlot:
        st.push_back(&row[op.arg]);
        break;
      case ExprOpCode::kArith: {
        const Value* r = st.back();
        st.pop_back();
        const Value* l = st.back();
        st.pop_back();
        DV_ASSIGN_OR_RETURN(Value v, EvalArithOp(op.bop, *l, *r));
        temps.push_back(std::move(v));
        st.push_back(&temps.back());
        break;
      }
      case ExprOpCode::kCompare: {
        const Value* r = st.back();
        st.pop_back();
        const Value* l = st.back();
        st.pop_back();
        DV_ASSIGN_OR_RETURN(TriBool t, EvalCompareOp(op.bop, *l, *r));
        temps.push_back(TriBoolToValue(t));
        st.push_back(&temps.back());
        break;
      }
      case ExprOpCode::kLike: {
        const Value* r = st.back();
        st.pop_back();
        const Value* l = st.back();
        st.pop_back();
        DV_ASSIGN_OR_RETURN(TriBool t, EvalLikeOp(*l, *r));
        temps.push_back(TriBoolToValue(t));
        st.push_back(&temps.back());
        break;
      }
      case ExprOpCode::kContains: {
        const Value* r = st.back();
        st.pop_back();
        const Value* l = st.back();
        st.pop_back();
        DV_ASSIGN_OR_RETURN(TriBool t, EvalContainsOp(*l, *r));
        temps.push_back(TriBoolToValue(t));
        st.push_back(&temps.back());
        break;
      }
      case ExprOpCode::kHasWord: {
        const Value* r = st.back();
        st.pop_back();
        const Value* l = st.back();
        st.pop_back();
        DV_ASSIGN_OR_RETURN(TriBool t, EvalHasWordOp(*l, *r));
        temps.push_back(TriBoolToValue(t));
        st.push_back(&temps.back());
        break;
      }
      case ExprOpCode::kIsNull: {
        bool null = st.back()->is_null();
        st.pop_back();
        if (op.arg != 0) null = !null;
        temps.push_back(Value::Bool(null));
        st.push_back(&temps.back());
        break;
      }
      case ExprOpCode::kNot: {
        TriBool t = TriOf(*st.back());
        st.pop_back();
        temps.push_back(TriBoolToValue(TriNot(t)));
        st.push_back(&temps.back());
        break;
      }
      case ExprOpCode::kAnd: {
        TriBool r = TriOf(*st.back());
        st.pop_back();
        TriBool l = TriOf(*st.back());
        st.pop_back();
        temps.push_back(TriBoolToValue(TriAnd(l, r)));
        st.push_back(&temps.back());
        break;
      }
      case ExprOpCode::kOr: {
        TriBool r = TriOf(*st.back());
        st.pop_back();
        TriBool l = TriOf(*st.back());
        st.pop_back();
        temps.push_back(TriBoolToValue(TriOr(l, r)));
        st.push_back(&temps.back());
        break;
      }
      case ExprOpCode::kJumpIfFalse:
        if (TriOf(*st.back()) == TriBool::kFalse) {
          ip = static_cast<size_t>(op.arg) - 1;
        }
        break;
      case ExprOpCode::kJumpIfTrue:
        if (TriOf(*st.back()) == TriBool::kTrue) {
          ip = static_cast<size_t>(op.arg) - 1;
        }
        break;
      case ExprOpCode::kCoerceBool: {
        const Value& v = *st.back();
        if (!v.is_null() && v.kind() != TypeKind::kBool) {
          return Status::TypeError("predicate did not evaluate to a boolean");
        }
        break;
      }
    }
  }
  return *st.back();
}

Result<Value> CompiledExpr::EvalValue(const Row& row) const {
  return Run(row);
}

Result<TriBool> CompiledExpr::EvalPredicate(const Row& row) const {
  DV_ASSIGN_OR_RETURN(Value v, Run(row));
  if (v.is_null()) return TriBool::kUnknown;
  if (v.kind() == TypeKind::kBool) {
    return v.as_bool() ? TriBool::kTrue : TriBool::kFalse;
  }
  return Status::TypeError("predicate did not evaluate to a boolean");
}

namespace {

/// Resolved slot indexes in pre-order — the part of a program's identity the
/// rendering alone cannot capture (groundings clone one AST into several
/// working-set layouts; same text, different slots).
void SlotSignature(const Expr& e, const ColumnBindings& b, std::string* out) {
  switch (e.kind) {
    case ExprKind::kVarRef:
      *out += ';';
      *out += std::to_string(b.LookupBare(e.var_name));
      return;
    case ExprKind::kColumnRef:
      *out += ';';
      *out += std::to_string(
          e.column.is_variable
              ? -3
              : b.LookupQualified(e.qualifier, e.column.text));
      return;
    default:
      if (e.left != nullptr) SlotSignature(*e.left, b, out);
      if (e.right != nullptr) SlotSignature(*e.right, b, out);
      return;
  }
}

}  // namespace

std::shared_ptr<const CompiledExpr> ExprProgramCache::GetOrCompile(
    const Expr& e, const ColumnBindings& bindings, bool as_predicate,
    MetricsRegistry* metrics) {
  std::string key = as_predicate ? "P|" : "V|";
  key += e.ToString();
  key += '|';
  SlotSignature(e, bindings, &key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) return it->second;
  }
  std::shared_ptr<const CompiledExpr> prog =
      CompiledExpr::Compile(e, bindings, as_predicate);
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) return it->second;  // Raced compile: first in wins.
    if (map_.size() >= max_entries_) map_.clear();
    map_.emplace(std::move(key), prog);
    inserted = true;
  }
  if (inserted && prog != nullptr && metrics != nullptr) {
    metrics->Add(counters::kExprsFlattened, 1);
  }
  return prog;
}

size_t ExprProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace dynview

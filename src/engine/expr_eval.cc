#include "engine/expr_eval.h"

#include "common/str_util.h"

namespace dynview {

void ColumnBindings::AddQualified(const std::string& tuple_var,
                                  const std::string& attr, int index) {
  qualified_[ToLower(tuple_var) + "." + ToLower(attr)] = index;
  bare_[ToLower(attr)].push_back(index);
  if (static_cast<size_t>(index) >= width_) width_ = index + 1;
}

void ColumnBindings::AddNamed(const std::string& name, int index) {
  named_[ToLower(name)] = index;
  if (static_cast<size_t>(index) >= width_) width_ = index + 1;
}

int ColumnBindings::LookupQualified(const std::string& tuple_var,
                                    const std::string& attr) const {
  auto it = qualified_.find(ToLower(tuple_var) + "." + ToLower(attr));
  if (it == qualified_.end()) return -1;
  return it->second;
}

int ColumnBindings::LookupBare(const std::string& name) const {
  auto n = named_.find(ToLower(name));
  if (n != named_.end()) return n->second;
  auto b = bare_.find(ToLower(name));
  if (b == bare_.end()) return -1;
  if (b->second.size() > 1) return -2;
  return b->second[0];
}

void ColumnBindings::MergeShifted(const ColumnBindings& other, int offset) {
  for (const auto& [k, v] : other.qualified_) qualified_[k] = v + offset;
  for (const auto& [k, v] : other.named_) named_[k] = v + offset;
  for (const auto& [k, vs] : other.bare_) {
    auto& dst = bare_[k];
    for (int v : vs) dst.push_back(v + offset);
  }
  width_ = std::max(width_, other.width_ + offset);
}

Result<Value> EvalArithOp(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  // Date arithmetic: date ± int, date - date.
  if (l.kind() == TypeKind::kDate && r.kind() == TypeKind::kInt) {
    if (op == BinaryOp::kAdd) {
      return Value::MakeDate(l.as_date().AddDays(static_cast<int32_t>(r.as_int())));
    }
    if (op == BinaryOp::kSub) {
      return Value::MakeDate(l.as_date().AddDays(-static_cast<int32_t>(r.as_int())));
    }
    return Status::TypeError("unsupported DATE arithmetic");
  }
  if (l.kind() == TypeKind::kInt && r.kind() == TypeKind::kDate &&
      op == BinaryOp::kAdd) {
    return Value::MakeDate(r.as_date().AddDays(static_cast<int32_t>(l.as_int())));
  }
  if (l.kind() == TypeKind::kDate && r.kind() == TypeKind::kDate &&
      op == BinaryOp::kSub) {
    return Value::Int(l.as_date().days_since_epoch() -
                      r.as_date().days_since_epoch());
  }
  // String concatenation via '+': convenient for workload generators.
  if (l.kind() == TypeKind::kString && r.kind() == TypeKind::kString &&
      op == BinaryOp::kAdd) {
    return Value::String(l.as_string() + r.as_string());
  }
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeError(std::string("arithmetic on ") +
                             TypeKindName(l.kind()) + " and " +
                             TypeKindName(r.kind()));
  }
  if (l.kind() == TypeKind::kInt && r.kind() == TypeKind::kInt) {
    int64_t a = l.as_int(), b = r.as_int();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int(a + b);
      case BinaryOp::kSub: return Value::Int(a - b);
      case BinaryOp::kMul: return Value::Int(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::EvalError("integer division by zero");
        return Value::Int(a / b);
      default:
        return Status::Internal("bad arith op");
    }
  }
  double a = l.NumericAsDouble(), b = r.NumericAsDouble();
  switch (op) {
    case BinaryOp::kAdd: return Value::Double(a + b);
    case BinaryOp::kSub: return Value::Double(a - b);
    case BinaryOp::kMul: return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Status::EvalError("division by zero");
      return Value::Double(a / b);
    default:
      return Status::Internal("bad arith op");
  }
}

Result<TriBool> EvalCompareOp(BinaryOp op, const Value& l, const Value& r) {
  int cmp = 0;
  DV_ASSIGN_OR_RETURN(TriBool known, Value::Compare(l, r, &cmp));
  if (known == TriBool::kUnknown) return TriBool::kUnknown;
  bool result = false;
  switch (op) {
    case BinaryOp::kEq: result = cmp == 0; break;
    case BinaryOp::kNotEq: result = cmp != 0; break;
    case BinaryOp::kLess: result = cmp < 0; break;
    case BinaryOp::kLessEq: result = cmp <= 0; break;
    case BinaryOp::kGreater: result = cmp > 0; break;
    case BinaryOp::kGreaterEq: result = cmp >= 0; break;
    default:
      return Status::Internal("bad comparison op");
  }
  return result ? TriBool::kTrue : TriBool::kFalse;
}

Result<TriBool> EvalLikeOp(const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return TriBool::kUnknown;
  if (l.kind() != TypeKind::kString || r.kind() != TypeKind::kString) {
    return Status::TypeError("LIKE requires string operands");
  }
  return LikeMatch(l.as_string(), r.as_string()) ? TriBool::kTrue
                                                 : TriBool::kFalse;
}

Result<TriBool> EvalContainsOp(const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return TriBool::kUnknown;
  if (r.kind() != TypeKind::kString) {
    return Status::TypeError("CONTAINS pattern must be a string");
  }
  // Any value can be searched; non-strings match on their label form
  // (the keyword-search semantics of Sec. 1.1.2).
  std::string text = l.kind() == TypeKind::kString ? l.as_string() : l.ToLabel();
  return ContainsIgnoreCase(text, r.as_string()) ? TriBool::kTrue
                                                 : TriBool::kFalse;
}

Result<TriBool> EvalHasWordOp(const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return TriBool::kUnknown;
  if (r.kind() != TypeKind::kString) {
    return Status::TypeError("HASWORD word must be a string");
  }
  std::vector<std::string> words = TokenizeWords(r.as_string());
  if (words.size() != 1) {
    return Status::TypeError("HASWORD takes a single word");
  }
  std::string text = l.kind() == TypeKind::kString ? l.as_string() : l.ToLabel();
  for (const std::string& w : TokenizeWords(text)) {
    if (w == words[0]) return TriBool::kTrue;
  }
  return TriBool::kFalse;
}

Value TriBoolToValue(TriBool t) {
  switch (t) {
    case TriBool::kTrue: return Value::Bool(true);
    case TriBool::kFalse: return Value::Bool(false);
    case TriBool::kUnknown: return Value::Null();
  }
  return Value::Null();
}

Result<Value> EvaluateExpr(const Expr& expr, const Row& row,
                           const ColumnBindings& bindings) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      if (expr.param_index >= 0) {
        return Status::EvalError("unbound parameter ?" +
                                 std::to_string(expr.param_index + 1));
      }
      return expr.literal;
    case ExprKind::kVarRef: {
      int idx = bindings.LookupBare(expr.var_name);
      if (idx == -2) {
        return Status::BindError("ambiguous column '" + expr.var_name + "'");
      }
      if (idx < 0) {
        return Status::BindError("unresolved name '" + expr.var_name + "'");
      }
      return row[idx];
    }
    case ExprKind::kColumnRef: {
      if (expr.column.is_variable) {
        return Status::EvalError("attribute variable '" + expr.column.text +
                                 "' not instantiated before evaluation");
      }
      int idx = bindings.LookupQualified(expr.qualifier, expr.column.text);
      if (idx < 0) {
        return Status::BindError("unresolved column '" + expr.qualifier + "." +
                                 expr.column.text + "'");
      }
      return row[idx];
    }
    case ExprKind::kArith: {
      DV_ASSIGN_OR_RETURN(Value l, EvaluateExpr(*expr.left, row, bindings));
      DV_ASSIGN_OR_RETURN(Value r, EvaluateExpr(*expr.right, row, bindings));
      return EvalArithOp(expr.op, l, r);
    }
    case ExprKind::kCompare:
    case ExprKind::kLogic:
    case ExprKind::kNot:
    case ExprKind::kLike:
    case ExprKind::kContains:
    case ExprKind::kHasWord:
    case ExprKind::kIsNull: {
      DV_ASSIGN_OR_RETURN(TriBool t, EvaluatePredicate(expr, row, bindings));
      return TriBoolToValue(t);
    }
    case ExprKind::kAgg:
      return Status::EvalError(
          "aggregate evaluated outside a grouping context");
    case ExprKind::kStar:
      return Status::EvalError("'*' is only valid in a select list");
  }
  return Status::Internal("bad expression kind");
}

Result<TriBool> EvaluatePredicate(const Expr& expr, const Row& row,
                                  const ColumnBindings& bindings) {
  switch (expr.kind) {
    case ExprKind::kCompare: {
      DV_ASSIGN_OR_RETURN(Value l, EvaluateExpr(*expr.left, row, bindings));
      DV_ASSIGN_OR_RETURN(Value r, EvaluateExpr(*expr.right, row, bindings));
      return EvalCompareOp(expr.op, l, r);
    }
    case ExprKind::kLogic: {
      DV_ASSIGN_OR_RETURN(TriBool l,
                          EvaluatePredicate(*expr.left, row, bindings));
      // Short-circuit where three-valued logic allows it.
      if (expr.op == BinaryOp::kAnd && l == TriBool::kFalse) {
        return TriBool::kFalse;
      }
      if (expr.op == BinaryOp::kOr && l == TriBool::kTrue) {
        return TriBool::kTrue;
      }
      DV_ASSIGN_OR_RETURN(TriBool r,
                          EvaluatePredicate(*expr.right, row, bindings));
      return expr.op == BinaryOp::kAnd ? TriAnd(l, r) : TriOr(l, r);
    }
    case ExprKind::kNot: {
      DV_ASSIGN_OR_RETURN(TriBool v,
                          EvaluatePredicate(*expr.left, row, bindings));
      return TriNot(v);
    }
    case ExprKind::kLike: {
      DV_ASSIGN_OR_RETURN(Value l, EvaluateExpr(*expr.left, row, bindings));
      DV_ASSIGN_OR_RETURN(Value r, EvaluateExpr(*expr.right, row, bindings));
      return EvalLikeOp(l, r);
    }
    case ExprKind::kContains: {
      DV_ASSIGN_OR_RETURN(Value l, EvaluateExpr(*expr.left, row, bindings));
      DV_ASSIGN_OR_RETURN(Value r, EvaluateExpr(*expr.right, row, bindings));
      return EvalContainsOp(l, r);
    }
    case ExprKind::kHasWord: {
      DV_ASSIGN_OR_RETURN(Value l, EvaluateExpr(*expr.left, row, bindings));
      DV_ASSIGN_OR_RETURN(Value r, EvaluateExpr(*expr.right, row, bindings));
      return EvalHasWordOp(l, r);
    }
    case ExprKind::kIsNull: {
      DV_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*expr.left, row, bindings));
      bool null = v.is_null();
      if (expr.negated) null = !null;
      return null ? TriBool::kTrue : TriBool::kFalse;
    }
    default: {
      DV_ASSIGN_OR_RETURN(Value v, EvaluateExpr(expr, row, bindings));
      if (v.is_null()) return TriBool::kUnknown;
      if (v.kind() == TypeKind::kBool) {
        return v.as_bool() ? TriBool::kTrue : TriBool::kFalse;
      }
      return Status::TypeError("predicate did not evaluate to a boolean");
    }
  }
}

bool CanEvaluate(const Expr& expr, const ColumnBindings& bindings) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kVarRef:
      return bindings.LookupBare(expr.var_name) >= 0;
    case ExprKind::kColumnRef:
      return !expr.column.is_variable &&
             bindings.LookupQualified(expr.qualifier, expr.column.text) >= 0;
    case ExprKind::kStar:
      return false;
    default:
      if (expr.left && !CanEvaluate(*expr.left, bindings)) return false;
      if (expr.right && !CanEvaluate(*expr.right, bindings)) return false;
      return true;
  }
}

}  // namespace dynview

#ifndef DYNVIEW_ENGINE_OPERATORS_H_
#define DYNVIEW_ENGINE_OPERATORS_H_

#include <atomic>
#include <functional>
#include <vector>

#include "common/exec_config.h"
#include "common/query_context.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "relational/table.h"

namespace dynview {

class CatalogSnapshot;   // relational/catalog.h — one pinned catalog version.
class ExprProgramCache;  // engine/expr_compile.h — compiled-program memo.

/// Per-query execution context handed to operators: a borrowed pool (null =
/// serial), the morsel granularity, and the query's guard state (null =
/// unguarded — the fast path costs one pointer test). Operators that
/// parallelize always merge per-morsel outputs in morsel order, so for a
/// given input the output row order is identical to serial execution.
struct ExecContext {
  ThreadPool* pool = nullptr;
  size_t morsel_rows = ExecConfig{}.morsel_rows;
  QueryContext* guard = nullptr;

  /// The catalog version this execution reads (null when the engine runs
  /// unpinned, e.g. over a scratch catalog). Operators themselves never
  /// resolve tables, but cooperating components handed an ExecContext (the
  /// materializer's partition build, plan execution) must read through this
  /// snapshot so the whole query observes one consistent version.
  const CatalogSnapshot* snapshot = nullptr;

  /// Observability sinks (both null when tracing is disabled — the engine
  /// only fills them from the query's observer when ExecConfig::enable_trace
  /// is set). Counter increments happen at morsel/operator granularity; see
  /// observe/metrics.h for which counters are thread-count invariant.
  QueryTrace* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  /// Compiled-expression program memo (engine/expr_compile.h). Null disables
  /// compilation: every expression takes the interpreted tree walk. The
  /// engine fills it (from the query's cached plan when one is attached,
  /// else its own default cache) when ExecConfig::compile_expressions is
  /// set. Lookups happen at operator setup on the driving thread, never per
  /// row; the programs themselves are immutable and shared across workers.
  ExprProgramCache* programs = nullptr;

  /// Adds `n` to counter `name` when metrics are attached.
  void Count(const char* name, uint64_t n) const {
    if (metrics != nullptr) metrics->Add(name, n);
  }

  /// True when an input of `rows` is worth splitting into morsels.
  bool ShouldParallelize(size_t rows) const {
    return pool != nullptr && pool->num_workers() > 0 && rows > morsel_rows;
  }

  /// Rows per morsel for an input of `rows`: at least `morsel_rows`, and at
  /// most ~4 morsels per participating thread to bound scheduling overhead.
  size_t MorselSize(size_t rows) const;

  /// Deadline/cancellation check; call once per morsel (or every ~1k rows
  /// in serial loops), not per row.
  Status CheckGuard() const {
    return guard == nullptr ? Status::OK() : guard->CheckGuards();
  }

  /// Charges `rows` output rows of width `columns` against the budgets.
  Status ChargeRows(size_t rows, size_t columns) const {
    return guard == nullptr ? Status::OK()
                            : guard->ChargeRows(rows, columns);
  }

  /// Cancellation flag for ParallelFor (null when unguarded).
  const std::atomic<bool>* CancelFlag() const {
    return guard == nullptr ? nullptr : guard->cancel_flag();
  }
};

/// Splits `[0, rows)` into morsels and runs `fn(morsel_index, begin, end)`
/// on the pool (inline when not worth parallelizing). Deterministic given
/// deterministic `fn`: morsel boundaries depend only on `rows` and `ctx`.
void MorselFor(const ExecContext& ctx, size_t rows,
               const std::function<void(size_t, size_t, size_t)>& fn);

/// Morsel-driven scan+filter: the rows of `in` for which `pred` returns
/// true, in input order. The predicate must be safe to call concurrently on
/// distinct rows (expression evaluation is pure, so closures over
/// EvaluatePredicate qualify).
Result<Table> FilterRows(const Table& in, const ExecContext& ctx,
                         const std::function<Result<bool>(const Row&)>& pred);

/// Inner hash equi-join: rows of `left` × `right` where the key columns are
/// pairwise GroupEquals (NULL keys never match, per SQL). Output columns are
/// left's followed by right's. Above the morsel threshold the build side is
/// hash-partitioned and built shard-parallel, and the probe side is scanned
/// in morsels; output order still matches the serial join.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys,
                       const ExecContext& ctx = ExecContext());

/// Cross product (used when no equi-join key is available). The output can
/// be quadratic, so this is the canonical row-budget enforcement point: the
/// guard is charged and checked per left row, stopping a runaway product
/// long before it materializes.
Result<Table> CrossProduct(const Table& left, const Table& right,
                           const ExecContext& ctx = ExecContext());

/// Full outer join on key columns. Matching rows combine (cross product per
/// key, preserving multiplicities — the paper's Sec. 3.1 pivot semantics);
/// unmatched rows pad the other side with NULLs. Output: left columns
/// followed by right columns (both key sets retained; callers coalesce).
/// NULL keys never match.
Result<Table> FullOuterJoin(const Table& left, const Table& right,
                            const std::vector<int>& left_keys,
                            const std::vector<int>& right_keys);

/// Appends all rows of `b` to a copy of `a` (schemas must have equal arity;
/// `a`'s schema wins).
Result<Table> UnionAll(const Table& a, const Table& b);

/// Projects `t` to `cols` (indexes), renaming columns to `names`.
Result<Table> ProjectColumns(const Table& t, const std::vector<int>& cols,
                             const std::vector<std::string>& names);

}  // namespace dynview

#endif  // DYNVIEW_ENGINE_OPERATORS_H_

#ifndef DYNVIEW_ENGINE_OPERATORS_H_
#define DYNVIEW_ENGINE_OPERATORS_H_

#include <vector>

#include "common/result.h"
#include "relational/table.h"

namespace dynview {

/// Inner hash equi-join: rows of `left` × `right` where the key columns are
/// pairwise GroupEquals (NULL keys never match, per SQL). Output columns are
/// left's followed by right's.
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys);

/// Cross product (used when no equi-join key is available).
Table CrossProduct(const Table& left, const Table& right);

/// Full outer join on key columns. Matching rows combine (cross product per
/// key, preserving multiplicities — the paper's Sec. 3.1 pivot semantics);
/// unmatched rows pad the other side with NULLs. Output: left columns
/// followed by right columns (both key sets retained; callers coalesce).
/// NULL keys never match.
Result<Table> FullOuterJoin(const Table& left, const Table& right,
                            const std::vector<int>& left_keys,
                            const std::vector<int>& right_keys);

/// Appends all rows of `b` to a copy of `a` (schemas must have equal arity;
/// `a`'s schema wins).
Result<Table> UnionAll(const Table& a, const Table& b);

/// Projects `t` to `cols` (indexes), renaming columns to `names`.
Result<Table> ProjectColumns(const Table& t, const std::vector<int>& cols,
                             const std::vector<std::string>& names);

}  // namespace dynview

#endif  // DYNVIEW_ENGINE_OPERATORS_H_

#ifndef DYNVIEW_ENGINE_EXPR_COMPILE_H_
#define DYNVIEW_ENGINE_EXPR_COMPILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "engine/expr_eval.h"
#include "relational/table.h"
#include "sql/ast.h"

namespace dynview {

class MetricsRegistry;

/// One op of a flattened expression program. Programs are postfix: operand
/// ops push onto an evaluation stack, operator ops pop their inputs and push
/// the result. Column references are resolved to row slots at compile time
/// (`arg` = column index), so per-row evaluation does no name lookup and no
/// tree walk — just a linear scan over a contiguous array.
enum class ExprOpCode : uint8_t {
  kPushLiteral,  // push literals[arg]
  kPushSlot,     // push row[arg]             (slot-bound value holder)
  kArith,        // pop r, l; push EvalArithOp(bop, l, r)
  kCompare,      // pop r, l; push tri(EvalCompareOp(bop, l, r))
  kLike,         // pop r, l; push tri(EvalLikeOp(l, r))
  kContains,     // pop r, l; push tri(EvalContainsOp(l, r))
  kHasWord,      // pop r, l; push tri(EvalHasWordOp(l, r))
  kIsNull,       // pop v; push Bool(v.is_null() xor negated-in-arg)
  kNot,          // pop tri; push tri(TriNot)
  kAnd,          // pop r, l; push tri(TriAnd)
  kOr,           // pop r, l; push tri(TriOr)
  kJumpIfFalse,  // if tri(top) == False, jump to op index `arg` (keep top)
  kJumpIfTrue,   // if tri(top) == True, jump to op index `arg` (keep top)
  kCoerceBool,   // pop v; push v if NULL/BOOL else "predicate did not
                 // evaluate to a boolean" (the interpreter's coercion rule)
};

struct ExprOp {
  ExprOpCode code = ExprOpCode::kPushLiteral;
  BinaryOp bop = BinaryOp::kEq;
  /// kPushLiteral: literal pool index. kPushSlot: row slot. kJump*: target
  /// op index. kIsNull: 1 when negated (IS NOT NULL).
  int32_t arg = 0;
};

/// A predicate/projection tree flattened into a contiguous op array with all
/// names resolved to row slots. Immutable after Compile, so one program is
/// safely shared by every morsel worker and every grounding of a fan-out;
/// evaluation scratch lives in a thread-local pmr arena, not in the program.
///
/// Three-valued logic is encoded in the value domain (True/False → BOOL,
/// Unknown → NULL, the same bijection TriBoolToValue uses), and AND/OR
/// short-circuit through jump ops exactly like the interpreter: AND stops on
/// False, OR on True — skipping the right operand's *errors* too, which is
/// part of the byte-identity contract.
class CompiledExpr {
 public:
  /// Flattens `e` for rows shaped by `bindings`. Returns nullptr when the
  /// tree is not compilable — aggregates, `*`, un-instantiated attribute
  /// variables, unbound parameters, or names that don't resolve — in which
  /// case the caller falls back to the interpreted tree walk (identical
  /// semantics, including the error the unresolved name would raise).
  static std::shared_ptr<const CompiledExpr> Compile(
      const Expr& e, const ColumnBindings& bindings, bool as_predicate);

  /// Evaluates the program over `row` in value context.
  Result<Value> EvalValue(const Row& row) const;

  /// Evaluates the program over `row` as a three-valued predicate.
  Result<TriBool> EvalPredicate(const Row& row) const;

  size_t num_ops() const { return ops_.size(); }

 private:
  CompiledExpr() = default;

  Result<Value> Run(const Row& row) const;

  std::vector<ExprOp> ops_;
  std::vector<Value> literals_;
  size_t max_stack_ = 0;
};

/// Memoizes compiled programs by (predicate-ness, expression rendering,
/// resolved slot signature) so (a) the grounding fan-out of a higher-order
/// query — N instantiations of one plan, each a fresh AST clone — compiles
/// every distinct shape once instead of once per grounding, and (b) repeated
/// executions of a plan-cache hit skip compilation entirely (the cache is
/// owned by the cached plan). Negative results are memoized too: an
/// uncompilable expression is probed once, not once per grounding.
///
/// Thread-safe; lookups happen per operator setup, never per row. Bounded:
/// at `max_entries` the map is dropped wholesale (programs still referenced
/// by running operators stay alive through their shared_ptr).
class ExprProgramCache {
 public:
  explicit ExprProgramCache(size_t max_entries = 512)
      : max_entries_(max_entries) {}

  /// The program for (e, bindings), compiling on miss. nullptr when `e` is
  /// not compilable. Bumps `compile.exprs_flattened` on `metrics` (when
  /// given) for every fresh successful compile.
  std::shared_ptr<const CompiledExpr> GetOrCompile(
      const Expr& e, const ColumnBindings& bindings, bool as_predicate,
      MetricsRegistry* metrics);

  size_t size() const;

 private:
  const size_t max_entries_;
  mutable std::mutex mu_;
  /// Value nullptr = memoized "not compilable".
  std::unordered_map<std::string, std::shared_ptr<const CompiledExpr>> map_;
};

}  // namespace dynview

#endif  // DYNVIEW_ENGINE_EXPR_COMPILE_H_

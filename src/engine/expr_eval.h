#ifndef DYNVIEW_ENGINE_EXPR_EVAL_H_
#define DYNVIEW_ENGINE_EXPR_EVAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/table.h"
#include "sql/ast.h"

namespace dynview {

/// Maps names appearing in expressions to column indexes of a working row.
/// A working row is the concatenation of the tuples bound by the tuple
/// variables joined so far, plus any derived columns.
class ColumnBindings {
 public:
  /// Registers `tuple_var.attr` → `index`.
  void AddQualified(const std::string& tuple_var, const std::string& attr,
                    int index);

  /// Registers a named binding (domain variable or computed column).
  void AddNamed(const std::string& name, int index);

  /// Looks up `tuple_var.attr`; -1 if absent.
  int LookupQualified(const std::string& tuple_var,
                      const std::string& attr) const;

  /// Looks up a bare name: named bindings first, then unique unqualified
  /// attribute. Returns -1 if absent, -2 if ambiguous.
  int LookupBare(const std::string& name) const;

  /// Merges `other` with all indexes shifted by `offset` (for joins).
  void MergeShifted(const ColumnBindings& other, int offset);

  size_t num_columns() const { return width_; }
  void set_num_columns(size_t w) { width_ = w; }

 private:
  std::unordered_map<std::string, int> qualified_;  // "t.attr" lowercased.
  std::unordered_map<std::string, int> named_;      // lowercased.
  std::unordered_map<std::string, std::vector<int>> bare_;  // attr lowercased.
  size_t width_ = 0;
};

/// Shared scalar semantics used by BOTH the interpreted tree-walk below and
/// the compiled flat-op evaluator (engine/expr_compile.h). Keeping one
/// definition of each operation — including its error messages and NULL
/// behavior — is what makes compiled output byte-identical to interpreted
/// output.
Result<Value> EvalArithOp(BinaryOp op, const Value& l, const Value& r);
Result<TriBool> EvalCompareOp(BinaryOp op, const Value& l, const Value& r);
Result<TriBool> EvalLikeOp(const Value& l, const Value& r);
Result<TriBool> EvalContainsOp(const Value& l, const Value& r);
Result<TriBool> EvalHasWordOp(const Value& l, const Value& r);

/// True → Bool(true), False → Bool(false), Unknown → NULL (the SQL
/// embedding of three-valued logic into the value domain).
Value TriBoolToValue(TriBool t);

/// Evaluates `expr` over `row` using `bindings`. Aggregates are rejected
/// (the grouping operator evaluates them; see operators.h).
Result<Value> EvaluateExpr(const Expr& expr, const Row& row,
                           const ColumnBindings& bindings);

/// Evaluates `expr` as a SQL predicate with three-valued logic. Value-typed
/// results are coerced: NULL ⇒ Unknown, BOOL ⇒ itself; other types error.
Result<TriBool> EvaluatePredicate(const Expr& expr, const Row& row,
                                  const ColumnBindings& bindings);

/// True if every column reference in `expr` resolves under `bindings` —
/// i.e. the expression can be evaluated against this working set. Used for
/// predicate pushdown and hash-join key discovery.
bool CanEvaluate(const Expr& expr, const ColumnBindings& bindings);

}  // namespace dynview

#endif  // DYNVIEW_ENGINE_EXPR_EVAL_H_

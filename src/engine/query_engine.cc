#include "engine/query_engine.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "engine/expr_compile.h"
#include "engine/expr_eval.h"
#include "engine/operators.h"
#include "observe/observer.h"
#include "schemasql/instantiate.h"
#include "sql/parser.h"

namespace dynview {

namespace {

/// A partially joined result: the table plus name→column bindings.
struct WorkingSet {
  Table table;
  ColumnBindings bindings;
};

void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kLogic && e->op == BinaryOp::kAnd) {
    SplitConjuncts(e->left.get(), out);
    SplitConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

std::string OutputName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr) {
    if (item.expr->kind == ExprKind::kVarRef) return item.expr->var_name;
    if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column.text;
    if (item.expr->kind == ExprKind::kAgg) {
      return ToLower(AggFuncName(item.expr->agg_func));
    }
  }
  return "col" + std::to_string(index);
}

/// A predicate ready for per-row evaluation: the compiled flat-op program
/// (engine/expr_compile.h) when the tree compiles, else the interpreted
/// walk — byte-identical either way. Prepared once per operator on the
/// driving thread; Eval is safe to call concurrently on distinct rows (the
/// program is immutable, its scratch thread-local).
struct PreparedPredicate {
  const Expr* expr = nullptr;
  const ColumnBindings* bindings = nullptr;
  std::shared_ptr<const CompiledExpr> program;

  Result<TriBool> Eval(const Row& r) const {
    if (program != nullptr) return program->EvalPredicate(r);
    return EvaluatePredicate(*expr, r, *bindings);
  }
};

PreparedPredicate PreparePredicate(const Expr& e, const ColumnBindings& b,
                                   const ExecContext& ctx) {
  PreparedPredicate p;
  p.expr = &e;
  p.bindings = &b;
  if (ctx.programs != nullptr) {
    p.program = ctx.programs->GetOrCompile(e, b, /*as_predicate=*/true,
                                           ctx.metrics);
  }
  return p;
}

/// Value-context counterpart of PreparedPredicate (join keys, projections,
/// group/order keys).
struct PreparedValue {
  const Expr* expr = nullptr;
  const ColumnBindings* bindings = nullptr;
  std::shared_ptr<const CompiledExpr> program;

  Result<Value> Eval(const Row& r) const {
    if (program != nullptr) return program->EvalValue(r);
    return EvaluateExpr(*expr, r, *bindings);
  }
};

PreparedValue PrepareValue(const Expr& e, const ColumnBindings& b,
                           const ExecContext& ctx) {
  PreparedValue v;
  v.expr = &e;
  v.bindings = &b;
  // A bare literal gains nothing from a program and would pollute the cache
  // with one entry per grounding-substituted label (schema variables become
  // per-grounding literals) — the interpreted eval is a single switch.
  if (ctx.programs != nullptr && e.kind != ExprKind::kLiteral) {
    v.program = ctx.programs->GetOrCompile(e, b, /*as_predicate=*/false,
                                           ctx.metrics);
  }
  return v;
}

std::vector<PreparedValue> PrepareValues(const std::vector<const Expr*>& es,
                                         const ColumnBindings& b,
                                         const ExecContext& ctx) {
  std::vector<PreparedValue> out;
  out.reserve(es.size());
  for (const Expr* e : es) out.push_back(PrepareValue(*e, b, ctx));
  return out;
}

/// Filters `in` by `pred` (rows kept iff the predicate is True),
/// morsel-parallel above the context's threshold.
Result<Table> FilterTable(const Table& in, const ColumnBindings& bindings,
                          const Expr& pred, const ExecContext& ctx) {
  const PreparedPredicate p = PreparePredicate(pred, bindings, ctx);
  return FilterRows(in, ctx, [&](const Row& r) -> Result<bool> {
    DV_ASSIGN_OR_RETURN(TriBool t, p.Eval(r));
    return t == TriBool::kTrue;
  });
}

/// Evaluates the key expressions of `keys` over `row`; a NULL component
/// marks the row as unjoinable (NULL keys never match, per SQL).
Result<Row> EvalKey(const std::vector<PreparedValue>& keys, const Row& row,
                    bool* null_key) {
  Row key;
  key.reserve(keys.size());
  *null_key = false;
  for (const PreparedValue& k : keys) {
    DV_ASSIGN_OR_RETURN(Value v, k.Eval(row));
    if (v.is_null()) *null_key = true;
    key.push_back(std::move(v));
  }
  return key;
}

/// Hash join of two working sets on evaluated key expressions. NULL keys
/// never match. Above the morsel threshold the build side is
/// hash-partitioned across shards and the probe side runs in morsels;
/// per-morsel outputs merge in morsel order, so the result row order is
/// identical to the serial join.
Result<Table> JoinOnExprs(const Table& left, const ColumnBindings& lb,
                          const Table& right, const ColumnBindings& rb,
                          const std::vector<const Expr*>& lkeys,
                          const std::vector<const Expr*>& rkeys,
                          const ExecContext& ctx) {
  std::vector<Column> cols = left.schema().columns();
  for (const Column& c : right.schema().columns()) cols.push_back(c);
  Table out{Schema(std::move(cols))};

  // Key programs compiled once per join, shared by every build/probe worker.
  const std::vector<PreparedValue> lk = PrepareValues(lkeys, lb, ctx);
  const std::vector<PreparedValue> rk = PrepareValues(rkeys, rb, ctx);

  using Index =
      std::unordered_map<Row, std::vector<size_t>, RowGroupHash, RowGroupEq>;
  const bool parallel = ctx.ShouldParallelize(left.num_rows()) ||
                        ctx.ShouldParallelize(right.num_rows());
  const size_t out_width = out.schema().num_columns();

  if (!parallel) {
    Index index;
    index.reserve(right.num_rows());
    for (size_t i = 0; i < right.num_rows(); ++i) {
      bool null_key = false;
      DV_ASSIGN_OR_RETURN(Row key, EvalKey(rk, right.row(i), &null_key));
      if (!null_key) index[std::move(key)].push_back(i);
    }
    size_t since_check = 0;
    for (const Row& lrow : left.rows()) {
      if (ctx.guard != nullptr && (since_check++ & 1023) == 0) {
        DV_RETURN_IF_ERROR(ctx.CheckGuard());
      }
      bool null_key = false;
      DV_ASSIGN_OR_RETURN(Row key, EvalKey(lk, lrow, &null_key));
      if (null_key) continue;
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (size_t ri : it->second) {
        Row combined = lrow;
        const Row& rrow = right.row(ri);
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        out.AppendRowUnchecked(std::move(combined));
      }
    }
    DV_RETURN_IF_ERROR(ctx.ChargeRows(out.num_rows(), out_width));
    return out;
  }

  // Partitioned build. Phase 1 (morsel-parallel): evaluate every build key.
  // Phase 2 (shard-parallel): each shard inserts the keys hashing into it,
  // so every shard map has exactly one writer.
  RowGroupHash hasher;
  const size_t num_shards = ctx.pool->num_workers() + 1;
  const size_t build_rows = right.num_rows();
  std::vector<Row> build_keys(build_rows);
  std::vector<size_t> build_hash(build_rows);
  std::vector<char> build_skip(build_rows, 0);
  {
    const size_t m = ctx.MorselSize(build_rows);
    const size_t n = build_rows == 0 ? 0 : (build_rows + m - 1) / m;
    std::vector<Status> errors(n, Status::OK());
    ctx.pool->ParallelFor(
        n,
        [&](size_t p) {
          for (size_t i = p * m, end = std::min(build_rows, (p + 1) * m);
               i < end; ++i) {
            bool null_key = false;
            Result<Row> key = EvalKey(rk, right.row(i), &null_key);
            if (!key.ok()) {
              errors[p] = key.status();
              return;
            }
            if (null_key) {
              build_skip[i] = 1;
              continue;
            }
            build_keys[i] = std::move(key).value();
            build_hash[i] = hasher(build_keys[i]);
          }
        },
        ctx.CancelFlag());
    DV_RETURN_IF_ERROR(ctx.CheckGuard());
    for (const Status& s : errors) DV_RETURN_IF_ERROR(s);
  }
  std::vector<Index> shards(num_shards);
  // Skipped shard inserts are safe: a skip implies a tripped guard, and the
  // probe morsels below re-check the guard before any merge.
  ctx.pool->ParallelFor(
      num_shards,
      [&](size_t s) {
        Index& shard = shards[s];
        for (size_t i = 0; i < build_rows; ++i) {
          if (!build_skip[i] && build_hash[i] % num_shards == s) {
            shard[std::move(build_keys[i])].push_back(i);
          }
        }
      },
      ctx.CancelFlag());

  // Morsel probe, merged in morsel order.
  const size_t probe_rows = left.num_rows();
  const size_t m = ctx.MorselSize(probe_rows);
  const size_t n = probe_rows == 0 ? 0 : (probe_rows + m - 1) / m;
  std::vector<Table> parts(n);
  std::vector<Status> errors(n, Status::OK());
  ctx.pool->ParallelFor(
      n,
      [&](size_t p) {
        Table part(out.schema());
        errors[p] = ctx.CheckGuard();
        if (errors[p].ok()) {
          for (size_t i = p * m, end = std::min(probe_rows, (p + 1) * m);
               i < end; ++i) {
            const Row& lrow = left.row(i);
            bool null_key = false;
            Result<Row> key = EvalKey(lk, lrow, &null_key);
            if (!key.ok()) {
              errors[p] = key.status();
              break;
            }
            if (null_key) continue;
            const Index& shard = shards[hasher(key.value()) % num_shards];
            auto it = shard.find(key.value());
            if (it == shard.end()) continue;
            for (size_t ri : it->second) {
              Row combined = lrow;
              const Row& rrow = right.row(ri);
              combined.insert(combined.end(), rrow.begin(), rrow.end());
              part.AppendRowUnchecked(std::move(combined));
            }
          }
          if (errors[p].ok()) {
            errors[p] = ctx.ChargeRows(part.num_rows(), out_width);
          }
        }
        parts[p] = std::move(part);
      },
      ctx.CancelFlag());
  DV_RETURN_IF_ERROR(ctx.CheckGuard());
  for (size_t p = 0; p < n; ++p) {
    DV_RETURN_IF_ERROR(errors[p]);
    DV_RETURN_IF_ERROR(out.AppendTable(std::move(parts[p])));
  }
  return out;
}

/// Computes one aggregate over the rows of a group.
Result<Value> ComputeAggregate(const Expr& agg,
                               const std::vector<const Row*>& rows,
                               const ColumnBindings& bindings) {
  if (agg.agg_func == AggFunc::kCountStar) {
    return Value::Int(static_cast<int64_t>(rows.size()));
  }
  std::vector<Value> values;
  values.reserve(rows.size());
  for (const Row* r : rows) {
    DV_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*agg.left, *r, bindings));
    if (!v.is_null()) values.push_back(std::move(v));
  }
  if (agg.agg_distinct) {
    std::vector<Value> uniq;
    std::unordered_set<size_t> seen_hashes;  // Coarse filter then exact scan.
    for (const Value& v : values) {
      bool dup = false;
      for (const Value& u : uniq) {
        if (u.GroupEquals(v)) {
          dup = true;
          break;
        }
      }
      if (!dup) uniq.push_back(v);
    }
    values = std::move(uniq);
  }
  switch (agg.agg_func) {
    case AggFunc::kCount:
      return Value::Int(static_cast<int64_t>(values.size()));
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      if (values.empty()) return Value::Null();
      bool all_int = true;
      double dsum = 0;
      int64_t isum = 0;
      for (const Value& v : values) {
        if (!v.is_numeric()) {
          return Status::TypeError("SUM/AVG over non-numeric values");
        }
        if (v.kind() != TypeKind::kInt) all_int = false;
        dsum += v.NumericAsDouble();
        if (v.kind() == TypeKind::kInt) isum += v.as_int();
      }
      if (agg.agg_func == AggFunc::kAvg) {
        return Value::Double(dsum / static_cast<double>(values.size()));
      }
      return all_int ? Value::Int(isum) : Value::Double(dsum);
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (values.empty()) return Value::Null();
      Value best = values[0];
      for (size_t i = 1; i < values.size(); ++i) {
        int cmp = 0;
        DV_ASSIGN_OR_RETURN(TriBool known,
                            Value::Compare(values[i], best, &cmp));
        if (known != TriBool::kTrue) {
          return Status::TypeError("MIN/MAX over incomparable values");
        }
        bool take = agg.agg_func == AggFunc::kMin ? cmp < 0 : cmp > 0;
        if (take) best = values[i];
      }
      return best;
    }
    default:
      return Status::Internal("bad aggregate");
  }
}

/// Replaces every aggregate node by its computed value over the group,
/// returning an aggregate-free clone evaluable on the representative row.
Result<std::unique_ptr<Expr>> FoldAggregates(
    const Expr& e, const std::vector<const Row*>& rows,
    const ColumnBindings& bindings) {
  if (e.kind == ExprKind::kAgg) {
    DV_ASSIGN_OR_RETURN(Value v, ComputeAggregate(e, rows, bindings));
    return Expr::MakeLiteral(std::move(v));
  }
  std::unique_ptr<Expr> out = e.Clone();
  if (e.left) {
    DV_ASSIGN_OR_RETURN(out->left, FoldAggregates(*e.left, rows, bindings));
  }
  if (e.right) {
    DV_ASSIGN_OR_RETURN(out->right, FoldAggregates(*e.right, rows, bindings));
  }
  return out;
}

/// True if the tree references any column or variable.
bool HasRefs(const Expr& e) {
  if (e.kind == ExprKind::kVarRef || e.kind == ExprKind::kColumnRef) return true;
  if (e.left && HasRefs(*e.left)) return true;
  if (e.right && HasRefs(*e.right)) return true;
  return false;
}

/// Collects the maximal aggregate-free subexpressions (and aggregate
/// arguments) that reference columns — the base values a global aggregation
/// layer needs from the grounded union.
void CollectBaseExprs(const Expr& e,
                      const std::function<void(const Expr&)>& add) {
  if (e.kind == ExprKind::kAgg) {
    if (e.left) add(*e.left);
    return;
  }
  if (!e.ContainsAggregate()) {
    if (HasRefs(e)) add(e);
    return;
  }
  if (e.left) CollectBaseExprs(*e.left, add);
  if (e.right) CollectBaseExprs(*e.right, add);
}

/// Rewrites `e` against the inner projection: any subtree whose rendering is
/// a collected base expression becomes a reference to its inner column.
std::unique_ptr<Expr> RewriteToInner(
    const Expr& e, const std::map<std::string, std::string>& expr_to_col) {
  if (e.kind != ExprKind::kLiteral && e.kind != ExprKind::kStar) {
    auto it = expr_to_col.find(e.ToString());
    if (it != expr_to_col.end()) return Expr::MakeVarRef(it->second);
  }
  std::unique_ptr<Expr> out = e.Clone();
  if (e.left) out->left = RewriteToInner(*e.left, expr_to_col);
  if (e.right) out->right = RewriteToInner(*e.right, expr_to_col);
  return out;
}

}  // namespace

Result<Table> QueryEngine::ExecuteSql(const std::string& sql) {
  return ExecuteSql(sql, query_ctx_);
}

Result<Table> QueryEngine::ExecuteSql(const std::string& sql,
                                      QueryContext* qc) {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                      Parser::ParseSelect(sql));
  return Execute(stmt.get(), qc);
}

std::shared_ptr<const CatalogSnapshot> QueryEngine::PinnedSnapshot(
    QueryContext* qc) const {
  // A pinned snapshot only applies when it was taken from this engine's own
  // catalog: sub-engines over scratch catalogs (the higher-order outer
  // layer, plan execution scratch) must read their own catalog, not the
  // query's pin.
  if (qc != nullptr && qc->snapshot() != nullptr &&
      qc->snapshot()->origin() == catalog_) {
    return qc->snapshot();
  }
  return catalog_->Snapshot();
}

namespace {

/// Records the failpoint trips injected while alive as a counter delta on
/// destruction. Uses Add (not Set) so several Execute calls under one
/// observer accumulate; the underlying count is process-global, so the delta
/// attributes trips of *concurrent* queries to whichever observer is live —
/// fine for the single-driver execution model this engine assumes.
struct TripDelta {
  MetricsRegistry* metrics;
  uint64_t base = metrics == nullptr ? 0 : FailPoints::TripCount();
  ~TripDelta() {
    if (metrics != nullptr) {
      metrics->Add(counters::kFailpointTrips, FailPoints::TripCount() - base);
    }
  }
};

}  // namespace

Result<Table> QueryEngine::Execute(SelectStmt* stmt) {
  return Execute(stmt, query_ctx_);
}

Result<Table> QueryEngine::Execute(SelectStmt* stmt, QueryContext* qc) {
  // The snapshot is pinned once here; every branch, grounding and operator
  // below reads this one version.
  return ExecuteImpl(stmt, qc, PinnedSnapshot(qc));
}

Result<Table> QueryEngine::ExecuteImpl(SelectStmt* stmt, QueryContext* qc,
                                       const SnapshotRef& snap) {
  const ExecContext octx = Ctx(qc, snap);
  ScopedSpan query_span(octx.trace, "query.execute");
  TripDelta trips{octx.metrics};
  Table acc;
  bool first = true;
  bool pending_all = false;
  for (SelectStmt* branch = stmt; branch != nullptr;
       branch = branch->union_next.get()) {
    // Guard check per UNION branch: a 0 ms deadline or a pre-cancelled
    // context trips before any evaluation starts.
    if (qc != nullptr) {
      DV_RETURN_IF_ERROR(qc->CheckGuards());
    }
    DV_ASSIGN_OR_RETURN(BoundQuery bq, Binder::BindBranch(branch));
    DV_ASSIGN_OR_RETURN(Table t, EvaluateBranchImpl(*branch, bq, qc, snap));
    if (first) {
      acc = std::move(t);
      first = false;
    } else {
      // Union contributions counted on the driving thread, pre-Distinct:
      // the value equals the bag-union size independent of thread count.
      octx.Count(counters::kRowsUnioned, t.num_rows());
      // Move-append instead of UnionAll: the accumulator is never recopied.
      DV_RETURN_IF_ERROR(acc.AppendTable(std::move(t)));
      if (!pending_all) {
        Table distinct = acc.Distinct();
        acc = std::move(distinct);
      }
    }
    pending_all = branch->union_all;
  }
  if (first) return Status::Internal("unset");
  return acc;
}

ThreadPool* QueryEngine::EnsurePool() {
  ThreadPool* existing = CurrentPool();
  if (existing != nullptr) return existing;
  size_t threads = exec_.ResolvedThreads();
  if (threads <= 1) return nullptr;
  // First caller in wins; concurrent guarded queries sharing one engine all
  // reach the same pool.
  std::lock_guard<std::mutex> lock(pool_mu_);
  std::shared_ptr<ThreadPool> pool = pool_.load(std::memory_order_acquire);
  if (pool == nullptr) {
    // The queue cap backpressures runaway fan-outs (ParallelFor degrades to
    // fewer helpers instead of enqueueing unbounded work).
    pool = std::make_shared<ThreadPool>(threads - 1, exec_.max_queued_tasks);
    pool_.store(pool, std::memory_order_release);
  }
  return pool.get();
}

ThreadPool* QueryEngine::CurrentPool() const {
  // The pool is created once and never replaced, so the raw pointer from a
  // dropped shared_ptr load stays valid for the engine's lifetime.
  return pool_.load(std::memory_order_acquire).get();
}

ExecContext QueryEngine::Ctx(QueryContext* qc, const SnapshotRef& snap) const {
  ExecContext ctx;
  ctx.pool = CurrentPool();
  ctx.morsel_rows = exec_.morsel_rows;
  ctx.guard = qc;
  ctx.snapshot = snap.get();
  if (exec_.enable_trace && qc != nullptr && qc->observer() != nullptr) {
    ctx.trace = &qc->observer()->trace;
    ctx.metrics = &qc->observer()->metrics;
  }
  if (exec_.compile_expressions) {
    // A cached plan's own program memo wins (satisfying one-compile-per-plan
    // across the grounding fan-out and across executions); otherwise the
    // engine's default cache still dedups within and across queries.
    ctx.programs = (qc != nullptr && qc->expr_programs() != nullptr)
                       ? qc->expr_programs().get()
                       : &default_programs_;
  }
  return ctx;
}

namespace {

Table ApplyLimit(Table t, int64_t limit) {
  // In-place truncation: the kept prefix is never copied.
  if (limit >= 0) t.Truncate(static_cast<size_t>(limit));
  return t;
}

/// True if any constant tuple reference of `stmt` scans more rows than the
/// morsel threshold — the cheap test for whether spinning up workers can pay
/// off on a branch without a grounding fan-out.
bool HasLargeScan(const SelectStmt& stmt, const CatalogReader& catalog,
                  const std::string& default_db, size_t threshold) {
  for (const FromItem& f : stmt.from_items) {
    if (f.kind != FromItemKind::kTupleVar) continue;
    if (f.db.is_variable || f.rel.is_variable) continue;
    std::string db = f.db.empty() ? default_db : f.db.text;
    Result<const Table*> t = catalog.ResolveTable(db, f.rel.text);
    if (t.ok() && t.value()->num_rows() > threshold) return true;
  }
  return false;
}

}  // namespace

Result<Table> QueryEngine::EvaluateBranch(const SelectStmt& stmt,
                                          const BoundQuery& bq) {
  return EvaluateBranch(stmt, bq, query_ctx_);
}

Result<Table> QueryEngine::EvaluateBranch(const SelectStmt& stmt,
                                          const BoundQuery& bq,
                                          QueryContext* qc) {
  return EvaluateBranchImpl(stmt, bq, qc, PinnedSnapshot(qc));
}

Result<Table> QueryEngine::EvaluateBranchImpl(const SelectStmt& stmt,
                                              const BoundQuery& bq,
                                              QueryContext* qc,
                                              const SnapshotRef& snap) {
  if (stmt.limit >= 0 && stmt.union_next != nullptr) {
    return Status::Unsupported("LIMIT on a UNION branch");
  }
  if (!bq.higher_order) {
    // Workers are spun up lazily, and only when a scan is large enough for
    // the morsel-driven operators to engage.
    if (HasLargeScan(stmt, *snap, default_db_, exec_.morsel_rows)) {
      EnsurePool();
    }
    return EvaluateFirstOrder(stmt, bq, qc, snap);
  }

  // SchemaSQL semantics: grouping, aggregation, DISTINCT and ORDER BY apply
  // over the union of ALL groundings (Ex. 5.2: max(P) ranges across every
  // attribute instantiation). Such queries run in two layers: an
  // aggregate-free inner query evaluated per grounding and unioned, then
  // the aggregation layer over the union.
  bool needs_global = stmt.distinct || !stmt.order_by.empty() ||
                      !stmt.group_by.empty() || stmt.having != nullptr;
  for (const SelectItem& item : stmt.select_list) {
    if (item.expr->ContainsAggregate()) needs_global = true;
  }
  if (needs_global) return EvaluateHigherOrderGlobal(stmt, bq, qc, snap);

  // Observability context for the fan-out (pool intentionally not ensured
  // yet — only the trace/metrics sinks are used before evaluation starts).
  const ExecContext fctx = Ctx(qc, snap);
  DV_ASSIGN_OR_RETURN(
      std::vector<InstantiatedQuery> ground,
      InstantiateSchemaVars(stmt, bq, *snap, default_db_, fctx.metrics));
  // Empty table with the statement's output names — the zero-grounding
  // result, also produced when every grounding was skipped by policy (star
  // cannot be expanded without a grounding).
  auto empty_result = [&stmt]() -> Result<Table> {
    std::vector<Column> cols;
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      if (stmt.select_list[i].expr->kind == ExprKind::kStar) {
        return Status::Unsupported(
            "SELECT * requires at least one schema-variable grounding");
      }
      cols.emplace_back(OutputName(stmt.select_list[i], i), TypeKind::kNull);
    }
    return Table(Schema(std::move(cols)));
  };
  if (ground.empty()) return empty_result();

  // The grounding fan-out is embarrassingly parallel (the paper's Sec. 6
  // "orchestration around a conventional evaluator"): every grounding is an
  // independent first-order query over a clone of the already-bound AST.
  // SubstituteLabels preserves the binder's NameTerm annotations, so no
  // per-grounding re-parse/re-bind is needed — and EvaluateFirstOrder reads
  // annotations from the AST only. Results land in per-grounding slots and
  // merge in declaration order, so the output (rows *and* their order, or
  // the reported error) is identical to serial evaluation.
  ThreadPool* pool = nullptr;
  if (ground.size() > 1 ||
      HasLargeScan(*ground[0].query, *snap, default_db_,
                   exec_.morsel_rows)) {
    pool = EnsurePool();
  }
  fctx.Count(counters::kGroundingsEvaluated, ground.size());
  ScopedSpan fanout_span(fctx.trace, "grounding.fanout",
                         std::to_string(ground.size()) + " groundings");
  const SourcePolicy policy =
      qc == nullptr ? SourcePolicy::kFailFast : qc->guards().source_policy;
  // Each grounding is one source's independent contribution (local-as-view:
  // a source relation per grounding), so source-level fault tolerance —
  // failpoint injection, retry with backoff, skip-and-report — applies at
  // exactly this granularity.
  auto source_label = [](const InstantiatedQuery& g) {
    std::string label;
    for (const auto& [var, chosen] : g.labels) {
      (void)var;
      if (!label.empty()) label += ",";
      label += chosen;
    }
    return label;
  };
  auto eval_attempt = [&](size_t i) -> Result<Table> {
    if (FailPoints::AnyArmed()) {
      // Match details are lowercased (like catalog.resolve's `db::rel`) so
      // failpoint specs don't depend on label casing.
      DV_RETURN_IF_ERROR(FailPoints::Check(
          "engine.grounding", ToLower(source_label(ground[i]))));
    }
    return EvaluateFirstOrder(*ground[i].query, bq, qc, snap);
  };
  std::vector<Result<Table>> parts(ground.size(),
                                   Result<Table>(Status::Internal("pending")));
  auto eval_one = [&](size_t i) {
    // May run on a pool worker: the explicit parent stitches the span under
    // the fan-out even though the thread-local nesting stack is empty here.
    ScopedSpan gspan(fctx.trace, "grounding", source_label(ground[i]),
                     fanout_span.id());
    Result<Table> r = eval_attempt(i);
    if (policy == SourcePolicy::kRetry && qc != nullptr) {
      const QueryGuards& g = qc->guards();
      for (int attempt = 1;
           attempt <= g.max_retries && !r.ok() &&
           IsTransient(r.status().code()) && qc->CheckGuards().ok();
           ++attempt) {
        fctx.Count(counters::kSourceRetries, 1);
        int backoff_ms =
            std::min(100, g.retry_backoff_ms << (attempt - 1));
        if (backoff_ms > 0) {
          // Injectable backoff: tests and the chaos harness replace the real
          // sleep with a recording hook, keeping retry schedules
          // deterministic and fast.
          if (g.retry_sleep) {
            g.retry_sleep(backoff_ms);
          } else {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
          }
        }
        r = eval_attempt(i);
      }
    }
    parts[i] = std::move(r);
  };
  if (pool != nullptr && ground.size() > 1) {
    pool->ParallelFor(ground.size(), eval_one,
                      qc == nullptr ? nullptr : qc->cancel_flag());
  } else {
    for (size_t i = 0; i < ground.size(); ++i) {
      if (qc != nullptr &&
          qc->cancel_flag()->load(std::memory_order_relaxed)) {
        break;  // A tripped guard stops the serial fan-out too.
      }
      eval_one(i);
    }
  }
  // A guard trip beats per-grounding errors: skipped slots were never
  // written, and the trip status is the query's real outcome.
  if (qc != nullptr) DV_RETURN_IF_ERROR(qc->CheckGuards());
  Table acc;
  bool first = true;
  for (size_t i = 0; i < ground.size(); ++i) {
    Result<Table>& part = parts[i];
    if (!part.ok()) {
      // Transient source failures degrade under kSkipAndReport: drop this
      // grounding's contribution and record which source was omitted.
      // Warnings are appended here, in declaration order on the driving
      // thread, so partial results are deterministic across thread counts.
      if (qc != nullptr && policy == SourcePolicy::kSkipAndReport &&
          IsTransient(part.status().code())) {
        fctx.Count(counters::kSourcesSkipped, 1);
        qc->AddWarning({source_label(ground[i]), part.status()});
        continue;
      }
      return part.status();
    }
    // Grounding contributions counted in declaration order on the driving
    // thread: the bag-union size is identical across thread counts.
    fctx.Count(counters::kRowsUnioned, part.value().num_rows());
    if (first) {
      acc = std::move(part).value();
      first = false;
    } else {
      DV_RETURN_IF_ERROR(acc.AppendTable(std::move(part).value()));
    }
  }
  if (first) {
    // Every grounding was skipped: an empty (but well-formed) result whose
    // warnings name what is missing.
    DV_ASSIGN_OR_RETURN(acc, empty_result());
  }
  return ApplyLimit(std::move(acc), stmt.limit);
}

Result<Table> QueryEngine::EvaluateHigherOrderGlobal(
    const SelectStmt& stmt, const BoundQuery& bq, QueryContext* qc,
    const SnapshotRef& snap) {
  (void)bq;  // Binding annotations live in the AST; kept for symmetry.
  // 1. Collect the base expressions (group keys, aggregate arguments,
  //    aggregate-free select/having/order subtrees).
  std::map<std::string, std::string> expr_to_col;
  std::vector<std::unique_ptr<Expr>> base;
  auto add = [&](const Expr& e) {
    std::string key = e.ToString();
    if (expr_to_col.count(key) > 0) return;
    expr_to_col[key] = "bc" + std::to_string(base.size());
    base.push_back(e.Clone());
  };
  for (const auto& g : stmt.group_by) add(*g);
  for (const SelectItem& item : stmt.select_list) {
    if (item.expr->kind == ExprKind::kStar) {
      return Status::Unsupported(
          "SELECT * cannot be combined with global higher-order "
          "aggregation/ordering");
    }
    CollectBaseExprs(*item.expr, add);
  }
  if (stmt.having) CollectBaseExprs(*stmt.having, add);
  for (const OrderItem& o : stmt.order_by) CollectBaseExprs(*o.expr, add);

  // 2. Inner query: same FROM/WHERE, projecting the base expressions.
  std::unique_ptr<SelectStmt> inner = stmt.Clone();
  inner->distinct = false;
  inner->group_by.clear();
  inner->having.reset();
  inner->order_by.clear();
  inner->limit = -1;
  inner->union_next.reset();
  inner->select_list.clear();
  for (auto& b : base) {
    std::string name = expr_to_col[b->ToString()];
    inner->select_list.emplace_back(std::move(b), name);
  }
  if (inner->select_list.empty()) {
    // e.g. SELECT COUNT(*) — project a constant to keep row multiplicity.
    inner->select_list.emplace_back(Expr::MakeLiteral(Value::Int(1)), "bc0");
  }
  DV_ASSIGN_OR_RETURN(BoundQuery ibq, Binder::BindBranch(inner.get()));
  DV_ASSIGN_OR_RETURN(Table rows, EvaluateBranchImpl(*inner, ibq, qc, snap));

  // 3. Outer query over the unioned rows in a scratch catalog.
  Catalog scratch;
  DV_RETURN_IF_ERROR(scratch.PutTable("sc", "inner_rows", std::move(rows)));
  auto outer = std::make_unique<SelectStmt>();
  outer->distinct = stmt.distinct;
  outer->limit = stmt.limit;
  FromItem scan;
  scan.kind = FromItemKind::kTupleVar;
  scan.rel = NameTerm("inner_rows");
  scan.var = "inner_rows";
  outer->from_items.push_back(std::move(scan));
  for (size_t i = 0; i < stmt.select_list.size(); ++i) {
    outer->select_list.emplace_back(
        RewriteToInner(*stmt.select_list[i].expr, expr_to_col),
        OutputName(stmt.select_list[i], i));
  }
  for (const auto& g : stmt.group_by) {
    outer->group_by.push_back(RewriteToInner(*g, expr_to_col));
  }
  if (stmt.having) outer->having = RewriteToInner(*stmt.having, expr_to_col);
  for (const OrderItem& o : stmt.order_by) {
    OrderItem no;
    no.expr = RewriteToInner(*o.expr, expr_to_col);
    no.descending = o.descending;
    outer->order_by.push_back(std::move(no));
  }
  QueryEngine sub(&scratch, "sc", exec_);
  // The outer layer reuses this engine's workers and stays under the same
  // guards; it reads the scratch catalog's own (freshly built) snapshot,
  // never the query's pin, which belongs to the main catalog.
  sub.pool_.store(pool_.load(std::memory_order_acquire),
                  std::memory_order_release);
  DV_ASSIGN_OR_RETURN(BoundQuery obq, Binder::BindBranch(outer.get()));
  return sub.EvaluateFirstOrder(*outer, obq, qc, scratch.Snapshot());
}

Result<Table> QueryEngine::EvaluateFirstOrder(const SelectStmt& stmt,
                                              const BoundQuery& bq,
                                              QueryContext* qc,
                                              const SnapshotRef& snap) {
  (void)bq;  // Binding annotations live in the AST; kept for symmetry.
  // May run on a pool worker (one grounding of a parallel fan-out); nested
  // parallel regions then degrade to inline loops inside ParallelFor.
  const ExecContext ctx = Ctx(qc, snap);
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(stmt.where.get(), &conjuncts);
  std::vector<bool> applied(conjuncts.size(), false);

  // Constant conjuncts (e.g. grounded label comparisons such as
  // 'price' <> 'date') evaluate once; a false one empties every scan.
  bool infeasible = false;
  {
    ColumnBindings empty;
    Row no_row;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (!CanEvaluate(*conjuncts[i], empty)) continue;
      DV_ASSIGN_OR_RETURN(TriBool t,
                          EvaluatePredicate(*conjuncts[i], no_row, empty));
      if (t != TriBool::kTrue) infeasible = true;
      applied[i] = true;
    }
  }

  // Join pipeline over tuple variables in declaration order.
  WorkingSet w;
  bool first = true;
  for (const FromItem& f : stmt.from_items) {
    if (f.kind != FromItemKind::kTupleVar) continue;
    // One guard check per pipeline step: scans and joins below run whole
    // operators, each of which re-checks internally at morsel granularity.
    DV_RETURN_IF_ERROR(ctx.CheckGuard());
    if (f.db.is_variable || f.rel.is_variable) {
      return Status::Internal("schema variable survived grounding: " +
                              f.ToString());
    }
    std::string db_name = f.db.empty() ? default_db_ : f.db.text;
    DV_ASSIGN_OR_RETURN(const Table* base,
                        snap->ResolveTable(db_name, f.rel.text));

    // Scan with bindings for this tuple variable.
    WorkingSet scan;
    scan.table = Table(base->schema());
    for (size_t c = 0; c < base->schema().num_columns(); ++c) {
      scan.bindings.AddQualified(f.var, base->schema().column(c).name,
                                 static_cast<int>(c));
    }
    // Register domain variables projecting this tuple variable.
    for (const FromItem& d : stmt.from_items) {
      if (d.kind != FromItemKind::kDomainVar) continue;
      if (!EqualsIgnoreCase(d.tuple, f.var)) continue;
      if (d.attr.is_variable) {
        return Status::Internal("attribute variable survived grounding: " +
                                d.ToString());
      }
      int idx = scan.bindings.LookupQualified(f.var, d.attr.text);
      if (idx < 0) {
        return Status::BindError("relation '" + f.rel.text +
                                 "' has no attribute '" + d.attr.text +
                                 "' (domain variable " + d.var + ")");
      }
      scan.bindings.AddNamed(d.var, idx);
    }
    // Predicate pushdown, fused into the scan: pushed conjuncts apply while
    // copying base rows (morsel-parallel above the threshold), so rows they
    // reject are never materialized in the working set.
    std::vector<const Expr*> pushed;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (applied[i] || conjuncts[i]->ContainsAggregate()) continue;
      if (!CanEvaluate(*conjuncts[i], scan.bindings)) continue;
      pushed.push_back(conjuncts[i]);
      applied[i] = true;
    }
    if (!infeasible) {
      std::vector<PreparedPredicate> pushed_preds;
      pushed_preds.reserve(pushed.size());
      for (const Expr* c : pushed) {
        pushed_preds.push_back(PreparePredicate(*c, scan.bindings, ctx));
      }
      DV_ASSIGN_OR_RETURN(
          scan.table, FilterRows(*base, ctx, [&](const Row& r) -> Result<bool> {
            for (const PreparedPredicate& p : pushed_preds) {
              DV_ASSIGN_OR_RETURN(TriBool t, p.Eval(r));
              if (t != TriBool::kTrue) return false;
            }
            return true;
          }));
    }

    if (first) {
      w = std::move(scan);
      first = false;
      continue;
    }

    // Discover equi-join keys among the unapplied conjuncts.
    std::vector<const Expr*> lkeys, rkeys;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (applied[i]) continue;
      const Expr* c = conjuncts[i];
      if (c->kind != ExprKind::kCompare || c->op != BinaryOp::kEq) continue;
      if (CanEvaluate(*c->left, w.bindings) &&
          CanEvaluate(*c->right, scan.bindings)) {
        lkeys.push_back(c->left.get());
        rkeys.push_back(c->right.get());
        applied[i] = true;
      } else if (CanEvaluate(*c->right, w.bindings) &&
                 CanEvaluate(*c->left, scan.bindings)) {
        lkeys.push_back(c->right.get());
        rkeys.push_back(c->left.get());
        applied[i] = true;
      }
    }
    int old_width = static_cast<int>(w.table.schema().num_columns());
    Table joined;
    if (!lkeys.empty()) {
      DV_ASSIGN_OR_RETURN(joined,
                          JoinOnExprs(w.table, w.bindings, scan.table,
                                      scan.bindings, lkeys, rkeys, ctx));
    } else {
      DV_ASSIGN_OR_RETURN(joined, CrossProduct(w.table, scan.table, ctx));
    }
    w.table = std::move(joined);
    w.bindings.MergeShifted(scan.bindings, old_width);

    // Apply conjuncts that have just become evaluable.
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (applied[i] || conjuncts[i]->ContainsAggregate()) continue;
      if (!CanEvaluate(*conjuncts[i], w.bindings)) continue;
      DV_ASSIGN_OR_RETURN(w.table,
                          FilterTable(w.table, w.bindings, *conjuncts[i], ctx));
      applied[i] = true;
    }
  }
  if (first) {
    return Status::BindError("query has no tuple variables in FROM");
  }
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (!applied[i]) {
      return Status::BindError("unresolvable predicate: " +
                               conjuncts[i]->ToString());
    }
  }

  // Output schema.
  bool has_star = false;
  bool has_agg = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const SelectItem& item : stmt.select_list) {
    if (item.expr->kind == ExprKind::kStar) has_star = true;
    if (item.expr->ContainsAggregate()) has_agg = true;
  }
  if (has_star && has_agg) {
    return Status::Unsupported("SELECT * cannot be combined with aggregation");
  }

  std::vector<Column> out_cols;
  if (has_star) {
    for (const Column& c : w.table.schema().columns()) out_cols.push_back(c);
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      if (stmt.select_list[i].expr->kind != ExprKind::kStar) {
        out_cols.emplace_back(OutputName(stmt.select_list[i], i),
                              TypeKind::kNull);
      }
    }
  } else {
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      out_cols.emplace_back(OutputName(stmt.select_list[i], i),
                            TypeKind::kNull);
    }
  }
  Table out{Schema(std::move(out_cols))};
  std::vector<Row> order_keys;

  // ORDER BY may reference a select-list alias; resolve those to output
  // positions (standard SQL), everything else evaluates in input context.
  std::unordered_map<std::string, size_t> alias_pos;
  for (size_t i = 0; i < stmt.select_list.size(); ++i) {
    std::string name = OutputName(stmt.select_list[i], i);
    alias_pos.emplace(ToLower(name), i);
  }
  auto order_output_pos = [&](const Expr& e) -> int {
    if (e.kind != ExprKind::kVarRef) return -1;
    // Input columns win over aliases only when resolvable; alias resolution
    // is the fallback for otherwise-unresolvable names.
    if (CanEvaluate(e, w.bindings)) return -1;
    auto it = alias_pos.find(ToLower(e.var_name));
    if (it == alias_pos.end()) return -1;
    return static_cast<int>(it->second);
  };

  size_t since_check = 0;
  if (!has_agg) {
    // Projection and order-key programs compiled once, evaluated per row.
    std::vector<PreparedValue> proj(stmt.select_list.size());
    for (size_t si = 0; si < stmt.select_list.size(); ++si) {
      if (stmt.select_list[si].expr->kind == ExprKind::kStar) continue;
      proj[si] = PrepareValue(*stmt.select_list[si].expr, w.bindings, ctx);
    }
    std::vector<PreparedValue> order_vals;
    order_vals.reserve(stmt.order_by.size());
    for (const OrderItem& o : stmt.order_by) {
      order_vals.push_back(PrepareValue(*o.expr, w.bindings, ctx));
    }
    out.Reserve(w.table.num_rows());
    for (const Row& r : w.table.rows()) {
      if ((since_check++ & 1023) == 0) DV_RETURN_IF_ERROR(ctx.CheckGuard());
      Row orow;
      for (size_t si = 0; si < stmt.select_list.size(); ++si) {
        if (stmt.select_list[si].expr->kind == ExprKind::kStar) {
          orow.insert(orow.end(), r.begin(), r.end());
          continue;
        }
        DV_ASSIGN_OR_RETURN(Value v, proj[si].Eval(r));
        orow.push_back(std::move(v));
      }
      if (!stmt.order_by.empty()) {
        Row key;
        for (size_t k = 0; k < stmt.order_by.size(); ++k) {
          int pos = order_output_pos(*stmt.order_by[k].expr);
          if (pos >= 0) {
            key.push_back(orow[pos]);
            continue;
          }
          DV_ASSIGN_OR_RETURN(Value v, order_vals[k].Eval(r));
          key.push_back(std::move(v));
        }
        order_keys.push_back(std::move(key));
      }
      out.AppendRowUnchecked(std::move(orow));
    }
  } else {
    // Group rows by the GROUP BY key (single global group when absent).
    std::unordered_map<Row, size_t, RowGroupHash, RowGroupEq> group_of;
    std::vector<std::vector<const Row*>> groups;
    std::vector<Row> group_keys;
    if (stmt.group_by.empty()) {
      groups.emplace_back();
      group_keys.emplace_back();
      for (const Row& r : w.table.rows()) groups[0].push_back(&r);
    } else {
      // Group-key programs compiled once; the per-group aggregate folding
      // below stays interpreted (aggregates never compile).
      std::vector<PreparedValue> gkeys;
      gkeys.reserve(stmt.group_by.size());
      for (const auto& g : stmt.group_by) {
        gkeys.push_back(PrepareValue(*g, w.bindings, ctx));
      }
      for (const Row& r : w.table.rows()) {
        Row key;
        key.reserve(stmt.group_by.size());
        for (const PreparedValue& g : gkeys) {
          DV_ASSIGN_OR_RETURN(Value v, g.Eval(r));
          key.push_back(std::move(v));
        }
        auto [it, inserted] = group_of.emplace(key, groups.size());
        if (inserted) {
          groups.emplace_back();
          group_keys.push_back(std::move(key));
        }
        groups[it->second].push_back(&r);
      }
    }
    Row null_rep(w.table.schema().num_columns(), Value::Null());
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      if ((since_check++ & 1023) == 0) DV_RETURN_IF_ERROR(ctx.CheckGuard());
      const std::vector<const Row*>& rows = groups[gi];
      const Row& rep = rows.empty() ? null_rep : *rows[0];
      if (stmt.having != nullptr) {
        DV_ASSIGN_OR_RETURN(auto folded,
                            FoldAggregates(*stmt.having, rows, w.bindings));
        DV_ASSIGN_OR_RETURN(TriBool t,
                            EvaluatePredicate(*folded, rep, w.bindings));
        if (t != TriBool::kTrue) continue;
      }
      Row orow;
      orow.reserve(stmt.select_list.size());
      for (const SelectItem& item : stmt.select_list) {
        DV_ASSIGN_OR_RETURN(auto folded,
                            FoldAggregates(*item.expr, rows, w.bindings));
        DV_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*folded, rep, w.bindings));
        orow.push_back(std::move(v));
      }
      if (!stmt.order_by.empty()) {
        Row key;
        for (const OrderItem& o : stmt.order_by) {
          int pos = order_output_pos(*o.expr);
          if (pos >= 0) {
            key.push_back(orow[pos]);
            continue;
          }
          DV_ASSIGN_OR_RETURN(auto folded,
                              FoldAggregates(*o.expr, rows, w.bindings));
          DV_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*folded, rep, w.bindings));
          key.push_back(std::move(v));
        }
        order_keys.push_back(std::move(key));
      }
      out.AppendRowUnchecked(std::move(orow));
    }
  }

  DV_RETURN_IF_ERROR(
      ctx.ChargeRows(out.num_rows(), out.schema().num_columns()));

  if (stmt.distinct) out = out.Distinct();

  if (!stmt.order_by.empty() && !out.rows().empty()) {
    // DISTINCT + ORDER BY: recompute is unnecessary because distinct keeps
    // the first occurrence; but the key array then mismatches. Sort a
    // permutation of (key, row) pairs instead when sizes align; otherwise
    // fall back to sorting output rows by their own columns.
    if (order_keys.size() == out.num_rows()) {
      std::vector<size_t> perm(out.num_rows());
      for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < stmt.order_by.size(); ++k) {
          int c = Value::TotalOrderCompare(order_keys[a][k], order_keys[b][k]);
          if (c != 0) return stmt.order_by[k].descending ? c > 0 : c < 0;
        }
        return false;
      });
      Table sorted(out.schema());
      sorted.Reserve(out.num_rows());
      for (size_t i : perm) sorted.AppendRowUnchecked(out.row(i));
      out = std::move(sorted);
    } else {
      out.SortRows();
    }
  }
  return ApplyLimit(std::move(out), stmt.limit);
}

}  // namespace dynview

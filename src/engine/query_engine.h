#ifndef DYNVIEW_ENGINE_QUERY_ENGINE_H_
#define DYNVIEW_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <string>

#include "common/exec_config.h"
#include "common/query_context.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "relational/catalog.h"
#include "sql/ast.h"
#include "sql/binder.h"

namespace dynview {

struct ExecContext;

/// Evaluates SQL and SchemaSQL SELECT statements against a federation
/// catalog.
///
/// First-order queries run through a join pipeline (hash joins on equi-join
/// conjuncts, predicate pushdown, grouping/aggregation, DISTINCT, ORDER BY,
/// UNION). Higher-order queries are first grounded: every schema variable is
/// instantiated against the catalog (see schemasql/instantiate.h) and the
/// resulting first-order queries are evaluated and bag-unioned. This is the
/// "minimal extension to existing query engines" execution model the paper
/// proposes: the higher-order machinery reduces to orchestration around a
/// conventional evaluator.
class QueryEngine {
 public:
  /// `catalog` must outlive the engine. `default_db` resolves unqualified
  /// relation names. `exec` sets the parallelism: groundings are evaluated
  /// concurrently and large operator inputs run morsel-parallel, with
  /// results always merged in deterministic (declaration/morsel) order —
  /// `ExecConfig{.num_threads = 1}` forces fully serial evaluation.
  QueryEngine(const Catalog* catalog, std::string default_db,
              ExecConfig exec = ExecConfig())
      : catalog_(catalog), default_db_(std::move(default_db)), exec_(exec) {}

  const Catalog& catalog() const { return *catalog_; }
  const std::string& default_db() const { return default_db_; }
  const ExecConfig& exec_config() const { return exec_; }

  /// The engine's worker pool, created on first use; nullptr in serial mode.
  /// Must be called from the query's driving thread (it is not safe to race
  /// with itself), which is how all internal call sites use it. Exposed so
  /// cooperating components (e.g. ViewMaterializer) can share the pool.
  ThreadPool* EnsurePool();

  /// Attaches (or detaches, with nullptr) the guard state enforced by every
  /// subsequent execution: deadline, cancellation, row/byte budgets, and
  /// the SourcePolicy for degraded grounding fan-outs. Borrowed — `qc` must
  /// outlive the executions it guards. Set from the query's driving thread
  /// between queries; the same engine serves one guarded query at a time
  /// (matching the engine's single-driver execution model).
  void set_query_context(QueryContext* qc) { query_ctx_ = qc; }
  QueryContext* query_context() const { return query_ctx_; }

  /// Parses, binds and evaluates a SELECT statement.
  Result<Table> ExecuteSql(const std::string& sql);

  /// Binds and evaluates a parsed statement (all UNION branches).
  Result<Table> Execute(SelectStmt* stmt);

  /// Evaluates an already-bound single branch (no UNION chain following).
  Result<Table> EvaluateBranch(const SelectStmt& stmt, const BoundQuery& bq);

 private:
  Result<Table> EvaluateFirstOrder(const SelectStmt& stmt,
                                   const BoundQuery& bq);

  /// Evaluates a higher-order branch whose aggregation / DISTINCT / ORDER BY
  /// must apply across all groundings: evaluates an aggregate-free inner
  /// projection per grounding, unions, then applies the outer layer.
  Result<Table> EvaluateHigherOrderGlobal(const SelectStmt& stmt,
                                          const BoundQuery& bq);

  /// Operator-level context: the shared pool (read-only here; created by
  /// EnsurePool on the driving thread) plus the morsel granularity.
  ExecContext Ctx() const;

  const Catalog* catalog_;
  std::string default_db_;
  ExecConfig exec_;
  QueryContext* query_ctx_ = nullptr;  // Borrowed; null = unguarded.
  /// Lazily created, shared with sub-engines (the higher-order outer layer)
  /// so nested evaluation reuses one set of workers.
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace dynview

#endif  // DYNVIEW_ENGINE_QUERY_ENGINE_H_

#ifndef DYNVIEW_ENGINE_QUERY_ENGINE_H_
#define DYNVIEW_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/exec_config.h"
#include "common/query_context.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/expr_compile.h"
#include "relational/catalog.h"
#include "sql/ast.h"
#include "sql/binder.h"

namespace dynview {

struct ExecContext;

/// Evaluates SQL and SchemaSQL SELECT statements against a federation
/// catalog.
///
/// First-order queries run through a join pipeline (hash joins on equi-join
/// conjuncts, predicate pushdown, grouping/aggregation, DISTINCT, ORDER BY,
/// UNION). Higher-order queries are first grounded: every schema variable is
/// instantiated against the catalog (see schemasql/instantiate.h) and the
/// resulting first-order queries are evaluated and bag-unioned. This is the
/// "minimal extension to existing query engines" execution model the paper
/// proposes: the higher-order machinery reduces to orchestration around a
/// conventional evaluator.
///
/// Snapshot isolation: every execution resolves its tables through one
/// CatalogSnapshot pinned at entry — the one carried by the QueryContext
/// when it pins this engine's catalog, else the catalog's current version —
/// so a query's answer always equals its serial answer against a single
/// catalog version, even with writers committing concurrently.
///
/// Concurrency: the explicit-QueryContext overloads are safe to call from
/// several threads on one engine (each call carries its own guard state and
/// pin; the worker pool is created thread-safely and shared). The legacy
/// `set_query_context` member remains for single-driver callers and must not
/// be raced.
class QueryEngine {
 public:
  /// `catalog` must outlive the engine. `default_db` resolves unqualified
  /// relation names. `exec` sets the parallelism: groundings are evaluated
  /// concurrently and large operator inputs run morsel-parallel, with
  /// results always merged in deterministic (declaration/morsel) order —
  /// `ExecConfig{.num_threads = 1}` forces fully serial evaluation.
  QueryEngine(const Catalog* catalog, std::string default_db,
              ExecConfig exec = ExecConfig())
      : catalog_(catalog), default_db_(std::move(default_db)), exec_(exec) {}

  const Catalog& catalog() const { return *catalog_; }
  const std::string& default_db() const { return default_db_; }
  const ExecConfig& exec_config() const { return exec_; }

  /// The engine's worker pool, created on first use; nullptr in serial mode.
  /// Thread-safe (first caller creates, everyone shares). Exposed so
  /// cooperating components (e.g. ViewMaterializer) can share the pool.
  ThreadPool* EnsurePool();

  /// Attaches (or detaches, with nullptr) the guard state enforced by every
  /// subsequent *legacy* (no-QueryContext) execution. Borrowed — `qc` must
  /// outlive the executions it guards. Single-driver only: concurrent
  /// callers use the explicit-QueryContext overloads instead.
  void set_query_context(QueryContext* qc) { query_ctx_ = qc; }
  QueryContext* query_context() const { return query_ctx_; }

  /// The snapshot an execution under `qc` reads: the pin `qc` carries when
  /// it belongs to this engine's catalog, else the catalog's current
  /// version. Components wrapping the engine (materializer, plan execution)
  /// use this to read the same version the engine will.
  std::shared_ptr<const CatalogSnapshot> PinnedSnapshot(
      QueryContext* qc) const;

  /// Parses, binds and evaluates a SELECT statement.
  Result<Table> ExecuteSql(const std::string& sql);
  Result<Table> ExecuteSql(const std::string& sql, QueryContext* qc);

  /// Binds and evaluates a parsed statement (all UNION branches).
  Result<Table> Execute(SelectStmt* stmt);
  Result<Table> Execute(SelectStmt* stmt, QueryContext* qc);

  /// Evaluates an already-bound single branch (no UNION chain following).
  Result<Table> EvaluateBranch(const SelectStmt& stmt, const BoundQuery& bq);
  Result<Table> EvaluateBranch(const SelectStmt& stmt, const BoundQuery& bq,
                               QueryContext* qc);

 private:
  using SnapshotRef = std::shared_ptr<const CatalogSnapshot>;

  Result<Table> ExecuteImpl(SelectStmt* stmt, QueryContext* qc,
                            const SnapshotRef& snap);
  Result<Table> EvaluateBranchImpl(const SelectStmt& stmt,
                                   const BoundQuery& bq, QueryContext* qc,
                                   const SnapshotRef& snap);
  Result<Table> EvaluateFirstOrder(const SelectStmt& stmt,
                                   const BoundQuery& bq, QueryContext* qc,
                                   const SnapshotRef& snap);

  /// Evaluates a higher-order branch whose aggregation / DISTINCT / ORDER BY
  /// must apply across all groundings: evaluates an aggregate-free inner
  /// projection per grounding, unions, then applies the outer layer.
  Result<Table> EvaluateHigherOrderGlobal(const SelectStmt& stmt,
                                          const BoundQuery& bq,
                                          QueryContext* qc,
                                          const SnapshotRef& snap);

  /// Operator-level context for one execution under `qc` reading `snap`:
  /// the shared pool, morsel granularity, guard, pinned snapshot, and
  /// observability sinks.
  ExecContext Ctx(QueryContext* qc, const SnapshotRef& snap) const;

  /// The pool pointer without creating it (thread-safe load).
  ThreadPool* CurrentPool() const;

  const Catalog* catalog_;
  std::string default_db_;
  ExecConfig exec_;
  QueryContext* query_ctx_ = nullptr;  // Borrowed; null = unguarded (legacy).
  /// Lazily created (guarded by pool_mu_, read via atomic load), shared with
  /// sub-engines (the higher-order outer layer) so nested evaluation reuses
  /// one set of workers.
  mutable std::mutex pool_mu_;
  std::atomic<std::shared_ptr<ThreadPool>> pool_;
  /// Compiled-program memo used when the query carries none of its own
  /// (ExecContext::programs; thread-safe, bounded). Mutable because program
  /// compilation is a cache fill, not a semantic change.
  mutable ExprProgramCache default_programs_;
};

}  // namespace dynview

#endif  // DYNVIEW_ENGINE_QUERY_ENGINE_H_

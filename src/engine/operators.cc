#include "engine/operators.h"

#include <unordered_map>

namespace dynview {

namespace {

Schema ConcatSchemas(const Schema& a, const Schema& b) {
  std::vector<Column> cols = a.columns();
  for (const Column& c : b.columns()) cols.push_back(c);
  return Schema(std::move(cols));
}

Row ConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

bool AnyNull(const Row& row, const std::vector<int>& keys) {
  for (int k : keys) {
    if (row[static_cast<size_t>(k)].is_null()) return true;
  }
  return false;
}

Row KeyOf(const Row& row, const std::vector<int>& keys) {
  Row key;
  key.reserve(keys.size());
  for (int k : keys) key.push_back(row[static_cast<size_t>(k)]);
  return key;
}

Status CheckKeys(const Table& t, const std::vector<int>& keys,
                 const char* side) {
  for (int k : keys) {
    if (k < 0 || static_cast<size_t>(k) >= t.schema().num_columns()) {
      return Status::InvalidArgument(std::string("join key out of range on ") +
                                     side);
    }
  }
  return Status::OK();
}

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys) {
  if (left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("mismatched join key arity");
  }
  DV_RETURN_IF_ERROR(CheckKeys(left, left_keys, "left"));
  DV_RETURN_IF_ERROR(CheckKeys(right, right_keys, "right"));
  Table out(ConcatSchemas(left.schema(), right.schema()));
  std::unordered_map<Row, std::vector<size_t>, RowGroupHash, RowGroupEq> index;
  index.reserve(right.num_rows());
  for (size_t i = 0; i < right.num_rows(); ++i) {
    if (AnyNull(right.row(i), right_keys)) continue;
    index[KeyOf(right.row(i), right_keys)].push_back(i);
  }
  for (const Row& lrow : left.rows()) {
    if (AnyNull(lrow, left_keys)) continue;
    auto it = index.find(KeyOf(lrow, left_keys));
    if (it == index.end()) continue;
    for (size_t ri : it->second) {
      out.AppendRowUnchecked(ConcatRows(lrow, right.row(ri)));
    }
  }
  return out;
}

Table CrossProduct(const Table& left, const Table& right) {
  Table out(ConcatSchemas(left.schema(), right.schema()));
  out.Reserve(left.num_rows() * right.num_rows());
  for (const Row& l : left.rows()) {
    for (const Row& r : right.rows()) {
      out.AppendRowUnchecked(ConcatRows(l, r));
    }
  }
  return out;
}

Result<Table> FullOuterJoin(const Table& left, const Table& right,
                            const std::vector<int>& left_keys,
                            const std::vector<int>& right_keys) {
  if (left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("mismatched join key arity");
  }
  DV_RETURN_IF_ERROR(CheckKeys(left, left_keys, "left"));
  DV_RETURN_IF_ERROR(CheckKeys(right, right_keys, "right"));
  Table out(ConcatSchemas(left.schema(), right.schema()));
  std::unordered_map<Row, std::vector<size_t>, RowGroupHash, RowGroupEq> index;
  index.reserve(right.num_rows());
  for (size_t i = 0; i < right.num_rows(); ++i) {
    if (AnyNull(right.row(i), right_keys)) continue;
    index[KeyOf(right.row(i), right_keys)].push_back(i);
  }
  std::vector<bool> right_matched(right.num_rows(), false);
  Row null_right(right.schema().num_columns(), Value::Null());
  Row null_left(left.schema().num_columns(), Value::Null());
  for (const Row& lrow : left.rows()) {
    bool matched = false;
    if (!AnyNull(lrow, left_keys)) {
      auto it = index.find(KeyOf(lrow, left_keys));
      if (it != index.end()) {
        matched = true;
        for (size_t ri : it->second) {
          right_matched[ri] = true;
          out.AppendRowUnchecked(ConcatRows(lrow, right.row(ri)));
        }
      }
    }
    if (!matched) out.AppendRowUnchecked(ConcatRows(lrow, null_right));
  }
  for (size_t i = 0; i < right.num_rows(); ++i) {
    if (!right_matched[i]) {
      out.AppendRowUnchecked(ConcatRows(null_left, right.row(i)));
    }
  }
  return out;
}

Result<Table> UnionAll(const Table& a, const Table& b) {
  if (a.schema().num_columns() != b.schema().num_columns()) {
    return Status::InvalidArgument("UNION arity mismatch: " +
                                   std::to_string(a.schema().num_columns()) +
                                   " vs " +
                                   std::to_string(b.schema().num_columns()));
  }
  Table out(a.schema());
  out.Reserve(a.num_rows() + b.num_rows());
  for (const Row& r : a.rows()) out.AppendRowUnchecked(r);
  for (const Row& r : b.rows()) out.AppendRowUnchecked(r);
  return out;
}

Result<Table> ProjectColumns(const Table& t, const std::vector<int>& cols,
                             const std::vector<std::string>& names) {
  if (cols.size() != names.size()) {
    return Status::InvalidArgument("projection arity mismatch");
  }
  std::vector<Column> out_cols;
  out_cols.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] < 0 || static_cast<size_t>(cols[i]) >= t.schema().num_columns()) {
      return Status::InvalidArgument("projection index out of range");
    }
    out_cols.emplace_back(names[i], t.schema().column(cols[i]).type);
  }
  Table out(Schema(std::move(out_cols)));
  out.Reserve(t.num_rows());
  for (const Row& r : t.rows()) {
    Row nr;
    nr.reserve(cols.size());
    for (int c : cols) nr.push_back(r[static_cast<size_t>(c)]);
    out.AppendRowUnchecked(std::move(nr));
  }
  return out;
}

}  // namespace dynview

#include "engine/operators.h"

#include <algorithm>
#include <unordered_map>

namespace dynview {

namespace {

/// Hash of the key columns of `row`, consistent with RowGroupHash over
/// KeyOf(row, keys) but without materializing the key row. Used both to pick
/// a build shard and to route probes to it.
size_t KeyHash(const Row& row, const std::vector<int>& keys) {
  size_t h = 1469598103934665603ull;
  for (int k : keys) {
    h ^= row[static_cast<size_t>(k)].GroupHash();
    h *= 1099511628211ull;
  }
  return h;
}

Schema ConcatSchemas(const Schema& a, const Schema& b) {
  std::vector<Column> cols = a.columns();
  for (const Column& c : b.columns()) cols.push_back(c);
  return Schema(std::move(cols));
}

Row ConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

bool AnyNull(const Row& row, const std::vector<int>& keys) {
  for (int k : keys) {
    if (row[static_cast<size_t>(k)].is_null()) return true;
  }
  return false;
}

Row KeyOf(const Row& row, const std::vector<int>& keys) {
  Row key;
  key.reserve(keys.size());
  for (int k : keys) key.push_back(row[static_cast<size_t>(k)]);
  return key;
}

Status CheckKeys(const Table& t, const std::vector<int>& keys,
                 const char* side) {
  for (int k : keys) {
    if (k < 0 || static_cast<size_t>(k) >= t.schema().num_columns()) {
      return Status::InvalidArgument(std::string("join key out of range on ") +
                                     side);
    }
  }
  return Status::OK();
}

}  // namespace

size_t ExecContext::MorselSize(size_t rows) const {
  size_t threads = pool == nullptr ? 1 : pool->num_workers() + 1;
  size_t per_thread = (rows + threads * 4 - 1) / (threads * 4);
  return std::max(morsel_rows, per_thread);
}

void MorselFor(const ExecContext& ctx, size_t rows,
               const std::function<void(size_t, size_t, size_t)>& fn) {
  if (rows == 0) return;
  if (!ctx.ShouldParallelize(rows)) {
    ctx.Count(counters::kMorselsExecuted, 1);
    fn(0, 0, rows);
    return;
  }
  const size_t m = ctx.MorselSize(rows);
  const size_t n = (rows + m - 1) / m;
  ctx.Count(counters::kMorselsExecuted, n);
  ctx.pool->ParallelFor(
      n, [&](size_t i) { fn(i, i * m, std::min(rows, (i + 1) * m)); },
      ctx.CancelFlag());
}

Result<Table> FilterRows(const Table& in, const ExecContext& ctx,
                         const std::function<Result<bool>(const Row&)>& pred) {
  const size_t rows = in.num_rows();
  const size_t width = in.schema().num_columns();
  ScopedSpan span(ctx.trace, "op.filter", std::to_string(rows) + " rows");
  // Scanned rows counted pre-split: the total is independent of how (or
  // whether) the input is morselized — a stable cross-thread-count oracle.
  ctx.Count(counters::kRowsScanned, rows);
  if (!ctx.ShouldParallelize(rows)) {
    ctx.Count(counters::kMorselsExecuted, 1);
    Table out(in.schema());
    size_t since_check = 0;
    for (const Row& r : in.rows()) {
      if (ctx.guard != nullptr && (since_check++ & 1023) == 0) {
        DV_RETURN_IF_ERROR(ctx.CheckGuard());
      }
      DV_ASSIGN_OR_RETURN(bool keep, pred(r));
      if (keep) out.AppendRowUnchecked(r);
    }
    DV_RETURN_IF_ERROR(ctx.ChargeRows(out.num_rows(), width));
    return out;
  }
  const size_t m = ctx.MorselSize(rows);
  const size_t n = (rows + m - 1) / m;
  ctx.Count(counters::kMorselsExecuted, n);
  std::vector<Table> parts(n);
  std::vector<Status> errors(n, Status::OK());
  ctx.pool->ParallelFor(
      n,
      [&](size_t i) {
        Table part(in.schema());
        errors[i] = ctx.CheckGuard();
        if (!errors[i].ok()) return;
        for (size_t r = i * m, end = std::min(rows, (i + 1) * m); r < end;
             ++r) {
          Result<bool> keep = pred(in.row(r));
          if (!keep.ok()) {
            errors[i] = keep.status();
            break;
          }
          if (keep.value()) part.AppendRowUnchecked(in.row(r));
        }
        if (errors[i].ok()) {
          errors[i] = ctx.ChargeRows(part.num_rows(), width);
        }
        parts[i] = std::move(part);
      },
      ctx.CancelFlag());
  // A tripped guard wins over per-morsel errors (skipped morsels never
  // wrote their slots); then merge in morsel order: output row order and
  // the reported error (lowest erroring row) both match serial execution.
  DV_RETURN_IF_ERROR(ctx.CheckGuard());
  Table out(in.schema());
  for (size_t i = 0; i < n; ++i) {
    DV_RETURN_IF_ERROR(errors[i]);
    DV_RETURN_IF_ERROR(out.AppendTable(std::move(parts[i])));
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<int>& left_keys,
                       const std::vector<int>& right_keys,
                       const ExecContext& ctx) {
  if (left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("mismatched join key arity");
  }
  DV_RETURN_IF_ERROR(CheckKeys(left, left_keys, "left"));
  DV_RETURN_IF_ERROR(CheckKeys(right, right_keys, "right"));
  ScopedSpan span(ctx.trace, "op.hash_join",
                  std::to_string(left.num_rows()) + "x" +
                      std::to_string(right.num_rows()));
  ctx.Count(counters::kRowsScanned, left.num_rows() + right.num_rows());
  Table out(ConcatSchemas(left.schema(), right.schema()));
  const size_t out_width = out.schema().num_columns();
  if (!ctx.ShouldParallelize(left.num_rows()) &&
      !ctx.ShouldParallelize(right.num_rows())) {
    std::unordered_map<Row, std::vector<size_t>, RowGroupHash, RowGroupEq>
        index;
    index.reserve(right.num_rows());
    for (size_t i = 0; i < right.num_rows(); ++i) {
      if (AnyNull(right.row(i), right_keys)) continue;
      index[KeyOf(right.row(i), right_keys)].push_back(i);
    }
    size_t since_check = 0;
    for (const Row& lrow : left.rows()) {
      if (ctx.guard != nullptr && (since_check++ & 1023) == 0) {
        DV_RETURN_IF_ERROR(ctx.CheckGuard());
      }
      if (AnyNull(lrow, left_keys)) continue;
      auto it = index.find(KeyOf(lrow, left_keys));
      if (it == index.end()) continue;
      for (size_t ri : it->second) {
        out.AppendRowUnchecked(ConcatRows(lrow, right.row(ri)));
      }
    }
    DV_RETURN_IF_ERROR(ctx.ChargeRows(out.num_rows(), out_width));
    ctx.Count(counters::kRowsJoined, out.num_rows());
    return out;
  }

  // Partitioned build: hash every build row once (morsel-parallel), then one
  // task per shard inserts the rows whose hash lands in it. Each shard map
  // is written by exactly one task.
  using Index =
      std::unordered_map<Row, std::vector<size_t>, RowGroupHash, RowGroupEq>;
  const size_t num_shards = ctx.pool->num_workers() + 1;
  std::vector<size_t> build_hash(right.num_rows());
  std::vector<char> build_skip(right.num_rows());  // NULL keys never match.
  MorselFor(ctx, right.num_rows(), [&](size_t, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      build_skip[i] = AnyNull(right.row(i), right_keys) ? 1 : 0;
      if (!build_skip[i]) build_hash[i] = KeyHash(right.row(i), right_keys);
    }
  });
  std::vector<Index> shards(num_shards);
  // Skipped shard inserts are safe: a skip implies a tripped guard, and the
  // probe morsels below re-check the guard before any merge.
  ctx.pool->ParallelFor(
      num_shards,
      [&](size_t s) {
        Index& shard = shards[s];
        for (size_t i = 0; i < right.num_rows(); ++i) {
          if (!build_skip[i] && build_hash[i] % num_shards == s) {
            shard[KeyOf(right.row(i), right_keys)].push_back(i);
          }
        }
      },
      ctx.CancelFlag());

  // Morsel probe into per-morsel outputs, merged in morsel order so the
  // result row order matches the serial join exactly.
  const size_t rows = left.num_rows();
  const size_t m = ctx.MorselSize(rows);
  const size_t n = rows == 0 ? 0 : (rows + m - 1) / m;
  ctx.Count(counters::kMorselsExecuted, n);
  std::vector<Table> parts(n);
  std::vector<Status> errors(n, Status::OK());
  ctx.pool->ParallelFor(
      n,
      [&](size_t p) {
        Table part(out.schema());
        errors[p] = ctx.CheckGuard();
        if (errors[p].ok()) {
          for (size_t i = p * m, end = std::min(rows, (p + 1) * m); i < end;
               ++i) {
            const Row& lrow = left.row(i);
            if (AnyNull(lrow, left_keys)) continue;
            const Index& shard = shards[KeyHash(lrow, left_keys) % num_shards];
            auto it = shard.find(KeyOf(lrow, left_keys));
            if (it == shard.end()) continue;
            for (size_t ri : it->second) {
              part.AppendRowUnchecked(ConcatRows(lrow, right.row(ri)));
            }
          }
          errors[p] = ctx.ChargeRows(part.num_rows(), out_width);
        }
        parts[p] = std::move(part);
      },
      ctx.CancelFlag());
  DV_RETURN_IF_ERROR(ctx.CheckGuard());
  for (size_t p = 0; p < n; ++p) {
    DV_RETURN_IF_ERROR(errors[p]);
    DV_RETURN_IF_ERROR(out.AppendTable(std::move(parts[p])));
  }
  // Joined rows counted post-merge on the driving thread: the total equals
  // the serial join's output size regardless of the morsel split.
  ctx.Count(counters::kRowsJoined, out.num_rows());
  return out;
}

Result<Table> CrossProduct(const Table& left, const Table& right,
                           const ExecContext& ctx) {
  ScopedSpan span(ctx.trace, "op.cross_product",
                  std::to_string(left.num_rows()) + "x" +
                      std::to_string(right.num_rows()));
  ctx.Count(counters::kRowsScanned, left.num_rows() + right.num_rows());
  Table out(ConcatSchemas(left.schema(), right.schema()));
  const size_t width = out.schema().num_columns();
  if (ctx.guard == nullptr) {
    out.Reserve(left.num_rows() * right.num_rows());
  } else {
    // Guarded: no speculative quadratic Reserve — the budget may trip long
    // before left×right rows exist, and exponential growth costs O(n).
    DV_RETURN_IF_ERROR(ctx.CheckGuard());
  }
  size_t since_check = 0;
  for (const Row& l : left.rows()) {
    if (ctx.guard != nullptr) {
      // Charge a full stripe per left row: the product trips its budget
      // while still small instead of after materializing.
      DV_RETURN_IF_ERROR(ctx.ChargeRows(right.num_rows(), width));
      if ((since_check++ & 63) == 0) DV_RETURN_IF_ERROR(ctx.CheckGuard());
    }
    for (const Row& r : right.rows()) {
      out.AppendRowUnchecked(ConcatRows(l, r));
    }
  }
  ctx.Count(counters::kRowsJoined, out.num_rows());
  return out;
}

Result<Table> FullOuterJoin(const Table& left, const Table& right,
                            const std::vector<int>& left_keys,
                            const std::vector<int>& right_keys) {
  if (left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("mismatched join key arity");
  }
  DV_RETURN_IF_ERROR(CheckKeys(left, left_keys, "left"));
  DV_RETURN_IF_ERROR(CheckKeys(right, right_keys, "right"));
  Table out(ConcatSchemas(left.schema(), right.schema()));
  // Every left row emits at least one output row and unmatched right rows
  // emit one each, so left+right is a tight lower bound on the output size.
  out.Reserve(left.num_rows() + right.num_rows());
  std::unordered_map<Row, std::vector<size_t>, RowGroupHash, RowGroupEq> index;
  index.reserve(right.num_rows());
  for (size_t i = 0; i < right.num_rows(); ++i) {
    if (AnyNull(right.row(i), right_keys)) continue;
    index[KeyOf(right.row(i), right_keys)].push_back(i);
  }
  std::vector<bool> right_matched(right.num_rows(), false);
  Row null_right(right.schema().num_columns(), Value::Null());
  Row null_left(left.schema().num_columns(), Value::Null());
  for (const Row& lrow : left.rows()) {
    bool matched = false;
    if (!AnyNull(lrow, left_keys)) {
      auto it = index.find(KeyOf(lrow, left_keys));
      if (it != index.end()) {
        matched = true;
        for (size_t ri : it->second) {
          right_matched[ri] = true;
          out.AppendRowUnchecked(ConcatRows(lrow, right.row(ri)));
        }
      }
    }
    if (!matched) out.AppendRowUnchecked(ConcatRows(lrow, null_right));
  }
  for (size_t i = 0; i < right.num_rows(); ++i) {
    if (!right_matched[i]) {
      out.AppendRowUnchecked(ConcatRows(null_left, right.row(i)));
    }
  }
  return out;
}

Result<Table> UnionAll(const Table& a, const Table& b) {
  if (a.schema().num_columns() != b.schema().num_columns()) {
    return Status::InvalidArgument("UNION arity mismatch: " +
                                   std::to_string(a.schema().num_columns()) +
                                   " vs " +
                                   std::to_string(b.schema().num_columns()));
  }
  Table out(a.schema());
  out.Reserve(a.num_rows() + b.num_rows());
  for (const Row& r : a.rows()) out.AppendRowUnchecked(r);
  for (const Row& r : b.rows()) out.AppendRowUnchecked(r);
  return out;
}

Result<Table> ProjectColumns(const Table& t, const std::vector<int>& cols,
                             const std::vector<std::string>& names) {
  if (cols.size() != names.size()) {
    return Status::InvalidArgument("projection arity mismatch");
  }
  std::vector<Column> out_cols;
  out_cols.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] < 0 || static_cast<size_t>(cols[i]) >= t.schema().num_columns()) {
      return Status::InvalidArgument("projection index out of range");
    }
    out_cols.emplace_back(names[i], t.schema().column(cols[i]).type);
  }
  Table out(Schema(std::move(out_cols)));
  out.Reserve(t.num_rows());
  for (const Row& r : t.rows()) {
    Row nr;
    nr.reserve(cols.size());
    for (int c : cols) nr.push_back(r[static_cast<size_t>(c)]);
    out.AppendRowUnchecked(std::move(nr));
  }
  return out;
}

}  // namespace dynview

#ifndef DYNVIEW_ANALYZE_DEPGRAPH_H_
#define DYNVIEW_ANALYZE_DEPGRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/view_definition.h"
#include "relational/catalog.h"

namespace dynview {

/// One registered index as the audit layer sees it: its name plus the body
/// tables its defining query scans (resolved against the integration db).
struct AuditIndexInfo {
  std::string name;
  std::vector<TableRef> tables;
};

/// One edge of the workload dependency graph. Directions follow the data:
///   kReads             table  -> view   (the view's body scans the table)
///   kMaterializesInto  view   -> table  (the view's partitions live there)
///   kIndexReads        table  -> index  (the index body scans the table)
/// `attributes` carries the attribute-level detail of a kReads edge: one
/// "table_attr->view_output" entry per output position (and per view
/// variable) the table supplies, sorted and comma-joined. Variables render
/// with a '$' prefix.
struct DepEdge {
  enum class Kind { kReads, kMaterializesInto, kIndexReads };
  Kind kind = Kind::kReads;
  std::string from;
  std::string to;
  std::string attributes;
};

/// Workload-level shape statistics of the dependency graph.
struct DepGraphStats {
  size_t tables = 0;
  size_t views = 0;
  size_t indexes = 0;
  size_t edges = 0;
  /// The most-depended-on table (readers = views + indexes scanning it).
  size_t max_fan_in = 0;
  std::string max_fan_in_table;
  /// The widest view (distinct body tables scanned).
  size_t max_fan_out = 0;
  std::string max_fan_out_view;
  /// Strongly connected components of size >= 2 (a view chain that reads a
  /// table some view in the chain materializes into).
  size_t cycles = 0;
};

/// The cross-view/source/index dependency graph over one pinned catalog
/// snapshot: which tables feed which views, where materializations land,
/// and which tables back which indexes. Construction is purely static and
/// deterministic — nodes and edges come out sorted, so Describe() is
/// byte-stable for a fixed (snapshot, registration order) input.
class DependencyGraph {
 public:
  static DependencyGraph Build(
      const CatalogSnapshot& snap, const std::string& integration_db,
      const std::vector<std::shared_ptr<ViewDefinition>>& sources,
      const std::vector<AuditIndexInfo>& indexes);

  const std::vector<DepEdge>& edges() const { return edges_; }
  const DepGraphStats& stats() const { return stats_; }

  /// Tables with no reachable view/query path: not scanned by any view or
  /// index body and not a materialization target, restricted to databases
  /// the workload references at all (a database no registered view touches
  /// is out of audit scope) and excluding the integration db, which is the
  /// query surface itself. Sorted "db::rel" keys.
  const std::vector<std::string>& unused_tables() const { return unused_; }

  /// Member tables of each cycle (one sorted line per SCC of size >= 2).
  const std::vector<std::string>& cycle_members() const { return cycles_; }

  /// Deterministic multi-line text block: stats, then one line per edge.
  std::string Describe() const;

 private:
  DependencyGraph() = default;

  std::vector<DepEdge> edges_;
  std::vector<std::string> unused_;
  std::vector<std::string> cycles_;
  DepGraphStats stats_;
};

}  // namespace dynview

#endif  // DYNVIEW_ANALYZE_DEPGRAPH_H_

#include "analyze/diagnostic.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace dynview {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

SourceSpan SpanOfWord(const std::string& sql, const std::string& word) {
  if (word.empty()) return {};
  for (size_t i = 0; i + word.size() <= sql.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < word.size(); ++j) {
      if (std::tolower(static_cast<unsigned char>(sql[i + j])) !=
          std::tolower(static_cast<unsigned char>(word[j]))) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    bool left_ok = i == 0 || !IsIdentChar(sql[i - 1]);
    size_t end = i + word.size();
    bool right_ok = end == sql.size() || !IsIdentChar(sql[end]);
    if (left_ok && right_ok) return {i, word.size()};
  }
  return {};
}

bool DiagnosticLess(const Diagnostic& a, const Diagnostic& b) {
  if (a.statement != b.statement) return a.statement < b.statement;
  if (a.code != b.code) return a.code < b.code;
  if (a.span.offset != b.span.offset) return a.span.offset < b.span.offset;
  if (a.message != b.message) return a.message < b.message;
  // Workload-audit findings can share (statement, code, span, message) and
  // differ only in the suggested fix; keep those byte-stable too.
  if (a.fix_hint != b.fix_hint) return a.fix_hint < b.fix_hint;
  return a.anchor < b.anchor;
}

void SortDiagnostics(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(), DiagnosticLess);
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

size_t CountSeverity(const std::vector<Diagnostic>& diags, Severity s) {
  return static_cast<size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::string RenderDiagnosticsText(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += SeverityName(d.severity);
    out += ' ';
    out += d.code;
    if (!d.anchor.empty()) {
      out += " [";
      out += d.anchor;
      out += ']';
    }
    if (d.span.length > 0) {
      out += " @";
      out += std::to_string(d.span.offset);
      out += '+';
      out += std::to_string(d.span.length);
    }
    out += ": ";
    out += d.message;
    out += '\n';
    if (!d.fix_hint.empty()) {
      out += "    fix: ";
      out += d.fix_hint;
      out += '\n';
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderDiagnosticsJson(const std::vector<Diagnostic>& diags) {
  std::string out = "[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i > 0) out += ',';
    out += "\n  {\"code\": \"";
    out += JsonEscape(d.code);
    out += "\", \"severity\": \"";
    out += SeverityName(d.severity);
    out += "\", \"statement\": ";
    out += std::to_string(d.statement);
    out += ", \"offset\": ";
    out += std::to_string(d.span.offset);
    out += ", \"length\": ";
    out += std::to_string(d.span.length);
    out += ", \"message\": \"";
    out += JsonEscape(d.message);
    out += "\", \"fix_hint\": \"";
    out += JsonEscape(d.fix_hint);
    out += "\", \"anchor\": \"";
    out += JsonEscape(d.anchor);
    out += "\"}";
  }
  out += diags.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace dynview

#ifndef DYNVIEW_ANALYZE_ANALYZER_H_
#define DYNVIEW_ANALYZE_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "analyze/diagnostic.h"
#include "core/view_definition.h"
#include "relational/catalog.h"
#include "sql/ast.h"
#include "sql/binder.h"

namespace dynview {

class MetricsRegistry;

/// Options for one analysis run. `multiset` selects the semantics the
/// definition will serve under: the DV003 pivot check and the DV004
/// usability precheck harden from note/warning accordingly. `sources`, when
/// given, enables the DV004 query-side precheck (is any registered source
/// usable for this query shape?).
struct AnalyzeOptions {
  bool multiset = false;
  const std::vector<std::shared_ptr<ViewDefinition>>* sources = nullptr;
};

/// One entry of the check registry: the catalog of analyses the engine runs,
/// with the paper result each one implements. The registry drives the
/// analyzer itself, `dynview_lint --list-checks`, and the docs table.
struct CheckInfo {
  const char* code;
  const char* name;
  const char* anchor;
  Severity severity;  // Default (maximum) severity the check emits.
  const char* summary;
};

/// All registered checks, in code order (DV001..DV007).
const std::vector<CheckInfo>& CheckCatalog();

/// The static diagnostics pass over SchemaSQL view definitions and queries.
/// Analysis is purely static: it reads the bound AST and the catalog
/// *snapshot* (schema + table existence + fence versions) but never
/// evaluates a query. All entry points are deterministic — diagnostics come
/// back sorted (DiagnosticLess) and depend only on (input text, snapshot
/// version, options), never on thread count or timing.
class Analyzer {
 public:
  /// `catalog` is typically a pinned CatalogSnapshot; a live Catalog works
  /// identically for single-threaded callers.
  Analyzer(const CatalogReader* catalog, std::string default_db);

  /// Analyzes a CREATE VIEW statement. Syntax errors surface as DV000,
  /// binder failures as DV001 — the call itself never fails.
  std::vector<Diagnostic> AnalyzeCreateView(const std::string& sql,
                                            const AnalyzeOptions& opts = {}) const;

  /// Analyzes a SELECT statement (every UNION branch individually).
  std::vector<Diagnostic> AnalyzeSelect(const std::string& sql,
                                        const AnalyzeOptions& opts = {}) const;

  /// Analyzes a CREATE INDEX statement (front-end checks only: DV000/DV001
  /// over the body and GIVEN expressions).
  std::vector<Diagnostic> AnalyzeCreateIndex(const std::string& sql,
                                             const AnalyzeOptions& opts = {}) const;

  /// Dispatches on the statement kind (the lint CLI's entry point).
  std::vector<Diagnostic> AnalyzeStatement(const std::string& sql,
                                           const AnalyzeOptions& opts = {}) const;

  /// Re-analyzes an already-registered view *with its runtime state*: the
  /// definition checks plus DV007 (stale materialization fence) against
  /// `snap`. `sql` is re-rendered from the stored statement.
  std::vector<Diagnostic> AnalyzeRegisteredView(const ViewDefinition& view,
                                                const CatalogSnapshot& snap,
                                                const AnalyzeOptions& opts = {}) const;

  /// The DV004 fact for one (view, query) pair, shared with
  /// Optimizer::Explain's "why was this access path skipped" annotations.
  struct UsabilityFact {
    bool set_usable = false;
    bool multiset_usable = false;
    std::string set_reason;       // Empty when set_usable.
    std::string multiset_reason;  // Empty when multiset_usable.
  };
  UsabilityFact ProbeUsability(const ViewDefinition& view,
                               const std::string& query_sql) const;

 private:
  std::vector<Diagnostic> AnalyzeViewStmt(const std::string& sql,
                                          const CreateViewStmt& parsed,
                                          const AnalyzeOptions& opts) const;

  const CatalogReader* catalog_;
  std::string default_db_;
};

/// Tallies `diags` into the `analyze.*` metrics family on `metrics`:
/// analyze.checks_run, analyze.diagnostics, analyze.errors,
/// analyze.warnings, analyze.notes.
void RecordAnalyzeMetrics(const std::vector<Diagnostic>& diags,
                          MetricsRegistry* metrics);

}  // namespace dynview

#endif  // DYNVIEW_ANALYZE_ANALYZER_H_

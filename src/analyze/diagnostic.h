#ifndef DYNVIEW_ANALYZE_DIAGNOSTIC_H_
#define DYNVIEW_ANALYZE_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dynview {

/// Severity policy (docs/ARCHITECTURE.md "Static analysis"):
///   kError   — the definition violates a contract the system enforces
///              (Def. 3.1, binder rules); DefineView rejects it outright.
///   kWarning — the definition is admitted but carries a semantic hazard the
///              paper names (multiplicity loss, unsatisfiable body, dead
///              branch); surfaced on AnswerResult::warnings and by the CLI.
///   kNote    — advisory facts (e.g. set-only usability) that explain later
///              rewriter/optimizer decisions without signalling a hazard.
enum class Severity { kNote, kWarning, kError };

const char* SeverityName(Severity s);

/// Byte span inside the analyzed statement text. Length 0 means "the whole
/// statement" (used when no narrower anchor exists).
struct SourceSpan {
  size_t offset = 0;
  size_t length = 0;
};

/// First case-insensitive whole-word occurrence of `word` in `sql`; a
/// zero-length span at offset 0 when absent. Identifier characters are
/// [A-Za-z0-9_], so `P` does not match inside `price`.
SourceSpan SpanOfWord(const std::string& sql, const std::string& word);

/// One finding of the static analysis pass. `code` identifies the check
/// (DV001..DV007; DV000 is reserved for syntax errors), `anchor` cites the
/// paper result the check implements, and `fix_hint` (optional) names the
/// smallest change that silences the finding.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kWarning;
  SourceSpan span;
  std::string message;
  std::string fix_hint;
  std::string anchor;
  /// Statement index within a multi-statement input (the lint CLI); 0 for
  /// single-statement analysis.
  int statement = 0;
};

/// Deterministic order: statement, then code, then span offset, then
/// message, then fix hint, then anchor. Emitters require sorted input so
/// text and JSON renderings are byte-stable across runs and thread counts.
bool DiagnosticLess(const Diagnostic& a, const Diagnostic& b);
void SortDiagnostics(std::vector<Diagnostic>* diags);

bool HasErrors(const std::vector<Diagnostic>& diags);
size_t CountSeverity(const std::vector<Diagnostic>& diags, Severity s);

/// Text emitter: one `severity code [anchor] @offset+len: message` line per
/// diagnostic, `fix:` continuation lines for hints. Sorted input expected.
std::string RenderDiagnosticsText(const std::vector<Diagnostic>& diags);

/// JSON emitter: a stable array of objects (sorted input expected), suitable
/// for CI consumption. No trailing newline inside the array; the result ends
/// with '\n'.
std::string RenderDiagnosticsJson(const std::vector<Diagnostic>& diags);

/// JSON string escaping (exposed for the lint CLI's envelope).
std::string JsonEscape(const std::string& s);

}  // namespace dynview

#endif  // DYNVIEW_ANALYZE_DIAGNOSTIC_H_

#include "analyze/analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <string_view>
#include <utility>

#include "common/str_util.h"
#include "core/containment.h"
#include "core/implication.h"
#include "core/normalize.h"
#include "core/usability.h"
#include "observe/metrics.h"
#include "schemasql/instantiate.h"
#include "sql/parser.h"

namespace dynview {

const std::vector<CheckInfo>& CheckCatalog() {
  static const std::vector<CheckInfo> kChecks = {
      {"DV001", "unbound-schema-variable", "Sec. 3.1", Severity::kError,
       "a declared variable is unbound, ill-typed, or never used, or the "
       "view body falls outside the Sec. 5 source fragment"},
      {"DV002", "higher-order-view-body", "Def. 3.1", Severity::kError,
       "a dynamic view's body declares schema variables; Def. 3.1 requires "
       "a first-order body under a data-dependent output schema"},
      {"DV003", "pivot-multiplicity-loss", "Sec. 4.3", Severity::kWarning,
       "an attribute-variable pivot loses duplicate multiplicities under "
       "multiset semantics"},
      {"DV004", "usability-precheck", "Thm. 5.2/5.4", Severity::kWarning,
       "the view (or no registered source) passes the usability test for "
       "the query shape it must serve"},
      {"DV005", "unsatisfiable-predicate", "Thm. 5.2 cond. 3",
       Severity::kWarning,
       "the WHERE conjunction is contradictory under the condition closure; "
       "the result is always empty"},
      {"DV006", "dead-branch-or-empty-grounding", "Sec. 3.1 / Def. 4.1",
       Severity::kWarning,
       "a UNION branch is subsumed by an earlier branch, a scanned table is "
       "absent from the snapshot, or a schema variable grounds to nothing"},
      {"DV007", "stale-materialization-fence", "Sec. 6", Severity::kWarning,
       "the view's materialization predates a commit to a source database; "
       "queries fence it off and fall back"},
      {"DV100", "duplicate-view", "Def. 4.1", Severity::kWarning,
       "two registered view definitions are proved set-equivalent; the "
       "workload maintains the same source twice"},
      {"DV101", "subsumed-view", "Def. 4.1", Severity::kWarning,
       "a registered view definition is proved contained in another; the "
       "pair is a merge candidate"},
      {"DV102", "shadowed-materialization", "Sec. 6", Severity::kWarning,
       "a fenced materialization is stale against the audited snapshot, so "
       "every query falls back past it — dead weight until rebuilt"},
      {"DV103", "unused-source-table", "Fig. 6", Severity::kNote,
       "a table in a workload-referenced database has no reachable "
       "view/query path: nothing reads it and no materialization targets "
       "it"},
  };
  return kChecks;
}

namespace {

Diagnostic Make(const char* code, Severity severity, SourceSpan span,
                std::string message, std::string fix_hint = "") {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.span = span;
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  for (const CheckInfo& c : CheckCatalog()) {
    if (d.code == c.code) {
      d.anchor = c.anchor;
      break;
    }
  }
  return d;
}

Diagnostic MakeSyntax(const Status& status) {
  Diagnostic d;
  d.code = "DV000";
  d.severity = Severity::kError;
  d.message = "syntax error: " + status.message();
  d.anchor = "Sec. 3.1";
  return d;
}

/// Collects every variable *use* in an expression tree: kVarRef names,
/// kColumnRef qualifiers (a tuple-variable use) and variable column labels.
/// kStar counts as using everything (sets `star`).
void CollectExprUses(const Expr& e, std::set<std::string>* used, bool* star) {
  switch (e.kind) {
    case ExprKind::kVarRef:
      used->insert(ToLower(e.var_name));
      break;
    case ExprKind::kColumnRef:
      used->insert(ToLower(e.qualifier));
      if (e.column.is_variable) used->insert(ToLower(e.column.text));
      break;
    case ExprKind::kStar:
      *star = true;
      break;
    default:
      break;
  }
  if (e.left != nullptr) CollectExprUses(*e.left, used, star);
  if (e.right != nullptr) CollectExprUses(*e.right, used, star);
}

/// Variable uses across one bound SELECT branch (select/where/group/having/
/// order plus the label positions and anchors of the FROM clause itself).
void CollectBranchUses(const SelectStmt& stmt, std::set<std::string>* used,
                       bool* star) {
  for (const SelectItem& item : stmt.select_list) {
    if (item.expr != nullptr) CollectExprUses(*item.expr, used, star);
  }
  if (stmt.where != nullptr) CollectExprUses(*stmt.where, used, star);
  for (const auto& g : stmt.group_by) CollectExprUses(*g, used, star);
  if (stmt.having != nullptr) CollectExprUses(*stmt.having, used, star);
  for (const OrderItem& o : stmt.order_by) {
    if (o.expr != nullptr) CollectExprUses(*o.expr, used, star);
  }
  for (const FromItem& f : stmt.from_items) {
    if (f.db.is_variable) used->insert(ToLower(f.db.text));
    if (f.rel.is_variable) used->insert(ToLower(f.rel.text));
    if (f.attr.is_variable) used->insert(ToLower(f.attr.text));
    if (f.kind == FromItemKind::kDomainVar) used->insert(ToLower(f.tuple));
  }
}

/// DV001 (warning half): declared variables never referenced anywhere. An
/// unused schema variable is a live hazard — grounding still enumerates its
/// range, multiplying the bag-union contribution.
void CheckUnusedVariables(const std::string& sql, const SelectStmt& branch,
                          const BoundQuery& bq,
                          const std::set<std::string>& extra_uses,
                          std::vector<Diagnostic>* out) {
  std::set<std::string> used = extra_uses;
  bool star = false;
  CollectBranchUses(branch, &used, &star);
  if (star) return;  // `select *` pulls every declared variable.
  for (const FromItem& f : branch.from_items) {
    const std::string var = ToLower(f.var);
    if (used.count(var) > 0) continue;
    const BoundVariable* bv = bq.Find(var);
    const char* cls = bv != nullptr ? VarClassName(bv->cls) : "variable";
    std::string hint = "drop the declaration or reference the variable";
    if (bv != nullptr && IsSchemaVarClass(bv->cls)) {
      hint +=
          "; grounding still ranges over the unused variable and multiplies "
          "the bag-union result by its range";
    }
    out->push_back(Make("DV001", Severity::kWarning, SpanOfWord(sql, f.var),
                        std::string(cls) + " variable '" + f.var +
                            "' is declared but never used",
                        hint));
  }
}

/// DV001 (error half): bare variable references that are neither declared in
/// FROM nor a column of a constant table in scope. The binder defers this
/// resolution to evaluation time (expr_eval's column shorthand); the
/// analyzer rejects it statically. Skipped when any FROM item ranges over a
/// schema variable — a grounded relation might supply the column.
void CheckUnboundRefs(const std::string& sql, const SelectStmt& branch,
                      const BoundQuery& bq, const CatalogReader& catalog,
                      const std::string& default_db,
                      std::vector<Diagnostic>* out) {
  for (const FromItem& f : branch.from_items) {
    if (f.kind != FromItemKind::kTupleVar &&
        f.kind != FromItemKind::kDomainVar) {
      return;
    }
    if (f.kind == FromItemKind::kTupleVar &&
        (f.rel.is_variable || f.db.is_variable)) {
      return;
    }
  }
  std::vector<std::string> refs;
  for (const SelectItem& item : branch.select_list) {
    if (item.expr != nullptr) item.expr->CollectVarRefs(&refs);
  }
  if (branch.where != nullptr) branch.where->CollectVarRefs(&refs);
  for (const auto& g : branch.group_by) g->CollectVarRefs(&refs);
  if (branch.having != nullptr) branch.having->CollectVarRefs(&refs);
  for (const OrderItem& o : branch.order_by) {
    if (o.expr != nullptr) o.expr->CollectVarRefs(&refs);
  }
  std::set<std::string> reported;
  for (const std::string& name : refs) {
    const std::string key = ToLower(name);
    if (reported.count(key) > 0) continue;
    if (bq.Find(key) != nullptr) continue;
    bool is_column = false;
    for (const FromItem& f : branch.from_items) {
      if (f.kind != FromItemKind::kTupleVar) continue;
      const std::string db = f.db.empty() ? default_db : f.db.text;
      Result<const Table*> t =
          catalog.ResolveTable(ToLower(db), ToLower(f.rel.text));
      if (t.ok() && t.value()->schema().HasColumn(key)) {
        is_column = true;
        break;
      }
    }
    if (is_column) continue;
    reported.insert(key);
    out->push_back(Make(
        "DV001", Severity::kError, SpanOfWord(sql, name),
        "variable '" + name +
            "' is unbound: not declared in FROM and not a column of any "
            "table in scope",
        "declare it as a domain variable (e.g. T." + name + " " + name +
            ") or qualify the column with its tuple variable"));
  }
}

/// DV005: contradiction in the WHERE conjunction via the Thm. 5.2 condition
/// closure (core/implication).
void CheckUnsatisfiable(const std::vector<const Expr*>& conjuncts,
                        const std::string& what,
                        std::vector<Diagnostic>* out) {
  if (conjuncts.empty()) return;
  ConditionAnalyzer closure(conjuncts);
  if (!closure.unsatisfiable()) return;
  out->push_back(
      Make("DV005", Severity::kWarning, {},
           what + " predicate is unsatisfiable — the result is always empty",
           "remove or correct the contradictory comparisons"));
}

/// DV006 (table half): constant-labelled scans that resolve to nothing in
/// the snapshot. Missing tables are not errors at evaluation time either —
/// SchemaSQL ranges are empty, not broken — but a definition-time scan of a
/// nonexistent table is almost always a typo.
void CheckMissingTables(const std::string& sql, const SelectStmt& branch,
                        const CatalogReader& catalog,
                        const std::string& default_db,
                        std::vector<Diagnostic>* out) {
  for (const FromItem& f : branch.from_items) {
    if (f.kind != FromItemKind::kTupleVar) continue;
    if (f.rel.is_variable || f.db.is_variable) continue;  // Grounded later.
    const std::string db = f.db.empty() ? default_db : f.db.text;
    if (catalog.ResolveTable(ToLower(db), ToLower(f.rel.text)).ok()) continue;
    out->push_back(Make(
        "DV006", Severity::kWarning, SpanOfWord(sql, f.rel.text),
        "table " + db + "::" + f.rel.text +
            " does not exist in the catalog snapshot — the scan is empty",
        "create the table before defining over it, or fix the name"));
  }
}

/// DV006 (grounding half): a higher-order branch whose schema variables
/// ground to zero instantiations against the pinned snapshot.
void CheckEmptyGrounding(const SelectStmt& branch, const BoundQuery& bq,
                         const CatalogReader& catalog,
                         const std::string& default_db,
                         std::vector<Diagnostic>* out) {
  if (!bq.higher_order) return;
  Result<std::vector<InstantiatedQuery>> ground =
      InstantiateSchemaVars(branch, bq, catalog, default_db);
  if (!ground.ok() || !ground.value().empty()) return;
  out->push_back(
      Make("DV006", Severity::kWarning, {},
           "schema variables ground to zero instantiations against the "
           "catalog snapshot — the branch contributes nothing",
           "check the database/relation the variables range over"));
}

/// Renders one UNION branch standalone (no chain) for the containment test.
std::string BranchSql(const SelectStmt& branch) {
  std::unique_ptr<SelectStmt> solo = branch.Clone();
  solo->union_next = nullptr;
  solo->union_all = false;
  return solo->ToString();
}

}  // namespace

Analyzer::Analyzer(const CatalogReader* catalog, std::string default_db)
    : catalog_(catalog), default_db_(std::move(default_db)) {}

Analyzer::UsabilityFact Analyzer::ProbeUsability(
    const ViewDefinition& view, const std::string& query_sql) const {
  UsabilityFact fact;
  UsabilityChecker checker(catalog_, default_db_);
  Result<UsabilityResult> set_r =
      checker.CheckSql(view, query_sql, /*multiset=*/false);
  if (set_r.ok() && set_r.value().usable) {
    fact.set_usable = true;
  } else {
    fact.set_reason =
        set_r.ok() ? set_r.value().reason : set_r.status().message();
  }
  Result<UsabilityResult> multi_r =
      checker.CheckSql(view, query_sql, /*multiset=*/true);
  if (multi_r.ok() && multi_r.value().usable) {
    fact.multiset_usable = true;
  } else {
    fact.multiset_reason =
        multi_r.ok() ? multi_r.value().reason : multi_r.status().message();
  }
  return fact;
}

std::vector<Diagnostic> Analyzer::AnalyzeViewStmt(
    const std::string& sql, const CreateViewStmt& parsed,
    const AnalyzeOptions& opts) const {
  std::vector<Diagnostic> diags;
  std::unique_ptr<CreateViewStmt> stmt = parsed.Clone();
  Result<BoundView> bound = Binder::BindView(stmt.get());
  if (!bound.ok()) {
    diags.push_back(Make("DV001", Severity::kError, {},
                         "binding failed: " + bound.status().message()));
    SortDiagnostics(&diags);
    return diags;
  }
  const BoundView& bv = bound.value();
  const SelectStmt& body = *stmt->query;

  // DV001 (unused declarations). Header labels count as uses.
  std::set<std::string> header_uses;
  if (stmt->db.is_variable) header_uses.insert(ToLower(stmt->db.text));
  if (stmt->name.is_variable) header_uses.insert(ToLower(stmt->name.text));
  for (const NameTerm& a : stmt->attrs) {
    if (a.is_variable) header_uses.insert(ToLower(a.text));
  }
  CheckUnusedVariables(sql, body, bv.body, header_uses, &diags);
  CheckUnboundRefs(sql, body, bv.body, *catalog_, default_db_, &diags);

  // DV002 (Def. 3.1): the body must be first order. Both flavors — a
  // data-dependent header over a higher-order body, and a plain higher-order
  // view — are outside the class the architecture registers as sources.
  if (bv.body.higher_order) {
    std::string offender;
    for (const FromItem& f : body.from_items) {
      if (f.kind == FromItemKind::kDatabaseVar ||
          f.kind == FromItemKind::kRelationVar ||
          f.kind == FromItemKind::kAttributeVar) {
        offender = f.var;
        break;
      }
    }
    const bool header_dynamic = bv.db_is_variable || bv.name_is_variable ||
                                std::count(bv.attr_is_variable.begin(),
                                           bv.attr_is_variable.end(), true) > 0;
    std::string msg =
        "view body declares schema variable '" + offender + "'; " +
        (header_dynamic
             ? "Def. 3.1 dynamic views require a first-order body under a "
               "data-dependent output schema"
             : "registered sources must have first-order or dynamic (Def. "
               "3.1) bodies");
    diags.push_back(Make(
        "DV002", Severity::kError, SpanOfWord(sql, offender), std::move(msg),
        "re-declare '" + offender +
            "' as a domain variable over a tuple variable, or split the view "
            "into one first-order view per grounding"));
    SortDiagnostics(&diags);
    return diags;
  }

  // The deeper checks need the Sec. 5 structure; a body outside that
  // fragment is itself a definition-time error for sources.
  Result<ViewDefinition> vd = ViewDefinition::Create(*stmt, *catalog_,
                                                     default_db_);
  if (!vd.ok()) {
    diags.push_back(Make("DV001", Severity::kError, {},
                         "view body is outside the Sec. 5 source fragment: " +
                             vd.status().message(),
                         "each output column must be a single body variable; "
                         "UNION bodies are not supported"));
    CheckMissingTables(sql, body, *catalog_, default_db_, &diags);
    SortDiagnostics(&diags);
    return diags;
  }
  const ViewDefinition& view = vd.value();

  // DV003 (Sec. 4.3): an attribute-variable pivot collapses duplicate rows
  // — the information-capacity loss of Fig. 14.
  if (view.HasAttributeVariables() && !view.IsAggregateView()) {
    std::string pivot_var;
    for (size_t i = 0; i < view.att_terms().size(); ++i) {
      if (view.att_terms()[i].is_variable) {
        pivot_var = view.att_terms()[i].text;
        break;
      }
    }
    diags.push_back(Make(
        "DV003",
        opts.multiset ? Severity::kWarning : Severity::kWarning,
        SpanOfWord(sql, pivot_var),
        "attribute-variable pivot on '" + pivot_var +
            "' loses duplicate multiplicities (Sec. 4.3): the view is not "
            "usable under multiset semantics (Thm. 5.4)",
        "aggregate the pivoted value (MIN/MAX stay answerable per Ex. 5.2 / "
        "Fig. 14) or keep a count column alongside the pivot"));
  }

  // DV004 (Thm. 5.2/5.4): the view must pass the usability test for its own
  // defining query shape, or no rewrite will ever choose it. Aggregate
  // views route through the Sec. 5.2 re-aggregation machinery instead and
  // are exempt from this probe.
  if (!view.IsAggregateView()) {
    UsabilityFact fact = ProbeUsability(view, view.body().ToString());
    if (!fact.set_usable) {
      diags.push_back(Make(
          "DV004", Severity::kWarning, {},
          "view fails the set-usability test for its own defining query "
          "shape: " +
              fact.set_reason + " — the rewriter will never choose it",
          "expose the joined variables in the output schema (Thm. 5.2 "
          "condition 2)"));
    } else if (!fact.multiset_usable) {
      diags.push_back(Make(
          "DV004", opts.multiset ? Severity::kWarning : Severity::kNote, {},
          "view is set-usable but not multiset-usable: " +
              fact.multiset_reason,
          "bag-correct rewritings (Thm. 5.4) will fall back past this "
          "source; duplicate-insensitive queries still use it"));
    }
  }

  // DV005: contradiction in the (normalized) body conjunction.
  CheckUnsatisfiable(view.conds(), "view body", &diags);

  // DV006: constant scans of nonexistent tables.
  CheckMissingTables(sql, body, *catalog_, default_db_, &diags);

  SortDiagnostics(&diags);
  return diags;
}

std::vector<Diagnostic> Analyzer::AnalyzeCreateView(
    const std::string& sql, const AnalyzeOptions& opts) const {
  Result<std::unique_ptr<CreateViewStmt>> parsed = Parser::ParseCreateView(sql);
  if (!parsed.ok()) return {MakeSyntax(parsed.status())};
  return AnalyzeViewStmt(sql, *parsed.value(), opts);
}

std::vector<Diagnostic> Analyzer::AnalyzeSelect(
    const std::string& sql, const AnalyzeOptions& opts) const {
  std::vector<Diagnostic> diags;
  Result<std::unique_ptr<SelectStmt>> parsed = Parser::ParseSelect(sql);
  if (!parsed.ok()) return {MakeSyntax(parsed.status())};
  SelectStmt* stmt = parsed.value().get();

  // Per-branch front-end checks. Each UNION branch has its own scope, so
  // bind (and analyze) them individually, like the engine does.
  size_t branch_count = 0;
  bool any_union_all = false;
  std::vector<std::string> branch_sqls;
  for (SelectStmt* branch = stmt; branch != nullptr;
       branch = branch->union_next.get()) {
    ++branch_count;
    if (branch->union_all) any_union_all = true;
    const std::string label =
        branch_count == 1 && branch->union_next == nullptr
            ? std::string("query")
            : "union branch " + std::to_string(branch_count);
    Result<BoundQuery> bq = Binder::BindBranch(branch);
    if (!bq.ok()) {
      diags.push_back(Make("DV001", Severity::kError, {},
                           label + ": binding failed: " +
                               bq.status().message()));
      continue;
    }
    CheckUnusedVariables(sql, *branch, bq.value(), {}, &diags);
    CheckUnboundRefs(sql, *branch, bq.value(), *catalog_, default_db_,
                     &diags);
    CheckMissingTables(sql, *branch, *catalog_, default_db_, &diags);
    CheckEmptyGrounding(*branch, bq.value(), *catalog_, default_db_, &diags);
    if (bq.value().higher_order) {
      branch_sqls.emplace_back();  // Containment needs first-order branches.
    } else {
      branch_sqls.push_back(BranchSql(*branch));
      // DV005 on a normalized clone (normalization rewrites T.attr column
      // references into the domain variables the condition closure reasons
      // over).
      std::unique_ptr<SelectStmt> norm = branch->Clone();
      norm->union_next = nullptr;
      if (NormalizeQuery(norm.get(), *catalog_, default_db_).ok()) {
        std::vector<const Expr*> conjuncts;
        CollectConjuncts(norm->where.get(), &conjuncts);
        CheckUnsatisfiable(conjuncts, label, &diags);
      }
    }
  }

  // DV006 (dead branch): under UNION set semantics, a branch contained in
  // an earlier one contributes nothing (Def. 4.1). UNION ALL keeps
  // duplicates, so subsumption does not make a branch dead there.
  if (branch_count > 1 && !any_union_all) {
    ContainmentChecker containment(catalog_, default_db_);
    for (size_t j = 1; j < branch_sqls.size(); ++j) {
      if (branch_sqls[j].empty()) continue;
      for (size_t i = 0; i < j; ++i) {
        if (branch_sqls[i].empty()) continue;
        Result<bool> contained =
            containment.Contained(branch_sqls[j], branch_sqls[i]);
        if (!contained.ok() || !contained.value()) continue;
        diags.push_back(Make(
            "DV006", Severity::kWarning, {},
            "union branch " + std::to_string(j + 1) +
                " is contained in branch " + std::to_string(i + 1) +
                " (Def. 4.1) — dead under UNION set semantics",
            "drop the subsumed branch, or use UNION ALL if duplicates are "
            "intended"));
        break;
      }
    }
  }

  // DV004 (query side): when registered sources are in scope, verify some
  // source passes the usability test for this query shape.
  if (opts.sources != nullptr && !opts.sources->empty() &&
      branch_count == 1) {
    bool any_usable = false;
    std::string reasons;
    for (const auto& source : *opts.sources) {
      if (source->IsAggregateView()) continue;  // Sec. 5.2 machinery.
      UsabilityFact fact = ProbeUsability(*source, sql);
      const bool usable =
          opts.multiset ? fact.multiset_usable : fact.set_usable;
      if (usable) {
        any_usable = true;
        break;
      }
      if (!reasons.empty()) reasons += "; ";
      reasons += source->rel_term().text + ": " +
                 (opts.multiset ? fact.multiset_reason : fact.set_reason);
    }
    if (!any_usable && !reasons.empty()) {
      diags.push_back(Make(
          "DV004", Severity::kWarning, {},
          std::string("no registered source is ") +
              (opts.multiset ? "multiset" : "set") +
              "-usable for this query shape (" + reasons + ")",
          "the query can only be answered directly from the integration "
          "schema"));
    }
  }

  SortDiagnostics(&diags);
  return diags;
}

std::vector<Diagnostic> Analyzer::AnalyzeCreateIndex(
    const std::string& sql, const AnalyzeOptions& opts) const {
  (void)opts;
  std::vector<Diagnostic> diags;
  Result<std::unique_ptr<CreateIndexStmt>> parsed =
      Parser::ParseCreateIndex(sql);
  if (!parsed.ok()) return {MakeSyntax(parsed.status())};
  Result<BoundQuery> bq = Binder::BindIndex(parsed.value().get());
  if (!bq.ok()) {
    diags.push_back(Make("DV001", Severity::kError, {},
                         "binding failed: " + bq.status().message()));
    SortDiagnostics(&diags);
    return diags;
  }
  const SelectStmt& body = *parsed.value()->query;
  // GIVEN expressions count as uses for the DV001 unused-variable check.
  std::set<std::string> given_uses;
  bool star = false;
  for (const auto& g : parsed.value()->given) {
    CollectExprUses(*g, &given_uses, &star);
  }
  CheckUnusedVariables(sql, body, bq.value(), given_uses, &diags);
  CheckUnboundRefs(sql, body, bq.value(), *catalog_, default_db_, &diags);
  CheckMissingTables(sql, body, *catalog_, default_db_, &diags);
  CheckEmptyGrounding(body, bq.value(), *catalog_, default_db_, &diags);
  SortDiagnostics(&diags);
  return diags;
}

std::vector<Diagnostic> Analyzer::AnalyzeStatement(
    const std::string& sql, const AnalyzeOptions& opts) const {
  Result<Statement> parsed = Parser::Parse(sql);
  if (!parsed.ok()) return {MakeSyntax(parsed.status())};
  if (parsed.value().create_view != nullptr) {
    return AnalyzeViewStmt(sql, *parsed.value().create_view, opts);
  }
  if (parsed.value().create_index != nullptr) {
    return AnalyzeCreateIndex(sql, opts);
  }
  return AnalyzeSelect(sql, opts);
}

std::vector<Diagnostic> Analyzer::AnalyzeRegisteredView(
    const ViewDefinition& view, const CatalogSnapshot& snap,
    const AnalyzeOptions& opts) const {
  const std::string sql = view.stmt().ToString();
  std::vector<Diagnostic> diags = AnalyzeViewStmt(sql, view.stmt(), opts);
  // The stored statement is the *normalized* body: normalization declares
  // domain variables the author never wrote, so the unused-variable warning
  // (the only DV001 warning) would misfire here. Errors stay.
  diags.erase(std::remove_if(diags.begin(), diags.end(),
                             [](const Diagnostic& d) {
                               return d.code == "DV001" &&
                                      d.severity == Severity::kWarning;
                             }),
              diags.end());
  // DV007: the fence is already behind the snapshot at analysis time —
  // every query pinned to `snap` (or later) will skip this source.
  if (view.fenced() && view.IsStaleAgainst(snap)) {
    std::string moved;
    for (const TableRef& t : view.tables()) {
      if (snap.DatabaseVersion(t.db) > view.materialized_version()) {
        moved = t.db;
        break;
      }
    }
    diags.push_back(Make(
        "DV007", Severity::kWarning, {},
        "materialization was built at catalog version " +
            std::to_string(view.materialized_version()) + " but database '" +
            moved + "' has committed at version " +
            std::to_string(snap.DatabaseVersion(moved)) +
            " — queries fence this source off and fall back to base tables",
        "re-materialize the view or run the incremental maintainer to "
        "advance the fence"));
    SortDiagnostics(&diags);
  }
  return diags;
}

void RecordAnalyzeMetrics(const std::vector<Diagnostic>& diags,
                          MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  // Per-definition checks only: the DV1xx workload-audit entries in the
  // registry run per audit, not per analyzed statement.
  size_t per_definition = 0;
  for (const CheckInfo& c : CheckCatalog()) {
    if (std::string_view(c.code) < std::string_view("DV100")) ++per_definition;
  }
  metrics->Add(counters::kAnalyzeChecksRun, per_definition);
  metrics->Add(counters::kAnalyzeDiagnostics, diags.size());
  metrics->Add(counters::kAnalyzeErrors,
               CountSeverity(diags, Severity::kError));
  metrics->Add(counters::kAnalyzeWarnings,
               CountSeverity(diags, Severity::kWarning));
  metrics->Add(counters::kAnalyzeNotes, CountSeverity(diags, Severity::kNote));
}

}  // namespace dynview

#include "analyze/audit.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <utility>

#include "analyze/analyzer.h"
#include "common/str_util.h"
#include "core/containment.h"
#include "evolve/evolution.h"
#include "observe/metrics.h"
#include "sql/parser.h"

namespace dynview {

namespace {

std::string ViewDisplayName(const ViewDefinition& view) {
  const NameTerm& db = view.db_term();
  return (db.empty() ? std::string() : db.text + "::") + view.rel_term().text;
}

std::string ViewLabel(size_t index, const ViewDefinition& view) {
  return "view[" + std::to_string(index) + "] " + ViewDisplayName(view);
}

Diagnostic MakeAudit(const char* code, Severity severity, std::string message,
                     std::string fix_hint, int statement) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  d.statement = statement;
  for (const CheckInfo& c : CheckCatalog()) {
    if (d.code == c.code) {
      d.anchor = c.anchor;
      break;
    }
  }
  return d;
}

/// Pairwise checks only make sense between views with the same schematic
/// shape: position-wise, the Db/Rel/Att terms must be variable in one iff
/// variable in the other (a relation-partition view and an attribute pivot
/// export structurally different schemas even when one body contains the
/// other). Aggregates and unions are outside the SPJ fragment the checker
/// proves over.
bool PairComparable(const ViewDefinition& a, const ViewDefinition& b) {
  if (a.IsAggregateView() || b.IsAggregateView()) return false;
  if (a.body().union_next != nullptr || b.body().union_next != nullptr) {
    return false;
  }
  if (a.db_term().is_variable != b.db_term().is_variable) return false;
  if (a.rel_term().is_variable != b.rel_term().is_variable) return false;
  if (a.att_terms().size() != b.att_terms().size()) return false;
  for (size_t i = 0; i < a.att_terms().size(); ++i) {
    if (a.att_terms()[i].is_variable != b.att_terms()[i].is_variable) {
      return false;
    }
  }
  return true;
}

/// The view's SPJ core extended with its schematic dimension: the body
/// select list (Sel(V), positionally Dom(att i)) plus every header variable
/// appended in canonical order (db, rel, atts). Two PairComparable views
/// then align position-by-position, so proving containment of the extended
/// cores proves containment of the views *including* which partition /
/// column each row lands in.
std::string ExtendedCoreSql(const ViewDefinition& view) {
  std::unique_ptr<SelectStmt> body = view.body().Clone();
  auto append_var = [&body](const NameTerm& t) {
    if (!t.is_variable) return;
    body->select_list.emplace_back(Expr::MakeVarRef(t.text), "");
  };
  append_var(view.db_term());
  append_var(view.rel_term());
  for (const NameTerm& t : view.att_terms()) append_var(t);
  return body->ToString();
}

/// Collects the concrete tables a CREATE INDEX body scans (tuple-variable
/// declarations over constant relations; a variable relation scans the
/// whole database and contributes no single table node).
void CollectIndexTables(const SelectStmt& body,
                        const std::string& integration_db,
                        std::vector<TableRef>* out) {
  for (const SelectStmt* s = &body; s != nullptr; s = s->union_next.get()) {
    for (const FromItem& f : s->from_items) {
      if (f.kind != FromItemKind::kTupleVar) continue;
      if (f.rel.is_variable) continue;
      std::string db = (f.db.empty() || f.db.is_variable) ? integration_db
                                                          : f.db.text;
      out->push_back(TableRef{ToLower(db), ToLower(f.rel.text)});
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

// Statically predicts whether re-materializing `view` against `snap` would
// succeed. SchemaEvolver::Propagate attempts the real rebuild and leaves the
// source fenced when it fails, even if the definition still lints clean; the
// post-DDL failure modes are a body table that no longer exists and a
// constant domain-variable attribute that no longer names a column, both
// decidable from the snapshot alone. The rebuild runs on the body with
// unused domain declarations pruned away (registration declares one per base
// attribute), so feasibility is judged against the same pruned form.
// Variable relation/attribute terms range over whatever exists, so they
// cannot make the rebuild fail and are skipped.
bool RebuildFeasible(const ViewDefinition& view, const CatalogSnapshot& snap,
                     const std::string& integration_db) {
  std::unique_ptr<CreateViewStmt> pruned = PruneUnusedDomainVars(view.stmt());
  for (const SelectStmt* branch = pruned->query.get(); branch != nullptr;
       branch = branch->union_next.get()) {
    for (const FromItem& item : branch->from_items) {
      if (item.kind == FromItemKind::kTupleVar) {
        if (item.db.is_variable || item.rel.is_variable) continue;
        std::string db_name =
            item.db.empty() ? integration_db : item.db.text;
        Result<const Database*> db = snap.GetDatabase(db_name);
        if (!db.ok()) return false;
        if (!db.value()->GetTable(item.rel.text).ok()) return false;
        continue;
      }
      if (item.kind != FromItemKind::kDomainVar || item.attr.is_variable) {
        continue;
      }
      for (const FromItem& tv : branch->from_items) {
        if (tv.kind != FromItemKind::kTupleVar || tv.var != item.tuple) {
          continue;
        }
        if (tv.db.is_variable || tv.rel.is_variable) break;
        std::string db_name = tv.db.empty() ? integration_db : tv.db.text;
        Result<const Database*> db = snap.GetDatabase(db_name);
        if (!db.ok()) return false;
        Result<const Table*> table = db.value()->GetTable(tv.rel.text);
        if (!table.ok()) return false;
        if (!table.value()->schema().HasColumn(item.attr.text)) return false;
        break;
      }
    }
  }
  return true;
}

size_t SumBodyTableRows(const ViewDefinition& view,
                        const CatalogSnapshot& snap) {
  size_t rows = 0;
  for (const TableRef& t : view.tables()) {
    Result<const Database*> db = snap.GetDatabase(t.db);
    if (!db.ok()) continue;
    Result<const Table*> table = db.value()->GetTable(t.rel);
    if (!table.ok()) continue;
    rows += table.value()->num_rows();
  }
  return rows;
}

}  // namespace

std::vector<AuditIndexInfo> WorkloadAuditor::DescribeIndexes(
    const std::vector<std::shared_ptr<ViewIndex>>& indexes,
    const std::string& integration_db) {
  std::vector<AuditIndexInfo> out;
  out.reserve(indexes.size());
  for (const auto& index : indexes) {
    AuditIndexInfo info;
    info.name = index->name();
    Result<std::unique_ptr<CreateIndexStmt>> parsed =
        Parser::ParseCreateIndex(index->definition());
    if (parsed.ok() && parsed.value()->query != nullptr) {
      CollectIndexTables(*parsed.value()->query, integration_db, &info.tables);
    }
    out.push_back(std::move(info));
  }
  return out;
}

AuditIndexInfo WorkloadAuditor::DescribeIndexSql(
    const std::string& create_index_sql, const std::string& integration_db) {
  AuditIndexInfo info;
  Result<std::unique_ptr<CreateIndexStmt>> parsed =
      Parser::ParseCreateIndex(create_index_sql);
  if (!parsed.ok()) return info;
  info.name = parsed.value()->name;
  if (parsed.value()->query != nullptr) {
    CollectIndexTables(*parsed.value()->query, integration_db, &info.tables);
  }
  return info;
}

WorkloadAuditor::WorkloadAuditor(
    std::shared_ptr<const CatalogSnapshot> snap, std::string integration_db,
    std::vector<std::shared_ptr<ViewDefinition>> sources,
    std::vector<AuditIndexInfo> indexes, MetricsRegistry* metrics)
    : snap_(std::move(snap)),
      integration_db_(std::move(integration_db)),
      sources_(std::move(sources)),
      indexes_(std::move(indexes)),
      metrics_(metrics) {}

AuditReport WorkloadAuditor::Audit() const {
  AuditReport report;
  report.catalog_version = snap_->version();

  DependencyGraph graph =
      DependencyGraph::Build(*snap_, integration_db_, sources_, indexes_);
  report.graph_stats = graph.stats();
  report.graph = graph.Describe();

  // DV100/DV101: pairwise containment over extended SPJ cores. The checker
  // is sound-not-complete, so every finding here is a proof; an unproved
  // pair is silent (never a false positive).
  ContainmentChecker checker(snap_.get(), integration_db_);
  std::vector<std::string> core_sql(sources_.size());
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (!sources_[i]->IsAggregateView() &&
        sources_[i]->body().union_next == nullptr) {
      core_sql[i] = ExtendedCoreSql(*sources_[i]);
    }
  }
  for (size_t j = 1; j < sources_.size(); ++j) {
    for (size_t i = 0; i < j; ++i) {
      const ViewDefinition& a = *sources_[i];
      const ViewDefinition& b = *sources_[j];
      if (!PairComparable(a, b)) continue;
      ++report.pairs_checked;
      Result<bool> fwd = checker.Contained(core_sql[i], core_sql[j]);
      Result<bool> bwd = checker.Contained(core_sql[j], core_sql[i]);
      bool a_in_b = fwd.ok() && fwd.value();
      bool b_in_a = bwd.ok() && bwd.value();
      if (a_in_b && b_in_a) {
        ++report.duplicates;
        report.diagnostics.push_back(MakeAudit(
            "DV100", Severity::kWarning,
            ViewLabel(j, b) + " is set-equivalent to " + ViewLabel(i, a) +
                " — the workload maintains the same source twice",
            "drop one definition, or serve both names from a single "
            "materialization",
            static_cast<int>(j)));
      } else if (a_in_b) {
        ++report.subsumed;
        report.diagnostics.push_back(MakeAudit(
            "DV101", Severity::kWarning,
            ViewLabel(i, a) + " is contained in " + ViewLabel(j, b) +
                " — every row the narrower view supplies is already in the "
                "wider one",
            "merge: answer " + ViewDisplayName(a) + "'s queries from " +
                ViewDisplayName(b) + " (add the defining predicate) and "
                "retire the narrower materialization",
            static_cast<int>(i)));
      } else if (b_in_a) {
        ++report.subsumed;
        report.diagnostics.push_back(MakeAudit(
            "DV101", Severity::kWarning,
            ViewLabel(j, b) + " is contained in " + ViewLabel(i, a) +
                " — every row the narrower view supplies is already in the "
                "wider one",
            "merge: answer " + ViewDisplayName(b) + "'s queries from " +
                ViewDisplayName(a) + " (add the defining predicate) and "
                "retire the narrower materialization",
            static_cast<int>(j)));
      }
    }
  }

  // DV102: fenced materializations stale against the audited snapshot —
  // every query that could use them falls back, so they are pure upkeep.
  for (size_t i = 0; i < sources_.size(); ++i) {
    const ViewDefinition& view = *sources_[i];
    if (!view.fenced() || !view.IsStaleAgainst(*snap_)) continue;
    ++report.shadowed;
    report.diagnostics.push_back(MakeAudit(
        "DV102", Severity::kWarning,
        "materialization of " + ViewLabel(i, view) +
            " (built @v" + std::to_string(view.materialized_version()) +
            ") is shadowed at v" + std::to_string(snap_->version()) +
            ": every query falls back past the fence",
        "re-materialize via schema evolution or retire the materialization",
        static_cast<int>(i)));
  }

  // DV103: tables with no reachable view/query path (DependencyGraph owns
  // the scope rule: workload-referenced databases only, integration db
  // excluded).
  for (const std::string& table : graph.unused_tables()) {
    ++report.unused;
    report.diagnostics.push_back(MakeAudit(
        "DV103", Severity::kNote,
        "table " + table + " has no reachable view/query path: no "
            "registered view or index reads it and no materialization "
            "targets it",
        "register a source over it or drop it from the federation", 0));
  }

  SortDiagnostics(&report.diagnostics);

  if (metrics_ != nullptr) {
    metrics_->Add(counters::kAuditRuns, 1);
    metrics_->Add(counters::kAuditPairsChecked, report.pairs_checked);
    metrics_->Add(counters::kAuditDuplicates, report.duplicates);
    metrics_->Add(counters::kAuditSubsumed, report.subsumed);
    metrics_->Add(counters::kAuditShadowed, report.shadowed);
    metrics_->Add(counters::kAuditUnused, report.unused);
  }
  return report;
}

WhatIfReport WorkloadAuditor::WhatIf(const DdlOp& op) const {
  WhatIfReport report;
  report.op_text = op.ToString();
  report.base_version = snap_->version();
  if (metrics_ != nullptr) metrics_->Add(counters::kAuditWhatIfRuns, 1);

  // Apply the op to a scratch copy of the audited snapshot. The copy keeps
  // per-database versions and the head version, and Mutate commits as
  // head+1 — exactly the version arithmetic the live catalog would use, so
  // staleness fences evaluate identically against the scratch snapshot.
  Catalog scratch;
  if (snap_->version() != 0 || snap_->num_databases() != 0) {
    std::vector<RecoveredDatabase> dbs;
    for (const std::string& name : snap_->DatabaseNames()) {
      Result<const Database*> db = snap_->GetDatabase(name);
      if (!db.ok()) continue;
      dbs.push_back(RecoveredDatabase{name, snap_->DatabaseVersion(name),
                                      *db.value()});
    }
    Status installed =
        scratch.InstallRecoveredSnapshot(snap_->version(), std::move(dbs));
    if (!installed.ok()) {
      report.op_error = "what-if setup failed: " + installed.message();
      return report;
    }
  }
  std::vector<std::string> tables_changed;
  Result<uint64_t> committed = scratch.Mutate(
      [&](CatalogTxn& txn) {
        return SchemaEvolver::ApplyToTxn(txn, op, &tables_changed);
      },
      std::string("audit.whatif.") + DdlKindName(op.kind));
  if (!committed.ok()) {
    report.op_error = committed.status().message();
    return report;
  }
  report.op_valid = true;
  report.predicted_version = committed.value();
  std::sort(tables_changed.begin(), tables_changed.end());
  tables_changed.erase(
      std::unique(tables_changed.begin(), tables_changed.end()),
      tables_changed.end());
  report.tables_changed = std::move(tables_changed);

  // Replay SchemaEvolver::Propagate's decisions symbolically against the
  // post-DDL snapshot: same affected predicate, same re-lint, same
  // fenced-stale precondition, same broken-definition branch.
  std::shared_ptr<const CatalogSnapshot> post = scratch.Snapshot();
  const std::string db_key = ToLower(op.db);
  Analyzer analyzer(post.get(), integration_db_);
  for (size_t i = 0; i < sources_.size(); ++i) {
    const ViewDefinition& view = *sources_[i];
    if (!SchemaEvolver::Touches(view, db_key)) continue;
    ++report.sources_affected;
    WhatIfSourceImpact impact;
    impact.index = i;
    impact.name = ViewDisplayName(view);
    std::vector<Diagnostic> diags = analyzer.AnalyzeRegisteredView(view, *post);
    for (Diagnostic& d : diags) {
      d.statement = static_cast<int>(i);
      impact.definition_broken |= d.severity == Severity::kError;
      report.relint.push_back(std::move(d));
    }
    impact.fenced_stale = view.fenced() && view.IsStaleAgainst(*post);
    if (impact.fenced_stale) {
      // Propagation leaves a source fenced when its definition no longer
      // lints clean OR the rebuild itself would fail against the post-DDL
      // schemas (a lint-clean body can still reference a dropped column).
      if (impact.definition_broken ||
          !RebuildFeasible(view, *post, integration_db_)) {
        impact.left_stale = true;
        ++report.left_stale;
      } else {
        impact.rematerialized = true;
        impact.rebuild_rows = SumBodyTableRows(view, *post);
        ++report.rematerialized;
      }
    }
    report.impacts.push_back(std::move(impact));
  }
  if (db_key == ToLower(integration_db_)) {
    report.indexes_fenced = indexes_.size();
  }
  SortDiagnostics(&report.relint);
  return report;
}

// --- ParseDdlOp -------------------------------------------------------------

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

/// Inverts Value::ToString(): NULL, TRUE/FALSE, integer digits, %g double,
/// ''-escaped 'string'.
Result<Value> ParseFillValue(const std::string& text) {
  if (text == "NULL") return Value::Null();
  if (text == "TRUE") return Value::Bool(true);
  if (text == "FALSE") return Value::Bool(false);
  if (text.size() >= 2 && text.front() == '\'' && text.back() == '\'') {
    std::string s;
    for (size_t i = 1; i + 1 < text.size(); ++i) {
      if (text[i] == '\'') {
        if (i + 2 < text.size() && text[i + 1] == '\'') {
          s += '\'';
          ++i;
        } else {
          return Status::InvalidArgument("bad string literal: " + text);
        }
      } else {
        s += text[i];
      }
    }
    return Value::String(std::move(s));
  }
  std::string digits = text;
  if (!digits.empty() && (digits[0] == '-' || digits[0] == '+')) {
    digits = digits.substr(1);
  }
  if (AllDigits(digits)) {
    try {
      return Value::Int(std::stoll(text));
    } catch (...) {
      return Status::InvalidArgument("integer out of range: " + text);
    }
  }
  try {
    size_t consumed = 0;
    double d = std::stod(text, &consumed);
    if (consumed == text.size()) return Value::Double(d);
  } catch (...) {
  }
  return Status::InvalidArgument("unsupported fill literal: " + text);
}

Status SplitTarget(const std::string& target, std::string* db,
                   std::string* rel) {
  size_t sep = target.find("::");
  if (sep == std::string::npos || sep == 0 || sep + 2 >= target.size()) {
    return Status::InvalidArgument("expected db::rel, got '" + target + "'");
  }
  *db = target.substr(0, sep);
  *rel = target.substr(sep + 2);
  return Status::OK();
}

}  // namespace

Result<DdlOp> ParseDdlOp(const std::string& text) {
  const std::string input = Trim(text);
  size_t sp1 = input.find(' ');
  if (sp1 == std::string::npos) {
    return Status::InvalidArgument("expected '<kind> db::rel ...', got '" +
                                   input + "'");
  }
  const std::string kind = input.substr(0, sp1);
  std::string rest = Trim(input.substr(sp1 + 1));
  size_t sp2 = rest.find(' ');
  const std::string target = sp2 == std::string::npos ? rest
                                                      : rest.substr(0, sp2);
  rest = sp2 == std::string::npos ? "" : Trim(rest.substr(sp2 + 1));
  std::string db, rel;
  DV_RETURN_IF_ERROR(SplitTarget(target, &db, &rel));

  if (kind == "add-attribute") {
    // +attr=value (the value may contain spaces inside a quoted string).
    if (rest.empty() || rest[0] != '+') {
      return Status::InvalidArgument("add-attribute expects '+attr=value'");
    }
    size_t eq = rest.find('=');
    if (eq == std::string::npos || eq < 2) {
      return Status::InvalidArgument("add-attribute expects '+attr=value'");
    }
    std::string attr = rest.substr(1, eq - 1);
    DV_ASSIGN_OR_RETURN(Value fill, ParseFillValue(Trim(rest.substr(eq + 1))));
    return DdlOp::AddAttribute(db, rel, attr, std::move(fill));
  }
  if (kind == "drop-attribute") {
    if (rest.size() < 2 || rest[0] != '-') {
      return Status::InvalidArgument("drop-attribute expects '-attr'");
    }
    return DdlOp::DropAttribute(db, rel, rest.substr(1));
  }
  if (kind == "rename-attribute") {
    size_t arrow = rest.find("->");
    if (arrow == std::string::npos || arrow == 0 ||
        arrow + 2 >= rest.size()) {
      return Status::InvalidArgument("rename-attribute expects 'attr->new'");
    }
    return DdlOp::RenameAttribute(db, rel, Trim(rest.substr(0, arrow)),
                                  Trim(rest.substr(arrow + 2)));
  }
  if (kind == "rename-relation") {
    if (rest.rfind("->", 0) != 0 || rest.size() < 3) {
      return Status::InvalidArgument("rename-relation expects '->new'");
    }
    return DdlOp::RenameRelation(db, rel, Trim(rest.substr(2)));
  }
  if (kind == "demote-data-to-label") {
    if (rest.rfind("by ", 0) != 0) {
      return Status::InvalidArgument("demote-data-to-label expects 'by attr'");
    }
    return DdlOp::DemoteDataToLabel(db, rel, Trim(rest.substr(3)));
  }
  if (kind == "promote-label-to-data") {
    // from [a,b] label attr
    if (rest.rfind("from [", 0) != 0) {
      return Status::InvalidArgument(
          "promote-label-to-data expects 'from [a,b] label attr'");
    }
    size_t close = rest.find(']');
    if (close == std::string::npos) {
      return Status::InvalidArgument("unterminated relation family list");
    }
    std::string family_text = rest.substr(6, close - 6);
    std::vector<std::string> family;
    size_t start = 0;
    while (start <= family_text.size()) {
      size_t comma = family_text.find(',', start);
      std::string member = Trim(family_text.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start));
      if (!member.empty()) family.push_back(std::move(member));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    std::string tail = Trim(rest.substr(close + 1));
    if (tail.rfind("label ", 0) != 0) {
      return Status::InvalidArgument(
          "promote-label-to-data expects 'label attr' after the family");
    }
    return DdlOp::PromoteLabelToData(db, std::move(family), rel,
                                     Trim(tail.substr(6)));
  }
  return Status::InvalidArgument("unknown DDL kind '" + kind + "'");
}

// --- Renderings -------------------------------------------------------------

namespace {

std::string EmbedDiagnosticsJson(const std::vector<Diagnostic>& diags) {
  std::string body = RenderDiagnosticsJson(diags);
  while (!body.empty() && body.back() == '\n') body.pop_back();
  return body;
}

}  // namespace

std::string RenderAuditText(const AuditReport& report) {
  std::string out =
      "== workload audit @v" + std::to_string(report.catalog_version) +
      " ==\n";
  out += report.graph;
  out += "== findings ==\n";
  if (report.diagnostics.empty()) {
    out += "no workload findings\n";
  } else {
    out += RenderDiagnosticsText(report.diagnostics);
  }
  out += "pairs checked: " + std::to_string(report.pairs_checked) +
         "; duplicates: " + std::to_string(report.duplicates) +
         "; subsumed: " + std::to_string(report.subsumed) +
         "; shadowed: " + std::to_string(report.shadowed) +
         "; unused: " + std::to_string(report.unused) + "\n";
  return out;
}

std::string RenderAuditJson(const AuditReport& report) {
  const DepGraphStats& g = report.graph_stats;
  std::string out = "{\n";
  out += "  \"catalog_version\": " + std::to_string(report.catalog_version) +
         ",\n";
  out += "  \"graph\": {\"tables\": " + std::to_string(g.tables) +
         ", \"views\": " + std::to_string(g.views) +
         ", \"indexes\": " + std::to_string(g.indexes) +
         ", \"edges\": " + std::to_string(g.edges) +
         ", \"cycles\": " + std::to_string(g.cycles) +
         ", \"max_fan_in\": {\"node\": \"" + JsonEscape(g.max_fan_in_table) +
         "\", \"count\": " + std::to_string(g.max_fan_in) +
         "}, \"max_fan_out\": {\"node\": \"" +
         JsonEscape(g.max_fan_out_view) +
         "\", \"count\": " + std::to_string(g.max_fan_out) + "}},\n";
  out += "  \"pairs_checked\": " + std::to_string(report.pairs_checked) +
         ",\n";
  out += "  \"duplicates\": " + std::to_string(report.duplicates) + ",\n";
  out += "  \"subsumed\": " + std::to_string(report.subsumed) + ",\n";
  out += "  \"shadowed\": " + std::to_string(report.shadowed) + ",\n";
  out += "  \"unused\": " + std::to_string(report.unused) + ",\n";
  out += "  \"findings\": " + EmbedDiagnosticsJson(report.diagnostics) + "\n";
  out += "}\n";
  return out;
}

std::string RenderWhatIfText(const WhatIfReport& report) {
  std::string out = "== what-if " + report.op_text + " ==\n";
  if (!report.op_valid) {
    out += "invalid: " + report.op_error + "\n";
    return out;
  }
  out += "version: v" + std::to_string(report.base_version) + " -> v" +
         std::to_string(report.predicted_version) + "\n";
  out += "tables changed:";
  if (report.tables_changed.empty()) {
    out += " (none)";
  } else {
    for (const std::string& t : report.tables_changed) out += " " + t;
  }
  out += "\n";
  out += "sources affected: " + std::to_string(report.sources_affected) +
         " (rematerialized: " + std::to_string(report.rematerialized) +
         ", left stale: " + std::to_string(report.left_stale) +
         "); indexes re-fenced: " + std::to_string(report.indexes_fenced) +
         "\n";
  for (const WhatIfSourceImpact& s : report.impacts) {
    out += "view[" + std::to_string(s.index) + "] " + s.name + ": ";
    out += s.definition_broken ? "definition broken" : "re-lints clean";
    if (s.rematerialized) {
      out += "; rematerialize O(base)=" + std::to_string(s.rebuild_rows) +
             " row(s)";
    } else if (s.left_stale) {
      out += "; left fenced (stale)";
    } else if (!s.fenced_stale) {
      out += "; materialization unaffected";
    }
    out += "\n";
  }
  out += "== predicted re-lint ==\n";
  if (report.relint.empty()) {
    out += "clean\n";
  } else {
    out += RenderDiagnosticsText(report.relint);
  }
  return out;
}

std::string RenderWhatIfJson(const WhatIfReport& report) {
  std::string out = "{\n";
  out += "  \"op\": \"" + JsonEscape(report.op_text) + "\",\n";
  out += std::string("  \"op_valid\": ") +
         (report.op_valid ? "true" : "false") + ",\n";
  if (!report.op_valid) {
    out += "  \"op_error\": \"" + JsonEscape(report.op_error) + "\"\n";
    out += "}\n";
    return out;
  }
  out += "  \"base_version\": " + std::to_string(report.base_version) + ",\n";
  out += "  \"predicted_version\": " +
         std::to_string(report.predicted_version) + ",\n";
  out += "  \"tables_changed\": [";
  for (size_t i = 0; i < report.tables_changed.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(report.tables_changed[i]) + "\"";
  }
  out += "],\n";
  out += "  \"sources_affected\": " +
         std::to_string(report.sources_affected) + ",\n";
  out += "  \"rematerialized\": " + std::to_string(report.rematerialized) +
         ",\n";
  out += "  \"left_stale\": " + std::to_string(report.left_stale) + ",\n";
  out += "  \"indexes_fenced\": " + std::to_string(report.indexes_fenced) +
         ",\n";
  out += "  \"impacts\": [";
  for (size_t i = 0; i < report.impacts.size(); ++i) {
    const WhatIfSourceImpact& s = report.impacts[i];
    if (i > 0) out += ',';
    out += "\n    {\"index\": " + std::to_string(s.index) + ", \"name\": \"" +
           JsonEscape(s.name) + "\", \"definition_broken\": " +
           (s.definition_broken ? "true" : "false") +
           ", \"rematerialized\": " + (s.rematerialized ? "true" : "false") +
           ", \"left_stale\": " + (s.left_stale ? "true" : "false") +
           ", \"rebuild_rows\": " + std::to_string(s.rebuild_rows) + "}";
  }
  out += report.impacts.empty() ? "],\n" : "\n  ],\n";
  out += "  \"relint\": " + EmbedDiagnosticsJson(report.relint) + "\n";
  out += "}\n";
  return out;
}

}  // namespace dynview

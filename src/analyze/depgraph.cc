#include "analyze/depgraph.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/str_util.h"

namespace dynview {

namespace {

std::string TableNode(const TableRef& t) { return "table " + t.ToString(); }

std::string ViewNode(size_t index, const ViewDefinition& view) {
  const NameTerm& db = view.db_term();
  std::string name =
      (db.empty() ? std::string() : db.text + "::") + view.rel_term().text;
  return "view[" + std::to_string(index) + "] " + name;
}

std::string IndexNode(const AuditIndexInfo& info) {
  return "index " + info.name;
}

std::string TermText(const NameTerm& t) {
  return t.is_variable ? "$" + t.text : t.text;
}

int EdgeKindRank(DepEdge::Kind k) {
  switch (k) {
    case DepEdge::Kind::kReads: return 0;
    case DepEdge::Kind::kMaterializesInto: return 1;
    case DepEdge::Kind::kIndexReads: return 2;
  }
  return 3;
}

const char* EdgeKindArrow(DepEdge::Kind k) {
  switch (k) {
    case DepEdge::Kind::kReads: return "reads->";
    case DepEdge::Kind::kMaterializesInto: return "writes->";
    case DepEdge::Kind::kIndexReads: return "indexes->";
  }
  return "->";
}

/// The attribute-level annotation of one (table, view) reads-edge: for each
/// view output position whose domain variable ranges over an attribute of a
/// tuple variable declared on `table_pos`, "src_attr->out_attr". View
/// variables (the Db/Rel/Att terms) count as outputs too — they are the
/// schematic columns of the view.
std::string ReadEdgeAttributes(const ViewDefinition& view, size_t table_pos) {
  const std::string& tuple_var = view.tuple_vars()[table_pos];
  std::set<std::string> entries;
  auto add = [&](const std::string& body_var, const std::string& out_name) {
    const ViewDefinition::DomainDecl* decl = view.FindDomainDecl(body_var);
    if (decl == nullptr) return;
    if (ToLower(decl->tuple_var) != ToLower(tuple_var)) return;
    entries.insert(TermText(decl->attr) + "->" + out_name);
  };
  for (size_t i = 0; i < view.att_terms().size(); ++i) {
    add(view.dom_of(i), TermText(view.att_terms()[i]));
  }
  if (view.db_term().is_variable) {
    add(view.db_term().text, "$" + view.db_term().text);
  }
  if (view.rel_term().is_variable) {
    add(view.rel_term().text, "$" + view.rel_term().text);
  }
  for (const NameTerm& a : view.att_terms()) {
    if (a.is_variable) add(a.text, "$" + a.text);
  }
  std::string out;
  for (const std::string& e : entries) {
    if (!out.empty()) out += ",";
    out += e;
  }
  return out;
}

/// Counts strongly connected components of size >= 2 (iterative Tarjan over
/// the node-index adjacency) and renders their members.
void FindCycles(const std::map<std::string, size_t>& node_ids,
                const std::vector<DepEdge>& edges, DepGraphStats* stats,
                std::vector<std::string>* out) {
  const size_t n = node_ids.size();
  std::vector<std::string> names(n);
  for (const auto& [name, id] : node_ids) names[id] = name;
  std::vector<std::vector<size_t>> adj(n);
  for (const DepEdge& e : edges) {
    adj[node_ids.at(e.from)].push_back(node_ids.at(e.to));
  }
  std::vector<int> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  int next_index = 0;
  struct Frame {
    size_t v;
    size_t child = 0;
  };
  for (size_t root = 0; root < n; ++root) {
    if (index[root] >= 0) continue;
    std::vector<Frame> frames{{root}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.v].size()) {
        size_t w = adj[f.v][f.child++];
        if (index[w] < 0) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          std::vector<std::string> members;
          while (true) {
            size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            members.push_back(names[w]);
            if (w == f.v) break;
          }
          if (members.size() >= 2) {
            ++stats->cycles;
            std::sort(members.begin(), members.end());
            std::string line;
            for (const std::string& m : members) {
              if (!line.empty()) line += " <-> ";
              line += m;
            }
            out->push_back(std::move(line));
          }
        }
        size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  std::sort(out->begin(), out->end());
}

}  // namespace

DependencyGraph DependencyGraph::Build(
    const CatalogSnapshot& snap, const std::string& integration_db,
    const std::vector<std::shared_ptr<ViewDefinition>>& sources,
    const std::vector<AuditIndexInfo>& indexes) {
  DependencyGraph g;
  std::map<std::string, size_t> node_ids;
  auto intern = [&](const std::string& name) {
    auto [it, inserted] = node_ids.emplace(name, node_ids.size());
    (void)inserted;
    return it->first;
  };

  // Databases the workload references (audit scope for unused detection).
  std::set<std::string> workload_dbs;
  // Tables with any edge at all.
  std::set<std::string> used_tables;

  for (size_t i = 0; i < sources.size(); ++i) {
    const ViewDefinition& view = *sources[i];
    const std::string vnode = ViewNode(i, view);
    intern(vnode);
    std::set<std::string> seen;  // Dedup repeated scans of one table.
    for (size_t t = 0; t < view.tables().size(); ++t) {
      const TableRef& ref = view.tables()[t];
      workload_dbs.insert(ref.db);
      used_tables.insert(ref.ToString());
      std::string annot = ReadEdgeAttributes(view, t);
      const std::string tnode = TableNode(ref);
      intern(tnode);
      std::string key = tnode + "|" + annot;
      if (!seen.insert(key).second) continue;
      g.edges_.push_back(
          DepEdge{DepEdge::Kind::kReads, tnode, vnode, std::move(annot)});
    }
    for (const TableRef& ref : view.materialization()) {
      workload_dbs.insert(ref.db);
      used_tables.insert(ref.ToString());
      const std::string tnode = TableNode(ref);
      intern(tnode);
      g.edges_.push_back(
          DepEdge{DepEdge::Kind::kMaterializesInto, vnode, tnode, ""});
    }
  }
  for (const AuditIndexInfo& info : indexes) {
    const std::string inode = IndexNode(info);
    intern(inode);
    for (const TableRef& ref : info.tables) {
      workload_dbs.insert(ref.db);
      used_tables.insert(ref.ToString());
      const std::string tnode = TableNode(ref);
      intern(tnode);
      g.edges_.push_back(
          DepEdge{DepEdge::Kind::kIndexReads, tnode, inode, ""});
    }
  }

  std::sort(g.edges_.begin(), g.edges_.end(),
            [](const DepEdge& a, const DepEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              if (a.kind != b.kind) {
                return EdgeKindRank(a.kind) < EdgeKindRank(b.kind);
              }
              return a.attributes < b.attributes;
            });

  // Stats: node counts by class, fan-in per table, fan-out per view.
  g.stats_.views = sources.size();
  g.stats_.indexes = indexes.size();
  std::map<std::string, std::set<std::string>> fan_in;   // table -> readers.
  std::map<std::string, std::set<std::string>> fan_out;  // view -> tables.
  for (const auto& [name, id] : node_ids) {
    (void)id;
    if (name.rfind("table ", 0) == 0) ++g.stats_.tables;
  }
  g.stats_.edges = g.edges_.size();
  for (const DepEdge& e : g.edges_) {
    if (e.kind == DepEdge::Kind::kReads) {
      fan_in[e.from].insert(e.to);
      fan_out[e.to].insert(e.from);
    } else if (e.kind == DepEdge::Kind::kIndexReads) {
      fan_in[e.from].insert(e.to);
    }
  }
  for (const auto& [table, readers] : fan_in) {
    if (readers.size() > g.stats_.max_fan_in) {
      g.stats_.max_fan_in = readers.size();
      g.stats_.max_fan_in_table = table;
    }
  }
  for (const auto& [view, tabs] : fan_out) {
    if (tabs.size() > g.stats_.max_fan_out) {
      g.stats_.max_fan_out = tabs.size();
      g.stats_.max_fan_out_view = view;
    }
  }

  FindCycles(node_ids, g.edges_, &g.stats_, &g.cycles_);

  // Unused tables: workload-referenced databases only, integration db (the
  // query surface) excluded, snapshot contents as ground truth.
  const std::string idb = ToLower(integration_db);
  for (const std::string& db_name : snap.DatabaseNames()) {
    const std::string db_key = ToLower(db_name);
    if (db_key == idb) continue;
    if (workload_dbs.count(db_key) == 0) continue;
    Result<const Database*> db = snap.GetDatabase(db_name);
    if (!db.ok()) continue;
    for (const std::string& rel : db.value()->TableNames()) {
      const std::string key = db_key + "::" + ToLower(rel);
      if (used_tables.count(key) == 0) g.unused_.push_back(key);
    }
  }
  std::sort(g.unused_.begin(), g.unused_.end());
  return g;
}

std::string DependencyGraph::Describe() const {
  std::string out;
  out += "nodes: " + std::to_string(stats_.tables) + " table(s), " +
         std::to_string(stats_.views) + " view(s), " +
         std::to_string(stats_.indexes) + " index(es); edges: " +
         std::to_string(stats_.edges) + "; cycles: " +
         std::to_string(stats_.cycles) + "\n";
  if (stats_.max_fan_in > 0) {
    out += "max fan-in: " + stats_.max_fan_in_table + " (" +
           std::to_string(stats_.max_fan_in) + " reader(s))\n";
  }
  if (stats_.max_fan_out > 0) {
    out += "max fan-out: " + stats_.max_fan_out_view + " (" +
           std::to_string(stats_.max_fan_out) + " table(s))\n";
  }
  for (const std::string& c : cycles_) {
    out += "cycle: " + c + "\n";
  }
  for (const DepEdge& e : edges_) {
    out += e.from;
    out += ' ';
    out += EdgeKindArrow(e.kind);
    out += ' ';
    out += e.to;
    if (!e.attributes.empty()) {
      out += " [";
      out += e.attributes;
      out += ']';
    }
    out += '\n';
  }
  return out;
}

}  // namespace dynview

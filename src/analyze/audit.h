#ifndef DYNVIEW_ANALYZE_AUDIT_H_
#define DYNVIEW_ANALYZE_AUDIT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analyze/depgraph.h"
#include "analyze/diagnostic.h"
#include "common/result.h"
#include "core/view_definition.h"
#include "index/view_index.h"
#include "relational/catalog.h"

namespace dynview {

struct DdlOp;  // evolve/evolution.h
class MetricsRegistry;

/// The workload-level findings of one audit run over a pinned catalog
/// snapshot. Diagnostics use the DV100.. range (the per-definition pass owns
/// DV000..DV007):
///   DV100 duplicate-view          — two definitions proved set-equivalent
///   DV101 subsumed-view           — one definition proved contained in
///                                   another (merge candidate)
///   DV102 shadowed-materialization — a fenced materialization that is stale
///                                   against the audited snapshot, so every
///                                   query falls back past it
///   DV103 unused-source           — a table no view or index reads and no
///                                   materialization targets
/// Deterministic: depends only on (snapshot version, registration order).
struct AuditReport {
  uint64_t catalog_version = 0;
  DepGraphStats graph_stats;
  /// DependencyGraph::Describe() — stats then one line per edge.
  std::string graph;
  /// Sorted (DiagnosticLess); Diagnostic::statement carries the source
  /// registration index the finding anchors to (0 for table-level findings).
  std::vector<Diagnostic> diagnostics;
  /// Ordered (i, j) view pairs offered to the containment checker.
  size_t pairs_checked = 0;
  size_t duplicates = 0;
  size_t subsumed = 0;
  size_t shadowed = 0;
  size_t unused = 0;
};

/// Predicted impact of one DDL op on one registered source, mirroring what
/// SchemaEvolver::Propagate would do without running it.
struct WhatIfSourceImpact {
  size_t index = 0;
  std::string name;  // Db(V)::Rel(V) display name.
  /// Post-DDL re-lint of the definition found error-severity diagnostics.
  bool definition_broken = false;
  /// The source is fenced and would be stale against the post-DDL catalog
  /// (the precondition for the evolver to act on its materialization).
  bool fenced_stale = false;
  bool rematerialized = false;
  bool left_stale = false;
  /// O(base) rebuild cost: total rows of the body tables in the post-DDL
  /// snapshot (0 when no rebuild is predicted).
  size_t rebuild_rows = 0;
};

/// Static blast-radius prediction for one DdlOp: the op is applied to a
/// *scratch copy* of the audited snapshot (same version arithmetic as the
/// live catalog), the affected sources are re-linted against the result, and
/// the evolver's propagation decisions are replayed symbolically. Field
/// names match EvolutionResult so tests can diff prediction vs. actuality.
struct WhatIfReport {
  std::string op_text;
  /// False when the op itself fails validation (missing relation, duplicate
  /// column, ...); `op_error` then carries the same message Apply would.
  bool op_valid = false;
  std::string op_error;
  uint64_t base_version = 0;
  uint64_t predicted_version = 0;
  /// Lowercased "db::rel" keys, sorted + deduplicated (EvolutionResult
  /// convention).
  std::vector<std::string> tables_changed;
  std::vector<WhatIfSourceImpact> impacts;  // Affected sources only.
  size_t sources_affected = 0;
  size_t rematerialized = 0;
  size_t left_stale = 0;
  size_t indexes_fenced = 0;
  /// Predicted post-DDL re-lint over affected sources (statement = source
  /// registration index), sorted.
  std::vector<Diagnostic> relint;
};

/// Parses DdlOp::ToString() back into an op — the CLI/server surface for
/// `--what-if='<ddl>'`. Round-trips all six kinds.
Result<DdlOp> ParseDdlOp(const std::string& text);

/// The workload auditor (purely static; never executes a query). Built from
/// raw ingredients so IntegrationSystem, the optimizer's EXPLAIN section and
/// tests can all drive it against whatever snapshot they have pinned.
class WorkloadAuditor {
 public:
  /// `metrics`, when given, receives the analyze.audit.* counter family.
  WorkloadAuditor(std::shared_ptr<const CatalogSnapshot> snap,
                  std::string integration_db,
                  std::vector<std::shared_ptr<ViewDefinition>> sources,
                  std::vector<AuditIndexInfo> indexes,
                  MetricsRegistry* metrics = nullptr);

  /// Dependency graph + DV100..DV103 over the pinned snapshot.
  AuditReport Audit() const;

  /// Blast-radius prediction for `op` (see WhatIfReport).
  WhatIfReport WhatIf(const DdlOp& op) const;

  /// Recovers each index's body tables from its stored definition text
  /// (unresolvable definitions yield an entry with no tables — the index
  /// still appears as a graph node).
  static std::vector<AuditIndexInfo> DescribeIndexes(
      const std::vector<std::shared_ptr<ViewIndex>>& indexes,
      const std::string& integration_db);

  /// Same recovery from raw CREATE INDEX text (the CLI path, which audits a
  /// file without ever building the index structures).
  static AuditIndexInfo DescribeIndexSql(const std::string& create_index_sql,
                                         const std::string& integration_db);

 private:
  std::shared_ptr<const CatalogSnapshot> snap_;
  std::string integration_db_;
  std::vector<std::shared_ptr<ViewDefinition>> sources_;
  std::vector<AuditIndexInfo> indexes_;
  MetricsRegistry* metrics_;
};

/// Renderings. Text is the human/EXPLAIN form; JSON is the CI envelope
/// (embeds RenderDiagnosticsJson for the findings array). Both end with a
/// newline and are byte-stable for a fixed report.
std::string RenderAuditText(const AuditReport& report);
std::string RenderAuditJson(const AuditReport& report);
std::string RenderWhatIfText(const WhatIfReport& report);
std::string RenderWhatIfJson(const WhatIfReport& report);

}  // namespace dynview

#endif  // DYNVIEW_ANALYZE_AUDIT_H_

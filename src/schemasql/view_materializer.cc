#include "schemasql/view_materializer.h"

#include <map>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "engine/operators.h"
#include "restructure/restructure.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace dynview {

Result<std::vector<std::pair<std::string, std::string>>>
ViewMaterializer::MaterializeSql(const std::string& create_view_sql,
                                 QueryEngine* engine, Catalog* target,
                                 const std::string& default_target_db,
                                 QueryContext* qc, uint64_t* commit_version) {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<CreateViewStmt> view,
                      Parser::ParseCreateView(create_view_sql));
  return Materialize(*view, engine, target, default_target_db, qc,
                     commit_version);
}

Result<std::vector<std::pair<std::string, std::string>>>
ViewMaterializer::Materialize(const CreateViewStmt& view, QueryEngine* engine,
                              Catalog* target,
                              const std::string& default_target_db,
                              QueryContext* qc, uint64_t* commit_version) {
  DV_ASSIGN_OR_RETURN(std::vector<MaterializedPartition> parts,
                      Build(view, engine, default_target_db, qc));
  // Fault-injection point for the install: an injected error materializes
  // nothing (the partitions above are discarded, the catalog is untouched).
  if (FailPoints::AnyArmed()) {
    DV_RETURN_IF_ERROR(
        FailPoints::Check("engine.materialize", ToLower(view.name.text)));
  }
  // Install every partition in ONE commit, in Build's deterministic
  // (database, relation) order — a reader either sees the whole
  // materialization or none of it.
  std::vector<std::pair<std::string, std::string>> created;
  created.reserve(parts.size());
  DV_ASSIGN_OR_RETURN(
      uint64_t version, target->Mutate([&](CatalogTxn& txn) {
        for (MaterializedPartition& p : parts) {
          txn.GetOrCreateDatabase(p.db)->PutTable(p.rel, std::move(p.table));
          created.emplace_back(p.db, p.rel);
        }
        return Status::OK();
      }));
  if (commit_version != nullptr) *commit_version = version;
  return created;
}

Result<std::vector<MaterializedPartition>> ViewMaterializer::Build(
    const CreateViewStmt& view, QueryEngine* engine,
    const std::string& default_target_db, QueryContext* qc) {
  if (qc == nullptr) qc = engine->query_context();
  // Bind a private copy (annotates NameTerms and classifies labels).
  std::unique_ptr<CreateViewStmt> v = view.Clone();
  DV_ASSIGN_OR_RETURN(BoundView bv, Binder::BindView(v.get()));

  const size_t n = v->attrs.size();
  if (v->query->select_list.size() != n) {
    return Status::BindError(
        "view header has " + std::to_string(n) + " attributes but the query "
        "selects " + std::to_string(v->query->select_list.size()));
  }
  if (v->query->union_next != nullptr && (bv.db_is_variable ||
                                          bv.name_is_variable)) {
    return Status::Unsupported(
        "UNION bodies with dynamic relation/database labels");
  }

  // Positions of the (at most one) pivot attribute.
  std::vector<size_t> pivot_positions;
  for (size_t i = 0; i < n; ++i) {
    if (bv.attr_is_variable[i]) pivot_positions.push_back(i);
  }
  if (pivot_positions.size() > 1) {
    return Status::Unsupported(
        "more than one attribute variable in a view output schema");
  }

  // Augment the body to also emit the label variables.
  std::unique_ptr<SelectStmt> body = v->query->Clone();
  int db_col = -1, rel_col = -1, attr_col = -1;
  int next = static_cast<int>(n);
  if (bv.db_is_variable) {
    body->select_list.emplace_back(Expr::MakeVarRef(v->db.text), "xx_db");
    db_col = next++;
  }
  if (bv.name_is_variable) {
    body->select_list.emplace_back(Expr::MakeVarRef(v->name.text), "xx_rel");
    rel_col = next++;
  }
  if (!pivot_positions.empty()) {
    body->select_list.emplace_back(
        Expr::MakeVarRef(v->attrs[pivot_positions[0]].text), "xx_attr");
    attr_col = next++;
  }
  DV_ASSIGN_OR_RETURN(Table rows, engine->Execute(body.get(), qc));

  // Group rows by target (database, relation).
  std::string fixed_db = v->db.empty() ? default_target_db : v->db.text;
  std::map<std::pair<std::string, std::string>, std::vector<const Row*>>
      groups;
  for (const Row& r : rows.rows()) {
    std::string db_name = fixed_db;
    if (db_col >= 0) {
      if (r[db_col].is_null()) {
        return Status::EvalError("NULL database label in dynamic view");
      }
      db_name = r[db_col].ToLabel();
    }
    std::string rel_name = v->name.text;
    if (rel_col >= 0) {
      if (r[rel_col].is_null()) {
        return Status::EvalError("NULL relation label in dynamic view");
      }
      rel_name = r[rel_col].ToLabel();
    }
    groups[{db_name, rel_name}].push_back(&r);
  }

  // Each output relation of a dynamic view is built from its own row group,
  // so partitions materialize independently — in parallel on the engine's
  // pool when available — and are installed into the target catalog
  // serially, in the map's deterministic (database, relation) order.
  auto build_partition = [&](const std::vector<const Row*>& group_rows)
      -> Result<Table> {
    if (qc != nullptr) DV_RETURN_IF_ERROR(qc->CheckGuards());
    Table out;
    if (pivot_positions.empty()) {
      std::vector<Column> cols;
      for (size_t i = 0; i < n; ++i) {
        cols.emplace_back(v->attrs[i].text, TypeKind::kNull);
      }
      out = Table(Schema(std::move(cols)));
      for (const Row* r : group_rows) {
        Row nr(r->begin(), r->begin() + n);
        out.AppendRowUnchecked(std::move(nr));
      }
    } else {
      // Build the long form (const attrs..., label, value) then pivot with
      // the Sec. 3.1 full-outer-join semantics, then restore the header's
      // column order (constants before the pivot position, labels, rest).
      size_t p = pivot_positions[0];
      std::vector<Column> long_cols;
      std::vector<size_t> const_positions;
      for (size_t i = 0; i < n; ++i) {
        if (i == p) continue;
        long_cols.emplace_back(v->attrs[i].text, TypeKind::kNull);
        const_positions.push_back(i);
      }
      long_cols.emplace_back("xx_label", TypeKind::kString);
      long_cols.emplace_back("xx_value", TypeKind::kNull);
      Table long_form{Schema(std::move(long_cols))};
      for (const Row* r : group_rows) {
        Row nr;
        nr.reserve(const_positions.size() + 2);
        for (size_t i : const_positions) nr.push_back((*r)[i]);
        nr.push_back((*r)[attr_col]);
        nr.push_back((*r)[p]);
        long_form.AppendRowUnchecked(std::move(nr));
      }
      std::vector<std::string> group_names;
      for (size_t i : const_positions) group_names.push_back(v->attrs[i].text);
      DV_ASSIGN_OR_RETURN(Table pivoted, Pivot(long_form, group_names,
                                               "xx_label", "xx_value"));
      // Pivoted layout: [const attrs..., labels...]. Reorder so the label
      // block sits at the header's pivot position.
      size_t k = const_positions.size();
      size_t num_labels = pivoted.schema().num_columns() - k;
      std::vector<int> order;
      std::vector<std::string> names;
      size_t const_seen = 0;
      for (size_t i = 0; i < n; ++i) {
        if (i == p) {
          for (size_t l = 0; l < num_labels; ++l) {
            order.push_back(static_cast<int>(k + l));
            names.push_back(pivoted.schema().column(k + l).name);
          }
        } else {
          order.push_back(static_cast<int>(const_seen));
          names.push_back(pivoted.schema().column(const_seen).name);
          ++const_seen;
        }
      }
      DV_ASSIGN_OR_RETURN(out, ProjectColumns(pivoted, order, names));
    }
    return out;
  };

  std::vector<const std::pair<const std::pair<std::string, std::string>,
                              std::vector<const Row*>>*>
      ordered;
  ordered.reserve(groups.size());
  for (const auto& g : groups) ordered.push_back(&g);
  std::vector<Result<Table>> outs(ordered.size(),
                                  Result<Table>(Status::Internal("pending")));
  ThreadPool* pool =
      groups.size() > 1 && rows.num_rows() > engine->exec_config().morsel_rows
          ? engine->EnsurePool()
          : nullptr;
  auto build_one = [&](size_t i) {
    outs[i] = build_partition(ordered[i]->second);
  };
  if (pool != nullptr) {
    pool->ParallelFor(ordered.size(), build_one,
                      qc == nullptr ? nullptr : qc->cancel_flag());
  } else {
    for (size_t i = 0; i < ordered.size(); ++i) build_one(i);
  }
  // A tripped guard means some partitions were skipped: install nothing
  // rather than a partially materialized view.
  if (qc != nullptr) DV_RETURN_IF_ERROR(qc->CheckGuards());

  for (size_t i = 0; i < ordered.size(); ++i) {
    if (!outs[i].ok()) return outs[i].status();
  }
  std::vector<MaterializedPartition> parts;
  parts.reserve(ordered.size());
  for (size_t i = 0; i < ordered.size(); ++i) {
    const auto& key = ordered[i]->first;
    parts.push_back(MaterializedPartition{key.first, key.second,
                                          std::move(outs[i]).value()});
  }
  return parts;
}

}  // namespace dynview

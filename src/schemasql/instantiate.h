#ifndef DYNVIEW_SCHEMASQL_INSTANTIATE_H_
#define DYNVIEW_SCHEMASQL_INSTANTIATE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "observe/metrics.h"
#include "relational/catalog.h"
#include "sql/ast.h"
#include "sql/binder.h"

namespace dynview {

/// One grounding of a higher-order query: the labels chosen for each schema
/// variable, and the resulting first-order query with all schema variables
/// substituted away (declarations removed, label references replaced by
/// constants, value references replaced by string literals).
struct InstantiatedQuery {
  /// Lowercased schema-variable name → chosen label.
  std::map<std::string, std::string> labels;
  std::unique_ptr<SelectStmt> query;
};

/// One (possibly partial) grounding under construction: variable labels plus
/// the database each relation variable ranged over (a tuple reference `R T`
/// must resolve against that database, not the default one).
struct Grounding {
  std::map<std::string, std::string> labels;
  std::map<std::string, std::string> relvar_db;  // lowercased var → db name.
};

/// Grounds the schema variables of a bound single-branch query `stmt`
/// against `catalog`, in FROM-clause declaration order:
///   * a database variable ranges over all database names,
///   * a relation variable over the relations of its (grounded) database,
///   * an attribute variable over the attributes of its (grounded) relation.
/// This is the standard SchemaSQL grounding semantics; evaluating each
/// result and taking the bag union evaluates the higher-order query.
///
/// A grounding whose database/relation does not exist contributes an empty
/// range (not an error), matching "ranges over all X in Y" semantics.
///
/// When `metrics` is non-null, records `groundings.enumerated` (the full
/// cross product of variable ranges, before the feasibility filter) and
/// `groundings.pruned_notfound` (groundings discarded because a
/// variable-derived relation resolved kNotFound) — enumerated minus pruned
/// equals the number of queries returned.
Result<std::vector<InstantiatedQuery>> InstantiateSchemaVars(
    const SelectStmt& stmt, const BoundQuery& bq, const CatalogReader& catalog,
    const std::string& default_db, MetricsRegistry* metrics = nullptr);

/// Substitutes one grounding into a clone of `stmt` (exposed for testing and
/// for the translation machinery): removes schema-variable declarations,
/// replaces grounded label positions with constants, and replaces value
/// references to schema variables with string literals. Select-list items
/// that are bare references gain their name as an alias first, so output
/// column names survive substitution.
std::unique_ptr<SelectStmt> SubstituteLabels(const SelectStmt& stmt,
                                             const BoundQuery& bq,
                                             const Grounding& grounding);

}  // namespace dynview

#endif  // DYNVIEW_SCHEMASQL_INSTANTIATE_H_

#include "schemasql/instantiate.h"

#include "common/str_util.h"

namespace dynview {

namespace {

/// Resolves a label term to a concrete name under a partial grounding.
std::string GroundLabelText(const NameTerm& term,
                            const std::map<std::string, std::string>& labels,
                            const std::string& fallback) {
  if (term.empty()) return fallback;
  if (term.is_variable) {
    auto it = labels.find(ToLower(term.text));
    return it == labels.end() ? "" : it->second;
  }
  return term.text;
}

void SubstituteExpr(Expr* e, const BoundQuery& bq,
                    const std::map<std::string, std::string>& labels) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kVarRef) {
    const BoundVariable* v = bq.Find(e->var_name);
    if (v != nullptr && IsSchemaVarClass(v->cls)) {
      auto it = labels.find(ToLower(e->var_name));
      if (it != labels.end()) {
        e->kind = ExprKind::kLiteral;
        e->literal = Value::String(it->second);
        e->var_name.clear();
      }
    }
    return;
  }
  if (e->kind == ExprKind::kColumnRef && e->column.is_variable) {
    auto it = labels.find(ToLower(e->column.text));
    if (it != labels.end()) {
      e->column.text = it->second;
      e->column.is_variable = false;
    }
    return;
  }
  SubstituteExpr(e->left.get(), bq, labels);
  SubstituteExpr(e->right.get(), bq, labels);
}

void GroundNameTerm(NameTerm* term,
                    const std::map<std::string, std::string>& labels) {
  if (term->is_variable) {
    auto it = labels.find(ToLower(term->text));
    if (it != labels.end()) {
      term->text = it->second;
      term->is_variable = false;
    }
  }
}

/// The database a tuple reference resolves against: its explicit qualifier,
/// or the database its relation variable ranged over, or the default.
std::string TupleDbLabel(const FromItem& f, const Grounding& g,
                         const std::string& default_db) {
  if (!f.db.empty()) return GroundLabelText(f.db, g.labels, default_db);
  if (f.rel.is_variable) {
    auto it = g.relvar_db.find(ToLower(f.rel.text));
    if (it != g.relvar_db.end()) return it->second;
  }
  return default_db;
}

}  // namespace

std::unique_ptr<SelectStmt> SubstituteLabels(const SelectStmt& stmt,
                                             const BoundQuery& bq,
                                             const Grounding& grounding) {
  const auto& labels = grounding.labels;
  std::unique_ptr<SelectStmt> out = stmt.Clone();
  // Preserve output column names: bare references gain an alias before the
  // substitution turns them into literals.
  for (SelectItem& item : out->select_list) {
    if (!item.alias.empty() || item.expr == nullptr) continue;
    if (item.expr->kind == ExprKind::kVarRef) {
      item.alias = item.expr->var_name;
    } else if (item.expr->kind == ExprKind::kColumnRef) {
      item.alias = item.expr->column.text;
    }
  }
  // Drop grounded schema-variable declarations; ground label positions in
  // the remaining FROM items.
  std::vector<FromItem> kept;
  for (FromItem& f : out->from_items) {
    switch (f.kind) {
      case FromItemKind::kDatabaseVar:
      case FromItemKind::kRelationVar:
      case FromItemKind::kAttributeVar:
        if (labels.count(ToLower(f.var)) > 0) continue;  // Grounded away.
        kept.push_back(std::move(f));
        break;
      case FromItemKind::kTupleVar: {
        // A reference through a relation variable inherits that variable's
        // database (e.g. `s2 -> R, R T` must scan relations *of s2*).
        if (f.db.empty() && f.rel.is_variable) {
          auto it = grounding.relvar_db.find(ToLower(f.rel.text));
          if (it != grounding.relvar_db.end()) {
            f.db = NameTerm(it->second);
          }
        }
        GroundNameTerm(&f.db, labels);
        GroundNameTerm(&f.rel, labels);
        kept.push_back(std::move(f));
        break;
      }
      case FromItemKind::kDomainVar:
        GroundNameTerm(&f.attr, labels);
        kept.push_back(std::move(f));
        break;
    }
  }
  out->from_items = std::move(kept);
  // Ground expressions.
  for (SelectItem& item : out->select_list) {
    SubstituteExpr(item.expr.get(), bq, labels);
  }
  SubstituteExpr(out->where.get(), bq, labels);
  for (auto& g : out->group_by) SubstituteExpr(g.get(), bq, labels);
  SubstituteExpr(out->having.get(), bq, labels);
  for (OrderItem& o : out->order_by) SubstituteExpr(o.expr.get(), bq, labels);
  // UNION branches have their own scopes and are instantiated separately by
  // the engine; do not recurse. A LIMIT applies to the combined result, not
  // to individual groundings.
  out->union_next.reset();
  out->union_all = false;
  out->limit = -1;
  return out;
}

Result<std::vector<InstantiatedQuery>> InstantiateSchemaVars(
    const SelectStmt& stmt, const BoundQuery& bq, const CatalogReader& catalog,
    const std::string& default_db, MetricsRegistry* metrics) {
  std::vector<Grounding> groundings;
  groundings.emplace_back();
  for (const FromItem& f : stmt.from_items) {
    std::vector<Grounding> next;
    switch (f.kind) {
      case FromItemKind::kDatabaseVar: {
        std::vector<std::string> dbs = catalog.DatabaseNames();
        for (const Grounding& g : groundings) {
          for (const std::string& db : dbs) {
            Grounding ng = g;
            ng.labels[ToLower(f.var)] = db;
            next.push_back(std::move(ng));
          }
        }
        break;
      }
      case FromItemKind::kRelationVar: {
        for (const Grounding& g : groundings) {
          std::string db_name = GroundLabelText(f.db, g.labels, default_db);
          Result<const Database*> db = catalog.GetDatabase(db_name);
          if (!db.ok()) continue;  // Empty range.
          for (const std::string& rel : db.value()->TableNames()) {
            Grounding ng = g;
            ng.labels[ToLower(f.var)] = rel;
            ng.relvar_db[ToLower(f.var)] = db_name;
            next.push_back(std::move(ng));
          }
        }
        break;
      }
      case FromItemKind::kAttributeVar: {
        for (const Grounding& g : groundings) {
          std::string db_name = GroundLabelText(f.db, g.labels, default_db);
          std::string rel_name = GroundLabelText(f.rel, g.labels, "");
          Result<const Table*> t = catalog.ResolveTable(db_name, rel_name);
          if (!t.ok()) continue;  // Empty range.
          for (const std::string& attr : t.value()->schema().ColumnNames()) {
            Grounding ng = g;
            ng.labels[ToLower(f.var)] = attr;
            next.push_back(std::move(ng));
          }
        }
        break;
      }
      case FromItemKind::kTupleVar:
      case FromItemKind::kDomainVar:
        continue;  // Not a schema variable; keep current groundings.
    }
    groundings = std::move(next);
  }

  if (metrics != nullptr) {
    metrics->Add(counters::kGroundingsEnumerated, groundings.size());
  }

  // Discard groundings under which a *variable-derived* tuple reference does
  // not exist (the variable "ranges over" valid labels only). Constant
  // references are left to the evaluator, which reports NotFound.
  uint64_t pruned = 0;
  std::vector<InstantiatedQuery> out;
  out.reserve(groundings.size());
  for (Grounding& g : groundings) {
    bool feasible = true;
    for (const FromItem& f : stmt.from_items) {
      if (f.kind != FromItemKind::kTupleVar) continue;
      if (!f.db.is_variable && !f.rel.is_variable) continue;
      std::string db_name = TupleDbLabel(f, g, default_db);
      std::string rel_name = GroundLabelText(f.rel, g.labels, "");
      Result<const Table*> t = catalog.ResolveTable(db_name, rel_name);
      if (!t.ok() && t.status().code() == StatusCode::kNotFound) {
        // Only genuinely absent relations shrink the variable's range. Any
        // other resolution failure (e.g. an injected kUnavailable) means the
        // relation exists but is failing — keep the grounding so the
        // evaluation fan-out surfaces the error under the active
        // SourcePolicy instead of silently narrowing the query.
        feasible = false;
        break;
      }
    }
    if (!feasible) {
      ++pruned;
      continue;
    }
    InstantiatedQuery iq;
    iq.query = SubstituteLabels(stmt, bq, g);
    iq.labels = std::move(g.labels);
    out.push_back(std::move(iq));
  }
  if (metrics != nullptr && pruned > 0) {
    metrics->Add(counters::kGroundingsPruned, pruned);
  }
  return out;
}

}  // namespace dynview

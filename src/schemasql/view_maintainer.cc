#include "schemasql/view_maintainer.h"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/str_util.h"
#include "engine/operators.h"
#include "engine/query_engine.h"
#include "restructure/restructure.h"
#include "sql/parser.h"

namespace dynview {

namespace {

/// Label (db, rel) routing of an augmented output row.
std::pair<std::string, std::string> RouteOf(const Row& row, int db_col,
                                            int rel_col,
                                            const std::string& fixed_db,
                                            const std::string& fixed_rel) {
  std::string db = db_col >= 0 ? row[db_col].ToLabel() : fixed_db;
  std::string rel = rel_col >= 0 ? row[rel_col].ToLabel() : fixed_rel;
  return {db, rel};
}

}  // namespace

Result<ViewMaintainer> ViewMaintainer::CreateFromSql(
    const std::string& create_view_sql, Catalog* catalog,
    const std::string& integration_db, const std::string& default_target_db) {
  DV_ASSIGN_OR_RETURN(std::unique_ptr<CreateViewStmt> view,
                      Parser::ParseCreateView(create_view_sql));
  return Create(*view, catalog, integration_db, default_target_db);
}

Result<ViewMaintainer> ViewMaintainer::Create(
    const CreateViewStmt& view, Catalog* catalog,
    const std::string& integration_db, const std::string& default_target_db) {
  ViewMaintainer m;
  m.catalog_ = catalog;
  m.integration_db_ = integration_db;
  m.default_target_db_ = default_target_db;
  m.view_ = view.Clone();
  DV_ASSIGN_OR_RETURN(m.bound_, Binder::BindView(m.view_.get()));
  if (m.bound_.body.higher_order) {
    return Status::Unsupported("maintenance of higher-order bodies");
  }
  const SelectStmt& body = *m.view_->query;
  if (body.union_next != nullptr || !body.group_by.empty() ||
      body.having != nullptr) {
    return Status::Unsupported(
        "maintenance covers single-block, non-aggregating bodies");
  }
  for (const SelectItem& item : body.select_list) {
    if (item.expr->ContainsAggregate()) {
      return Status::Unsupported("maintenance of aggregate views");
    }
  }
  // Single base relation.
  int tuples = 0;
  for (const FromItem& f : body.from_items) {
    if (f.kind != FromItemKind::kTupleVar) continue;
    ++tuples;
    std::string db = f.db.empty() ? integration_db : f.db.text;
    m.base_ = TableRef{ToLower(db), ToLower(f.rel.text)};
  }
  if (tuples != 1) {
    return Status::Unsupported(
        "maintenance covers views over a single base relation");
  }
  DV_ASSIGN_OR_RETURN(const Table* base,
                      catalog->ResolveTable(m.base_.db, m.base_.rel));
  m.base_schema_ = base->schema();
  // Classify header labels (mirrors ViewMaterializer's layout).
  if (m.view_->attrs.size() != body.select_list.size()) {
    return Status::BindError("view header arity mismatch");
  }
  int next = static_cast<int>(m.view_->attrs.size());
  if (m.bound_.db_is_variable) m.db_col_ = next++;
  if (m.bound_.name_is_variable) m.rel_col_ = next++;
  for (size_t i = 0; i < m.view_->attrs.size(); ++i) {
    if (m.bound_.attr_is_variable[i]) {
      if (m.pivot_position_ >= 0) {
        return Status::Unsupported("more than one attribute variable");
      }
      m.pivot_position_ = static_cast<int>(i);
    } else {
      m.const_positions_.push_back(i);
    }
  }
  if (m.pivot_position_ >= 0) m.attr_col_ = next++;
  // Resolve group columns to base columns (enables pre-filtering the base
  // during pivot group recomputation). A position resolves when its select
  // item is a plain domain variable over a base attribute.
  std::map<std::string, std::string> attr_of_var;  // var → attr (lower).
  for (const FromItem& f : body.from_items) {
    if (f.kind == FromItemKind::kDomainVar && !f.attr.is_variable) {
      attr_of_var[ToLower(f.var)] = ToLower(f.attr.text);
    }
  }
  for (size_t i : m.const_positions_) {
    int resolved = -1;
    const Expr& e = *body.select_list[i].expr;
    if (e.kind == ExprKind::kVarRef) {
      auto it = attr_of_var.find(ToLower(e.var_name));
      if (it != attr_of_var.end()) {
        resolved = m.base_schema_.IndexOf(it->second);
      }
    } else if (e.kind == ExprKind::kColumnRef && !e.column.is_variable) {
      resolved = m.base_schema_.IndexOf(e.column.text);
    }
    m.const_base_columns_.push_back(resolved);
  }
  return m;
}

Result<Table> ViewMaintainer::EvaluateBodyOver(
    const std::vector<Row>& delta) const {
  // A shadow catalog exposing only the delta under the base relation's
  // name, so the unchanged body evaluates the delta image.
  Catalog shadow;
  Table t(base_schema_);
  for (const Row& r : delta) {
    if (r.size() != base_schema_.num_columns()) {
      return Status::InvalidArgument("delta row arity mismatch");
    }
    t.AppendRowUnchecked(r);
  }
  DV_RETURN_IF_ERROR(shadow.PutTable(base_.db, base_.rel, std::move(t)));
  QueryEngine engine(&shadow, integration_db_);
  // Augment with label variables exactly like the materializer.
  std::unique_ptr<SelectStmt> body = view_->query->Clone();
  if (db_col_ >= 0) {
    body->select_list.emplace_back(Expr::MakeVarRef(view_->db.text), "xx_db");
  }
  if (rel_col_ >= 0) {
    body->select_list.emplace_back(Expr::MakeVarRef(view_->name.text),
                                   "xx_rel");
  }
  if (attr_col_ >= 0) {
    body->select_list.emplace_back(
        Expr::MakeVarRef(view_->attrs[pivot_position_].text), "xx_attr");
  }
  return engine.Execute(body.get());
}

Status ViewMaintainer::ApplyInserts(const std::vector<Row>& rows) {
  // One transaction: the base append and the propagated view updates
  // publish together or not at all.
  Result<uint64_t> committed =
      catalog_->Mutate([&](CatalogTxn& txn) -> Status {
        if (FailPoints::AnyArmed()) {
          DV_RETURN_IF_ERROR(FailPoints::Check("maintainer.delta",
                                               base_.db + "::" + base_.rel));
        }
        // Base first (pivot recomputation reads the new state through the
        // transaction's read-your-writes view).
        DV_ASSIGN_OR_RETURN(Database * db, txn.GetMutableDatabase(base_.db));
        DV_ASSIGN_OR_RETURN(Table * base, db->GetMutableTable(base_.rel));
        for (const Row& r : rows) {
          DV_RETURN_IF_ERROR(base->AppendRow(r));
        }
        if (pivot_position_ >= 0) return RecomputeAffectedGroups(txn, rows);
        return PropagateAppend(txn, rows);
      }, commit_tag_);
  if (!committed.ok()) return committed.status();
  if (fence_ != nullptr) fence_->AdvanceMaterializedVersion(committed.value());
  return Status::OK();
}

Status ViewMaintainer::ApplyDeletes(const std::vector<Row>& rows) {
  Result<uint64_t> committed =
      catalog_->Mutate([&](CatalogTxn& txn) -> Status {
        if (FailPoints::AnyArmed()) {
          DV_RETURN_IF_ERROR(FailPoints::Check("maintainer.delta",
                                               base_.db + "::" + base_.rel));
        }
        DV_ASSIGN_OR_RETURN(Database * db, txn.GetMutableDatabase(base_.db));
        DV_ASSIGN_OR_RETURN(Table * base, db->GetMutableTable(base_.rel));
        // Bag-subtract from the base.
        std::unordered_map<Row, int64_t, RowGroupHash, RowGroupEq> to_remove;
        for (const Row& r : rows) ++to_remove[r];
        Table kept(base->schema());
        std::vector<Row> actually_removed;
        for (const Row& r : base->rows()) {
          auto it = to_remove.find(r);
          if (it != to_remove.end() && it->second > 0) {
            --it->second;
            actually_removed.push_back(r);
            continue;
          }
          kept.AppendRowUnchecked(r);
        }
        *base = std::move(kept);
        if (pivot_position_ >= 0) {
          return RecomputeAffectedGroups(txn, actually_removed);
        }
        return PropagateRemove(txn, actually_removed);
      }, commit_tag_);
  if (!committed.ok()) return committed.status();
  if (fence_ != nullptr) fence_->AdvanceMaterializedVersion(committed.value());
  return Status::OK();
}

Status ViewMaintainer::PropagateAppend(CatalogTxn& txn,
                                       const std::vector<Row>& delta) {
  DV_ASSIGN_OR_RETURN(Table out, EvaluateBodyOver(delta));
  const size_t n = view_->attrs.size();
  std::string fixed_db =
      view_->db.empty() ? default_target_db_ : view_->db.text;
  for (const Row& r : out.rows()) {
    auto [db, rel] = RouteOf(r, db_col_, rel_col_, fixed_db, view_->name.text);
    Database* d = txn.GetOrCreateDatabase(db);
    if (!d->HasTable(rel)) {
      std::vector<Column> cols;
      for (size_t i = 0; i < n; ++i) {
        cols.emplace_back(view_->attrs[i].text, TypeKind::kNull);
      }
      d->PutTable(rel, Table(Schema(std::move(cols))));
    }
    DV_ASSIGN_OR_RETURN(Table * t, d->GetMutableTable(rel));
    t->AppendRowUnchecked(Row(r.begin(), r.begin() + n));
  }
  return Status::OK();
}

Status ViewMaintainer::PropagateRemove(CatalogTxn& txn,
                                       const std::vector<Row>& delta) {
  DV_ASSIGN_OR_RETURN(Table out, EvaluateBodyOver(delta));
  const size_t n = view_->attrs.size();
  std::string fixed_db =
      view_->db.empty() ? default_target_db_ : view_->db.text;
  // Group removals per target table.
  std::map<std::pair<std::string, std::string>,
           std::unordered_map<Row, int64_t, RowGroupHash, RowGroupEq>>
      removals;
  for (const Row& r : out.rows()) {
    auto route = RouteOf(r, db_col_, rel_col_, fixed_db, view_->name.text);
    ++removals[route][Row(r.begin(), r.begin() + n)];
  }
  for (auto& [route, bag] : removals) {
    Result<Database*> d = txn.GetMutableDatabase(route.first);
    if (!d.ok()) continue;
    Result<Table*> t = d.value()->GetMutableTable(route.second);
    if (!t.ok()) continue;
    Table kept(t.value()->schema());
    for (const Row& r : t.value()->rows()) {
      auto it = bag.find(r);
      if (it != bag.end() && it->second > 0) {
        --it->second;
        continue;
      }
      kept.AppendRowUnchecked(r);
    }
    *t.value() = std::move(kept);
    // A label table emptied by deletion disappears (the label no longer
    // exists in the data — symmetric with creation on insert).
    if (t.value()->num_rows() == 0 &&
        (rel_col_ >= 0 || db_col_ >= 0)) {
      DV_RETURN_IF_ERROR(d.value()->DropTable(route.second));
    }
  }
  return Status::OK();
}

Status ViewMaintainer::RecomputeAffectedGroups(CatalogTxn& txn,
                                               const std::vector<Row>& delta) {
  // 1. Affected (target, group-key) sets from the delta image. Keys are
  // value rows under GroupEquals semantics (no rendering in hot paths).
  using KeySet = std::unordered_set<Row, RowGroupHash, RowGroupEq>;
  DV_ASSIGN_OR_RETURN(Table image, EvaluateBodyOver(delta));
  std::string fixed_db =
      view_->db.empty() ? default_target_db_ : view_->db.text;
  std::map<std::pair<std::string, std::string>, KeySet> affected;
  auto key_of = [&](const Row& r) {
    Row key;
    key.reserve(const_positions_.size());
    for (size_t i : const_positions_) key.push_back(r[i]);
    return key;
  };
  for (const Row& r : image.rows()) {
    auto route = RouteOf(r, db_col_, rel_col_, fixed_db, view_->name.text);
    affected[route].insert(key_of(r));
  }

  // 2. Image of the (already updated) base through the body, restricted —
  // when every group column is a direct base projection — to rows that can
  // possibly land in an affected group. Read through the transaction: the
  // base update of this delta is visible, the committed head is not yet.
  DV_ASSIGN_OR_RETURN(const Table* base,
                      txn.ResolveTable(base_.db, base_.rel));
  bool can_prefilter = true;
  for (int c : const_base_columns_) {
    if (c < 0) can_prefilter = false;
  }
  std::vector<Row> candidate_rows;
  if (can_prefilter) {
    KeySet all_keys;
    for (const auto& [route, keys] : affected) {
      all_keys.insert(keys.begin(), keys.end());
    }
    Row key(const_base_columns_.size());
    for (const Row& r : base->rows()) {
      for (size_t k = 0; k < const_base_columns_.size(); ++k) {
        key[k] = r[const_base_columns_[k]];
      }
      if (all_keys.count(key) > 0) candidate_rows.push_back(r);
    }
  } else {
    candidate_rows = base->rows();
  }
  DV_ASSIGN_OR_RETURN(Table full, EvaluateBodyOver(candidate_rows));

  for (const auto& [route, keys] : affected) {
    // Rows of this target whose group key is affected, in long form.
    std::vector<Column> long_cols;
    for (size_t i : const_positions_) {
      long_cols.emplace_back(view_->attrs[i].text, TypeKind::kNull);
    }
    long_cols.emplace_back("xx_label", TypeKind::kString);
    long_cols.emplace_back("xx_value", TypeKind::kNull);
    Table long_form{Schema(std::move(long_cols))};
    for (const Row& r : full.rows()) {
      if (RouteOf(r, db_col_, rel_col_, fixed_db, view_->name.text) != route) {
        continue;
      }
      if (keys.count(key_of(r)) == 0) continue;
      Row nr;
      for (size_t i : const_positions_) nr.push_back(r[i]);
      nr.push_back(r[attr_col_]);
      nr.push_back(r[pivot_position_]);
      long_form.AppendRowUnchecked(std::move(nr));
    }
    std::vector<std::string> group_names;
    for (size_t i : const_positions_) group_names.push_back(view_->attrs[i].text);
    DV_ASSIGN_OR_RETURN(Table repivoted,
                        Pivot(long_form, group_names, "xx_label", "xx_value"));

    // 3. Splice: drop old rows of affected groups, merge schemas by name,
    // append the recomputed rows.
    Database* d = txn.GetOrCreateDatabase(route.first);
    if (!d->HasTable(route.second)) {
      d->PutTable(route.second, Table(repivoted.schema()));
    }
    DV_ASSIGN_OR_RETURN(Table * current, d->GetMutableTable(route.second));
    // Union of column names: group columns first (existing order), then
    // existing labels, then new labels.
    Schema merged = current->schema();
    for (const Column& c : repivoted.schema().columns()) {
      if (!merged.HasColumn(c.name)) {
        DV_RETURN_IF_ERROR(merged.AddColumn(c));
      }
    }
    Table next{merged};
    std::vector<int> group_idx;
    for (const std::string& g : group_names) {
      group_idx.push_back(current->schema().IndexOf(g));
    }
    auto current_key = [&](const Row& r) {
      Row key;
      key.reserve(group_idx.size());
      for (int gi : group_idx) {
        key.push_back(gi >= 0 ? r[gi] : Value::Null());
      }
      return key;
    };
    for (const Row& r : current->rows()) {
      if (keys.count(current_key(r)) > 0) continue;  // Replaced below.
      Row nr(merged.num_columns(), Value::Null());
      for (size_t c = 0; c < current->schema().num_columns(); ++c) {
        int idx = merged.IndexOf(current->schema().column(c).name);
        nr[idx] = r[c];
      }
      next.AppendRowUnchecked(std::move(nr));
    }
    for (const Row& r : repivoted.rows()) {
      Row nr(merged.num_columns(), Value::Null());
      for (size_t c = 0; c < repivoted.schema().num_columns(); ++c) {
        int idx = merged.IndexOf(repivoted.schema().column(c).name);
        nr[idx] = r[c];
      }
      next.AppendRowUnchecked(std::move(nr));
    }
    d->PutTable(route.second, std::move(next));
  }
  return Status::OK();
}

}  // namespace dynview

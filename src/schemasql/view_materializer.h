#ifndef DYNVIEW_SCHEMASQL_VIEW_MATERIALIZER_H_
#define DYNVIEW_SCHEMASQL_VIEW_MATERIALIZER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "engine/query_engine.h"
#include "relational/catalog.h"
#include "sql/ast.h"

namespace dynview {

/// Materializes CREATE VIEW statements, including views with data-dependent
/// output schemas (dynamic views, Def. 3.1):
///
///  * a variable view (relation) name partitions the result horizontally —
///    one output table per label (Fig. 5 v4: one relation per company);
///  * a variable database name partitions across databases (Fig. 5 v6);
///  * a variable attribute label pivots vertically with the paper's Sec. 3.1
///    full-outer-join semantics — one output column per label, groups with
///    several rows per label produce cross products, absent labels pad NULL
///    (Fig. 5 v5: one price column per company).
///
/// At most one attribute position may be a variable (SchemaSQL's practical
/// restriction; more would require nested pivots).
/// One output relation of a materialization, built but not yet installed.
/// `db`/`rel` keep the label's original case (catalog keys are
/// case-insensitive).
struct MaterializedPartition {
  std::string db;
  std::string rel;
  Table table;
};

class ViewMaterializer {
 public:
  /// Evaluates `view`'s body against `engine`'s catalog and writes the
  /// resulting table(s) into `target`. A view without a database qualifier
  /// lands in `default_target_db`. Returns the (database, relation) pairs
  /// created, in deterministic order.
  ///
  /// The body is evaluated against the snapshot pinned on `qc` (when it
  /// belongs to the engine's catalog; `qc` defaults to the engine's legacy
  /// query context), and all partitions install in ONE catalog commit —
  /// concurrent readers see the whole materialization or none of it. On a
  /// guard trip or injected failure nothing installs.
  ///
  /// Failpoint: `engine.materialize` fires before the install commit with
  /// the lowercased view name as the match detail.
  ///
  /// `commit_version`, when given, receives the catalog version that the
  /// install committed (the view's build version for stale fencing).
  static Result<std::vector<std::pair<std::string, std::string>>> Materialize(
      const CreateViewStmt& view, QueryEngine* engine, Catalog* target,
      const std::string& default_target_db, QueryContext* qc = nullptr,
      uint64_t* commit_version = nullptr);

  /// Parses `create_view_sql` and materializes it (convenience).
  static Result<std::vector<std::pair<std::string, std::string>>>
  MaterializeSql(const std::string& create_view_sql, QueryEngine* engine,
                 Catalog* target, const std::string& default_target_db,
                 QueryContext* qc = nullptr, uint64_t* commit_version = nullptr);

  /// The evaluation half of Materialize: builds every output partition (in
  /// the same deterministic order) without touching any catalog. Callers
  /// that need install-time control — the schema evolver drops obsolete
  /// partitions and installs the fresh ones in ONE tagged commit — compose
  /// their own transaction from the result.
  static Result<std::vector<MaterializedPartition>> Build(
      const CreateViewStmt& view, QueryEngine* engine,
      const std::string& default_target_db, QueryContext* qc = nullptr);
};

}  // namespace dynview

#endif  // DYNVIEW_SCHEMASQL_VIEW_MATERIALIZER_H_

#ifndef DYNVIEW_SCHEMASQL_VIEW_MAINTAINER_H_
#define DYNVIEW_SCHEMASQL_VIEW_MAINTAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/view_definition.h"
#include "relational/catalog.h"
#include "sql/ast.h"

namespace dynview {

/// Incremental maintenance of materialized dynamic views. The Fig. 6
/// architecture lets sources evolve independently; when the integration
/// side holds the base data (warehouse-loading direction), inserts and
/// deletes must flow into the source materializations without full
/// recomputation.
///
/// Supported views: single-block bodies over ONE base relation
/// (self-maintainable views — exactly the shape of the paper's v4/v5/V
/// sources). Maintenance strategy:
///
///  * no attribute variable (plain or partitioned views): deltas are pushed
///    through the view body alone — inserts append to the right label
///    table(s) (creating them as new labels appear), deletes bag-subtract;
///  * attribute-variable (pivot) views: the delta determines the affected
///    group keys; those groups are recomputed from the full base relation
///    and spliced into the materialization (a pivot's rows depend on all
///    rows of their group, so pure delta propagation is impossible —
///    Sec. 3.1 cross-product semantics), with the column set widened as new
///    labels appear.
///
/// Atomicity: each ApplyInserts/ApplyDeletes call is ONE catalog
/// transaction — the base-table update and every propagated change to the
/// materialization commit together, so a concurrent reader's snapshot always
/// shows base and materialization in lock-step (never a base with a stale
/// view or vice versa). The `maintainer.delta` failpoint fires inside the
/// transaction (detail: `db::rel` of the base, lowercased); an injected
/// failure aborts the whole delta with nothing published.
class ViewMaintainer {
 public:
  /// `catalog` must hold both the base relation and the materialization and
  /// outlive the maintainer. The view must already be materialized (e.g.
  /// via ViewMaterializer) — Create does not materialize.
  static Result<ViewMaintainer> Create(const CreateViewStmt& view,
                                       Catalog* catalog,
                                       const std::string& integration_db,
                                       const std::string& default_target_db);

  /// Parses then creates (convenience).
  static Result<ViewMaintainer> CreateFromSql(
      const std::string& create_view_sql, Catalog* catalog,
      const std::string& integration_db,
      const std::string& default_target_db);

  /// Applies `rows` as inserts into the base relation: appends them to the
  /// base table AND incrementally updates the materialization.
  Status ApplyInserts(const std::vector<Row>& rows);

  /// Applies `rows` as deletes (one materialized instance removed per
  /// occurrence): removes them from the base table and updates the
  /// materialization. Rows absent from the base are ignored.
  Status ApplyDeletes(const std::vector<Row>& rows);

  /// The base relation the view ranges over.
  const TableRef& base() const { return base_; }

  /// Binds the fence of the view definition this maintainer repairs:
  /// after every successful delta commit, the definition's materialized
  /// version advances to the commit version, un-fencing access paths that
  /// the base change would otherwise have staled. Borrowed — must outlive
  /// the maintainer (or be rebound/cleared).
  void BindFence(ViewDefinition* fence) { fence_ = fence; }

  /// Tag recorded with every delta commit (the WAL persists it). The
  /// integration layer sets "maintainer.delta#<source index>" so recovery
  /// can re-advance the right fence; standalone maintainers keep the
  /// default and their fence advance is NOT durable across restarts.
  void set_commit_tag(std::string tag) { commit_tag_ = std::move(tag); }
  const std::string& commit_tag() const { return commit_tag_; }

  ViewMaintainer(ViewMaintainer&&) = default;
  ViewMaintainer& operator=(ViewMaintainer&&) = default;

 private:
  ViewMaintainer() = default;

  /// Pushes `delta` (rows of the base schema) through the view body and
  /// appends the results to the materialization (insert direction for
  /// non-pivot views). Runs inside the delta transaction.
  Status PropagateAppend(CatalogTxn& txn, const std::vector<Row>& delta);

  /// Bag-subtracts the view image of `delta` from the materialization
  /// (delete direction for non-pivot views). Runs inside the delta
  /// transaction.
  Status PropagateRemove(CatalogTxn& txn, const std::vector<Row>& delta);

  /// Recomputes the pivot groups touched by `delta` from the full base
  /// (read through `txn` — the base row already updated this transaction).
  Status RecomputeAffectedGroups(CatalogTxn& txn,
                                 const std::vector<Row>& delta);

  /// Evaluates the view body against a catalog holding `delta` as the base
  /// relation; returns rows shaped like the materializer's augmented output
  /// (select positions + label columns).
  Result<Table> EvaluateBodyOver(const std::vector<Row>& delta) const;

  Catalog* catalog_ = nullptr;
  ViewDefinition* fence_ = nullptr;  // Borrowed; null = no fence to advance.
  std::string commit_tag_ = "maintainer.delta";
  std::string integration_db_;
  std::string default_target_db_;
  std::unique_ptr<CreateViewStmt> view_;  // Bound.
  BoundView bound_;
  TableRef base_;
  Schema base_schema_;
  int pivot_position_ = -1;  // Header index of the attribute variable.
  // Augmented-output column indexes (see ViewMaterializer).
  int db_col_ = -1;
  int rel_col_ = -1;
  int attr_col_ = -1;
  // Header positions that are constant attributes (pivot group columns).
  std::vector<size_t> const_positions_;
  // For each const position: the base-table column it directly projects,
  // or -1 when the value is computed (disables group pre-filtering).
  std::vector<int> const_base_columns_;
};

}  // namespace dynview

#endif  // DYNVIEW_SCHEMASQL_VIEW_MAINTAINER_H_

#include "storage/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "storage/codec.h"

namespace dynview {

namespace {

constexpr char kMagic[4] = {'D', 'V', 'S', 'N'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint8_t kSectionDatabase = 1;
constexpr uint8_t kSectionExtra = 2;

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

void AppendSection(const std::string& payload, ByteWriter* w) {
  w->U32(static_cast<uint32_t>(payload.size()));
  w->U32(Crc32(payload.data(), payload.size()));
  w->Raw(payload.data(), payload.size());
}

Status FsyncDirOf(const std::string& path) {
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Internal(Errno("open dir", dir));
  Status st = Status::OK();
  if (::fsync(fd) != 0) st = Status::Internal(Errno("fsync dir", dir));
  ::close(fd);
  return st;
}

}  // namespace

std::string SnapshotFileName(uint64_t version) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snapshot-%020llu.dvsnap",
                static_cast<unsigned long long>(version));
  return buf;
}

void EncodeSnapshotImage(const SnapshotData& data, std::string* out) {
  ByteWriter w;
  w.Raw(kMagic, sizeof(kMagic));
  w.U32(kFormatVersion);
  w.U64(data.catalog_version);
  w.U32(static_cast<uint32_t>(data.databases.size() + data.extras.size()));
  w.U32(Crc32(w.buffer().data(), w.size()));
  for (const RecoveredDatabase& rd : data.databases) {
    ByteWriter section;
    section.U8(kSectionDatabase);
    section.U64(rd.version);
    EncodeDatabasePayload(rd.db, &section);
    AppendSection(section.buffer(), &w);
  }
  for (const auto& [kind, payload] : data.extras) {
    ByteWriter section;
    section.U8(kSectionExtra);
    section.Str(kind);
    section.Str(payload);
    AppendSection(section.buffer(), &w);
  }
  *out = w.Take();
}

Status WriteSnapshotFile(const SnapshotData& data, const std::string& path) {
  std::string image;
  EncodeSnapshotImage(data, &image);

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(Errno("open", tmp));
  size_t off = 0;
  while (off < image.size()) {
    ssize_t n = ::write(fd, image.data() + off, image.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::Internal(Errno("write", tmp));
      ::close(fd);
      return st;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status st = Status::Internal(Errno("fsync", tmp));
    ::close(fd);
    return st;
  }
  ::close(fd);

  // Crash window under test: the tmp image is durable but not yet visible.
  // An injected failure here leaves only `<path>.tmp`, which recovery
  // ignores — exactly a kill between checkpoint write and rename.
  DV_RETURN_IF_ERROR(FailPoints::Check("snapshot.write", path));

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal(Errno("rename", tmp + " -> " + path));
  }
  return FsyncDirOf(path);
}

Result<SnapshotData> ReadSnapshotFile(const std::string& path) {
  DV_RETURN_IF_ERROR(FailPoints::Check("snapshot.load", path));

  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(Errno("open", path));
    return Status::Internal(Errno("open", path));
  }
  std::string image;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::Internal(Errno("read", path));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    image.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_len = 4 + 4 + 8 + 4;
  if (image.size() < header_len + 4 ||
      std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("snapshot " + path +
                              ": missing or malformed DVSN header");
  }
  ByteReader header(image.data() + 4, header_len);
  uint32_t format = 0;
  uint32_t section_count = 0;
  SnapshotData data;
  DV_RETURN_IF_ERROR(header.U32(&format));
  DV_RETURN_IF_ERROR(header.U64(&data.catalog_version));
  DV_RETURN_IF_ERROR(header.U32(&section_count));
  if (format != kFormatVersion) {
    return Status::ParseError("snapshot " + path + ": format version " +
                              std::to_string(format) + " not supported");
  }
  ByteReader crc_reader(image.data() + header_len, 4);
  uint32_t header_crc = 0;
  DV_RETURN_IF_ERROR(crc_reader.U32(&header_crc));
  if (header_crc != Crc32(image.data(), header_len)) {
    return Status::ParseError("snapshot " + path + ": header CRC mismatch");
  }
  size_t pos = header_len + 4;
  for (uint32_t i = 0; i < section_count; ++i) {
    ByteReader frame(image.data() + pos, image.size() - pos);
    uint32_t len = 0;
    uint32_t crc = 0;
    DV_RETURN_IF_ERROR(frame.U32(&len));
    DV_RETURN_IF_ERROR(frame.U32(&crc));
    if (frame.remaining() < len) {
      return Status::ParseError("snapshot " + path + ": section " +
                                std::to_string(i) + " truncated");
    }
    const char* payload = image.data() + pos + 8;
    if (crc != Crc32(payload, static_cast<size_t>(len))) {
      return Status::ParseError("snapshot " + path + ": section " +
                                std::to_string(i) + " CRC mismatch");
    }
    ByteReader section(payload, len);
    uint8_t type = 0;
    DV_RETURN_IF_ERROR(section.U8(&type));
    if (type == kSectionDatabase) {
      RecoveredDatabase rd;
      DV_RETURN_IF_ERROR(section.U64(&rd.version));
      DV_ASSIGN_OR_RETURN(rd.db, DecodeDatabasePayload(&section));
      rd.name = rd.db.name();
      data.databases.push_back(std::move(rd));
    } else if (type == kSectionExtra) {
      std::string kind;
      std::string payload_str;
      DV_RETURN_IF_ERROR(section.Str(&kind));
      DV_RETURN_IF_ERROR(section.Str(&payload_str));
      data.extras.emplace_back(std::move(kind), std::move(payload_str));
    } else {
      return Status::ParseError("snapshot " + path +
                                ": unknown section type " +
                                std::to_string(type));
    }
    pos += 8 + len;
  }
  return data;
}

std::vector<std::pair<uint64_t, std::string>> ListSnapshotFiles(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  const std::string prefix = "snapshot-";
  const std::string suffix = ".dvsnap";
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.emplace_back(std::strtoull(digits.c_str(), nullptr, 10), name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace dynview

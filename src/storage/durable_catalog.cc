#include "storage/durable_catalog.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/snapshot.h"

namespace dynview {

namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::Internal("mkdir " + dir + ": " + std::strerror(errno));
}

}  // namespace

Status DurableCatalog::RecoverInto(Catalog* catalog, const std::string& dir,
                                   const DurableHooks& hooks,
                                   RecoveryReport* report,
                                   MetricsRegistry* metrics) {
  RecoveryReport local;
  RecoveryReport& rep = report != nullptr ? *report : local;

  // Newest valid snapshot wins; unreadable ones are skipped with a warning
  // (an interrupted checkpoint must never take old-but-good state down
  // with it).
  SnapshotData snap;
  bool have_snapshot = false;
  for (const auto& [version, name] : ListSnapshotFiles(dir)) {
    Result<SnapshotData> loaded = ReadSnapshotFile(dir + "/" + name);
    if (loaded.ok()) {
      snap = std::move(loaded).value();
      have_snapshot = true;
      break;
    }
    rep.warnings.push_back("recovery: skipping snapshot " + name + ": " +
                           loaded.status().message());
  }

  if (have_snapshot) {
    rep.recovered_snapshot = true;
    rep.snapshot_version = snap.catalog_version;
    DV_RETURN_IF_ERROR(catalog->InstallRecoveredSnapshot(
        snap.catalog_version, std::move(snap.databases)));
    if (hooks.blob_replay) {
      for (const auto& [kind, payload] : snap.extras) {
        DV_RETURN_IF_ERROR(hooks.blob_replay(kind, payload));
      }
    }
  }

  WalReplayStats stats;
  DV_RETURN_IF_ERROR(ReplayWal(
      dir + "/wal.log", rep.snapshot_version,
      [&](WalCommitRecord&& rec) -> Status {
        uint64_t version = rec.version;
        std::string tag = std::move(rec.tag);
        DV_RETURN_IF_ERROR(catalog->ApplyRecoveredCommit(
            version, std::move(rec.puts), rec.drops));
        if (hooks.commit_replay) hooks.commit_replay(version, tag);
        return Status::OK();
      },
      [&](WalBlobRecord&& rec) -> Status {
        if (!hooks.blob_replay) return Status::OK();
        return hooks.blob_replay(rec.kind, rec.payload);
      },
      &stats));

  rep.replayed_records = stats.commit_records + stats.blob_records;
  rep.skipped_records = stats.skipped_records;
  rep.torn_tail = stats.torn_tail;
  rep.torn_bytes = stats.torn_bytes;
  rep.head_version = catalog->version();
  if (stats.torn_tail) {
    rep.warnings.push_back(
        "recovery: WAL ended in a torn record; truncated " +
        std::to_string(stats.torn_bytes) +
        " trailing byte(s) (an in-flight commit at crash time was never "
        "acknowledged and is discarded)");
  }
  if (metrics != nullptr) {
    metrics->Add(counters::kStorageReplayedRecords, rep.replayed_records);
    if (stats.torn_tail) metrics->Add(counters::kStorageTornTail, 1);
  }
  if (report == nullptr) {
    // Nobody collects the warnings; at least make them visible.
    for (const std::string& w : local.warnings) {
      std::fprintf(stderr, "dynview: %s\n", w.c_str());
    }
  }
  return Status::OK();
}

Status Catalog::Recover(const std::string& dir, RecoveryReport* report) {
  return DurableCatalog::RecoverInto(this, dir, DurableHooks{}, report,
                                     nullptr);
}

Result<std::unique_ptr<DurableCatalog>> DurableCatalog::Open(
    Catalog* catalog, const std::string& dir, const DurabilityOptions& opts,
    DurableHooks hooks, RecoveryReport* report) {
  DV_RETURN_IF_ERROR(EnsureDir(dir));
  std::unique_ptr<DurableCatalog> dc(
      new DurableCatalog(catalog, dir, opts, std::move(hooks)));
  DV_RETURN_IF_ERROR(RecoverInto(catalog, dir, dc->hooks_, &dc->report_,
                                 &dc->metrics_));
  DV_ASSIGN_OR_RETURN(dc->wal_, WalWriter::Open(dc->WalPath(), opts.fsync));
  catalog->SetCommitSink(dc.get());
  // Bound the replayed log: checkpoint what we just recovered. Failure
  // (e.g. an injected snapshot.write error) leaves the WAL intact and
  // correct, so it downgrades to a warning.
  Status ckpt = dc->Checkpoint();
  if (!ckpt.ok()) {
    dc->report_.warnings.push_back("recovery: initial checkpoint failed (" +
                                   ckpt.message() +
                                   "); WAL will grow until one succeeds");
  }
  if (report != nullptr) *report = dc->report_;
  return dc;
}

DurableCatalog::~DurableCatalog() { (void)Close(); }

Status DurableCatalog::Close() {
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    if (closed_) return Status::OK();
    closed_ = true;
  }
  Status ckpt = Checkpoint();
  catalog_->SetCommitSink(nullptr);
  return ckpt;
}

Status DurableCatalog::OnCommit(const CatalogSnapshot& next,
                                const std::vector<std::string>& touched,
                                const std::string& tag) {
  DV_RETURN_IF_ERROR(wal_->OnCommit(next, touched, tag));
  metrics_.Add(counters::kStorageWalAppends, 1);
  // Gauge: the writer already accounts cumulative bytes.
  metrics_.Set(counters::kStorageWalBytes, wal_->bytes_written());
  return Status::OK();
}

Status DurableCatalog::AppendBlob(const std::string& kind,
                                  const std::string& payload) {
  // Serialized against Checkpoint: the version stamp and the append are
  // atomic w.r.t. the snapshot+truncate, so a blob is either covered by
  // the snapshot (stamp <= snapshot version) or survives in the WAL.
  // Lock order is ckpt_mu_ -> writer_mu_ (Checkpoint); callers must NOT
  // hold the writer mutex here (never call from inside Catalog::Mutate).
  std::lock_guard<std::mutex> lock(ckpt_mu_);
  DV_RETURN_IF_ERROR(
      wal_->AppendBlob(kind, payload, catalog_->version()));
  metrics_.Add(counters::kStorageWalAppends, 1);
  metrics_.Set(counters::kStorageWalBytes, wal_->bytes_written());
  return Status::OK();
}

Status DurableCatalog::Checkpoint() {
  std::lock_guard<std::mutex> lock(ckpt_mu_);
  return catalog_->WithWriterPaused([&](const CatalogSnapshot& snap)
                                        -> Status {
    SnapshotData data;
    data.catalog_version = snap.version();
    for (const std::string& name : snap.DatabaseNames()) {
      RecoveredDatabase rd;
      rd.name = name;
      rd.version = snap.DatabaseVersion(name);
      DV_ASSIGN_OR_RETURN(const Database* db, snap.GetDatabase(name));
      rd.db = *db;
      data.databases.push_back(std::move(rd));
    }
    if (hooks_.blob_provider) data.extras = hooks_.blob_provider();

    const std::string file = SnapshotFileName(snap.version());
    DV_RETURN_IF_ERROR(WriteSnapshotFile(data, dir_ + "/" + file));
    DV_RETURN_IF_ERROR(wal_->Truncate());
    metrics_.Add(counters::kStorageCheckpoints, 1);

    // Prune older snapshots, keeping one predecessor as a fallback against
    // latent corruption of the file we just wrote. Best effort.
    auto files = ListSnapshotFiles(dir_);
    for (size_t i = 0; i < files.size(); ++i) {
      if (files[i].second == file) continue;
      if (i >= 2) (void)::unlink((dir_ + "/" + files[i].second).c_str());
    }
    return Status::OK();
  });
}

}  // namespace dynview

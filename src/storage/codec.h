#ifndef DYNVIEW_STORAGE_CODEC_H_
#define DYNVIEW_STORAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"
#include "relational/table.h"

namespace dynview {

/// Little-endian binary encoding primitives for the storage layer (snapshot
/// sections and WAL record payloads). Writers append to an owned buffer;
/// readers are bounds-checked and return ParseError instead of reading past
/// the end — a corrupt or truncated payload must surface as a Status, never
/// as undefined behavior (recovery "truncate, warn, never crash").

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// u32 length + raw bytes.
  void Str(const std::string& s);
  void Raw(const void* data, size_t len);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  /// Borrowed view; `data` must outlive the reader.
  ByteReader(const char* data, size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const std::string& s) : ByteReader(s.data(), s.size()) {}

  Status U8(uint8_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I32(int32_t* v);
  Status I64(int64_t* v);
  Status F64(double* v);
  Status Str(std::string* s);

  bool AtEnd() const { return pos_ >= len_; }
  size_t remaining() const { return len_ - pos_; }

 private:
  Status Need(size_t n);

  const char* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// First-occurrence string dictionary: every string value in a section is
/// interned once and row cells reference it by u32 id, so a snapshot of a
/// federation with repeating labels (the common case — schema labels ARE
/// data here) stores each distinct string once per database section.
class StringDict {
 public:
  uint32_t Intern(const std::string& s);
  const std::vector<std::string>& strings() const { return strings_; }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> strings_;
};

/// Interns every string cell of `table` (row-major, column order) so a later
/// EncodeTablePayload resolves each to an existing id.
void CollectTableStrings(const Table& table, StringDict* dict);

/// Schema: u32 column count, then per column name + u8 TypeKind.
void EncodeSchema(const Schema& schema, ByteWriter* w);
Result<Schema> DecodeSchema(ByteReader* r);

/// Table payload: schema, u64 row count, then one length-prefixed column
/// page per column. A page holds, per row, a u8 TypeKind tag and the cell
/// payload (strings as u32 dictionary ids). Column-major pages keep all
/// tags/payloads of one column adjacent.
void EncodeTablePayload(const Table& table, StringDict* dict, ByteWriter* w);
Result<Table> DecodeTablePayload(ByteReader* r,
                                 const std::vector<std::string>& dict);

/// Database payload: name, u32 dictionary size + strings (interned across
/// every table of the database), u32 table count, then per table the
/// original-case relation name and its table payload.
void EncodeDatabasePayload(const Database& db, ByteWriter* w);
Result<Database> DecodeDatabasePayload(ByteReader* r);

/// Standalone table payload with a private dictionary (used for ViewIndex
/// contents in snapshots and WAL registration records).
void EncodeStandaloneTable(const Table& table, ByteWriter* w);
Result<Table> DecodeStandaloneTable(ByteReader* r);

}  // namespace dynview

#endif  // DYNVIEW_STORAGE_CODEC_H_

#ifndef DYNVIEW_STORAGE_SNAPSHOT_H_
#define DYNVIEW_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"

namespace dynview {

/// Versioned binary snapshot files for CatalogSnapshot persistence.
///
/// File layout (all integers little-endian):
///
///   header  : magic "DVSN" | u32 format_version (=1) | u64 catalog_version
///             | u32 section_count | u32 crc32(header bytes so far)
///   section : u32 payload_len | u32 crc32(payload) | payload
///   payload : u8 section_type | content
///
/// Section types: 1 = database (name, u64 db_version, string dictionary +
/// per-table column pages — storage/codec.h), 2 = extra (named opaque
/// payload; the integration layer stores view definitions with their
/// `materialized_version`/`fenced` state and ViewIndex payloads with their
/// `build_version` here).
///
/// Every section is individually length-prefixed and CRC-checked, so a
/// corrupt file fails validation with a Status — never undefined behavior —
/// and recovery falls back to the next-older snapshot with a warning.
///
/// Atomicity: WriteSnapshotFile builds the complete image, writes it to
/// `<path>.tmp`, fsyncs, then renames into place (and fsyncs the directory).
/// A crash before the rename leaves only a `.tmp` recovery ignores. The
/// `snapshot.write` failpoint (detail: destination path) fires between the
/// tmp fsync and the rename — exactly the torn-checkpoint window; the
/// `snapshot.load` failpoint (detail: path) makes a file unreadable.

struct SnapshotData {
  uint64_t catalog_version = 0;
  std::vector<RecoveredDatabase> databases;
  /// Opaque named payloads ((kind, payload)), preserved in order.
  std::vector<std::pair<std::string, std::string>> extras;
};

/// "snapshot-<version, zero-padded to 20 digits>.dvsnap" — lexicographic
/// order equals version order.
std::string SnapshotFileName(uint64_t version);

Status WriteSnapshotFile(const SnapshotData& data, const std::string& path);

Result<SnapshotData> ReadSnapshotFile(const std::string& path);

/// Snapshot files under `dir` as (version, filename), newest first.
/// Unparseable names are ignored; a missing directory yields an empty list.
std::vector<std::pair<uint64_t, std::string>> ListSnapshotFiles(
    const std::string& dir);

/// Serializes the full snapshot image (header + sections) into `out` —
/// exposed so tests can assert byte-identity without touching disk.
void EncodeSnapshotImage(const SnapshotData& data, std::string* out);

}  // namespace dynview

#endif  // DYNVIEW_STORAGE_SNAPSHOT_H_

#ifndef DYNVIEW_STORAGE_DURABLE_CATALOG_H_
#define DYNVIEW_STORAGE_DURABLE_CATALOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "observe/metrics.h"
#include "relational/catalog.h"
#include "storage/wal.h"

namespace dynview {

/// What a recovery pass observed. `warnings` are human-readable and meant
/// to surface on the first answers after a restart (AnswerResult.warnings).
struct RecoveryReport {
  bool recovered_snapshot = false;  // A snapshot file was loaded.
  uint64_t snapshot_version = 0;    // Version of that snapshot (0 if none).
  uint64_t head_version = 0;        // Catalog head after replay.
  uint64_t replayed_records = 0;    // WAL records applied (commits + blobs).
  uint64_t skipped_records = 0;     // WAL records the snapshot already had.
  bool torn_tail = false;           // The WAL ended in a partial record.
  uint64_t torn_bytes = 0;          // Bytes truncated off the torn tail.
  std::vector<std::string> warnings;
};

struct DurabilityOptions {
  /// fsync every WAL append (the durability contract). Benches may disable
  /// it to measure the append path alone; correctness tests never do.
  bool fsync = true;
};

/// Integration points for layers that keep derived state beside the
/// catalog (view registrations, index payloads). All optional.
struct DurableHooks {
  /// Replays one opaque blob (from a snapshot "extra" or a WAL blob
  /// record), in original append order. An error aborts recovery.
  std::function<Status(const std::string& kind, const std::string& payload)>
      blob_replay;
  /// Observes each replayed catalog commit after it is applied — the fence
  /// restoration hook (tag is the one given to Catalog::Mutate).
  std::function<void(uint64_t version, const std::string& tag)> commit_replay;
  /// Produces the blobs a checkpoint must persist so the WAL can truncate.
  /// Called with the writer paused.
  std::function<std::vector<std::pair<std::string, std::string>>()>
      blob_provider;
};

/// Binds a Catalog to a directory: recovers on Open, then records every
/// commit in the WAL (as the catalog's commit sink — the WAL fsync is the
/// commit point) and checkpoints on demand by writing a snapshot and
/// truncating the log.
///
/// Directory layout: `snapshot-<version>.dvsnap` files plus `wal.log`.
/// Concurrency: OnCommit runs under the catalog writer mutex; Checkpoint
/// takes the writer pause itself. AppendBlob serializes against Checkpoint
/// (ckpt_mu_) so a blob is never stamped against a version the snapshot
/// already covered but written after the truncate.
class DurableCatalog final : public CatalogCommitSink {
 public:
  /// Recovers `catalog` from `dir` (creating it if needed), attaches the
  /// WAL sink, and attempts an initial checkpoint to bound the replayed
  /// log (a failed initial checkpoint is a warning, not an error — the WAL
  /// keeps growing until one succeeds). The catalog must be untouched when
  /// `dir` holds prior state. `report` (optional) receives what recovery
  /// saw; the same data stays readable via report().
  static Result<std::unique_ptr<DurableCatalog>> Open(
      Catalog* catalog, const std::string& dir, const DurabilityOptions& opts,
      DurableHooks hooks, RecoveryReport* report = nullptr);

  ~DurableCatalog() override;

  DurableCatalog(const DurableCatalog&) = delete;
  DurableCatalog& operator=(const DurableCatalog&) = delete;

  /// CatalogCommitSink (called by the catalog, writer mutex held).
  Status OnCommit(const CatalogSnapshot& next,
                  const std::vector<std::string>& touched,
                  const std::string& tag) override;

  /// Durably logs an opaque integration blob, stamped with the current
  /// catalog version. Replayed at recovery iff newer than the snapshot.
  Status AppendBlob(const std::string& kind, const std::string& payload);

  /// Writes a snapshot of the current head (including blob_provider
  /// extras), fsyncs+renames it into place, then truncates the WAL. Runs
  /// with the catalog writer paused so snapshot and truncate agree.
  Status Checkpoint();

  /// Final checkpoint (best effort) + detach from the catalog. Called by
  /// the destructor if not called explicitly.
  Status Close();

  const RecoveryReport& report() const { return report_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const std::string& dir() const { return dir_; }

  /// The recovery core (also behind Catalog::Recover): loads the newest
  /// valid snapshot (falling back to older ones with a warning), replays
  /// the WAL truncating a torn tail, and restores the exact head version.
  static Status RecoverInto(Catalog* catalog, const std::string& dir,
                            const DurableHooks& hooks, RecoveryReport* report,
                            MetricsRegistry* metrics);

 private:
  DurableCatalog(Catalog* catalog, std::string dir, DurabilityOptions opts,
                 DurableHooks hooks)
      : catalog_(catalog),
        dir_(std::move(dir)),
        opts_(opts),
        hooks_(std::move(hooks)) {}

  std::string WalPath() const { return dir_ + "/wal.log"; }

  Catalog* catalog_;
  std::string dir_;
  DurabilityOptions opts_;
  DurableHooks hooks_;
  std::unique_ptr<WalWriter> wal_;
  RecoveryReport report_;
  MetricsRegistry metrics_;
  std::mutex ckpt_mu_;  // Serializes Checkpoint vs AppendBlob and Close.
  bool closed_ = false;
};

}  // namespace dynview

#endif  // DYNVIEW_STORAGE_DURABLE_CATALOG_H_

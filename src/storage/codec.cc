#include "storage/codec.h"

#include <cstring>

namespace dynview {

void ByteWriter::U32(uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  buf_.append(b, 4);
}

void ByteWriter::U64(uint64_t v) {
  U32(static_cast<uint32_t>(v & 0xFFFFFFFFu));
  U32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void ByteWriter::Raw(const void* data, size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

Status ByteReader::Need(size_t n) {
  if (len_ - pos_ < n) {
    return Status::ParseError("truncated storage payload: need " +
                              std::to_string(n) + " byte(s), have " +
                              std::to_string(len_ - pos_));
  }
  return Status::OK();
}

Status ByteReader::U8(uint8_t* v) {
  DV_RETURN_IF_ERROR(Need(1));
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status ByteReader::U32(uint32_t* v) {
  DV_RETURN_IF_ERROR(Need(4));
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data_ + pos_);
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  pos_ += 4;
  return Status::OK();
}

Status ByteReader::U64(uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  DV_RETURN_IF_ERROR(U32(&lo));
  DV_RETURN_IF_ERROR(U32(&hi));
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return Status::OK();
}

Status ByteReader::I32(int32_t* v) {
  uint32_t u = 0;
  DV_RETURN_IF_ERROR(U32(&u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

Status ByteReader::I64(int64_t* v) {
  uint64_t u = 0;
  DV_RETURN_IF_ERROR(U64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status ByteReader::F64(double* v) {
  uint64_t bits = 0;
  DV_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status ByteReader::Str(std::string* s) {
  uint32_t len = 0;
  DV_RETURN_IF_ERROR(U32(&len));
  DV_RETURN_IF_ERROR(Need(len));
  s->assign(data_ + pos_, len);
  pos_ += len;
  return Status::OK();
}

uint32_t StringDict::Intern(const std::string& s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  ids_.emplace(s, id);
  strings_.push_back(s);
  return id;
}

void CollectTableStrings(const Table& table, StringDict* dict) {
  for (const Row& r : table.rows()) {
    for (const Value& v : r) {
      if (v.kind() == TypeKind::kString) dict->Intern(v.as_string());
    }
  }
}

void EncodeSchema(const Schema& schema, ByteWriter* w) {
  w->U32(static_cast<uint32_t>(schema.num_columns()));
  for (const Column& c : schema.columns()) {
    w->Str(c.name);
    w->U8(static_cast<uint8_t>(c.type));
  }
}

Result<Schema> DecodeSchema(ByteReader* r) {
  uint32_t n = 0;
  DV_RETURN_IF_ERROR(r->U32(&n));
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Column c;
    DV_RETURN_IF_ERROR(r->Str(&c.name));
    uint8_t type = 0;
    DV_RETURN_IF_ERROR(r->U8(&type));
    if (type > static_cast<uint8_t>(TypeKind::kDate)) {
      return Status::ParseError("unknown column type tag " +
                                std::to_string(type));
    }
    c.type = static_cast<TypeKind>(type);
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

namespace {

void EncodeCell(const Value& v, StringDict* dict, ByteWriter* w) {
  w->U8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case TypeKind::kNull:
      break;
    case TypeKind::kBool:
      w->U8(v.as_bool() ? 1 : 0);
      break;
    case TypeKind::kInt:
      w->I64(v.as_int());
      break;
    case TypeKind::kDouble:
      w->F64(v.as_double());
      break;
    case TypeKind::kString:
      w->U32(dict->Intern(v.as_string()));
      break;
    case TypeKind::kDate:
      w->I32(v.as_date().days_since_epoch());
      break;
  }
}

Result<Value> DecodeCell(ByteReader* r, const std::vector<std::string>& dict) {
  uint8_t tag = 0;
  DV_RETURN_IF_ERROR(r->U8(&tag));
  switch (static_cast<TypeKind>(tag)) {
    case TypeKind::kNull:
      return Value::Null();
    case TypeKind::kBool: {
      uint8_t b = 0;
      DV_RETURN_IF_ERROR(r->U8(&b));
      return Value::Bool(b != 0);
    }
    case TypeKind::kInt: {
      int64_t i = 0;
      DV_RETURN_IF_ERROR(r->I64(&i));
      return Value::Int(i);
    }
    case TypeKind::kDouble: {
      double d = 0;
      DV_RETURN_IF_ERROR(r->F64(&d));
      return Value::Double(d);
    }
    case TypeKind::kString: {
      uint32_t id = 0;
      DV_RETURN_IF_ERROR(r->U32(&id));
      if (id >= dict.size()) {
        return Status::ParseError("string dictionary id " +
                                  std::to_string(id) + " out of range");
      }
      return Value::String(dict[id]);
    }
    case TypeKind::kDate: {
      int32_t days = 0;
      DV_RETURN_IF_ERROR(r->I32(&days));
      return Value::MakeDate(Date(days));
    }
  }
  return Status::ParseError("unknown value tag " + std::to_string(tag));
}

}  // namespace

void EncodeTablePayload(const Table& table, StringDict* dict, ByteWriter* w) {
  EncodeSchema(table.schema(), w);
  w->U64(table.num_rows());
  const size_t ncols = table.schema().num_columns();
  for (size_t c = 0; c < ncols; ++c) {
    ByteWriter page;
    for (const Row& row : table.rows()) {
      EncodeCell(row[c], dict, &page);
    }
    w->U32(static_cast<uint32_t>(page.size()));
    w->Raw(page.buffer().data(), page.size());
  }
}

Result<Table> DecodeTablePayload(ByteReader* r,
                                 const std::vector<std::string>& dict) {
  DV_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(r));
  uint64_t nrows = 0;
  DV_RETURN_IF_ERROR(r->U64(&nrows));
  const size_t ncols = schema.num_columns();
  Table table(std::move(schema));
  std::vector<Row> rows(nrows);
  for (Row& row : rows) row.resize(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    uint32_t page_len = 0;
    DV_RETURN_IF_ERROR(r->U32(&page_len));
    (void)page_len;  // Framing only; cells below are bounds-checked anyway.
    for (uint64_t i = 0; i < nrows; ++i) {
      DV_ASSIGN_OR_RETURN(rows[i][c], DecodeCell(r, dict));
    }
  }
  table.Reserve(rows.size());
  for (Row& row : rows) table.AppendRowUnchecked(std::move(row));
  return table;
}

void EncodeDatabasePayload(const Database& db, ByteWriter* w) {
  w->Str(db.name());
  // Two passes: intern every string first so the dictionary precedes the
  // pages in the payload (a reader decodes strictly forward).
  StringDict dict;
  std::vector<std::string> rel_names = db.TableNames();
  for (const std::string& rel : rel_names) {
    CollectTableStrings(*db.GetTable(rel).value(), &dict);
  }
  ByteWriter tables;
  tables.U32(static_cast<uint32_t>(rel_names.size()));
  for (const std::string& rel : rel_names) {
    tables.Str(rel);
    EncodeTablePayload(*db.GetTable(rel).value(), &dict, &tables);
  }
  w->U32(static_cast<uint32_t>(dict.strings().size()));
  for (const std::string& s : dict.strings()) w->Str(s);
  w->Raw(tables.buffer().data(), tables.size());
}

Result<Database> DecodeDatabasePayload(ByteReader* r) {
  std::string name;
  DV_RETURN_IF_ERROR(r->Str(&name));
  uint32_t dict_size = 0;
  DV_RETURN_IF_ERROR(r->U32(&dict_size));
  std::vector<std::string> dict(dict_size);
  for (std::string& s : dict) DV_RETURN_IF_ERROR(r->Str(&s));
  uint32_t ntables = 0;
  DV_RETURN_IF_ERROR(r->U32(&ntables));
  Database db(name);
  for (uint32_t i = 0; i < ntables; ++i) {
    std::string rel;
    DV_RETURN_IF_ERROR(r->Str(&rel));
    DV_ASSIGN_OR_RETURN(Table t, DecodeTablePayload(r, dict));
    db.PutTable(rel, std::move(t));
  }
  return db;
}

void EncodeStandaloneTable(const Table& table, ByteWriter* w) {
  StringDict dict;
  CollectTableStrings(table, &dict);
  w->U32(static_cast<uint32_t>(dict.strings().size()));
  for (const std::string& s : dict.strings()) w->Str(s);
  EncodeTablePayload(table, &dict, w);
}

Result<Table> DecodeStandaloneTable(ByteReader* r) {
  uint32_t dict_size = 0;
  DV_RETURN_IF_ERROR(r->U32(&dict_size));
  std::vector<std::string> dict(dict_size);
  for (std::string& s : dict) DV_RETURN_IF_ERROR(r->Str(&s));
  return DecodeTablePayload(r, dict);
}

}  // namespace dynview

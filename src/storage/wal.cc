#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "storage/codec.h"

namespace dynview {

namespace {

constexpr uint8_t kRecordCommit = 1;
constexpr uint8_t kRecordBlob = 2;

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

Status WriteAll(int fd, const char* data, size_t len, const std::string& path) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write", path));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string FrameRecord(const std::string& payload) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(Crc32(payload.data(), payload.size()));
  w.Raw(payload.data(), payload.size());
  return w.Take();
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   bool fsync_each) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Status::Internal(Errno("open", path));
  return std::unique_ptr<WalWriter>(new WalWriter(fd, path, fsync_each));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::AppendRecord(const std::string& payload,
                               const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::Unavailable(
        "WAL " + path_ +
        " is fail-stop after an ambiguous append; recover before writing");
  }
  // Clean abort: checked before any byte reaches the file, so the log is
  // exactly as if this commit never happened.
  DV_RETURN_IF_ERROR(FailPoints::Check("wal.append", detail));

  const std::string frame = FrameRecord(payload);

  int64_t keep = FailPoints::CheckTornWrite("wal.append", detail);
  if (keep >= 0) {
    // Simulated crash mid-append: persist a prefix of the frame, then die.
    size_t partial = std::min(static_cast<size_t>(keep), frame.size());
    Status st = WriteAll(fd_, frame.data(), partial, path_);
    if (st.ok()) ::fsync(fd_);
    broken_ = true;
    return Status::Unavailable("WAL " + path_ + ": torn write injected (" +
                               std::to_string(partial) + " of " +
                               std::to_string(frame.size()) +
                               " bytes persisted)");
  }

  Status st = WriteAll(fd_, frame.data(), frame.size(), path_);
  if (!st.ok()) {
    // The frame may be partially on disk: ambiguous, so fail-stop.
    broken_ = true;
    return st;
  }
  if (fsync_each_ && ::fsync(fd_) != 0) {
    broken_ = true;
    return Status::Internal(Errno("fsync", path_));
  }
  // Crash window under test: the record is durable but the head has not
  // swapped. An injected failure aborts the commit, yet recovery replays
  // the record — callers observing the error must treat the operation as
  // "unknown outcome", exactly like a process kill here.
  Status fsync_fp = FailPoints::Check("wal.fsync", detail);
  if (!fsync_fp.ok()) {
    broken_ = true;
    return fsync_fp;
  }
  ++appends_;
  bytes_ += frame.size();
  return Status::OK();
}

Status WalWriter::OnCommit(const CatalogSnapshot& next,
                           const std::vector<std::string>& touched,
                           const std::string& tag) {
  ByteWriter w;
  w.U8(kRecordCommit);
  w.U64(next.version());
  w.Str(tag);
  std::vector<const Database*> puts;
  std::vector<std::string> drops;
  for (const std::string& key : touched) {
    Result<const Database*> db = next.GetDatabase(key);
    if (db.ok()) {
      puts.push_back(db.value());
    } else {
      drops.push_back(key);
    }
  }
  w.U32(static_cast<uint32_t>(puts.size()));
  for (const Database* db : puts) {
    w.U64(next.DatabaseVersion(db->name()));
    EncodeDatabasePayload(*db, &w);
  }
  w.U32(static_cast<uint32_t>(drops.size()));
  for (const std::string& key : drops) w.Str(key);
  return AppendRecord(w.buffer(), tag);
}

Status WalWriter::AppendBlob(const std::string& kind,
                             const std::string& payload,
                             uint64_t catalog_version) {
  ByteWriter w;
  w.U8(kRecordBlob);
  w.U64(catalog_version);
  w.Str(kind);
  w.Str(payload);
  return AppendRecord(w.buffer(), kind);
}

Status WalWriter::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal(Errno("ftruncate", path_));
  }
  if (fsync_each_ && ::fsync(fd_) != 0) {
    return Status::Internal(Errno("fsync", path_));
  }
  broken_ = false;  // The ambiguous suffix (if any) is gone with the log.
  return Status::OK();
}

bool WalWriter::broken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broken_;
}

uint64_t WalWriter::appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

uint64_t WalWriter::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

namespace {

Status DecodeCommitPayload(ByteReader* r, WalCommitRecord* rec) {
  DV_RETURN_IF_ERROR(r->U64(&rec->version));
  DV_RETURN_IF_ERROR(r->Str(&rec->tag));
  uint32_t nputs = 0;
  DV_RETURN_IF_ERROR(r->U32(&nputs));
  rec->puts.reserve(nputs);
  for (uint32_t i = 0; i < nputs; ++i) {
    RecoveredDatabase rd;
    DV_RETURN_IF_ERROR(r->U64(&rd.version));
    DV_ASSIGN_OR_RETURN(rd.db, DecodeDatabasePayload(r));
    rd.name = rd.db.name();
    rec->puts.push_back(std::move(rd));
  }
  uint32_t ndrops = 0;
  DV_RETURN_IF_ERROR(r->U32(&ndrops));
  rec->drops.reserve(ndrops);
  for (uint32_t i = 0; i < ndrops; ++i) {
    std::string key;
    DV_RETURN_IF_ERROR(r->Str(&key));
    rec->drops.push_back(std::move(key));
  }
  return Status::OK();
}

}  // namespace

Status ReplayWal(const std::string& path, uint64_t snapshot_version,
                 const std::function<Status(WalCommitRecord&&)>& on_commit,
                 const std::function<Status(WalBlobRecord&&)>& on_blob,
                 WalReplayStats* stats) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      if (stats != nullptr) stats->missing = true;
      return Status::OK();
    }
    return Status::Internal(Errno("open", path));
  }
  std::string log;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::Internal(Errno("read", path));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    log.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t pos = 0;
  bool torn = false;
  while (pos < log.size()) {
    ByteReader frame(log.data() + pos, log.size() - pos);
    uint32_t len = 0;
    uint32_t crc = 0;
    if (!frame.U32(&len).ok() || !frame.U32(&crc).ok() ||
        frame.remaining() < len) {
      torn = true;
      break;
    }
    const char* payload = log.data() + pos + 8;
    if (crc != Crc32(payload, static_cast<size_t>(len))) {
      torn = true;
      break;
    }
    ByteReader r(payload, len);
    uint8_t type = 0;
    if (!r.U8(&type).ok()) {
      torn = true;
      break;
    }
    if (type == kRecordCommit) {
      WalCommitRecord rec;
      if (!DecodeCommitPayload(&r, &rec).ok()) {
        torn = true;
        break;
      }
      if (rec.version <= snapshot_version) {
        if (stats != nullptr) ++stats->skipped_records;
      } else {
        if (stats != nullptr) ++stats->commit_records;
        if (on_commit) DV_RETURN_IF_ERROR(on_commit(std::move(rec)));
      }
    } else if (type == kRecordBlob) {
      WalBlobRecord rec;
      if (!r.U64(&rec.version).ok() || !r.Str(&rec.kind).ok() ||
          !r.Str(&rec.payload).ok()) {
        torn = true;
        break;
      }
      // Blobs use >=, not >: a blob appended right after a checkpoint at
      // version V (no commit in between) is stamped V but is NOT in that
      // snapshot's extras — the checkpoint truncated the WAL before the
      // append (AppendBlob and Checkpoint serialize on ckpt_mu_), so any
      // blob still in the log postdates the snapshot.
      if (rec.version < snapshot_version || !on_blob) {
        if (stats != nullptr) ++stats->skipped_records;
      } else {
        if (stats != nullptr) ++stats->blob_records;
        DV_RETURN_IF_ERROR(on_blob(std::move(rec)));
      }
    } else {
      torn = true;
      break;
    }
    pos += 8 + len;
  }

  if (torn) {
    if (stats != nullptr) {
      stats->torn_tail = true;
      stats->torn_bytes = log.size() - pos;
    }
    // Truncate the tail so the next recovery (and any append that follows)
    // sees a log that ends exactly at the last good record.
    if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
      return Status::Internal(Errno("truncate", path));
    }
  }
  return Status::OK();
}

}  // namespace dynview

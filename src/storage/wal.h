#ifndef DYNVIEW_STORAGE_WAL_H_
#define DYNVIEW_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"

namespace dynview {

/// Write-ahead delta log for the catalog.
///
/// Record framing: u32 payload_len | u32 crc32(payload) | payload, appended
/// back to back. Payloads (storage/codec.h primitives):
///
///   commit (u8 1): u64 catalog_version | str tag | u32 put_count
///                  | per put: database payload (codec) prefixed by u64
///                    database version | u32 drop_count | per drop: str key
///   blob   (u8 2): u64 catalog_version_at_append | str kind | str payload
///
/// Commit records mirror one CatalogTxn commit (the touched databases in
/// full — deltas here are per-database, not per-row, matching the catalog's
/// copy-on-write granularity). Blob records carry opaque integration state
/// (view/index registrations) stamped with the catalog version current when
/// appended; replay applies a blob iff its stamp is at least the snapshot
/// version being recovered from (a blob cannot ride the WAL past the
/// checkpoint that would have captured it — Truncate removes it — so a
/// stamp equal to the snapshot version means "appended just after that
/// checkpoint, with no commit in between").
///
/// Durability contract: Append fsyncs (when enabled) BEFORE returning OK,
/// and the catalog publishes the new head only after that — the WAL fsync
/// is the commit point. If a record may have reached the disk but the
/// append did not return OK (torn write, failed/injected fsync), the writer
/// turns fail-stop: every later append returns Unavailable until the log is
/// recovered. That keeps the on-disk prefix unambiguous.
///
/// Failpoints (detail = commit tag or blob kind):
///   wal.append — checked before any byte is written: clean abort.
///   wal.append in torn-write(K) mode — persists only the first K bytes of
///     the frame, then fails and goes fail-stop: a simulated crash
///     mid-write. Recovery truncates the torn tail.
///   wal.fsync  — checked after the real fsync: the record IS durable but
///     the commit aborts, simulating a crash between append and head swap.
///     Recovery must include this record.

class WalWriter final : public CatalogCommitSink {
 public:
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 bool fsync_each);
  ~WalWriter() override;

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// CatalogCommitSink: appends a commit record for the touched databases.
  Status OnCommit(const CatalogSnapshot& next,
                  const std::vector<std::string>& touched,
                  const std::string& tag) override;

  Status AppendBlob(const std::string& kind, const std::string& payload,
                    uint64_t catalog_version);

  /// Checkpoint: drops every record (the snapshot now covers them).
  Status Truncate();

  bool broken() const;
  uint64_t appends() const;
  uint64_t bytes_written() const;

 private:
  WalWriter(int fd, std::string path, bool fsync_each)
      : fd_(fd), path_(std::move(path)), fsync_each_(fsync_each) {}

  Status AppendRecord(const std::string& payload, const std::string& detail);

  mutable std::mutex mu_;
  int fd_;
  std::string path_;
  bool fsync_each_;
  bool broken_ = false;
  uint64_t appends_ = 0;
  uint64_t bytes_ = 0;
};

struct WalCommitRecord {
  uint64_t version = 0;
  std::string tag;
  std::vector<RecoveredDatabase> puts;
  std::vector<std::string> drops;
};

struct WalBlobRecord {
  uint64_t version = 0;
  std::string kind;
  std::string payload;
};

struct WalReplayStats {
  uint64_t commit_records = 0;   // delivered to on_commit
  uint64_t blob_records = 0;     // delivered to on_blob
  uint64_t skipped_records = 0;  // at or below the snapshot version
  bool torn_tail = false;
  uint64_t torn_bytes = 0;  // bytes truncated off the tail
  bool missing = false;     // no WAL file at all (fresh directory)
};

/// Replays `path` in append order. Records with version <= snapshot_version
/// are counted as skipped (the snapshot already covers them). The first
/// frame that is short, fails its CRC, or fails to decode marks a torn
/// tail: the file is truncated back to the last good record and replay
/// stops with OK — a partial tail is an expected crash artifact, never an
/// error. Errors returned by the callbacks abort the replay and propagate.
Status ReplayWal(const std::string& path, uint64_t snapshot_version,
                 const std::function<Status(WalCommitRecord&&)>& on_commit,
                 const std::function<Status(WalBlobRecord&&)>& on_blob,
                 WalReplayStats* stats);

}  // namespace dynview

#endif  // DYNVIEW_STORAGE_WAL_H_

#ifndef DYNVIEW_SQL_PARSER_H_
#define DYNVIEW_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace dynview {

/// Recursive-descent parser for SQL extended with the SchemaSQL constructs
/// used in the paper:
///
///   FROM -> D                          -- database variable
///   FROM db -> R                       -- relation variable
///   FROM db::rel -> A                  -- attribute variable
///   FROM [db::]rel T                   -- tuple variable
///   FROM T.attr X                      -- explicit domain variable
///   CREATE VIEW [db::]name(l1, .., ln) AS SELECT ...
///       -- header labels may be variables of the body (dynamic output schema)
///   CREATE INDEX name AS BTREE|INVERTED BY GIVEN e1, .., ek SELECT ...
///
/// Whether an identifier in a label position is a constant or a variable is
/// NOT decided here — the binder resolves identifiers against declared
/// variables (see sql/binder.h).
class Parser {
 public:
  /// Parses a single statement of any supported kind.
  static Result<Statement> Parse(const std::string& input);

  /// Parses a SELECT statement (convenience).
  static Result<std::unique_ptr<SelectStmt>> ParseSelect(
      const std::string& input);

  /// Parses a CREATE VIEW statement (convenience).
  static Result<std::unique_ptr<CreateViewStmt>> ParseCreateView(
      const std::string& input);

  /// Parses a CREATE INDEX statement (convenience).
  static Result<std::unique_ptr<CreateIndexStmt>> ParseCreateIndex(
      const std::string& input);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Match(TokenKind kind);
  Status Expect(TokenKind kind, const char* context);
  Status ErrorHere(const std::string& message) const;

  Result<Statement> ParseStatement();
  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt();
  Result<std::unique_ptr<CreateViewStmt>> ParseCreateViewStmt();
  Result<std::unique_ptr<CreateIndexStmt>> ParseCreateIndexStmt();

  Result<FromItem> ParseFromItem();
  Result<SelectItem> ParseSelectItem();

  Result<std::unique_ptr<Expr>> ParseExpr();        // OR level.
  Result<std::unique_ptr<Expr>> ParseComparisonFreeGroupExpr();
  Result<std::unique_ptr<Expr>> ParseAnd();
  Result<std::unique_ptr<Expr>> ParseNot();
  Result<std::unique_ptr<Expr>> ParseComparison();
  Result<std::unique_ptr<Expr>> ParseAdditive();
  Result<std::unique_ptr<Expr>> ParseMultiplicative();
  Result<std::unique_ptr<Expr>> ParsePrimary();

  /// True if the current token can start an identifier-like name (several
  /// keywords such as DATE double as common column names).
  bool AtIdentifier() const;
  /// Consumes an identifier-like token and returns its text.
  Result<std::string> ConsumeIdentifier(const char* context);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// Next `?` parameter ordinal, assigned in left-to-right parse order.
  int next_param_index_ = 0;
};

}  // namespace dynview

#endif  // DYNVIEW_SQL_PARSER_H_

#include "sql/binder.h"

#include "common/str_util.h"

namespace dynview {

const char* VarClassName(VarClass cls) {
  switch (cls) {
    case VarClass::kDatabase: return "database";
    case VarClass::kRelation: return "relation";
    case VarClass::kAttribute: return "attribute";
    case VarClass::kTuple: return "tuple";
    case VarClass::kDomain: return "domain";
  }
  return "?";
}

bool IsSchemaVarClass(VarClass cls) {
  return cls == VarClass::kDatabase || cls == VarClass::kRelation ||
         cls == VarClass::kAttribute;
}

const char* ViewClassName(ViewClass cls) {
  switch (cls) {
    case ViewClass::kFirstOrder: return "first-order";
    case ViewClass::kDynamic: return "dynamic";
    case ViewClass::kHigherOrder: return "higher-order";
  }
  return "?";
}

const BoundVariable* BoundQuery::Find(const std::string& name) const {
  auto it = variables.find(ToLower(name));
  if (it == variables.end()) return nullptr;
  return &it->second;
}

namespace {

Status Declare(BoundQuery* bq, const std::string& name, VarClass cls,
               size_t from_index) {
  std::string key = ToLower(name);
  if (bq->variables.count(key) > 0) {
    return Status::BindError("variable '" + name + "' declared twice");
  }
  bq->variables[key] = BoundVariable{name, cls, from_index};
  if (IsSchemaVarClass(cls)) bq->higher_order = true;
  return Status::OK();
}

/// Resolves a label-position NameTerm with class-directed scoping: the
/// identifier denotes a declared variable only when that variable's class
/// fits the position (an attribute position binds only attribute variables,
/// etc.); otherwise it is a constant label. This prevents, e.g., a domain
/// variable named `date` from capturing the attribute label `date` in a
/// later `T.date D` declaration.
Status ResolveNameTerm(const BoundQuery& bq, NameTerm* term,
                       VarClass expected, const char* context) {
  (void)context;
  const BoundVariable* v = bq.Find(term->text);
  term->is_variable = (v != nullptr && v->cls == expected);
  return Status::OK();
}

/// Binds expression identifiers. Unresolved bare VarRefs are permitted (they
/// are plain-SQL column names resolved at evaluation time against the tuple
/// variables in scope); ColumnRef qualifiers must name a tuple variable (a
/// relation-name shorthand is rewritten to the unique tuple variable over
/// that relation).
Status BindExpr(const BoundQuery& bq, const SelectStmt& stmt, Expr* e) {
  if (e == nullptr) return Status::OK();
  switch (e->kind) {
    case ExprKind::kVarRef:
      // Declared variables of any class may appear as values (schema
      // variables evaluate to their label as a string — the heart of
      // SchemaSQL). Undeclared names stay as bare column references.
      return Status::OK();
    case ExprKind::kColumnRef: {
      const BoundVariable* q = bq.Find(e->qualifier);
      if (q == nullptr) {
        // Relation-name shorthand: find the unique tuple variable ranging
        // over a relation with this constant name.
        const FromItem* match = nullptr;
        int count = 0;
        for (const FromItem& f : stmt.from_items) {
          if (f.kind == FromItemKind::kTupleVar && !f.rel.is_variable &&
              EqualsIgnoreCase(f.rel.text, e->qualifier)) {
            match = &f;
            ++count;
          }
        }
        if (count == 1) {
          e->qualifier = match->var;
        } else if (count == 0) {
          return Status::BindError("unknown tuple variable or relation '" +
                                   e->qualifier + "'");
        } else {
          return Status::BindError("ambiguous relation shorthand '" +
                                   e->qualifier + "'");
        }
      } else if (q->cls != VarClass::kTuple) {
        return Status::BindError("'" + e->qualifier +
                                 "' qualifies a column reference but is a " +
                                 VarClassName(q->cls) + " variable");
      }
      // The column label may itself be an attribute variable (e.g. T.A).
      const BoundVariable* a = bq.Find(e->column.text);
      if (a != nullptr && a->cls == VarClass::kAttribute) {
        e->column.is_variable = true;
      }
      return Status::OK();
    }
    default:
      DV_RETURN_IF_ERROR(BindExpr(bq, stmt, e->left.get()));
      DV_RETURN_IF_ERROR(BindExpr(bq, stmt, e->right.get()));
      return Status::OK();
  }
}

Result<BoundQuery> BindSelectOne(SelectStmt* stmt) {
  BoundQuery bq;
  // Pass 1: FROM items in declaration order.
  for (size_t i = 0; i < stmt->from_items.size(); ++i) {
    FromItem& item = stmt->from_items[i];
    switch (item.kind) {
      case FromItemKind::kDatabaseVar:
        DV_RETURN_IF_ERROR(Declare(&bq, item.var, VarClass::kDatabase, i));
        break;
      case FromItemKind::kRelationVar:
        DV_RETURN_IF_ERROR(ResolveNameTerm(bq, &item.db, VarClass::kDatabase,
                                           "a relation-variable declaration"));
        DV_RETURN_IF_ERROR(Declare(&bq, item.var, VarClass::kRelation, i));
        break;
      case FromItemKind::kAttributeVar:
        DV_RETURN_IF_ERROR(ResolveNameTerm(bq, &item.db, VarClass::kDatabase,
                                           "an attribute-variable declaration"));
        DV_RETURN_IF_ERROR(ResolveNameTerm(bq, &item.rel, VarClass::kRelation,
                                           "an attribute-variable declaration"));
        DV_RETURN_IF_ERROR(Declare(&bq, item.var, VarClass::kAttribute, i));
        break;
      case FromItemKind::kTupleVar:
        DV_RETURN_IF_ERROR(ResolveNameTerm(bq, &item.db, VarClass::kDatabase,
                                           "a tuple-variable declaration"));
        DV_RETURN_IF_ERROR(ResolveNameTerm(bq, &item.rel, VarClass::kRelation,
                                           "a tuple-variable declaration"));
        DV_RETURN_IF_ERROR(Declare(&bq, item.var, VarClass::kTuple, i));
        break;
      case FromItemKind::kDomainVar: {
        const BoundVariable* t = bq.Find(item.tuple);
        if (t == nullptr) {
          // Relation-name shorthand (e.g. `hotelwords.attribute A` in
          // Fig. 9): rewrite to the unique tuple variable over the relation.
          const FromItem* match = nullptr;
          int count = 0;
          for (size_t j = 0; j < i; ++j) {
            const FromItem& f = stmt->from_items[j];
            if (f.kind == FromItemKind::kTupleVar && !f.rel.is_variable &&
                EqualsIgnoreCase(f.rel.text, item.tuple)) {
              match = &f;
              ++count;
            }
          }
          if (count == 1) {
            item.tuple = match->var;
          } else {
            return Status::BindError(
                "domain variable '" + item.var +
                "' projects unknown or ambiguous tuple variable '" +
                item.tuple + "'");
          }
        } else if (t->cls != VarClass::kTuple) {
          return Status::BindError("domain variable '" + item.var +
                                   "' projects '" + item.tuple +
                                   "', which is a " + VarClassName(t->cls) +
                                   " variable, not a tuple variable");
        }
        DV_RETURN_IF_ERROR(ResolveNameTerm(bq, &item.attr, VarClass::kAttribute,
                                           "a domain-variable declaration"));
        DV_RETURN_IF_ERROR(Declare(&bq, item.var, VarClass::kDomain, i));
        break;
      }
    }
  }
  // Pass 2: expressions.
  for (SelectItem& s : stmt->select_list) {
    DV_RETURN_IF_ERROR(BindExpr(bq, *stmt, s.expr.get()));
  }
  DV_RETURN_IF_ERROR(BindExpr(bq, *stmt, stmt->where.get()));
  for (auto& g : stmt->group_by) {
    DV_RETURN_IF_ERROR(BindExpr(bq, *stmt, g.get()));
  }
  DV_RETURN_IF_ERROR(BindExpr(bq, *stmt, stmt->having.get()));
  for (OrderItem& o : stmt->order_by) {
    DV_RETURN_IF_ERROR(BindExpr(bq, *stmt, o.expr.get()));
  }
  return bq;
}

}  // namespace

Result<BoundQuery> Binder::BindSelect(SelectStmt* stmt) {
  DV_ASSIGN_OR_RETURN(BoundQuery first, BindSelectOne(stmt));
  // Bind every UNION branch in its own scope.
  SelectStmt* branch = stmt->union_next.get();
  while (branch != nullptr) {
    DV_ASSIGN_OR_RETURN(BoundQuery ignored, BindSelectOne(branch));
    (void)ignored;
    branch = branch->union_next.get();
  }
  return first;
}

Result<BoundQuery> Binder::BindBranch(SelectStmt* stmt) {
  return BindSelectOne(stmt);
}

Result<BoundView> Binder::BindView(CreateViewStmt* stmt) {
  BoundView bv;
  DV_ASSIGN_OR_RETURN(bv.body, BindSelect(stmt->query.get()));

  // Resolve header labels against the body's variables. Any string-valued
  // variable (domain or schema variable) may serve as a label generator;
  // tuple variables may not.
  auto resolve_label = [&](NameTerm* term) -> Status {
    const BoundVariable* v = bv.body.Find(term->text);
    if (v == nullptr) {
      term->is_variable = false;
      return Status::OK();
    }
    if (v->cls == VarClass::kTuple) {
      return Status::BindError("tuple variable '" + term->text +
                               "' cannot appear in a view output schema");
    }
    term->is_variable = true;
    return Status::OK();
  };
  if (!stmt->db.empty()) {
    DV_RETURN_IF_ERROR(resolve_label(&stmt->db));
    bv.db_is_variable = stmt->db.is_variable;
  }
  DV_RETURN_IF_ERROR(resolve_label(&stmt->name));
  bv.name_is_variable = stmt->name.is_variable;
  bv.attr_is_variable.resize(stmt->attrs.size(), false);
  for (size_t i = 0; i < stmt->attrs.size(); ++i) {
    DV_RETURN_IF_ERROR(resolve_label(&stmt->attrs[i]));
    bv.attr_is_variable[i] = stmt->attrs[i].is_variable;
  }

  bool header_dynamic = bv.db_is_variable || bv.name_is_variable;
  for (bool b : bv.attr_is_variable) header_dynamic = header_dynamic || b;

  // Def. 3.1: a dynamic view has a data-dependent output schema and a body
  // using only tuple and domain variables.
  if (bv.body.higher_order) {
    bv.view_class = ViewClass::kHigherOrder;
  } else if (header_dynamic) {
    bv.view_class = ViewClass::kDynamic;
  } else {
    bv.view_class = ViewClass::kFirstOrder;
  }
  return bv;
}

Result<BoundQuery> Binder::BindIndex(CreateIndexStmt* stmt) {
  DV_ASSIGN_OR_RETURN(BoundQuery bq, BindSelect(stmt->query.get()));
  for (auto& g : stmt->given) {
    DV_RETURN_IF_ERROR(BindExpr(bq, *stmt->query, g.get()));
  }
  return bq;
}

}  // namespace dynview

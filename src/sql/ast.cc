#include "sql/ast.h"

#include <functional>

namespace dynview {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNotEq: return "<>";
    case BinaryOp::kLess: return "<";
    case BinaryOp::kLessEq: return "<=";
    case BinaryOp::kGreater: return ">";
    case BinaryOp::kGreaterEq: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

bool IsDuplicateInsensitive(AggFunc f) {
  return f == AggFunc::kMin || f == AggFunc::kMax;
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::MakeVarRef(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVarRef;
  e->var_name = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::MakeColumnRef(std::string qualifier,
                                          NameTerm column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(ExprKind kind, BinaryOp op,
                                       std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::MakeCompare(BinaryOp op, std::unique_ptr<Expr> l,
                                        std::unique_ptr<Expr> r) {
  return MakeBinary(ExprKind::kCompare, op, std::move(l), std::move(r));
}

std::unique_ptr<Expr> Expr::MakeNot(std::unique_ptr<Expr> e) {
  auto out = std::make_unique<Expr>();
  out->kind = ExprKind::kNot;
  out->left = std::move(e);
  return out;
}

std::unique_ptr<Expr> Expr::MakeIsNull(std::unique_ptr<Expr> e, bool negated) {
  auto out = std::make_unique<Expr>();
  out->kind = ExprKind::kIsNull;
  out->left = std::move(e);
  out->negated = negated;
  return out;
}

std::unique_ptr<Expr> Expr::MakeAgg(AggFunc f, std::unique_ptr<Expr> arg,
                                    bool distinct) {
  auto out = std::make_unique<Expr>();
  out->kind = ExprKind::kAgg;
  out->agg_func = f;
  out->left = std::move(arg);
  out->agg_distinct = distinct;
  return out;
}

std::unique_ptr<Expr> Expr::MakeStar() {
  auto out = std::make_unique<Expr>();
  out->kind = ExprKind::kStar;
  return out;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->param_index = param_index;
  e->var_name = var_name;
  e->qualifier = qualifier;
  e->column = column;
  e->op = op;
  e->negated = negated;
  e->agg_func = agg_func;
  e->agg_distinct = agg_distinct;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (param_index >= 0) return "?" + std::to_string(param_index + 1);
      // A bare 1998-01-02 would re-parse as integer subtraction; the DATE
      // prefix keeps literal renderings lossless through the lexer.
      if (literal.kind() == TypeKind::kDate) {
        return "DATE '" + literal.ToString() + "'";
      }
      return literal.ToString();
    case ExprKind::kVarRef:
      return var_name;
    case ExprKind::kColumnRef:
      return qualifier + "." + column.text;
    case ExprKind::kCompare:
    case ExprKind::kArith:
      return left->ToString() + " " + BinaryOpName(op) + " " +
             right->ToString();
    case ExprKind::kLogic: {
      // Parenthesize OR under AND for unambiguous reading.
      std::string l = left->kind == ExprKind::kLogic && left->op != op
                          ? "(" + left->ToString() + ")"
                          : left->ToString();
      std::string r = right->kind == ExprKind::kLogic && right->op != op
                          ? "(" + right->ToString() + ")"
                          : right->ToString();
      return l + " " + BinaryOpName(op) + " " + r;
    }
    case ExprKind::kNot:
      return "NOT (" + left->ToString() + ")";
    case ExprKind::kLike:
      return left->ToString() + " LIKE " + right->ToString();
    case ExprKind::kContains:
      return "CONTAINS(" + left->ToString() + ", " + right->ToString() + ")";
    case ExprKind::kHasWord:
      return "HASWORD(" + left->ToString() + ", " + right->ToString() + ")";
    case ExprKind::kIsNull:
      return left->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kAgg: {
      std::string inner =
          agg_func == AggFunc::kCountStar ? "*" : left->ToString();
      if (agg_distinct) inner = "DISTINCT " + inner;
      return std::string(AggFuncName(agg_func)) + "(" + inner + ")";
    }
    case ExprKind::kStar:
      return "*";
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kAgg) return true;
  if (left && left->ContainsAggregate()) return true;
  if (right && right->ContainsAggregate()) return true;
  return false;
}

void Expr::CollectVarRefs(std::vector<std::string>* out) const {
  if (kind == ExprKind::kVarRef) out->push_back(var_name);
  if (left) left->CollectVarRefs(out);
  if (right) right->CollectVarRefs(out);
}

std::string FromItem::ToString() const {
  switch (kind) {
    case FromItemKind::kDatabaseVar:
      return "-> " + var;
    case FromItemKind::kRelationVar:
      return db.text + " -> " + var;
    case FromItemKind::kAttributeVar:
      return db.text + "::" + rel.text + " -> " + var;
    case FromItemKind::kTupleVar: {
      std::string prefix = db.empty() ? rel.text : db.text + "::" + rel.text;
      return prefix + " " + var;
    }
    case FromItemKind::kDomainVar:
      return tuple + "." + attr.text + " " + var;
  }
  return "?";
}

SelectItem SelectItem::Clone() const {
  SelectItem out;
  out.expr = expr ? expr->Clone() : nullptr;
  out.alias = alias;
  return out;
}

OrderItem OrderItem::Clone() const {
  OrderItem out;
  out.expr = expr ? expr->Clone() : nullptr;
  out.descending = descending;
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = distinct;
  for (const auto& item : select_list) out->select_list.push_back(item.Clone());
  for (const auto& f : from_items) out->from_items.push_back(f.Clone());
  if (where) out->where = where->Clone();
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (having) out->having = having->Clone();
  for (const auto& o : order_by) out->order_by.push_back(o.Clone());
  out->limit = limit;
  if (union_next) out->union_next = union_next->Clone();
  out->union_all = union_all;
  return out;
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) out += ", ";
    out += select_list[i].expr->ToString();
    if (!select_list[i].alias.empty()) out += " AS " + select_list[i].alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < from_items.size(); ++i) {
    if (i > 0) out += ", ";
    out += from_items[i].ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  if (union_next) {
    out += union_all ? " UNION ALL " : " UNION ";
    out += union_next->ToString();
  }
  return out;
}

namespace {

void ForEachExpr(Expr* e, const std::function<void(Expr*)>& fn) {
  if (e == nullptr) return;
  fn(e);
  ForEachExpr(e->left.get(), fn);
  ForEachExpr(e->right.get(), fn);
}

void ForEachExpr(SelectStmt* stmt, const std::function<void(Expr*)>& fn) {
  for (SelectStmt* s = stmt; s != nullptr; s = s->union_next.get()) {
    for (SelectItem& item : s->select_list) ForEachExpr(item.expr.get(), fn);
    ForEachExpr(s->where.get(), fn);
    for (auto& g : s->group_by) ForEachExpr(g.get(), fn);
    ForEachExpr(s->having.get(), fn);
    for (OrderItem& o : s->order_by) ForEachExpr(o.expr.get(), fn);
  }
}

}  // namespace

int CountParameters(const SelectStmt& stmt) {
  int max_index = -1;
  ForEachExpr(const_cast<SelectStmt*>(&stmt), [&](Expr* e) {
    if (e->kind == ExprKind::kLiteral && e->param_index > max_index) {
      max_index = e->param_index;
    }
  });
  return max_index + 1;
}

Status SubstituteParameters(SelectStmt* stmt,
                            const std::vector<Value>& params) {
  Status status = Status::OK();
  ForEachExpr(stmt, [&](Expr* e) {
    if (e->kind != ExprKind::kLiteral || e->param_index < 0) return;
    if (static_cast<size_t>(e->param_index) >= params.size()) {
      if (status.ok()) {
        status = Status::InvalidArgument(
            "parameter ?" + std::to_string(e->param_index + 1) +
            " has no bound value (" + std::to_string(params.size()) +
            " provided)");
      }
      return;
    }
    e->literal = params[e->param_index];
    e->param_index = -1;
  });
  return status;
}

bool SelectStmt::IsHigherOrder() const {
  for (const FromItem& f : from_items) {
    if (f.kind == FromItemKind::kDatabaseVar ||
        f.kind == FromItemKind::kRelationVar ||
        f.kind == FromItemKind::kAttributeVar) {
      return true;
    }
  }
  if (union_next) return union_next->IsHigherOrder();
  return false;
}

std::unique_ptr<CreateViewStmt> CreateViewStmt::Clone() const {
  auto out = std::make_unique<CreateViewStmt>();
  out->db = db;
  out->name = name;
  out->attrs = attrs;
  out->query = query ? query->Clone() : nullptr;
  return out;
}

std::string CreateViewStmt::ToString() const {
  std::string out = "CREATE VIEW ";
  if (!db.empty()) out += db.text + "::";
  out += name.text + " (";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs[i].text;
  }
  out += ") AS " + (query ? query->ToString() : "");
  return out;
}

std::unique_ptr<CreateIndexStmt> CreateIndexStmt::Clone() const {
  auto out = std::make_unique<CreateIndexStmt>();
  out->name = name;
  out->method = method;
  for (const auto& g : given) out->given.push_back(g->Clone());
  out->query = query ? query->Clone() : nullptr;
  return out;
}

std::string CreateIndexStmt::ToString() const {
  std::string out = "CREATE INDEX " + name + " AS ";
  out += method == IndexMethod::kBtree ? "BTREE" : "INVERTED";
  out += " BY GIVEN ";
  for (size_t i = 0; i < given.size(); ++i) {
    if (i > 0) out += ", ";
    out += given[i]->ToString();
  }
  out += " " + (query ? query->ToString() : "");
  return out;
}

}  // namespace dynview

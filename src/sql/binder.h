#ifndef DYNVIEW_SQL_BINDER_H_
#define DYNVIEW_SQL_BINDER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace dynview {

/// The five SchemaSQL variable classes (Sec. 3.1 of the paper). Database,
/// relation and attribute variables are collectively *schema variables*.
enum class VarClass { kDatabase, kRelation, kAttribute, kTuple, kDomain };

const char* VarClassName(VarClass cls);

/// True for the three schema-variable classes.
bool IsSchemaVarClass(VarClass cls);

/// A variable declared in a FROM clause, after binding.
struct BoundVariable {
  std::string name;
  VarClass cls = VarClass::kTuple;
  /// Index of the declaring FROM item in SelectStmt::from_items.
  size_t from_index = 0;
};

/// Classification of a CREATE VIEW statement against Def. 3.1:
///  * kFirstOrder  — constant output schema, first-order body (plain SQL).
///  * kDynamic     — data-dependent output schema, body uses only tuple and
///                   domain variables (Def. 3.1; e.g. v4/v5 in Fig. 5).
///  * kHigherOrder — body declares schema variables (e.g. v2/v3 of Fig. 2 or
///                   the aggregate view v6 of Fig. 5); outside the restricted
///                   class the paper's architecture admits.
enum class ViewClass { kFirstOrder, kDynamic, kHigherOrder };

const char* ViewClassName(ViewClass cls);

/// Result of binding a SELECT statement: the variable table plus annotations
/// written into the AST (NameTerm::is_variable flags).
struct BoundQuery {
  /// Declared variables keyed by lowercase name.
  std::map<std::string, BoundVariable> variables;

  /// True if any schema variable is declared (query is higher order).
  bool higher_order = false;

  /// Looks up a variable (case-insensitive); nullptr if absent.
  const BoundVariable* Find(const std::string& name) const;
};

/// Result of binding a CREATE VIEW: the body's binding plus the view class
/// and which header labels are variables.
struct BoundView {
  BoundQuery body;
  ViewClass view_class = ViewClass::kFirstOrder;
  /// True per header position (db, name, attrs[i]) if that label is a
  /// variable of the body.
  bool db_is_variable = false;
  bool name_is_variable = false;
  std::vector<bool> attr_is_variable;
};

/// Resolves identifiers in a parsed statement against its FROM-clause
/// variable declarations, in declaration order, mutating NameTerm flags in
/// place. SchemaSQL scoping rule: an identifier in a label position denotes a
/// previously declared variable if one of that name exists, else a constant
/// label.
///
/// The binder is deliberately catalog-free: binding is a purely syntactic
/// analysis (the paper's usability and translation machinery operates on
/// queries without consulting instances). Existence of constant relations is
/// checked at evaluation time.
class Binder {
 public:
  /// Binds `stmt` (all branches of a UNION chain). On success the AST is
  /// annotated and the variable table describes the *first* branch (each
  /// UNION branch has its own scope; tables for later branches can be
  /// obtained by binding them individually).
  static Result<BoundQuery> BindSelect(SelectStmt* stmt);

  /// Binds a single SELECT branch without following its UNION chain. Used by
  /// the engine, which evaluates each branch in its own scope.
  static Result<BoundQuery> BindBranch(SelectStmt* stmt);

  /// Binds a CREATE VIEW: binds the body, then resolves header labels
  /// against the body's variables and classifies per Def. 3.1.
  static Result<BoundView> BindView(CreateViewStmt* stmt);

  /// Binds a CREATE INDEX: binds the body and the GIVEN expressions.
  static Result<BoundQuery> BindIndex(CreateIndexStmt* stmt);
};

}  // namespace dynview

#endif  // DYNVIEW_SQL_BINDER_H_

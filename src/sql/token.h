#ifndef DYNVIEW_SQL_TOKEN_H_
#define DYNVIEW_SQL_TOKEN_H_

#include <string>

namespace dynview {

/// Lexical token kinds for SQL extended with SchemaSQL syntax. The SchemaSQL
/// extensions are `->` (schema-variable declarator) and `::` (database ::
/// relation qualifier), per Lakshmanan et al. (VLDB '96) as used in the paper.
enum class TokenKind {
  kEnd = 0,
  kIdentifier,     // stock, T, coA  (case preserved; keywords recognized separately)
  kStringLiteral,  // 'nyse'
  kIntLiteral,     // 200
  kDoubleLiteral,  // 3.5
  kDateLiteral,    // DATE '1998-01-02'  or  1/1/98 shorthand inside quotes

  // Punctuation.
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kArrow,        // ->
  kDoubleColon,  // ::
  kSemicolon,
  kQuestion,     // ?  (positional parameter in prepared queries)

  // Comparison operators.
  kEq,        // =
  kNotEq,     // <> or !=
  kLess,      // <
  kLessEq,    // <=
  kGreater,   // >
  kGreaterEq, // >=

  // Keywords (case-insensitive).
  kSelect,
  kDistinct,
  kFrom,
  kWhere,
  kGroup,
  kBy,
  kHaving,
  kOrder,
  kAsc,
  kDesc,
  kUnion,
  kAll,
  kLimit,
  kAnd,
  kOr,
  kNot,
  kAs,
  kCreate,
  kView,
  kIndex,
  kBtree,
  kInverted,
  kGiven,
  kLike,
  kContains,
  kHasword,
  kBetween,
  kIn,
  kIs,
  kNull,
  kTrue,
  kFalse,
  kDate,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

/// Returns a printable name for diagnostics.
const char* TokenKindName(TokenKind kind);

/// A lexed token with its source text and position (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // Raw text (identifier spelling, literal contents).
  size_t position = 0;    // Byte offset in the input.

  bool is(TokenKind k) const { return kind == k; }
};

}  // namespace dynview

#endif  // DYNVIEW_SQL_TOKEN_H_

#ifndef DYNVIEW_SQL_LEXER_H_
#define DYNVIEW_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace dynview {

/// Tokenizes a SQL/SchemaSQL string. Keywords are case-insensitive;
/// identifiers preserve case. String literals use single quotes with ''
/// escaping. `DATE '1998-01-02'` produces a date literal. Comments: `--` to
/// end of line.
class Lexer {
 public:
  /// Lexes the entire input; returns the token stream terminated by kEnd.
  static Result<std::vector<Token>> Tokenize(const std::string& input);
};

}  // namespace dynview

#endif  // DYNVIEW_SQL_LEXER_H_

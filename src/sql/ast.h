#ifndef DYNVIEW_SQL_AST_H_
#define DYNVIEW_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/value.h"

namespace dynview {

/// A schema-label position (database name, relation name or attribute name)
/// that is syntactically an identifier. Whether the identifier denotes a
/// *constant label* or a *variable* declared in a FROM clause is decided by
/// the binder (SchemaSQL resolves identifiers against declared variables; the
/// paper's capitals-for-variables convention is presentation only).
struct NameTerm {
  std::string text;
  /// Set by the binder: true if `text` resolves to a declared variable.
  bool is_variable = false;

  NameTerm() = default;
  explicit NameTerm(std::string t) : text(std::move(t)) {}

  bool empty() const { return text.empty(); }
};

/// Expression node kinds.
enum class ExprKind {
  kLiteral,    // 200, 'nyse', DATE '1998-01-02', NULL, TRUE
  kVarRef,     // A declared variable (domain, tuple, or schema variable) or a
               // bare column name resolved later by the binder.
  kColumnRef,  // qualifier.column shorthand, e.g. T.price (column may bind to
               // an attribute variable).
  kCompare,    // = <> < <= > >=
  kArith,      // + - * /
  kLogic,      // AND OR
  kNot,        // NOT e
  kLike,       // e LIKE 'pattern'
  kContains,   // CONTAINS(e, 'text') — substring predicate (Sec. 1.1.2)
  kHasWord,    // HASWORD(e, 'word') — word-membership predicate with exact
               // inverted-index semantics (Fig. 9)
  kIsNull,     // e IS [NOT] NULL
  kAgg,        // COUNT/SUM/AVG/MIN/MAX(expr), COUNT(*)
  kStar,       // * in select list
};

/// Binary operator for kCompare / kArith / kLogic.
enum class BinaryOp {
  kEq, kNotEq, kLess, kLessEq, kGreater, kGreaterEq,
  kAdd, kSub, kMul, kDiv,
  kAnd, kOr,
};

/// Returns the SQL spelling of `op` (e.g. "<=" or "AND").
const char* BinaryOpName(BinaryOp op);

/// Aggregate functions.
enum class AggFunc { kCount, kCountStar, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

/// True for aggregates that are insensitive to duplicate inputs (MIN/MAX).
/// Sec. 5.2 / Ex. 5.2 of the paper: these may be answered through dynamic
/// attribute views even though such views lose multiplicities.
bool IsDuplicateInsensitive(AggFunc f);

/// Expression tree node. A single struct with kind-dependent fields keeps the
/// rewriting machinery simple (Alg. 5.1 freely rewrites sub-expressions).
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral.
  Value literal;

  /// >= 0 marks this literal node as the positional parameter `?` with that
  /// ordinal (0-based, left-to-right parse order). An un-substituted
  /// parameter renders as "?N", never evaluates, and blocks compilation;
  /// SubstituteParameters replaces `literal` and resets this to -1.
  int param_index = -1;

  // kVarRef: the referenced name.
  std::string var_name;

  // kColumnRef: qualifier (a tuple variable) and column label (constant
  // attribute name or attribute variable).
  std::string qualifier;
  NameTerm column;

  // kCompare / kArith / kLogic: op with left/right. kNot / kIsNull / kLike /
  // kContains also use left (and right for like/contains pattern).
  BinaryOp op = BinaryOp::kEq;
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;

  // kIsNull.
  bool negated = false;

  // kAgg.
  AggFunc agg_func = AggFunc::kCount;
  bool agg_distinct = false;  // COUNT(DISTINCT x) etc.

  Expr() = default;

  // --- Factory helpers -----------------------------------------------------
  static std::unique_ptr<Expr> MakeLiteral(Value v);
  static std::unique_ptr<Expr> MakeVarRef(std::string name);
  static std::unique_ptr<Expr> MakeColumnRef(std::string qualifier,
                                             NameTerm column);
  static std::unique_ptr<Expr> MakeBinary(ExprKind kind, BinaryOp op,
                                          std::unique_ptr<Expr> l,
                                          std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> MakeCompare(BinaryOp op, std::unique_ptr<Expr> l,
                                           std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> MakeNot(std::unique_ptr<Expr> e);
  static std::unique_ptr<Expr> MakeIsNull(std::unique_ptr<Expr> e, bool negated);
  static std::unique_ptr<Expr> MakeAgg(AggFunc f, std::unique_ptr<Expr> arg,
                                       bool distinct);
  static std::unique_ptr<Expr> MakeStar();

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  /// SchemaSQL rendering.
  std::string ToString() const;

  /// True if this expression (sub)tree contains an aggregate call.
  bool ContainsAggregate() const;

  /// Collects the names of all kVarRef nodes into `out` (pre-order).
  void CollectVarRefs(std::vector<std::string>* out) const;
};

/// The kind of a FROM-clause item. The first three are SchemaSQL schema
/// variable declarations; the last two are standard SQL extended with the
/// paper's explicit domain-variable notation.
enum class FromItemKind {
  kDatabaseVar,   // -> D
  kRelationVar,   // db -> R           (db constant or variable)
  kAttributeVar,  // db::rel -> A      (db/rel constant or variable)
  kTupleVar,      // [db::]rel T       (rel constant or variable)
  kDomainVar,     // T.attr X          (attr constant or attribute variable)
};

/// One FROM-clause item; field usage depends on `kind` (see FromItemKind).
struct FromItem {
  FromItemKind kind = FromItemKind::kTupleVar;
  NameTerm db;        // kRelationVar, kAttributeVar, kTupleVar (optional).
  NameTerm rel;       // kAttributeVar, kTupleVar.
  NameTerm attr;      // kDomainVar.
  std::string tuple;  // kDomainVar: the tuple variable being projected.
  std::string var;    // The declared variable name (all kinds).

  FromItem Clone() const { return *this; }
  std::string ToString() const;
};

/// A SELECT-list entry: expression plus optional alias.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;

  SelectItem() = default;
  SelectItem(std::unique_ptr<Expr> e, std::string a)
      : expr(std::move(e)), alias(std::move(a)) {}

  SelectItem Clone() const;
};

/// ORDER BY entry.
struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;

  OrderItem Clone() const;
};

/// A (possibly higher-order) SELECT statement. UNION chains hang off
/// `union_next`.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<FromItem> from_items;
  std::unique_ptr<Expr> where;        // May be null.
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;       // May be null.
  std::vector<OrderItem> order_by;
  /// Row cap applied after DISTINCT/ORDER BY; negative means no limit.
  /// Only valid on non-UNION statements.
  int64_t limit = -1;
  std::unique_ptr<SelectStmt> union_next;  // May be null.
  bool union_all = false;

  std::unique_ptr<SelectStmt> Clone() const;
  std::string ToString() const;

  /// True if any FROM item declares a schema variable (database, relation or
  /// attribute variable) — i.e. the query is higher order.
  bool IsHigherOrder() const;
};

/// Number of positional parameters a statement declares: one plus the
/// largest Expr::param_index found anywhere in the statement (all UNION
/// branches), 0 when parameter-free.
int CountParameters(const SelectStmt& stmt);

/// Replaces every positional parameter `?k` in `stmt` (all UNION branches)
/// by `params[k]` and clears the param markers. Errors when a parameter
/// ordinal has no corresponding value.
Status SubstituteParameters(SelectStmt* stmt, const std::vector<Value>& params);

/// CREATE VIEW with a possibly data-dependent output schema:
///   create view s2::C(date, price) as select ...      (C is a variable)
///   create view hotelpricing(hid, R) as select ...    (R is a variable)
/// Any header label that matches a variable of the defining query is bound to
/// it by the binder; Def. 3.1 classification is computed from the result.
struct CreateViewStmt {
  NameTerm db;                   // Optional (empty for single-db views).
  NameTerm name;                 // View (relation) name.
  std::vector<NameTerm> attrs;   // Output attribute labels.
  std::unique_ptr<SelectStmt> query;

  std::unique_ptr<CreateViewStmt> Clone() const;
  std::string ToString() const;
};

/// Index construction method (Figs. 4, 8 and 9 of the paper).
enum class IndexMethod { kBtree, kInverted };

/// CREATE INDEX <name> AS btree|inverted BY GIVEN <exprs> SELECT ... — an
/// index whose contents are described by a (possibly higher-order) view, per
/// the paper's physical-data-independence application (Sec. 1.1.3).
struct CreateIndexStmt {
  std::string name;
  IndexMethod method = IndexMethod::kBtree;
  std::vector<std::unique_ptr<Expr>> given;
  std::unique_ptr<SelectStmt> query;

  std::unique_ptr<CreateIndexStmt> Clone() const;
  std::string ToString() const;
};

/// Any parsed statement (exactly one member is non-null).
struct Statement {
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateViewStmt> create_view;
  std::unique_ptr<CreateIndexStmt> create_index;
};

}  // namespace dynview

#endif  // DYNVIEW_SQL_AST_H_

#include "sql/lexer.h"

#include <cctype>
#include <unordered_map>

#include "common/str_util.h"

namespace dynview {

namespace {

const std::unordered_map<std::string, TokenKind>& KeywordTable() {
  static const auto* kTable = new std::unordered_map<std::string, TokenKind>{
      {"select", TokenKind::kSelect},   {"distinct", TokenKind::kDistinct},
      {"from", TokenKind::kFrom},       {"where", TokenKind::kWhere},
      {"group", TokenKind::kGroup},     {"by", TokenKind::kBy},
      {"having", TokenKind::kHaving},   {"order", TokenKind::kOrder},
      {"asc", TokenKind::kAsc},         {"desc", TokenKind::kDesc},
      {"union", TokenKind::kUnion},     {"all", TokenKind::kAll},
      {"limit", TokenKind::kLimit},
      {"and", TokenKind::kAnd},         {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},         {"as", TokenKind::kAs},
      {"create", TokenKind::kCreate},   {"view", TokenKind::kView},
      {"index", TokenKind::kIndex},     {"btree", TokenKind::kBtree},
      {"inverted", TokenKind::kInverted}, {"given", TokenKind::kGiven},
      {"like", TokenKind::kLike},       {"contains", TokenKind::kContains},
      {"hasword", TokenKind::kHasword},
      {"between", TokenKind::kBetween}, {"in", TokenKind::kIn},
      {"is", TokenKind::kIs},           {"null", TokenKind::kNull},
      {"true", TokenKind::kTrue},       {"false", TokenKind::kFalse},
      {"date", TokenKind::kDate},       {"count", TokenKind::kCount},
      {"sum", TokenKind::kSum},         {"avg", TokenKind::kAvg},
      {"min", TokenKind::kMin},         {"max", TokenKind::kMax},
  };
  return *kTable;
}

}  // namespace

Result<std::vector<Token>> Lexer::Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenKind k, std::string text, size_t pos) {
    tokens.push_back(Token{k, std::move(text), pos});
  };
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      auto it = KeywordTable().find(ToLower(word));
      if (it != KeywordTable().end()) {
        // `DATE '....'` forms a date literal; plain DATE used as an
        // identifier (e.g. a column named date) is extremely common in the
        // paper, so only treat it as a literal prefix when followed by a
        // string.
        if (it->second == TokenKind::kDate) {
          size_t k = j;
          while (k < n && std::isspace(static_cast<unsigned char>(input[k]))) ++k;
          if (k < n && input[k] == '\'') {
            // Lex the string literal body.
            size_t p = k + 1;
            std::string body;
            while (p < n) {
              if (input[p] == '\'' && p + 1 < n && input[p + 1] == '\'') {
                body += '\'';
                p += 2;
              } else if (input[p] == '\'') {
                break;
              } else {
                body += input[p++];
              }
            }
            if (p >= n) {
              return Status::ParseError("unterminated date literal at offset " +
                                        std::to_string(start));
            }
            push(TokenKind::kDateLiteral, body, start);
            i = p + 1;
            continue;
          }
          push(TokenKind::kIdentifier, std::move(word), start);
          i = j;
          continue;
        }
        push(it->second, std::move(word), start);
      } else {
        push(TokenKind::kIdentifier, std::move(word), start);
      }
      i = j;
      continue;
    }
    // Numeric literals.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool has_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       (!has_dot && input[j] == '.' && j + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(input[j + 1]))))) {
        if (input[j] == '.') has_dot = true;
        ++j;
      }
      push(has_dot ? TokenKind::kDoubleLiteral : TokenKind::kIntLiteral,
           input.substr(i, j - i), start);
      i = j;
      continue;
    }
    // String literals.
    if (c == '\'') {
      size_t p = i + 1;
      std::string body;
      while (p < n) {
        if (input[p] == '\'' && p + 1 < n && input[p + 1] == '\'') {
          body += '\'';
          p += 2;
        } else if (input[p] == '\'') {
          break;
        } else {
          body += input[p++];
        }
      }
      if (p >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      push(TokenKind::kStringLiteral, std::move(body), start);
      i = p + 1;
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case ',': push(TokenKind::kComma, ",", start); ++i; continue;
      case '.': push(TokenKind::kDot, ".", start); ++i; continue;
      case '(': push(TokenKind::kLParen, "(", start); ++i; continue;
      case ')': push(TokenKind::kRParen, ")", start); ++i; continue;
      case '*': push(TokenKind::kStar, "*", start); ++i; continue;
      case '+': push(TokenKind::kPlus, "+", start); ++i; continue;
      case ';': push(TokenKind::kSemicolon, ";", start); ++i; continue;
      case '?': push(TokenKind::kQuestion, "?", start); ++i; continue;
      case '/': push(TokenKind::kSlash, "/", start); ++i; continue;
      case '-':
        if (i + 1 < n && input[i + 1] == '>') {
          push(TokenKind::kArrow, "->", start);
          i += 2;
        } else {
          push(TokenKind::kMinus, "-", start);
          ++i;
        }
        continue;
      case ':':
        if (i + 1 < n && input[i + 1] == ':') {
          push(TokenKind::kDoubleColon, "::", start);
          i += 2;
          continue;
        }
        return Status::ParseError("stray ':' at offset " + std::to_string(start));
      case '=': push(TokenKind::kEq, "=", start); ++i; continue;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kNotEq, "!=", start);
          i += 2;
          continue;
        }
        return Status::ParseError("stray '!' at offset " + std::to_string(start));
      case '<':
        if (i + 1 < n && input[i + 1] == '>') {
          push(TokenKind::kNotEq, "<>", start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kLessEq, "<=", start);
          i += 2;
        } else {
          push(TokenKind::kLess, "<", start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kGreaterEq, ">=", start);
          i += 2;
        } else {
          push(TokenKind::kGreater, ">", start);
          ++i;
        }
        continue;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  push(TokenKind::kEnd, "", n);
  return tokens;
}

}  // namespace dynview

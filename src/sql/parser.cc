#include "sql/parser.h"

#include "sql/lexer.h"

namespace dynview {

Result<Statement> Parser::Parse(const std::string& input) {
  DV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer::Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect(
    const std::string& input) {
  DV_ASSIGN_OR_RETURN(Statement stmt, Parse(input));
  if (!stmt.select) return Status::ParseError("expected a SELECT statement");
  return std::move(stmt.select);
}

Result<std::unique_ptr<CreateViewStmt>> Parser::ParseCreateView(
    const std::string& input) {
  DV_ASSIGN_OR_RETURN(Statement stmt, Parse(input));
  if (!stmt.create_view) {
    return Status::ParseError("expected a CREATE VIEW statement");
  }
  return std::move(stmt.create_view);
}

Result<std::unique_ptr<CreateIndexStmt>> Parser::ParseCreateIndex(
    const std::string& input) {
  DV_ASSIGN_OR_RETURN(Statement stmt, Parse(input));
  if (!stmt.create_index) {
    return Status::ParseError("expected a CREATE INDEX statement");
  }
  return std::move(stmt.create_index);
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) return tokens_.back();  // kEnd sentinel.
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ < tokens_.size() - 1) ++pos_;
  return t;
}

bool Parser::Match(TokenKind kind) {
  if (Peek().is(kind)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenKind kind, const char* context) {
  if (Match(kind)) return Status::OK();
  return ErrorHere(std::string("expected ") + TokenKindName(kind) + " in " +
                   context);
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  return Status::ParseError(message + " (got " + TokenKindName(t.kind) +
                            (t.text.empty() ? "" : " '" + t.text + "'") +
                            " at offset " + std::to_string(t.position) + ")");
}

bool Parser::AtIdentifier() const {
  switch (Peek().kind) {
    case TokenKind::kIdentifier:
    // Keywords that commonly double as attribute/relation names in the
    // paper's schemas (e.g. the `date` column of stock, `count` etc. are not
    // needed, but DATE definitely is).
    case TokenKind::kDate:
    case TokenKind::kView:
    case TokenKind::kIndex:
    case TokenKind::kBtree:
    case TokenKind::kInverted:
      return true;
    default:
      return false;
  }
}

Result<std::string> Parser::ConsumeIdentifier(const char* context) {
  if (!AtIdentifier()) {
    Status err = ErrorHere(std::string("expected identifier in ") + context);
    return err;
  }
  return Advance().text;
}

Result<Statement> Parser::ParseStatement() {
  Statement stmt;
  if (Peek().is(TokenKind::kCreate)) {
    if (Peek(1).is(TokenKind::kView)) {
      DV_ASSIGN_OR_RETURN(stmt.create_view, ParseCreateViewStmt());
    } else if (Peek(1).is(TokenKind::kIndex)) {
      DV_ASSIGN_OR_RETURN(stmt.create_index, ParseCreateIndexStmt());
    } else {
      return ErrorHere("expected VIEW or INDEX after CREATE");
    }
  } else if (Peek().is(TokenKind::kSelect)) {
    DV_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
  } else {
    return ErrorHere("expected SELECT or CREATE");
  }
  Match(TokenKind::kSemicolon);
  if (!Peek().is(TokenKind::kEnd)) {
    return ErrorHere("trailing input after statement");
  }
  return stmt;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectStmt() {
  DV_RETURN_IF_ERROR(Expect(TokenKind::kSelect, "query"));
  auto stmt = std::make_unique<SelectStmt>();
  stmt->distinct = Match(TokenKind::kDistinct);

  // Select list.
  do {
    DV_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
    stmt->select_list.push_back(std::move(item));
  } while (Match(TokenKind::kComma));

  DV_RETURN_IF_ERROR(Expect(TokenKind::kFrom, "query"));
  do {
    DV_ASSIGN_OR_RETURN(FromItem item, ParseFromItem());
    stmt->from_items.push_back(std::move(item));
  } while (Match(TokenKind::kComma));

  if (Match(TokenKind::kWhere)) {
    DV_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (Match(TokenKind::kGroup)) {
    DV_RETURN_IF_ERROR(Expect(TokenKind::kBy, "GROUP BY"));
    do {
      DV_ASSIGN_OR_RETURN(auto g, ParseComparisonFreeGroupExpr());
      stmt->group_by.push_back(std::move(g));
    } while (Match(TokenKind::kComma));
  }
  if (Match(TokenKind::kHaving)) {
    DV_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  if (Match(TokenKind::kOrder)) {
    DV_RETURN_IF_ERROR(Expect(TokenKind::kBy, "ORDER BY"));
    do {
      OrderItem item;
      DV_ASSIGN_OR_RETURN(item.expr, ParseAdditive());
      if (Match(TokenKind::kDesc)) {
        item.descending = true;
      } else {
        Match(TokenKind::kAsc);
      }
      stmt->order_by.push_back(std::move(item));
    } while (Match(TokenKind::kComma));
  }
  if (Match(TokenKind::kLimit)) {
    if (!Peek().is(TokenKind::kIntLiteral)) {
      return ErrorHere("expected integer after LIMIT");
    }
    stmt->limit = std::stoll(Advance().text);
  }
  if (Peek().is(TokenKind::kUnion)) {
    Advance();
    stmt->union_all = Match(TokenKind::kAll);
    DV_ASSIGN_OR_RETURN(stmt->union_next, ParseSelectStmt());
  }
  return stmt;
}

// GROUP BY expressions are plain value expressions (no comparisons); parse at
// the additive level.
Result<std::unique_ptr<Expr>> Parser::ParseComparisonFreeGroupExpr() {
  return ParseAdditive();
}

Result<std::unique_ptr<CreateViewStmt>> Parser::ParseCreateViewStmt() {
  DV_RETURN_IF_ERROR(Expect(TokenKind::kCreate, "view definition"));
  DV_RETURN_IF_ERROR(Expect(TokenKind::kView, "view definition"));
  auto stmt = std::make_unique<CreateViewStmt>();
  DV_ASSIGN_OR_RETURN(std::string first, ConsumeIdentifier("view name"));
  if (Match(TokenKind::kDoubleColon)) {
    stmt->db = NameTerm(first);
    DV_ASSIGN_OR_RETURN(std::string rel, ConsumeIdentifier("view name"));
    stmt->name = NameTerm(rel);
  } else {
    stmt->name = NameTerm(first);
  }
  DV_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "view header"));
  do {
    DV_ASSIGN_OR_RETURN(std::string attr, ConsumeIdentifier("view attribute"));
    stmt->attrs.emplace_back(attr);
  } while (Match(TokenKind::kComma));
  DV_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "view header"));
  DV_RETURN_IF_ERROR(Expect(TokenKind::kAs, "view definition"));
  DV_ASSIGN_OR_RETURN(stmt->query, ParseSelectStmt());
  return stmt;
}

Result<std::unique_ptr<CreateIndexStmt>> Parser::ParseCreateIndexStmt() {
  DV_RETURN_IF_ERROR(Expect(TokenKind::kCreate, "index definition"));
  DV_RETURN_IF_ERROR(Expect(TokenKind::kIndex, "index definition"));
  auto stmt = std::make_unique<CreateIndexStmt>();
  DV_ASSIGN_OR_RETURN(stmt->name, ConsumeIdentifier("index name"));
  DV_RETURN_IF_ERROR(Expect(TokenKind::kAs, "index definition"));
  if (Match(TokenKind::kBtree)) {
    stmt->method = IndexMethod::kBtree;
  } else if (Match(TokenKind::kInverted)) {
    stmt->method = IndexMethod::kInverted;
  } else {
    return ErrorHere("expected BTREE or INVERTED");
  }
  DV_RETURN_IF_ERROR(Expect(TokenKind::kBy, "index definition"));
  DV_RETURN_IF_ERROR(Expect(TokenKind::kGiven, "index definition"));
  do {
    DV_ASSIGN_OR_RETURN(auto e, ParseAdditive());
    stmt->given.push_back(std::move(e));
  } while (Match(TokenKind::kComma));
  DV_ASSIGN_OR_RETURN(stmt->query, ParseSelectStmt());
  return stmt;
}

Result<FromItem> Parser::ParseFromItem() {
  FromItem item;
  // `-> D` : database variable.
  if (Match(TokenKind::kArrow)) {
    item.kind = FromItemKind::kDatabaseVar;
    DV_ASSIGN_OR_RETURN(item.var, ConsumeIdentifier("database variable"));
    return item;
  }
  DV_ASSIGN_OR_RETURN(std::string first, ConsumeIdentifier("FROM item"));
  // `db -> R` : relation variable.
  if (Match(TokenKind::kArrow)) {
    item.kind = FromItemKind::kRelationVar;
    item.db = NameTerm(first);
    DV_ASSIGN_OR_RETURN(item.var, ConsumeIdentifier("relation variable"));
    return item;
  }
  // `db::rel ...`
  if (Match(TokenKind::kDoubleColon)) {
    DV_ASSIGN_OR_RETURN(std::string second, ConsumeIdentifier("FROM item"));
    if (Match(TokenKind::kArrow)) {
      // `db::rel -> A` : attribute variable.
      item.kind = FromItemKind::kAttributeVar;
      item.db = NameTerm(first);
      item.rel = NameTerm(second);
      DV_ASSIGN_OR_RETURN(item.var, ConsumeIdentifier("attribute variable"));
      return item;
    }
    // `db::rel T` : tuple variable (var optional — defaults to the relation
    // name, standard SQL behavior).
    item.kind = FromItemKind::kTupleVar;
    item.db = NameTerm(first);
    item.rel = NameTerm(second);
    if (AtIdentifier()) {
      DV_ASSIGN_OR_RETURN(item.var, ConsumeIdentifier("tuple variable"));
    } else {
      item.var = second;
    }
    return item;
  }
  // `T.attr X` : domain variable (qualifier may be a tuple variable or, as a
  // shorthand, a relation name — resolved by the binder).
  if (Match(TokenKind::kDot)) {
    item.kind = FromItemKind::kDomainVar;
    item.tuple = first;
    DV_ASSIGN_OR_RETURN(std::string attr, ConsumeIdentifier("domain variable"));
    item.attr = NameTerm(attr);
    DV_ASSIGN_OR_RETURN(item.var, ConsumeIdentifier("domain variable"));
    return item;
  }
  // `rel T` or bare `rel` : tuple variable.
  item.kind = FromItemKind::kTupleVar;
  item.rel = NameTerm(first);
  if (AtIdentifier()) {
    DV_ASSIGN_OR_RETURN(item.var, ConsumeIdentifier("tuple variable"));
  } else {
    item.var = first;
  }
  return item;
}

Result<SelectItem> Parser::ParseSelectItem() {
  if (Peek().is(TokenKind::kStar)) {
    Advance();
    return SelectItem(Expr::MakeStar(), "");
  }
  DV_ASSIGN_OR_RETURN(auto expr, ParseAdditive());
  std::string alias;
  if (Match(TokenKind::kAs)) {
    DV_ASSIGN_OR_RETURN(alias, ConsumeIdentifier("alias"));
  } else if (AtIdentifier()) {
    alias = Advance().text;
  }
  return SelectItem(std::move(expr), std::move(alias));
}

Result<std::unique_ptr<Expr>> Parser::ParseExpr() {
  DV_ASSIGN_OR_RETURN(auto left, ParseAnd());
  while (Peek().is(TokenKind::kOr)) {
    Advance();
    DV_ASSIGN_OR_RETURN(auto right, ParseAnd());
    left = Expr::MakeBinary(ExprKind::kLogic, BinaryOp::kOr, std::move(left),
                            std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseAnd() {
  DV_ASSIGN_OR_RETURN(auto left, ParseNot());
  while (Peek().is(TokenKind::kAnd)) {
    Advance();
    DV_ASSIGN_OR_RETURN(auto right, ParseNot());
    left = Expr::MakeBinary(ExprKind::kLogic, BinaryOp::kAnd, std::move(left),
                            std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseNot() {
  if (Match(TokenKind::kNot)) {
    DV_ASSIGN_OR_RETURN(auto inner, ParseNot());
    return Expr::MakeNot(std::move(inner));
  }
  return ParseComparison();
}

Result<std::unique_ptr<Expr>> Parser::ParseComparison() {
  DV_ASSIGN_OR_RETURN(auto left, ParseAdditive());
  switch (Peek().kind) {
    case TokenKind::kEq:
    case TokenKind::kNotEq:
    case TokenKind::kLess:
    case TokenKind::kLessEq:
    case TokenKind::kGreater:
    case TokenKind::kGreaterEq: {
      TokenKind k = Advance().kind;
      BinaryOp op;
      switch (k) {
        case TokenKind::kEq: op = BinaryOp::kEq; break;
        case TokenKind::kNotEq: op = BinaryOp::kNotEq; break;
        case TokenKind::kLess: op = BinaryOp::kLess; break;
        case TokenKind::kLessEq: op = BinaryOp::kLessEq; break;
        case TokenKind::kGreater: op = BinaryOp::kGreater; break;
        default: op = BinaryOp::kGreaterEq; break;
      }
      DV_ASSIGN_OR_RETURN(auto right, ParseAdditive());
      return Expr::MakeCompare(op, std::move(left), std::move(right));
    }
    case TokenKind::kLike: {
      Advance();
      DV_ASSIGN_OR_RETURN(auto right, ParseAdditive());
      return Expr::MakeBinary(ExprKind::kLike, BinaryOp::kEq, std::move(left),
                              std::move(right));
    }
    case TokenKind::kIs: {
      Advance();
      bool negated = Match(TokenKind::kNot);
      DV_RETURN_IF_ERROR(Expect(TokenKind::kNull, "IS NULL"));
      return Expr::MakeIsNull(std::move(left), negated);
    }
    case TokenKind::kBetween:
    case TokenKind::kIn:
    case TokenKind::kNot: {
      // `x [NOT] BETWEEN lo AND hi` and `x [NOT] IN (v1, ..)` desugar to
      // comparison combinations, so the whole pipeline (evaluation,
      // implication prover, Alg. 5.1) handles them with no special cases.
      bool negated = Match(TokenKind::kNot);
      if (negated && !Peek().is(TokenKind::kBetween) &&
          !Peek().is(TokenKind::kIn)) {
        return ErrorHere("expected BETWEEN or IN after NOT");
      }
      if (Match(TokenKind::kBetween)) {
        DV_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
        DV_RETURN_IF_ERROR(Expect(TokenKind::kAnd, "BETWEEN"));
        DV_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
        auto ge = Expr::MakeCompare(BinaryOp::kGreaterEq, left->Clone(),
                                    std::move(lo));
        auto le = Expr::MakeCompare(BinaryOp::kLessEq, std::move(left),
                                    std::move(hi));
        auto both = Expr::MakeBinary(ExprKind::kLogic, BinaryOp::kAnd,
                                     std::move(ge), std::move(le));
        return negated ? Expr::MakeNot(std::move(both)) : std::move(both);
      }
      DV_RETURN_IF_ERROR(Expect(TokenKind::kIn, "IN list"));
      DV_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "IN list"));
      std::unique_ptr<Expr> disjunction;
      do {
        DV_ASSIGN_OR_RETURN(auto item, ParseAdditive());
        auto eq =
            Expr::MakeCompare(BinaryOp::kEq, left->Clone(), std::move(item));
        if (!disjunction) {
          disjunction = std::move(eq);
        } else {
          disjunction = Expr::MakeBinary(ExprKind::kLogic, BinaryOp::kOr,
                                         std::move(disjunction), std::move(eq));
        }
      } while (Match(TokenKind::kComma));
      DV_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "IN list"));
      return negated ? Expr::MakeNot(std::move(disjunction))
                     : std::move(disjunction);
    }
    default:
      return left;
  }
}

Result<std::unique_ptr<Expr>> Parser::ParseAdditive() {
  DV_ASSIGN_OR_RETURN(auto left, ParseMultiplicative());
  while (Peek().is(TokenKind::kPlus) || Peek().is(TokenKind::kMinus)) {
    BinaryOp op =
        Advance().kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
    DV_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
    left = Expr::MakeBinary(ExprKind::kArith, op, std::move(left),
                            std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseMultiplicative() {
  DV_ASSIGN_OR_RETURN(auto left, ParsePrimary());
  while (Peek().is(TokenKind::kStar) || Peek().is(TokenKind::kSlash)) {
    BinaryOp op =
        Advance().kind == TokenKind::kStar ? BinaryOp::kMul : BinaryOp::kDiv;
    DV_ASSIGN_OR_RETURN(auto right, ParsePrimary());
    left = Expr::MakeBinary(ExprKind::kArith, op, std::move(left),
                            std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kIntLiteral: {
      Advance();
      return Expr::MakeLiteral(Value::Int(std::stoll(t.text)));
    }
    case TokenKind::kDoubleLiteral: {
      Advance();
      return Expr::MakeLiteral(Value::Double(std::stod(t.text)));
    }
    case TokenKind::kStringLiteral: {
      std::string text = t.text;
      Advance();
      return Expr::MakeLiteral(Value::String(std::move(text)));
    }
    case TokenKind::kDateLiteral: {
      std::string text = t.text;
      Advance();
      DV_ASSIGN_OR_RETURN(Date d, Date::Parse(text));
      return Expr::MakeLiteral(Value::MakeDate(d));
    }
    case TokenKind::kNull:
      Advance();
      return Expr::MakeLiteral(Value::Null());
    case TokenKind::kTrue:
      Advance();
      return Expr::MakeLiteral(Value::Bool(true));
    case TokenKind::kFalse:
      Advance();
      return Expr::MakeLiteral(Value::Bool(false));
    case TokenKind::kMinus: {
      Advance();
      DV_ASSIGN_OR_RETURN(auto inner, ParsePrimary());
      return Expr::MakeBinary(ExprKind::kArith, BinaryOp::kSub,
                              Expr::MakeLiteral(Value::Int(0)),
                              std::move(inner));
    }
    case TokenKind::kLParen: {
      Advance();
      DV_ASSIGN_OR_RETURN(auto inner, ParseExpr());
      DV_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "parenthesized expression"));
      return inner;
    }
    case TokenKind::kCount:
    case TokenKind::kSum:
    case TokenKind::kAvg:
    case TokenKind::kMin:
    case TokenKind::kMax: {
      TokenKind fk = Advance().kind;
      DV_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "aggregate"));
      if (fk == TokenKind::kCount && Match(TokenKind::kStar)) {
        DV_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "aggregate"));
        return Expr::MakeAgg(AggFunc::kCountStar, nullptr, false);
      }
      bool distinct = Match(TokenKind::kDistinct);
      DV_ASSIGN_OR_RETURN(auto arg, ParseAdditive());
      DV_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "aggregate"));
      AggFunc f;
      switch (fk) {
        case TokenKind::kCount: f = AggFunc::kCount; break;
        case TokenKind::kSum: f = AggFunc::kSum; break;
        case TokenKind::kAvg: f = AggFunc::kAvg; break;
        case TokenKind::kMin: f = AggFunc::kMin; break;
        default: f = AggFunc::kMax; break;
      }
      return Expr::MakeAgg(f, std::move(arg), distinct);
    }
    case TokenKind::kQuestion: {
      // Positional parameter for prepared queries: a literal placeholder
      // whose value is bound by SubstituteParameters before execution.
      Advance();
      auto param = Expr::MakeLiteral(Value::Null());
      param->param_index = next_param_index_++;
      return param;
    }
    case TokenKind::kContains:
    case TokenKind::kHasword: {
      ExprKind kind = Advance().kind == TokenKind::kContains
                          ? ExprKind::kContains
                          : ExprKind::kHasWord;
      const char* what = kind == ExprKind::kContains ? "CONTAINS" : "HASWORD";
      DV_RETURN_IF_ERROR(Expect(TokenKind::kLParen, what));
      DV_ASSIGN_OR_RETURN(auto l, ParseAdditive());
      DV_RETURN_IF_ERROR(Expect(TokenKind::kComma, what));
      DV_ASSIGN_OR_RETURN(auto r, ParseAdditive());
      DV_RETURN_IF_ERROR(Expect(TokenKind::kRParen, what));
      return Expr::MakeBinary(kind, BinaryOp::kEq, std::move(l), std::move(r));
    }
    default:
      break;
  }
  if (AtIdentifier()) {
    std::string name = Advance().text;
    if (Match(TokenKind::kDot)) {
      DV_ASSIGN_OR_RETURN(std::string col, ConsumeIdentifier("column reference"));
      return Expr::MakeColumnRef(std::move(name), NameTerm(col));
    }
    return Expr::MakeVarRef(std::move(name));
  }
  Status err = ErrorHere("expected expression");
  return err;
}

}  // namespace dynview

#include "sql/token.h"

namespace dynview {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kDoubleLiteral: return "double literal";
    case TokenKind::kDateLiteral: return "date literal";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kDoubleColon: return "'::'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNotEq: return "'<>'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kSelect: return "SELECT";
    case TokenKind::kDistinct: return "DISTINCT";
    case TokenKind::kFrom: return "FROM";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kGroup: return "GROUP";
    case TokenKind::kBy: return "BY";
    case TokenKind::kHaving: return "HAVING";
    case TokenKind::kOrder: return "ORDER";
    case TokenKind::kAsc: return "ASC";
    case TokenKind::kDesc: return "DESC";
    case TokenKind::kUnion: return "UNION";
    case TokenKind::kLimit: return "LIMIT";
    case TokenKind::kAll: return "ALL";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kAs: return "AS";
    case TokenKind::kCreate: return "CREATE";
    case TokenKind::kView: return "VIEW";
    case TokenKind::kIndex: return "INDEX";
    case TokenKind::kBtree: return "BTREE";
    case TokenKind::kInverted: return "INVERTED";
    case TokenKind::kGiven: return "GIVEN";
    case TokenKind::kLike: return "LIKE";
    case TokenKind::kContains: return "CONTAINS";
    case TokenKind::kHasword: return "HASWORD";
    case TokenKind::kBetween: return "BETWEEN";
    case TokenKind::kIn: return "IN";
    case TokenKind::kIs: return "IS";
    case TokenKind::kNull: return "NULL";
    case TokenKind::kTrue: return "TRUE";
    case TokenKind::kFalse: return "FALSE";
    case TokenKind::kDate: return "DATE";
    case TokenKind::kCount: return "COUNT";
    case TokenKind::kSum: return "SUM";
    case TokenKind::kAvg: return "AVG";
    case TokenKind::kMin: return "MIN";
    case TokenKind::kMax: return "MAX";
  }
  return "?";
}

}  // namespace dynview

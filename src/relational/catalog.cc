#include "relational/catalog.h"

#include "common/failpoint.h"
#include "common/str_util.h"

namespace dynview {

Status Database::AddTable(const std::string& rel_name, Table table) {
  std::string key = ToLower(rel_name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + rel_name + "' already exists in " +
                                 name_);
  }
  tables_.emplace(key, std::make_pair(rel_name, std::move(table)));
  return Status::OK();
}

void Database::PutTable(const std::string& rel_name, Table table) {
  std::string key = ToLower(rel_name);
  tables_[key] = std::make_pair(rel_name, std::move(table));
}

Status Database::DropTable(const std::string& rel_name) {
  std::string key = ToLower(rel_name);
  if (tables_.erase(key) == 0) {
    return Status::NotFound("table '" + rel_name + "' not found in " + name_);
  }
  return Status::OK();
}

bool Database::HasTable(const std::string& rel_name) const {
  return tables_.count(ToLower(rel_name)) > 0;
}

Result<const Table*> Database::GetTable(const std::string& rel_name) const {
  auto it = tables_.find(ToLower(rel_name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + rel_name + "' not found in database '" +
                            name_ + "'");
  }
  return &it->second.second;
}

Result<Table*> Database::GetMutableTable(const std::string& rel_name) {
  auto it = tables_.find(ToLower(rel_name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + rel_name + "' not found in database '" +
                            name_ + "'");
  }
  return &it->second.second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, entry] : tables_) names.push_back(entry.first);
  return names;
}

Result<Database*> Catalog::CreateDatabase(const std::string& db_name) {
  std::string key = ToLower(db_name);
  if (databases_.count(key) > 0) {
    return Status::AlreadyExists("database '" + db_name + "' already exists");
  }
  auto [it, ok] =
      databases_.emplace(key, std::make_pair(db_name, Database(db_name)));
  (void)ok;
  return &it->second.second;
}

Database* Catalog::GetOrCreateDatabase(const std::string& db_name) {
  std::string key = ToLower(db_name);
  auto it = databases_.find(key);
  if (it == databases_.end()) {
    it = databases_.emplace(key, std::make_pair(db_name, Database(db_name)))
             .first;
  }
  return &it->second.second;
}

bool Catalog::HasDatabase(const std::string& db_name) const {
  return databases_.count(ToLower(db_name)) > 0;
}

Result<const Database*> Catalog::GetDatabase(const std::string& db_name) const {
  auto it = databases_.find(ToLower(db_name));
  if (it == databases_.end()) {
    return Status::NotFound("database '" + db_name + "' not found");
  }
  return &it->second.second;
}

Result<Database*> Catalog::GetMutableDatabase(const std::string& db_name) {
  auto it = databases_.find(ToLower(db_name));
  if (it == databases_.end()) {
    return Status::NotFound("database '" + db_name + "' not found");
  }
  return &it->second.second;
}

Result<const Table*> Catalog::ResolveTable(const std::string& db_name,
                                           const std::string& rel_name) const {
  // Fault-injection point for source access: every engine scan and view
  // grounding resolves its base table here, so arming "catalog.resolve"
  // (match "db::rel") simulates that source being slow or unavailable.
  if (FailPoints::AnyArmed()) {  // Skip building the detail string when off.
    DV_RETURN_IF_ERROR(FailPoints::Check(
        "catalog.resolve", ToLower(db_name) + "::" + ToLower(rel_name)));
  }
  DV_ASSIGN_OR_RETURN(const Database* db, GetDatabase(db_name));
  return db->GetTable(rel_name);
}

std::vector<std::string> Catalog::DatabaseNames() const {
  std::vector<std::string> names;
  names.reserve(databases_.size());
  for (const auto& [key, entry] : databases_) names.push_back(entry.first);
  return names;
}

}  // namespace dynview

#include "relational/catalog.h"

#include <utility>

#include "common/failpoint.h"
#include "common/str_util.h"

namespace dynview {

Status Database::AddTable(const std::string& rel_name, Table table) {
  std::string key = ToLower(rel_name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + rel_name + "' already exists in " +
                                 name_);
  }
  tables_.emplace(key, std::make_pair(rel_name, std::move(table)));
  return Status::OK();
}

void Database::PutTable(const std::string& rel_name, Table table) {
  std::string key = ToLower(rel_name);
  tables_[key] = std::make_pair(rel_name, std::move(table));
}

Status Database::DropTable(const std::string& rel_name) {
  std::string key = ToLower(rel_name);
  if (tables_.erase(key) == 0) {
    return Status::NotFound("table '" + rel_name + "' not found in " + name_);
  }
  return Status::OK();
}

bool Database::HasTable(const std::string& rel_name) const {
  return tables_.count(ToLower(rel_name)) > 0;
}

Result<const Table*> Database::GetTable(const std::string& rel_name) const {
  auto it = tables_.find(ToLower(rel_name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + rel_name + "' not found in database '" +
                            name_ + "'");
  }
  return &it->second.second;
}

Result<Table*> Database::GetMutableTable(const std::string& rel_name) {
  auto it = tables_.find(ToLower(rel_name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + rel_name + "' not found in database '" +
                            name_ + "'");
  }
  return &it->second.second;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, entry] : tables_) names.push_back(entry.first);
  return names;
}

// ---------------------------------------------------------------- Snapshot

uint64_t CatalogSnapshot::DatabaseVersion(const std::string& db_name) const {
  auto it = entries_.find(ToLower(db_name));
  return it == entries_.end() ? 0 : it->second.version;
}

bool CatalogSnapshot::HasDatabase(const std::string& db_name) const {
  return entries_.count(ToLower(db_name)) > 0;
}

Result<const Database*> CatalogSnapshot::GetDatabase(
    const std::string& db_name) const {
  auto it = entries_.find(ToLower(db_name));
  if (it == entries_.end()) {
    return Status::NotFound("database '" + db_name + "' not found");
  }
  return it->second.db.get();
}

Result<const Table*> CatalogSnapshot::ResolveTable(
    const std::string& db_name, const std::string& rel_name) const {
  // Fault-injection point for source access: every engine scan and view
  // grounding resolves its base table here, so arming "catalog.resolve"
  // (match "db::rel") simulates that source being slow or unavailable.
  if (FailPoints::AnyArmed()) {  // Skip building the detail string when off.
    DV_RETURN_IF_ERROR(FailPoints::Check(
        "catalog.resolve", ToLower(db_name) + "::" + ToLower(rel_name)));
  }
  DV_ASSIGN_OR_RETURN(const Database* db, GetDatabase(db_name));
  return db->GetTable(rel_name);
}

std::vector<std::string> CatalogSnapshot::DatabaseNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(entry.name);
  return names;
}

// --------------------------------------------------------------------- Txn

CatalogTxn::CatalogTxn(const CatalogSnapshot& base)
    : entries_(base.entries_) {}

bool CatalogTxn::HasDatabase(const std::string& db_name) const {
  return entries_.count(ToLower(db_name)) > 0;
}

Result<const Database*> CatalogTxn::GetDatabase(
    const std::string& db_name) const {
  auto it = entries_.find(ToLower(db_name));
  if (it == entries_.end()) {
    return Status::NotFound("database '" + db_name + "' not found");
  }
  return it->second.db.get();
}

Result<const Table*> CatalogTxn::ResolveTable(
    const std::string& db_name, const std::string& rel_name) const {
  // No failpoint here: transaction-internal reads (read-your-writes) are
  // part of the mutation, whose injection point is `catalog.commit`.
  DV_ASSIGN_OR_RETURN(const Database* db, GetDatabase(db_name));
  return db->GetTable(rel_name);
}

std::vector<std::string> CatalogTxn::DatabaseNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(entry.name);
  return names;
}

Database* CatalogTxn::Own(const std::string& key) {
  auto owned = owned_.find(key);
  if (owned != owned_.end()) return owned->second.get();
  auto it = entries_.find(key);
  auto clone = std::make_shared<Database>(*it->second.db);
  it->second.db = clone;
  owned_[key] = clone;
  touched_.insert(key);
  return clone.get();
}

Result<Database*> CatalogTxn::CreateDatabase(const std::string& db_name) {
  std::string key = ToLower(db_name);
  if (entries_.count(key) > 0) {
    return Status::AlreadyExists("database '" + db_name + "' already exists");
  }
  auto db = std::make_shared<Database>(db_name);
  entries_[key] = CatalogSnapshot::Entry{db_name, db, 0};
  owned_[key] = db;
  touched_.insert(key);
  return db.get();
}

Database* CatalogTxn::GetOrCreateDatabase(const std::string& db_name) {
  std::string key = ToLower(db_name);
  if (entries_.count(key) == 0) {
    return CreateDatabase(db_name).value();
  }
  return Own(key);
}

Result<Database*> CatalogTxn::GetMutableDatabase(const std::string& db_name) {
  std::string key = ToLower(db_name);
  if (entries_.count(key) == 0) {
    return Status::NotFound("database '" + db_name + "' not found");
  }
  return Own(key);
}

Status CatalogTxn::DropDatabase(const std::string& db_name) {
  std::string key = ToLower(db_name);
  if (entries_.erase(key) == 0) {
    return Status::NotFound("database '" + db_name + "' not found");
  }
  owned_.erase(key);
  touched_.insert(key);
  return Status::OK();
}

std::string CatalogTxn::TouchedDetail() const {
  std::string detail;
  for (const std::string& key : touched_) {
    if (!detail.empty()) detail += ",";
    detail += key;
  }
  return detail;
}

std::shared_ptr<const CatalogSnapshot> CatalogTxn::Build(
    uint64_t version, const Catalog* origin) const {
  auto snap = std::make_shared<CatalogSnapshot>();
  snap->entries_ = entries_;
  for (const std::string& key : touched_) {
    auto it = snap->entries_.find(key);
    if (it != snap->entries_.end()) it->second.version = version;
  }
  snap->version_ = version;
  snap->origin_ = origin;
  return snap;
}

// ----------------------------------------------------------------- Catalog

Catalog::Catalog() {
  auto empty = std::make_shared<CatalogSnapshot>();
  empty->origin_ = this;
  Publish(std::move(empty));
}

Result<uint64_t> Catalog::Mutate(
    const std::function<Status(CatalogTxn&)>& fn) {
  return Mutate(fn, "txn");
}

Result<uint64_t> Catalog::Mutate(const std::function<Status(CatalogTxn&)>& fn,
                                 const std::string& tag) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const CatalogSnapshot> base = Snapshot();
  CatalogTxn txn(*base);
  DV_RETURN_IF_ERROR(fn(txn));
  if (txn.touched_.empty()) return base->version();  // Read-only transaction.
  uint64_t next = base->version() + 1;
  // Fault-injection point for the commit itself: an injected error aborts
  // the publish, so a chaos run exercises "mutation failed, readers keep the
  // old version" — commit-or-nothing must hold under injection too.
  if (FailPoints::AnyArmed()) {
    DV_RETURN_IF_ERROR(
        FailPoints::Check("catalog.commit", txn.TouchedDetail()));
  }
  // Assemble the new version before taking the head lock: readers are only
  // ever excluded for the duration of one pointer swap.
  std::shared_ptr<const CatalogSnapshot> built = txn.Build(next, this);
  if (sink_ != nullptr) {
    // Durability before visibility: the sink (WAL) must acknowledge the
    // commit — append + fsync — before the head pointer swaps. Its error
    // aborts the commit; readers keep the old version.
    std::vector<std::string> touched(txn.touched_.begin(),
                                     txn.touched_.end());
    DV_RETURN_IF_ERROR(sink_->OnCommit(*built, touched, tag));
  }
  Publish(std::move(built));
  return next;
}

void Catalog::SetCommitSink(CatalogCommitSink* sink) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  sink_ = sink;
}

Status Catalog::WithWriterPaused(
    const std::function<Status(const CatalogSnapshot&)>& fn) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const CatalogSnapshot> snap = Snapshot();
  return fn(*snap);
}

Status Catalog::InstallRecoveredSnapshot(
    uint64_t version, std::vector<RecoveredDatabase> databases) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const CatalogSnapshot> cur = Snapshot();
  if (cur->version() != 0 || cur->num_databases() != 0) {
    return Status::InvalidArgument(
        "recovery requires an untouched catalog (version 0, no databases)");
  }
  auto snap = std::make_shared<CatalogSnapshot>();
  for (RecoveredDatabase& rd : databases) {
    std::string key = ToLower(rd.name);
    snap->entries_[key] = CatalogSnapshot::Entry{
        rd.name, std::make_shared<Database>(std::move(rd.db)), rd.version};
  }
  snap->version_ = version;
  snap->origin_ = this;
  Publish(std::move(snap));
  return Status::OK();
}

Status Catalog::ApplyRecoveredCommit(uint64_t version,
                                     std::vector<RecoveredDatabase> puts,
                                     const std::vector<std::string>& drops) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::shared_ptr<const CatalogSnapshot> base = Snapshot();
  if (version <= base->version()) {
    return Status::InvalidArgument(
        "replayed commit version " + std::to_string(version) +
        " is not newer than head " + std::to_string(base->version()));
  }
  auto snap = std::make_shared<CatalogSnapshot>();
  snap->entries_ = base->entries_;
  for (RecoveredDatabase& rd : puts) {
    std::string key = ToLower(rd.name);
    snap->entries_[key] = CatalogSnapshot::Entry{
        rd.name, std::make_shared<Database>(std::move(rd.db)), version};
  }
  for (const std::string& key : drops) snap->entries_.erase(key);
  snap->version_ = version;
  snap->origin_ = this;
  Publish(std::move(snap));
  return Status::OK();
}

Status Catalog::CreateDatabase(const std::string& db_name) {
  return Mutate([&](CatalogTxn& txn) {
           return txn.CreateDatabase(db_name).status();
         })
      .status();
}

Status Catalog::EnsureDatabase(const std::string& db_name) {
  return Mutate([&](CatalogTxn& txn) {
           txn.GetOrCreateDatabase(db_name);
           return Status::OK();
         })
      .status();
}

Status Catalog::AddTable(const std::string& db_name,
                         const std::string& rel_name, Table table) {
  return Mutate([&](CatalogTxn& txn) {
           return txn.GetOrCreateDatabase(db_name)->AddTable(
               rel_name, std::move(table));
         })
      .status();
}

Status Catalog::PutTable(const std::string& db_name,
                         const std::string& rel_name, Table table) {
  return Mutate([&](CatalogTxn& txn) {
           txn.GetOrCreateDatabase(db_name)->PutTable(rel_name,
                                                      std::move(table));
           return Status::OK();
         })
      .status();
}

Status Catalog::DropTable(const std::string& db_name,
                          const std::string& rel_name) {
  return Mutate([&](CatalogTxn& txn) -> Status {
           DV_ASSIGN_OR_RETURN(Database * db, txn.GetMutableDatabase(db_name));
           return db->DropTable(rel_name);
         })
      .status();
}

Status Catalog::DropDatabase(const std::string& db_name) {
  return Mutate([&](CatalogTxn& txn) { return txn.DropDatabase(db_name); })
      .status();
}

bool Catalog::HasDatabase(const std::string& db_name) const {
  return Snapshot()->HasDatabase(db_name);
}

Result<const Database*> Catalog::GetDatabase(const std::string& db_name) const {
  // The returned pointer refers into the current version; it stays valid
  // until a later commit touches this database (databases are shared across
  // versions, not copied per commit). Concurrent readers pin Snapshot().
  return Snapshot()->GetDatabase(db_name);
}

Result<const Table*> Catalog::ResolveTable(const std::string& db_name,
                                           const std::string& rel_name) const {
  return Snapshot()->ResolveTable(db_name, rel_name);
}

std::vector<std::string> Catalog::DatabaseNames() const {
  return Snapshot()->DatabaseNames();
}

size_t Catalog::num_databases() const { return Snapshot()->num_databases(); }

}  // namespace dynview

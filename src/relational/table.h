#ifndef DYNVIEW_RELATIONAL_TABLE_H_
#define DYNVIEW_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace dynview {

/// A row is a vector of values positionally aligned with a schema.
using Row = std::vector<Value>;

/// An in-memory relation with *bag* (multiset) semantics — duplicates are
/// retained, matching the paper's Sec. 4/5 distinction between set and
/// multiset usability of views. Set semantics is obtained explicitly via
/// `Distinct()`.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  const Row& row(size_t i) const { return rows_[i]; }

  /// Appends `row`; fails on arity mismatch.
  Status AppendRow(Row row);

  /// Appends without checking (hot path for operators that construct rows of
  /// the right arity by construction).
  void AppendRowUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// Moves every row of `other` onto the end of this table, leaving `other`
  /// empty; fails on arity mismatch. This is the zero-copy bag-union
  /// accumulator: unioning N grounding results is O(total rows) instead of
  /// the O(N·total) of repeatedly copying the accumulator through UnionAll.
  /// This table's schema wins (as in UnionAll).
  Status AppendTable(Table&& other);

  /// Drops every row past the first `n`, in place (LIMIT).
  void Truncate(size_t n) {
    if (n < rows_.size()) rows_.resize(n);
  }

  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() { rows_.clear(); }

  /// Returns a copy with duplicate rows removed (set semantics).
  Table Distinct() const;

  /// Sorts rows by total order over all columns (deterministic output for
  /// printing and comparison).
  void SortRows();

  /// Multiset equality: same schema arity and same bag of rows.
  bool BagEquals(const Table& other) const;

  /// Set equality: equal after duplicate elimination.
  bool SetEquals(const Table& other) const;

  /// ASCII rendering with a header, for examples and EXPERIMENTS.md output.
  /// `max_rows` truncates long tables (0 = no limit).
  std::string ToString(size_t max_rows = 0) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

/// Hash/equality adaptors over whole rows, consistent with
/// Value::GroupEquals/GroupHash (used by joins, grouping, distinct).
struct RowGroupHash {
  size_t operator()(const Row& r) const;
};
struct RowGroupEq {
  bool operator()(const Row& a, const Row& b) const;
};

/// Lexicographic total-order comparison of rows.
int CompareRows(const Row& a, const Row& b);

}  // namespace dynview

#endif  // DYNVIEW_RELATIONAL_TABLE_H_

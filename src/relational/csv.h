#ifndef DYNVIEW_RELATIONAL_CSV_H_
#define DYNVIEW_RELATIONAL_CSV_H_

#include <string>

#include "common/result.h"
#include "relational/table.h"

namespace dynview {

/// CSV import/export for tables (RFC 4180 quoting), so federations can be
/// loaded from and results handed to external tooling. The header row
/// carries column names; empty unquoted fields read back as NULL.

/// Serializes `table` (header + rows). Strings are written unquoted unless
/// they contain a comma, quote or newline; quotes are doubled.
std::string TableToCsv(const Table& table);

/// Parses CSV text into a table. The first row is the header. With
/// `infer_types`, each field is parsed as (in order) NULL (empty), INT,
/// DOUBLE, BOOL (true/false), DATE (YYYY-MM-DD), else STRING; otherwise all
/// non-empty fields are strings.
Result<Table> TableFromCsv(const std::string& csv, bool infer_types);

/// File convenience wrappers.
Status WriteCsvFile(const Table& table, const std::string& path);
Result<Table> ReadCsvFile(const std::string& path, bool infer_types);

/// Typed round-trip layer (what SaveCatalog/LoadCatalog use). The untyped
/// functions above re-infer each field, which is lossy in three known ways:
/// a DOUBLE with an integral value reads back as INT, a double's display
/// rendering (%g) drops precision, and a single-column NULL row serializes
/// as a blank line the reader skips. The typed variants fix all three:
/// doubles are written with round-trip precision (shortest rendering that
/// parses back to the same bits), declared column types decide parsing
/// (kNull declares "infer like TableFromCsv"), and in single-column mode a
/// bare empty line is a NULL row, not a blank line.

std::string TableToCsvTyped(const Table& table);

/// `column_types` must match the header arity; type mismatches in the data
/// (e.g. "abc" under INT) are ParseErrors.
Result<Table> TableFromCsvTyped(const std::string& csv,
                                const std::vector<TypeKind>& column_types);

/// The dominant cell kind per column: the single kind every non-null cell
/// of the column has, or kNull when the column is empty or mixes kinds
/// (mixed columns fall back to inference on load, keeping today's
/// behavior). This is what SaveCatalog records in its manifest.
std::vector<TypeKind> ColumnKindsOf(const Table& table);

Status WriteCsvFileTyped(const Table& table, const std::string& path);
Result<Table> ReadCsvFileTyped(const std::string& path,
                               const std::vector<TypeKind>& column_types);

}  // namespace dynview

#endif  // DYNVIEW_RELATIONAL_CSV_H_

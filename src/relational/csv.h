#ifndef DYNVIEW_RELATIONAL_CSV_H_
#define DYNVIEW_RELATIONAL_CSV_H_

#include <string>

#include "common/result.h"
#include "relational/table.h"

namespace dynview {

/// CSV import/export for tables (RFC 4180 quoting), so federations can be
/// loaded from and results handed to external tooling. The header row
/// carries column names; empty unquoted fields read back as NULL.

/// Serializes `table` (header + rows). Strings are written unquoted unless
/// they contain a comma, quote or newline; quotes are doubled.
std::string TableToCsv(const Table& table);

/// Parses CSV text into a table. The first row is the header. With
/// `infer_types`, each field is parsed as (in order) NULL (empty), INT,
/// DOUBLE, BOOL (true/false), DATE (YYYY-MM-DD), else STRING; otherwise all
/// non-empty fields are strings.
Result<Table> TableFromCsv(const std::string& csv, bool infer_types);

/// File convenience wrappers.
Status WriteCsvFile(const Table& table, const std::string& path);
Result<Table> ReadCsvFile(const std::string& path, bool infer_types);

}  // namespace dynview

#endif  // DYNVIEW_RELATIONAL_CSV_H_

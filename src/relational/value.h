#ifndef DYNVIEW_RELATIONAL_VALUE_H_
#define DYNVIEW_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/date.h"
#include "common/result.h"

namespace dynview {

/// Runtime type of a `Value` (and declared type of a column).
enum class TypeKind {
  kNull = 0,  // The type of the SQL NULL literal / an untyped column.
  kBool,
  kInt,
  kDouble,
  kString,
  kDate,
};

/// Returns a display name, e.g. "INT".
const char* TypeKindName(TypeKind kind);

/// Three-valued logic result of a SQL predicate (comparisons against NULL
/// evaluate to Unknown).
enum class TriBool { kFalse = 0, kTrue = 1, kUnknown = 2 };

TriBool TriAnd(TriBool a, TriBool b);
TriBool TriOr(TriBool a, TriBool b);
TriBool TriNot(TriBool a);

/// A single SQL value: NULL, BOOL, INT (64-bit), DOUBLE, STRING or DATE.
///
/// Values are ubiquitous in the engine: rows are vectors of values, and the
/// SchemaSQL machinery also uses values to carry *schema labels* (database,
/// relation and attribute names appear as string values when a higher-order
/// query promotes metadata to data — the heart of the paper).
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Storage(b)); }
  static Value Int(int64_t i) { return Value(Storage(i)); }
  static Value Double(double d) { return Value(Storage(d)); }
  static Value String(std::string s) { return Value(Storage(std::move(s))); }
  static Value MakeDate(Date d) { return Value(Storage(d)); }

  TypeKind kind() const;
  bool is_null() const { return kind() == TypeKind::kNull; }

  /// Typed accessors; must match `kind()`.
  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  Date as_date() const { return std::get<Date>(data_); }

  /// True if the value is INT or DOUBLE.
  bool is_numeric() const {
    return kind() == TypeKind::kInt || kind() == TypeKind::kDouble;
  }

  /// Numeric value widened to double (INT or DOUBLE only).
  double NumericAsDouble() const;

  /// SQL comparison with NULL ⇒ Unknown semantics. Comparable pairs: both
  /// numeric (INT/DOUBLE coerce), both STRING, both DATE, both BOOL.
  /// `cmp_out` receives <0, 0 or >0 when the result is not Unknown.
  /// Incomparable non-null kinds produce a TypeError.
  static Result<TriBool> Compare(const Value& a, const Value& b, int* cmp_out);

  /// Equality under SQL semantics (NULL = anything ⇒ Unknown).
  static Result<TriBool> SqlEquals(const Value& a, const Value& b);

  /// Exact structural equality used by GROUP BY / DISTINCT / hash joins:
  /// NULL equals NULL, and INT 1 equals DOUBLE 1.0 (numeric values compare by
  /// numeric value so grouping matches comparison semantics).
  bool GroupEquals(const Value& other) const;

  /// Hash consistent with `GroupEquals`.
  size_t GroupHash() const;

  /// Total order for ORDER BY and deterministic table printing: NULL first,
  /// then by kind, numerics interleaved by value.
  static int TotalOrderCompare(const Value& a, const Value& b);

  /// Renders the value for display ("NULL", 42, 3.5, 'abc', 1998-01-02).
  std::string ToString() const;

  /// Renders without string quotes (used when a value becomes a schema
  /// label, e.g. a company name becoming a relation name).
  std::string ToLabel() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.GroupEquals(b);
  }

 private:
  using Storage =
      std::variant<std::monostate, bool, int64_t, double, std::string, Date>;
  explicit Value(Storage s) : data_(std::move(s)) {}

  Storage data_;
};

}  // namespace dynview

#endif  // DYNVIEW_RELATIONAL_VALUE_H_

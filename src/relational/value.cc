#include "relational/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace dynview {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return "BOOL";
    case TypeKind::kInt:
      return "INT";
    case TypeKind::kDouble:
      return "DOUBLE";
    case TypeKind::kString:
      return "STRING";
    case TypeKind::kDate:
      return "DATE";
  }
  return "?";
}

TriBool TriAnd(TriBool a, TriBool b) {
  if (a == TriBool::kFalse || b == TriBool::kFalse) return TriBool::kFalse;
  if (a == TriBool::kTrue && b == TriBool::kTrue) return TriBool::kTrue;
  return TriBool::kUnknown;
}

TriBool TriOr(TriBool a, TriBool b) {
  if (a == TriBool::kTrue || b == TriBool::kTrue) return TriBool::kTrue;
  if (a == TriBool::kFalse && b == TriBool::kFalse) return TriBool::kFalse;
  return TriBool::kUnknown;
}

TriBool TriNot(TriBool a) {
  if (a == TriBool::kTrue) return TriBool::kFalse;
  if (a == TriBool::kFalse) return TriBool::kTrue;
  return TriBool::kUnknown;
}

TypeKind Value::kind() const {
  switch (data_.index()) {
    case 0:
      return TypeKind::kNull;
    case 1:
      return TypeKind::kBool;
    case 2:
      return TypeKind::kInt;
    case 3:
      return TypeKind::kDouble;
    case 4:
      return TypeKind::kString;
    case 5:
      return TypeKind::kDate;
  }
  return TypeKind::kNull;
}

double Value::NumericAsDouble() const {
  if (kind() == TypeKind::kInt) return static_cast<double>(as_int());
  return as_double();
}

Result<TriBool> Value::Compare(const Value& a, const Value& b, int* cmp_out) {
  if (a.is_null() || b.is_null()) return TriBool::kUnknown;
  if (a.is_numeric() && b.is_numeric()) {
    if (a.kind() == TypeKind::kInt && b.kind() == TypeKind::kInt) {
      int64_t x = a.as_int(), y = b.as_int();
      *cmp_out = (x < y) ? -1 : (x > y) ? 1 : 0;
    } else {
      double x = a.NumericAsDouble(), y = b.NumericAsDouble();
      *cmp_out = (x < y) ? -1 : (x > y) ? 1 : 0;
    }
    return TriBool::kTrue;
  }
  if (a.kind() != b.kind()) {
    return Status::TypeError(std::string("cannot compare ") +
                             TypeKindName(a.kind()) + " with " +
                             TypeKindName(b.kind()));
  }
  switch (a.kind()) {
    case TypeKind::kBool: {
      int x = a.as_bool() ? 1 : 0, y = b.as_bool() ? 1 : 0;
      *cmp_out = x - y;
      return TriBool::kTrue;
    }
    case TypeKind::kString: {
      int c = a.as_string().compare(b.as_string());
      *cmp_out = (c < 0) ? -1 : (c > 0) ? 1 : 0;
      return TriBool::kTrue;
    }
    case TypeKind::kDate: {
      int32_t x = a.as_date().days_since_epoch();
      int32_t y = b.as_date().days_since_epoch();
      *cmp_out = (x < y) ? -1 : (x > y) ? 1 : 0;
      return TriBool::kTrue;
    }
    default:
      return Status::Internal("unreachable comparison");
  }
}

Result<TriBool> Value::SqlEquals(const Value& a, const Value& b) {
  int cmp = 0;
  DV_ASSIGN_OR_RETURN(TriBool known, Compare(a, b, &cmp));
  if (known == TriBool::kUnknown) return TriBool::kUnknown;
  return cmp == 0 ? TriBool::kTrue : TriBool::kFalse;
}

bool Value::GroupEquals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    return NumericAsDouble() == other.NumericAsDouble();
  }
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case TypeKind::kBool:
      return as_bool() == other.as_bool();
    case TypeKind::kString:
      return as_string() == other.as_string();
    case TypeKind::kDate:
      return as_date() == other.as_date();
    default:
      return false;
  }
}

size_t Value::GroupHash() const {
  switch (kind()) {
    case TypeKind::kNull:
      return 0x9e3779b97f4a7c15ull;
    case TypeKind::kBool:
      return as_bool() ? 0x1234u : 0x4321u;
    case TypeKind::kInt:
      // Hash through double so INT 1 and DOUBLE 1.0 collide, matching
      // GroupEquals.
      return std::hash<double>()(static_cast<double>(as_int()));
    case TypeKind::kDouble:
      return std::hash<double>()(as_double());
    case TypeKind::kString:
      return std::hash<std::string>()(as_string());
    case TypeKind::kDate:
      return std::hash<int32_t>()(as_date().days_since_epoch()) ^ 0xD47Eu;
  }
  return 0;
}

int Value::TotalOrderCompare(const Value& a, const Value& b) {
  auto rank = [](const Value& v) {
    switch (v.kind()) {
      case TypeKind::kNull:
        return 0;
      case TypeKind::kBool:
        return 1;
      case TypeKind::kInt:
      case TypeKind::kDouble:
        return 2;
      case TypeKind::kDate:
        return 3;
      case TypeKind::kString:
        return 4;
    }
    return 5;
  };
  int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (a.is_null()) return 0;
  int cmp = 0;
  Result<TriBool> r = Compare(a, b, &cmp);
  if (r.ok() && r.value() == TriBool::kTrue) return cmp;
  return 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return as_bool() ? "TRUE" : "FALSE";
    case TypeKind::kInt:
      return std::to_string(as_int());
    case TypeKind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    case TypeKind::kString: {
      // Double embedded quotes ('' escaping) so the rendering round-trips
      // through the lexer: 'A''B' must re-parse as the value A'B, and two
      // distinct values must never render to the same SQL text.
      std::string quoted;
      quoted.reserve(as_string().size() + 2);
      quoted.push_back('\'');
      for (char c : as_string()) {
        if (c == '\'') quoted.push_back('\'');
        quoted.push_back(c);
      }
      quoted.push_back('\'');
      return quoted;
    }
    case TypeKind::kDate:
      return as_date().ToString();
  }
  return "?";
}

std::string Value::ToLabel() const {
  if (kind() == TypeKind::kString) return as_string();
  if (kind() == TypeKind::kNull) return "NULL";
  return ToString();
}

}  // namespace dynview

#include "relational/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/str_util.h"

namespace dynview {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos || s.empty();
}

void AppendField(std::string* out, const std::string& field) {
  if (!NeedsQuoting(field)) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

std::string FieldOf(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      return "";  // Empty unquoted field round-trips to NULL.
    case TypeKind::kString:
      return v.as_string();
    default:
      return v.ToLabel();
  }
}

/// Parses one CSV record starting at `*pos`; advances past the record's
/// line terminator. `quoted[i]` reports whether field i was quoted.
Result<bool> ParseRecord(const std::string& csv, size_t* pos,
                         std::vector<std::string>* fields,
                         std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  size_t i = *pos;
  const size_t n = csv.size();
  if (i >= n) return false;
  std::string field;
  bool was_quoted = false;
  bool in_quotes = false;
  while (i <= n) {
    if (in_quotes) {
      if (i >= n) return Status::ParseError("unterminated quoted CSV field");
      char c = csv[i];
      if (c == '"' && i + 1 < n && csv[i + 1] == '"') {
        field += '"';
        i += 2;
      } else if (c == '"') {
        in_quotes = false;
        ++i;
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    if (i == n || csv[i] == '\n' || csv[i] == '\r') {
      fields->push_back(std::move(field));
      quoted->push_back(was_quoted);
      // Swallow the newline sequence.
      if (i < n && csv[i] == '\r') ++i;
      if (i < n && csv[i] == '\n') ++i;
      *pos = i;
      return true;
    }
    char c = csv[i];
    if (c == ',') {
      fields->push_back(std::move(field));
      quoted->push_back(was_quoted);
      field.clear();
      was_quoted = false;
      ++i;
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      was_quoted = true;
      ++i;
    } else {
      field += c;
      ++i;
    }
  }
  return Status::Internal("unreachable CSV state");
}

Value InferValue(const std::string& field, bool was_quoted) {
  if (field.empty() && !was_quoted) return Value::Null();
  if (was_quoted) return Value::String(field);
  // INT.
  {
    char* end = nullptr;
    errno = 0;
    long long v = std::strtoll(field.c_str(), &end, 10);
    if (errno == 0 && end != field.c_str() && *end == '\0') {
      return Value::Int(v);
    }
  }
  // DOUBLE.
  {
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(field.c_str(), &end);
    if (errno == 0 && end != field.c_str() && *end == '\0') {
      return Value::Double(v);
    }
  }
  if (EqualsIgnoreCase(field, "true")) return Value::Bool(true);
  if (EqualsIgnoreCase(field, "false")) return Value::Bool(false);
  if (field.size() == 10 && field[4] == '-' && field[7] == '-') {
    Result<Date> d = Date::Parse(field);
    if (d.ok()) return Value::MakeDate(d.value());
  }
  return Value::String(field);
}

/// Shortest decimal rendering of `v` that strtod's back to the same bits
/// (tries 15, 16, then 17 significant digits — 17 always round-trips for
/// IEEE binary64).
std::string RoundTripDouble(double v) {
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = std::strtod(buf, nullptr);
    if (std::memcmp(&back, &v, sizeof(double)) == 0) break;
  }
  return buf;
}

Result<Value> ParseTypedField(const std::string& field, bool was_quoted,
                              TypeKind type, size_t column) {
  if (field.empty() && !was_quoted) return Value::Null();
  switch (type) {
    case TypeKind::kNull:
      return InferValue(field, was_quoted);
    case TypeKind::kString:
      return Value::String(field);
    case TypeKind::kInt: {
      char* end = nullptr;
      errno = 0;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::ParseError("CSV column " + std::to_string(column) +
                                  ": '" + field + "' is not an INT");
      }
      return Value::Int(v);
    }
    case TypeKind::kDouble: {
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::ParseError("CSV column " + std::to_string(column) +
                                  ": '" + field + "' is not a DOUBLE");
      }
      return Value::Double(v);
    }
    case TypeKind::kBool:
      if (EqualsIgnoreCase(field, "true")) return Value::Bool(true);
      if (EqualsIgnoreCase(field, "false")) return Value::Bool(false);
      return Status::ParseError("CSV column " + std::to_string(column) +
                                ": '" + field + "' is not a BOOL");
    case TypeKind::kDate: {
      DV_ASSIGN_OR_RETURN(Date d, Date::Parse(field));
      return Value::MakeDate(d);
    }
  }
  return Status::ParseError("unknown column type");
}

}  // namespace

std::string TableToCsvTyped(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ',';
    AppendField(&out, schema.column(c).name);
  }
  out += '\n';
  for (const Row& r : table.rows()) {
    for (size_t c = 0; c < r.size(); ++c) {
      if (c > 0) out += ',';
      if (r[c].is_null()) continue;  // Empty unquoted field.
      if (r[c].kind() == TypeKind::kDouble) {
        AppendField(&out, RoundTripDouble(r[c].as_double()));
      } else if (r[c].kind() == TypeKind::kString) {
        // Strings always quoted: under a declared STRING column quoting is
        // not needed to disambiguate, but mixed/inferred columns read back
        // "1997-01-01" as a DATE unless the quotes say otherwise.
        const std::string& field = r[c].as_string();
        out += '"';
        for (char ch : field) {
          if (ch == '"') out += '"';
          out += ch;
        }
        out += '"';
      } else {
        AppendField(&out, FieldOf(r[c]));
      }
    }
    out += '\n';
  }
  return out;
}

Result<Table> TableFromCsvTyped(const std::string& csv,
                                const std::vector<TypeKind>& column_types) {
  size_t pos = 0;
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  DV_ASSIGN_OR_RETURN(bool has_header,
                      ParseRecord(csv, &pos, &fields, &quoted));
  if (!has_header) return Status::ParseError("empty CSV input");
  if (fields.size() != column_types.size()) {
    return Status::ParseError(
        "CSV header arity " + std::to_string(fields.size()) +
        " does not match declared column types (" +
        std::to_string(column_types.size()) + ")");
  }
  Table table(Schema::FromNames(fields));
  const size_t arity = fields.size();
  while (true) {
    DV_ASSIGN_OR_RETURN(bool more, ParseRecord(csv, &pos, &fields, &quoted));
    if (!more) break;
    if (arity > 1 && fields.size() == 1 && fields[0].empty() && !quoted[0]) {
      continue;  // Blank line. In single-column mode it IS a NULL row.
    }
    if (fields.size() != arity) {
      return Status::ParseError("CSV row arity " +
                                std::to_string(fields.size()) +
                                " does not match header " +
                                std::to_string(arity));
    }
    Row row;
    row.reserve(arity);
    for (size_t c = 0; c < arity; ++c) {
      DV_ASSIGN_OR_RETURN(
          Value v, ParseTypedField(fields[c], quoted[c], column_types[c], c));
      row.push_back(std::move(v));
    }
    table.AppendRowUnchecked(std::move(row));
  }
  return table;
}

std::vector<TypeKind> ColumnKindsOf(const Table& table) {
  std::vector<TypeKind> kinds(table.schema().num_columns(), TypeKind::kNull);
  std::vector<bool> mixed(kinds.size(), false);
  for (const Row& r : table.rows()) {
    for (size_t c = 0; c < r.size(); ++c) {
      if (r[c].is_null() || mixed[c]) continue;
      if (kinds[c] == TypeKind::kNull) {
        kinds[c] = r[c].kind();
      } else if (kinds[c] != r[c].kind()) {
        kinds[c] = TypeKind::kNull;
        mixed[c] = true;
      }
    }
  }
  return kinds;
}

std::string TableToCsv(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ',';
    AppendField(&out, schema.column(c).name);
  }
  out += '\n';
  for (const Row& r : table.rows()) {
    for (size_t c = 0; c < r.size(); ++c) {
      if (c > 0) out += ',';
      if (r[c].is_null()) continue;  // Empty unquoted field.
      // Strings that could be misread as numbers/NULL are quoted.
      std::string field = FieldOf(r[c]);
      if (r[c].kind() == TypeKind::kString &&
          (!InferValue(field, false).GroupEquals(r[c]) || field.empty())) {
        *(&out) += '"';
        for (char ch : field) {
          if (ch == '"') out += '"';
          out += ch;
        }
        out += '"';
      } else {
        AppendField(&out, field);
      }
    }
    out += '\n';
  }
  return out;
}

Result<Table> TableFromCsv(const std::string& csv, bool infer_types) {
  size_t pos = 0;
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  DV_ASSIGN_OR_RETURN(bool has_header, ParseRecord(csv, &pos, &fields, &quoted));
  if (!has_header) return Status::ParseError("empty CSV input");
  Table table(Schema::FromNames(fields));
  const size_t arity = fields.size();
  while (true) {
    DV_ASSIGN_OR_RETURN(bool more, ParseRecord(csv, &pos, &fields, &quoted));
    if (!more) break;
    if (fields.size() == 1 && fields[0].empty() && !quoted[0]) {
      continue;  // Blank line.
    }
    if (fields.size() != arity) {
      return Status::ParseError("CSV row arity " +
                                std::to_string(fields.size()) +
                                " does not match header " +
                                std::to_string(arity));
    }
    Row row;
    row.reserve(arity);
    for (size_t c = 0; c < arity; ++c) {
      if (infer_types) {
        row.push_back(InferValue(fields[c], quoted[c]));
      } else if (fields[c].empty() && !quoted[c]) {
        row.push_back(Value::Null());
      } else {
        row.push_back(Value::String(fields[c]));
      }
    }
    table.AppendRowUnchecked(std::move(row));
  }
  return table;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  std::string csv = TableToCsv(table);
  size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  if (written != csv.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<Table> ReadCsvFile(const std::string& path, bool infer_types) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  std::string csv;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    csv.append(buf, n);
  }
  std::fclose(f);
  return TableFromCsv(csv, infer_types);
}

Status WriteCsvFileTyped(const Table& table, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  std::string csv = TableToCsvTyped(table);
  size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  if (written != csv.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<Table> ReadCsvFileTyped(const std::string& path,
                               const std::vector<TypeKind>& column_types) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  std::string csv;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    csv.append(buf, n);
  }
  std::fclose(f);
  return TableFromCsvTyped(csv, column_types);
}

}  // namespace dynview

#include "relational/table.h"

#include <algorithm>
#include <unordered_map>

namespace dynview {

size_t RowGroupHash::operator()(const Row& r) const {
  size_t h = 1469598103934665603ull;
  for (const Value& v : r) {
    h ^= v.GroupHash();
    h *= 1099511628211ull;
  }
  return h;
}

bool RowGroupEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].GroupEquals(b[i])) return false;
  }
  return true;
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = Value::TotalOrderCompare(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        std::to_string(schema_.num_columns()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::AppendTable(Table&& other) {
  if (schema_.num_columns() != other.schema_.num_columns()) {
    return Status::InvalidArgument(
        "UNION arity mismatch: " + std::to_string(schema_.num_columns()) +
        " vs " + std::to_string(other.schema_.num_columns()));
  }
  if (rows_.empty()) {
    rows_ = std::move(other.rows_);
  } else {
    rows_.reserve(rows_.size() + other.rows_.size());
    for (Row& r : other.rows_) rows_.push_back(std::move(r));
  }
  other.rows_.clear();
  return Status::OK();
}

Table Table::Distinct() const {
  Table out(schema_);
  std::unordered_map<Row, bool, RowGroupHash, RowGroupEq> seen;
  seen.reserve(rows_.size());
  for (const Row& r : rows_) {
    auto [it, inserted] = seen.emplace(r, true);
    if (inserted) out.AppendRowUnchecked(r);
  }
  return out;
}

void Table::SortRows() {
  std::sort(rows_.begin(), rows_.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
}

bool Table::BagEquals(const Table& other) const {
  if (schema_.num_columns() != other.schema_.num_columns()) return false;
  if (rows_.size() != other.rows_.size()) return false;
  std::unordered_map<Row, int64_t, RowGroupHash, RowGroupEq> counts;
  counts.reserve(rows_.size());
  for (const Row& r : rows_) ++counts[r];
  for (const Row& r : other.rows_) {
    auto it = counts.find(r);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

bool Table::SetEquals(const Table& other) const {
  if (schema_.num_columns() != other.schema_.num_columns()) return false;
  std::unordered_map<Row, bool, RowGroupHash, RowGroupEq> mine;
  for (const Row& r : rows_) mine.emplace(r, true);
  std::unordered_map<Row, bool, RowGroupHash, RowGroupEq> theirs;
  for (const Row& r : other.rows_) theirs.emplace(r, true);
  if (mine.size() != theirs.size()) return false;
  for (const auto& [r, unused] : mine) {
    if (theirs.find(r) == theirs.end()) return false;
  }
  return true;
}

std::string Table::ToString(size_t max_rows) const {
  // Compute column widths.
  std::vector<std::string> headers = schema_.ColumnNames();
  std::vector<size_t> widths(headers.size());
  for (size_t i = 0; i < headers.size(); ++i) widths[i] = headers[i].size();
  size_t limit = (max_rows == 0) ? rows_.size() : std::min(max_rows, rows_.size());
  std::vector<std::vector<std::string>> cells;
  cells.reserve(limit);
  for (size_t r = 0; r < limit; ++r) {
    std::vector<std::string> line;
    line.reserve(headers.size());
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      line.push_back(rows_[r][c].ToString());
      if (c < widths.size()) widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  auto pad = [](const std::string& s, size_t w) {
    std::string p = s;
    p.resize(w, ' ');
    return p;
  };
  for (size_t i = 0; i < headers.size(); ++i) {
    out += (i ? " | " : "| ") + pad(headers[i], widths[i]);
  }
  out += " |\n";
  for (size_t i = 0; i < headers.size(); ++i) {
    out += (i ? "-+-" : "+-") + std::string(widths[i], '-');
  }
  out += "-+\n";
  for (const auto& line : cells) {
    for (size_t i = 0; i < headers.size(); ++i) {
      out += (i ? " | " : "| ") + pad(i < line.size() ? line[i] : "", widths[i]);
    }
    out += " |\n";
  }
  if (limit < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - limit) + " more rows)\n";
  }
  return out;
}

}  // namespace dynview

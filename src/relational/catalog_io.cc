#include "relational/catalog_io.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/str_util.h"
#include "relational/csv.h"

namespace dynview {

namespace {

/// File-system-safe rendering of a label (labels are SQL identifiers, but
/// stay defensive).
std::string Sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-') {
      out += c;
    } else {
      out += '_';
    }
  }
  return out.empty() ? "_" : out;
}

Status EnsureDirectory(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return Status::OK();
    return Status::InvalidArgument("'" + path + "' exists and is not a directory");
  }
  if (::mkdir(path.c_str(), 0755) != 0) {
    return Status::InvalidArgument("cannot create '" + path +
                                   "': " + std::strerror(errno));
  }
  return Status::OK();
}

/// Manifest schema column: comma-joined per-column TypeKind names
/// ("INT,STRING,DATE"); NULL names a column loaded by inference.
std::string RenderColumnKinds(const std::vector<TypeKind>& kinds) {
  std::string out;
  for (size_t i = 0; i < kinds.size(); ++i) {
    if (i > 0) out += ',';
    out += TypeKindName(kinds[i]);
  }
  return out;
}

Result<std::vector<TypeKind>> ParseColumnKinds(const std::string& rendered) {
  std::vector<TypeKind> kinds;
  if (rendered.empty()) return kinds;  // Zero-column table.
  size_t pos = 0;
  while (pos <= rendered.size()) {
    size_t comma = rendered.find(',', pos);
    std::string name = rendered.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    bool known = false;
    for (TypeKind k :
         {TypeKind::kNull, TypeKind::kBool, TypeKind::kInt, TypeKind::kDouble,
          TypeKind::kString, TypeKind::kDate}) {
      if (name == TypeKindName(k)) {
        kinds.push_back(k);
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::ParseError("manifest schema names unknown type '" +
                                name + "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return kinds;
}

}  // namespace

Status SaveCatalog(const CatalogReader& catalog, const std::string& directory) {
  DV_RETURN_IF_ERROR(EnsureDirectory(directory));
  std::string manifest;
  for (const std::string& db_name : catalog.DatabaseNames()) {
    DV_ASSIGN_OR_RETURN(const Database* db, catalog.GetDatabase(db_name));
    for (const std::string& rel_name : db->TableNames()) {
      DV_ASSIGN_OR_RETURN(const Table* t, db->GetTable(rel_name));
      std::string file = Sanitize(db_name) + "__" + Sanitize(rel_name) + ".csv";
      // Typed writer + recorded column kinds: quoted strings, DATE cells,
      // DOUBLE precision/kind and single-column NULL rows all round-trip
      // (see relational/csv.h, typed layer).
      DV_RETURN_IF_ERROR(WriteCsvFileTyped(*t, directory + "/" + file));
      // Manifest lines are themselves CSV-quoted where needed.
      Table line(Schema::FromNames({"db", "rel", "file", "schema"}));
      line.AppendRowUnchecked({Value::String(db_name), Value::String(rel_name),
                               Value::String(file),
                               Value::String(RenderColumnKinds(
                                   ColumnKindsOf(*t)))});
      std::string csv = TableToCsv(line);
      // Strip the header row of the helper table.
      manifest += csv.substr(csv.find('\n') + 1);
    }
  }
  std::string path = directory + "/manifest";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  std::string header = "db,rel,file,schema\n";
  std::fwrite(header.data(), 1, header.size(), f);
  std::fwrite(manifest.data(), 1, manifest.size(), f);
  std::fclose(f);
  return Status::OK();
}

Status LoadCatalog(const std::string& directory, Catalog* catalog) {
  DV_ASSIGN_OR_RETURN(Table manifest,
                      ReadCsvFile(directory + "/manifest",
                                  /*infer_types=*/false));
  const size_t ncols = manifest.schema().num_columns();
  // 4 columns since the typed layer landed; 3-column manifests from older
  // saves load through the legacy inference path.
  if (ncols != 3 && ncols != 4) {
    return Status::ParseError("malformed manifest (expected 3 or 4 columns)");
  }
  // One transaction for the whole manifest: a failed file load publishes
  // nothing, and concurrent readers never observe a half-loaded federation.
  return catalog
      ->Mutate([&](CatalogTxn& txn) -> Status {
        for (const Row& r : manifest.rows()) {
          if (r[0].is_null() || r[1].is_null() || r[2].is_null()) {
            return Status::ParseError("manifest row with missing fields");
          }
          std::string db = r[0].as_string();
          std::string rel = r[1].as_string();
          std::string file = r[2].as_string();
          Table t;
          if (ncols == 4 && !r[3].is_null()) {
            DV_ASSIGN_OR_RETURN(std::vector<TypeKind> kinds,
                                ParseColumnKinds(r[3].as_string()));
            DV_ASSIGN_OR_RETURN(
                t, ReadCsvFileTyped(directory + "/" + file, kinds));
          } else {
            DV_ASSIGN_OR_RETURN(t, ReadCsvFile(directory + "/" + file,
                                               /*infer_types=*/true));
          }
          txn.GetOrCreateDatabase(db)->PutTable(rel, std::move(t));
        }
        return Status::OK();
      })
      .status();
}

}  // namespace dynview
